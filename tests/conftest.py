"""Shared fixtures: tiny deterministic traces and machines."""

from __future__ import annotations

import pytest

from repro.branch import make_predictor
from repro.isa import InstructionBuilder, OpClass
from repro.memory import DEFAULT_MEMORY, MemoryHierarchy
from repro.sim.stats import SimStats


@pytest.fixture
def builder() -> InstructionBuilder:
    return InstructionBuilder()


@pytest.fixture
def hierarchy() -> MemoryHierarchy:
    return MemoryHierarchy(DEFAULT_MEMORY)


@pytest.fixture
def predictor():
    return make_predictor("perceptron")


@pytest.fixture
def stats() -> SimStats:
    return SimStats()


def make_alu_chain(n: int, dep: bool = False):
    """A trace of *n* ALU ops: independent, or one serial chain."""
    b = InstructionBuilder()
    out = []
    for i in range(n):
        if dep:
            out.append(b.alu(1, 1, 2))
        else:
            out.append(b.alu(1 + (i % 8), 30, 29))
    return out


def make_load_chain(n: int, base_addr: int = 0x10_0000, stride: int = 4096):
    """A serial pointer chase: each load's base is the previous dest."""
    b = InstructionBuilder()
    out = []
    for i in range(n):
        out.append(b.load(dest=1, base=1, addr=base_addr + i * stride))
    return out


def make_loop(iterations: int, body_alu: int = 3, taken: bool = True):
    """iterations x (ALU body + loop branch) with stable branch pc."""
    b = InstructionBuilder()
    out = []
    branch_pc = 0x9000
    for i in range(iterations):
        for j in range(body_alu):
            out.append(b.alu(1 + (j % 4), 30, 29))
        out.append(
            b.emit(OpClass.BRANCH, srcs=(31,), taken=taken, target=0x100, pc=branch_pc)
        )
    return out
