"""Unit tests for the execution-locality analysis toolkit."""

from repro.analysis import classify_locality, mlp_profile, slice_profile
from repro.isa import InstructionBuilder
from repro.memory import DEFAULT_MEMORY, MemoryHierarchy, warm_caches
from repro.workloads import get_workload


def fresh_hierarchy(workload=None):
    h = MemoryHierarchy(DEFAULT_MEMORY)
    if workload is not None:
        warm_caches(h, workload.regions)
    return h


def test_pure_alu_is_all_high_locality():
    b = InstructionBuilder()
    trace = [b.alu(1 + (i % 4), 29, 30) for i in range(100)]
    report = classify_locality(trace, fresh_hierarchy())
    assert report.low_locality == 0
    assert report.low_fraction == 0.0


def test_miss_consumers_are_low_locality():
    b = InstructionBuilder()
    trace = [
        b.load(1, 30, addr=0x100_0000),   # cold miss
        b.alu(2, 1, 1),                   # consumer -> low
        b.alu(3, 2, 2),                   # transitive -> low
        b.alu(4, 29, 30),                 # independent -> high
    ]
    report = classify_locality(trace, fresh_hierarchy())
    assert report.flags == [False, True, True, False]
    assert report.long_latency_loads == 1
    assert report.low_by_op["alu"] == 2


def test_short_redefinition_clears_taint():
    b = InstructionBuilder()
    trace = [
        b.load(1, 30, addr=0x100_0000),   # miss taints r1
        b.alu(1, 29, 30),                 # short redefinition of r1
        b.alu(2, 1, 1),                   # reads the clean r1 -> high
    ]
    report = classify_locality(trace, fresh_hierarchy())
    assert report.flags == [False, False, False]


def test_cached_loads_do_not_taint():
    b = InstructionBuilder()
    trace = [b.load(1, 30, addr=0x100_0000), b.alu(2, 1, 1)]  # cold miss
    # Enough intervening work for the fill to land (the analysis advances
    # a nominal 1-instruction-per-cycle clock).
    trace += [b.alu(3 + (i % 4), 29, 30) for i in range(450)]
    for _ in range(3):
        trace.append(b.load(1, 30, addr=0x100_0000))  # now cached
        trace.append(b.alu(2, 1, 1))
    report = classify_locality(trace, fresh_hierarchy())
    # only the first load's consumer is low locality
    assert sum(report.flags) == 1


def test_fp_suite_low_fraction_matches_llib_traffic():
    """The functional classification approximates the timed CP/MP split."""
    workload = get_workload("swim")
    trace = workload.trace(4_000)
    report = classify_locality(trace, fresh_hierarchy(workload))
    assert 0.1 < report.low_fraction < 0.8


def test_cache_resident_code_is_high_locality():
    workload = get_workload("mesa")
    trace = workload.trace(4_000)
    report = classify_locality(trace, fresh_hierarchy(workload))
    assert report.low_fraction < 0.05


def test_slice_profile_groups_contiguous_runs():
    from repro.analysis.locality import LocalityReport

    report = LocalityReport(flags=[False, True, True, False] * 10 + [False] * 10)
    # gap=4: single high-locality separators merge consecutive runs
    merged = slice_profile(report, gap=4)
    split = slice_profile(report, gap=1)
    assert split.slices == 10
    assert merged.total_instructions == split.total_instructions == 20
    assert merged.longest >= split.longest


def test_slice_histogram_buckets_are_powers_of_two():
    workload = get_workload("mcf")
    trace = workload.trace(3_000)
    report = classify_locality(trace, fresh_hierarchy(workload))
    slices = slice_profile(report)
    for bucket in slices.histogram:
        assert bucket & (bucket - 1) == 0


def test_mlp_streaming_vs_chasing():
    """Figure 4 in numbers: streaming FP exposes overlap, chains do not."""
    swim, mcf = get_workload("swim"), get_workload("mcf")
    swim_mlp = mlp_profile(swim.trace(4_000), fresh_hierarchy(swim), window=256)
    mcf_mlp = mlp_profile(mcf.trace(4_000), fresh_hierarchy(mcf), window=256)
    assert swim_mlp.mean_overlap > mcf_mlp.mean_overlap
    assert swim_mlp.mean_overlap > 3


def test_mlp_no_misses():
    b = InstructionBuilder()
    trace = [b.alu(1, 29, 30) for _ in range(100)]
    report = mlp_profile(trace, fresh_hierarchy(), window=32)
    assert report.total_misses == 0
    assert report.mean_overlap == 0.0
