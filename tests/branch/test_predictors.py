"""Unit and property tests for the branch predictors."""

import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.branch import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    GSharePredictor,
    NeverTakenPredictor,
    OraclePredictor,
    PerceptronPredictor,
    make_predictor,
)

ALL_NAMES = ["perceptron", "gshare", "bimodal", "always-taken", "never-taken"]


@pytest.mark.parametrize("name", ALL_NAMES)
def test_factory_builds_each_predictor(name):
    predictor = make_predictor(name)
    predictor.update(0x1000, True)
    assert predictor.predictions == 1


def test_factory_rejects_unknown_names():
    with pytest.raises(ValueError):
        make_predictor("tage")


@pytest.mark.parametrize("name", ["perceptron", "gshare", "bimodal"])
def test_learns_strongly_biased_branch(name):
    predictor = make_predictor(name)
    for _ in range(200):
        predictor.update(0x4000, True)
    predictor.reset_stats()
    for _ in range(100):
        predictor.update(0x4000, True)
    assert predictor.accuracy >= 0.99


@pytest.mark.parametrize("name", ["perceptron", "gshare"])
def test_learns_alternating_pattern(name):
    """History-based predictors must learn a period-2 pattern perfectly."""
    predictor = make_predictor(name)
    for i in range(400):
        predictor.update(0x4000, i % 2 == 0)
    predictor.reset_stats()
    for i in range(100):
        predictor.update(0x4000, i % 2 == 0)
    assert predictor.accuracy >= 0.98


def test_bimodal_cannot_learn_alternation():
    predictor = BimodalPredictor()
    for i in range(400):
        predictor.update(0x4000, i % 2 == 0)
    assert predictor.accuracy <= 0.75


def test_perceptron_beats_random_on_correlated_branches():
    """Branch B repeats the outcome of branch A — a correlation only a
    history-based predictor can exploit."""
    rng = random.Random(42)
    perceptron = PerceptronPredictor()
    bimodal = BimodalPredictor()
    for _ in range(2000):
        outcome = rng.random() < 0.5
        for predictor in (perceptron, bimodal):
            predictor.update(0x100, outcome)
            predictor.update(0x200, outcome)
    assert perceptron.accuracy > bimodal.accuracy + 0.15


def test_perceptron_threshold_formula():
    predictor = PerceptronPredictor(history_length=24)
    assert predictor.threshold == int(1.93 * 24 + 14)


def test_perceptron_weights_saturate():
    predictor = PerceptronPredictor(num_perceptrons=4, history_length=4, weight_bits=4)
    for _ in range(1000):
        predictor.update(0x0, True)
    weights = predictor._weights[predictor._index(0x0)]
    assert all(-8 <= w <= 7 for w in weights)


def test_perceptron_validates_arguments():
    with pytest.raises(ValueError):
        PerceptronPredictor(num_perceptrons=100)  # not a power of two
    with pytest.raises(ValueError):
        PerceptronPredictor(history_length=0)


def test_gshare_validates_arguments():
    with pytest.raises(ValueError):
        GSharePredictor(table_bits=8, history_length=10)


def test_static_predictors():
    taken = AlwaysTakenPredictor()
    never = NeverTakenPredictor()
    assert taken.predict(0x0) is True
    assert never.predict(0x0) is False
    taken.update(0x0, False)
    assert taken.mispredictions == 1
    never.update(0x0, False)
    assert never.mispredictions == 0


def test_accuracy_without_predictions_is_one():
    assert PerceptronPredictor().accuracy == 1.0


def test_reset_stats_keeps_learned_state():
    predictor = PerceptronPredictor()
    for _ in range(200):
        predictor.update(0x4000, True)
    predictor.reset_stats()
    assert predictor.predictions == 0
    assert predictor.predict(0x4000) is True


# ----------------------------------------------------------------------
# Gshare internals: saturation, history wraparound, table aliasing
# ----------------------------------------------------------------------


def test_gshare_counters_saturate_and_hysterese():
    """Counters clamp at [0, 3] and a saturated branch survives one blip."""
    predictor = GSharePredictor(table_bits=4, history_length=0)
    idx = predictor._index(0x40)
    for _ in range(50):
        predictor.update(0x40, True)
    assert predictor._counters[idx] == 3  # saturated, not 50
    predictor.update(0x40, False)
    assert predictor._counters[idx] == 2
    assert predictor.predict(0x40) is True  # hysteresis: still taken
    for _ in range(50):
        predictor.update(0x40, False)
    assert predictor._counters[idx] == 0  # clamps at zero


def test_gshare_history_wraps_at_history_length():
    """The global history register is exactly history_length bits wide."""
    predictor = GSharePredictor(table_bits=8, history_length=5)
    for _ in range(64):  # far more outcomes than history bits
        predictor.update(0x80, True)
    assert predictor._history == (1 << 5) - 1  # all-ones, no overflow
    predictor.update(0x80, False)
    assert predictor._history == 0b11110


def test_gshare_table_aliasing():
    """PCs congruent modulo the table size share (and fight over) one
    counter, while non-congruent PCs stay independent."""
    predictor = GSharePredictor(table_bits=2, history_length=0)
    assert predictor._index(0x0) == predictor._index(0x10)  # 4-entry table
    assert predictor._index(0x0) != predictor._index(0x4)
    for _ in range(10):
        predictor.update(0x0, False)
    # The alias inherits the learned not-taken bias; the neighbour keeps
    # the weakly-taken initial state.
    assert predictor.predict(0x10) is False
    assert predictor.predict(0x4) is True


def test_gshare_history_disambiguates_aliases():
    """With history bits in the index, the same PC maps to different
    counters under different global histories — the point of gshare."""
    a = GSharePredictor(table_bits=6, history_length=6)
    idx_empty = a._index(0x100)
    a.update(0x200, True)  # shifts history
    assert a._index(0x100) != idx_empty


# ----------------------------------------------------------------------
# Perceptron internals: training dynamics
# ----------------------------------------------------------------------


def test_perceptron_stops_training_when_confident():
    """Once |y| exceeds θ and the prediction is correct, weights freeze —
    the Jiménez & Lin training rule."""
    predictor = PerceptronPredictor(num_perceptrons=4, history_length=4)
    for _ in range(100):
        predictor.update(0x0, True)
    frozen = [row[:] for row in predictor._weights]
    predictor.update(0x0, True)
    assert predictor._weights == frozen
    # ... but a misprediction always trains, even when |y| is large.
    predictor.update(0x0, False)
    assert predictor._weights != frozen


def test_perceptron_bias_learns_history_free_branch():
    """A branch uncorrelated with history is carried by the bias weight."""
    predictor = PerceptronPredictor(num_perceptrons=4, history_length=4)
    for _ in range(40):
        predictor.update(0x0, True)
    weights = predictor._weights[predictor._index(0x0)]
    assert weights[0] > 0  # bias votes taken


# ----------------------------------------------------------------------
# Oracle bound
# ----------------------------------------------------------------------


def test_oracle_never_mispredicts():
    predictor = OraclePredictor()
    rng = random.Random(7)
    for _ in range(500):
        assert predictor.update(rng.randrange(1 << 20), rng.random() < 0.5)
    assert predictor.predictions == 500
    assert predictor.mispredictions == 0
    assert predictor.accuracy == 1.0


# ----------------------------------------------------------------------
# Parameterized factory spellings (the bp= axis of ooo-bp/dual)
# ----------------------------------------------------------------------


def test_factory_accepts_parameterized_spellings():
    gshare = make_predictor("gshare-14")
    assert isinstance(gshare, GSharePredictor)
    assert (gshare.table_bits, gshare.history_length) == (14, 14)
    perceptron = make_predictor("perceptron-64-16")
    assert isinstance(perceptron, PerceptronPredictor)
    assert (perceptron.num_perceptrons, perceptron.history_length) == (64, 16)
    assert isinstance(make_predictor("static"), AlwaysTakenPredictor)
    assert isinstance(make_predictor("oracle"), OraclePredictor)


def test_factory_rejects_kwargs_on_parameterized_spellings():
    with pytest.raises(ValueError, match="keyword arguments"):
        make_predictor("gshare-14", table_bits=10)


# ----------------------------------------------------------------------
# Cross-process determinism: prediction streams carry no hidden state
# ----------------------------------------------------------------------

_DETERMINISM_SCRIPT = """
import json, random
from repro.branch import make_predictor

results = {}
for spec in ("gshare-10", "perceptron-64-12", "bimodal-8"):
    rng = random.Random(1234)
    predictor = make_predictor(spec)
    correct = 0
    for _ in range(2000):
        pc = rng.randrange(0, 1 << 16) & ~0x3
        taken = rng.random() < 0.6
        correct += predictor.update(pc, taken)
    results[spec] = [correct, predictor.predictions, predictor.mispredictions]
print(json.dumps(results, sort_keys=True))
"""


def _run_determinism_probe() -> str:
    src = Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ, PYTHONPATH=str(src))
    proc = subprocess.run(
        [sys.executable, "-c", _DETERMINISM_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return proc.stdout.strip()


def test_prediction_streams_deterministic_across_processes():
    """Two fresh interpreters produce bit-identical prediction streams —
    no dict-order, hash-seed or id()-derived state leaks into predictions
    (the property the result store's cache keys rely on)."""
    first = _run_determinism_probe()
    second = _run_determinism_probe()
    assert first == second
    stats = json.loads(first)
    for spec, (correct, predictions, mispredictions) in stats.items():
        assert predictions == 2000, spec
        assert correct + mispredictions == predictions, spec


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 1 << 20), st.booleans()), min_size=1, max_size=200)
)
def test_property_stats_always_consistent(events):
    """For any update sequence: mispredictions <= predictions, and accuracy
    stays within [0, 1]."""
    predictor = PerceptronPredictor(num_perceptrons=16, history_length=8)
    for pc, taken in events:
        predictor.update(pc, taken)
    assert 0 <= predictor.mispredictions <= predictor.predictions == len(events)
    assert 0.0 <= predictor.accuracy <= 1.0
