"""Unit and property tests for the branch predictors."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.branch import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    GSharePredictor,
    NeverTakenPredictor,
    PerceptronPredictor,
    make_predictor,
)

ALL_NAMES = ["perceptron", "gshare", "bimodal", "always-taken", "never-taken"]


@pytest.mark.parametrize("name", ALL_NAMES)
def test_factory_builds_each_predictor(name):
    predictor = make_predictor(name)
    predictor.update(0x1000, True)
    assert predictor.predictions == 1


def test_factory_rejects_unknown_names():
    with pytest.raises(ValueError):
        make_predictor("tage")


@pytest.mark.parametrize("name", ["perceptron", "gshare", "bimodal"])
def test_learns_strongly_biased_branch(name):
    predictor = make_predictor(name)
    for _ in range(200):
        predictor.update(0x4000, True)
    predictor.reset_stats()
    for _ in range(100):
        predictor.update(0x4000, True)
    assert predictor.accuracy >= 0.99


@pytest.mark.parametrize("name", ["perceptron", "gshare"])
def test_learns_alternating_pattern(name):
    """History-based predictors must learn a period-2 pattern perfectly."""
    predictor = make_predictor(name)
    for i in range(400):
        predictor.update(0x4000, i % 2 == 0)
    predictor.reset_stats()
    for i in range(100):
        predictor.update(0x4000, i % 2 == 0)
    assert predictor.accuracy >= 0.98


def test_bimodal_cannot_learn_alternation():
    predictor = BimodalPredictor()
    for i in range(400):
        predictor.update(0x4000, i % 2 == 0)
    assert predictor.accuracy <= 0.75


def test_perceptron_beats_random_on_correlated_branches():
    """Branch B repeats the outcome of branch A — a correlation only a
    history-based predictor can exploit."""
    rng = random.Random(42)
    perceptron = PerceptronPredictor()
    bimodal = BimodalPredictor()
    for _ in range(2000):
        outcome = rng.random() < 0.5
        for predictor in (perceptron, bimodal):
            predictor.update(0x100, outcome)
            predictor.update(0x200, outcome)
    assert perceptron.accuracy > bimodal.accuracy + 0.15


def test_perceptron_threshold_formula():
    predictor = PerceptronPredictor(history_length=24)
    assert predictor.threshold == int(1.93 * 24 + 14)


def test_perceptron_weights_saturate():
    predictor = PerceptronPredictor(num_perceptrons=4, history_length=4, weight_bits=4)
    for _ in range(1000):
        predictor.update(0x0, True)
    weights = predictor._weights[predictor._index(0x0)]
    assert all(-8 <= w <= 7 for w in weights)


def test_perceptron_validates_arguments():
    with pytest.raises(ValueError):
        PerceptronPredictor(num_perceptrons=100)  # not a power of two
    with pytest.raises(ValueError):
        PerceptronPredictor(history_length=0)


def test_gshare_validates_arguments():
    with pytest.raises(ValueError):
        GSharePredictor(table_bits=8, history_length=10)


def test_static_predictors():
    taken = AlwaysTakenPredictor()
    never = NeverTakenPredictor()
    assert taken.predict(0x0) is True
    assert never.predict(0x0) is False
    taken.update(0x0, False)
    assert taken.mispredictions == 1
    never.update(0x0, False)
    assert never.mispredictions == 0


def test_accuracy_without_predictions_is_one():
    assert PerceptronPredictor().accuracy == 1.0


def test_reset_stats_keeps_learned_state():
    predictor = PerceptronPredictor()
    for _ in range(200):
        predictor.update(0x4000, True)
    predictor.reset_stats()
    assert predictor.predictions == 0
    assert predictor.predict(0x4000) is True


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 1 << 20), st.booleans()), min_size=1, max_size=200)
)
def test_property_stats_always_consistent(events):
    """For any update sequence: mispredictions <= predictions, and accuracy
    stays within [0, 1]."""
    predictor = PerceptronPredictor(num_perceptrons=16, history_length=8)
    for pc, taken in events:
        predictor.update(pc, taken)
    assert 0 <= predictor.mispredictions <= predictor.predictions == len(events)
    assert 0.0 <= predictor.accuracy <= 1.0
