"""The predictor spec grammar: canonical forms and error paths.

``canonical_predictor`` is what the ``ooo-bp``/``dual`` configs store (and
therefore what the result store fingerprints), so equivalent spellings
must canonicalize identically and every malformed spelling must raise a
:class:`SpecError` that names the grammar.
"""

import pytest

from repro.branch import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    GSharePredictor,
    NeverTakenPredictor,
    OraclePredictor,
    PerceptronPredictor,
)
from repro.branch.spec import (
    PREDICTOR_GRAMMAR,
    canonical_predictor,
    parse_predictor,
)
from repro.grammar import SpecError

CANONICAL = [
    ("perceptron", "perceptron"),
    ("Perceptron-64", "perceptron-64"),
    ("perceptron-64-16", "perceptron-64-16"),
    ("gshare", "gshare"),
    ("gshare-14", "gshare-14"),
    ("GSHARE-14-10", "gshare-14-10"),
    ("bimodal-10", "bimodal-10"),
    ("oracle", "oracle"),
    ("  Oracle ", "oracle"),
    ("static", "always-taken"),  # the traditional lower-bound name
    ("always-taken", "always-taken"),
    ("never-taken", "never-taken"),
]


@pytest.mark.parametrize("spec,canonical", CANONICAL, ids=[s for s, _ in CANONICAL])
def test_canonical_forms(spec, canonical):
    assert canonical_predictor(spec) == canonical
    # Canonicalization is idempotent — the stored form re-validates.
    assert canonical_predictor(canonical) == canonical


def test_parse_builds_parameterized_instances():
    gshare = parse_predictor("gshare-14")
    assert isinstance(gshare, GSharePredictor)
    # One number sets both: a 2^14-entry table with 14 history bits.
    assert (gshare.table_bits, gshare.history_length) == (14, 14)
    split = parse_predictor("gshare-14-10")
    assert (split.table_bits, split.history_length) == (14, 10)
    perceptron = parse_predictor("perceptron-64-16")
    assert isinstance(perceptron, PerceptronPredictor)
    assert (perceptron.num_perceptrons, perceptron.history_length) == (64, 16)
    assert isinstance(parse_predictor("bimodal-8"), BimodalPredictor)
    assert isinstance(parse_predictor("oracle"), OraclePredictor)
    assert isinstance(parse_predictor("static"), AlwaysTakenPredictor)
    assert isinstance(parse_predictor("never-taken"), NeverTakenPredictor)


BAD_SPECS = [
    ("", "empty spec"),
    ("   ", "empty spec"),
    ("tage", "unknown predictor"),
    ("gshare-x", "not a positive integer"),
    ("gshare-0", "not a positive integer"),
    ("gshare--14", "not a positive integer"),
    ("gshare-14-16", "history_length cannot exceed table_bits"),
    ("gshare-14-10-2", "at most 2 numeric"),
    ("perceptron-100", "power of two"),  # constructor-level validation
    ("perceptron-64-0", "not a positive integer"),
    ("bimodal-3-4", "at most 1 numeric"),
    ("oracle-2", "unknown predictor"),  # fixed names take no parameters
    ("always-taken-1", "unknown predictor"),
]


@pytest.mark.parametrize(
    "spec,why", BAD_SPECS, ids=[repr(s) for s, _ in BAD_SPECS]
)
def test_malformed_specs_raise_and_name_the_grammar(spec, why):
    for fn in (canonical_predictor, parse_predictor):
        with pytest.raises(SpecError) as excinfo:
            fn(spec)
        message = str(excinfo.value)
        assert why in message, f"{fn.__name__}({spec!r}): {message}"
        assert PREDICTOR_GRAMMAR in message


def test_error_names_the_offending_spec():
    with pytest.raises(SpecError, match=r"'tage'"):
        canonical_predictor("tage")
