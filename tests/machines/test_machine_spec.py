"""Spec grammar: every spec string must equal its dataclass twin.

The contract the store depends on: a machine built from a spec string is
*the same value* as the dataclass the figure harnesses construct — equal
fields, equal name, and therefore a bit-identical store fingerprint.
"""

import json

import pytest

from repro.baselines.dual import DualConfig
from repro.baselines.ooobp import OooBpConfig
from repro.machines import (
    apply_params,
    get_preset,
    parse_machine,
    parse_memory,
    split_specs,
    load_spec_file,
)
from repro.memory.configs import DEFAULT_MEMORY, KB, MB, TABLE1_CONFIGS
from repro.sim.config import (
    DKIP_2048,
    KILO_1024,
    R10_256,
    R10_64,
    LimitMachine,
    RunaheadConfig,
    SchedulerPolicy,
)

EQUIVALENCE = [
    ("r10", R10_64),
    ("R10-64", R10_64),
    ("r10-64", R10_64),  # presets resolve case-insensitively
    ("r10(rob=64)", R10_64),
    ("r10(rob=256,iq=160)", R10_256),
    ("R10-256", R10_256),
    ("kilo", KILO_1024),
    ("kilo(sliq=1024)", KILO_1024),
    ("KILO-1024", KILO_1024),
    ("dkip", DKIP_2048),
    ("dkip(llib=2048)", DKIP_2048),
    ("D-KIP-2048", DKIP_2048),
    ("dkip(cp=OOO-60)", DKIP_2048.with_cp("OOO-60")),
    ("dkip(cp=ooo-60)", DKIP_2048.with_cp("OOO-60")),  # values upper-case
    ("dkip(cp=INO,mp=OOO-40)", DKIP_2048.with_cp("INO").with_mp("OOO-40")),
    ("limit", LimitMachine()),
    ("limit(rob=inf)", LimitMachine()),
    ("limit(rob=64)", LimitMachine(rob_size=64)),
    ("limit(rob=64,histogram=off)", LimitMachine(rob_size=64, record_histogram=False)),
    ("runahead", RunaheadConfig()),
    ("runahead-64", RunaheadConfig()),
    (
        "ooo-bp(bp=gshare-14)",
        OooBpConfig(
            name="OOO-BP-64-gshare-14",
            rob_size=64,
            iq_int=40,
            iq_fp=40,
            predictor="gshare-14",
        ),
    ),
    (
        # Equivalent spellings canonicalize: static == always-taken.
        "ooo-bp(bp=static)",
        OooBpConfig(
            name="OOO-BP-64-always-taken",
            rob_size=64,
            iq_int=40,
            iq_fp=40,
            predictor="always-taken",
        ),
    ),
    ("OOO-BP-64-oracle", OooBpConfig(
        name="OOO-BP-64-oracle",
        rob_size=64,
        iq_int=40,
        iq_fp=40,
        predictor="oracle",
    )),
    ("dual", DualConfig()),
    ("dual()", DualConfig()),
    ("DUAL-64", DualConfig()),
    (
        "dual(co=synth(chase=12,footprint=1M))",
        DualConfig(name="DUAL-64+synth(chase=12,footprint=1M)",
                   co="synth(chase=12,footprint=1M)"),
    ),
]


@pytest.mark.parametrize("spec,twin", EQUIVALENCE, ids=[s for s, _ in EQUIVALENCE])
def test_spec_equals_dataclass_twin(spec, twin):
    config = parse_machine(spec)
    assert config == twin
    assert config.fingerprint() == twin.fingerprint()


def test_spec_machines_name_themselves():
    assert parse_machine("r10(rob=128)").name == "R10-128"
    assert parse_machine("kilo(sliq=2048)").name == "KILO-2048"
    assert parse_machine("dkip(llib=8192)").name == "D-KIP-8192"
    assert parse_machine("limit(rob=256)").name == "limit-rob-256"
    assert parse_machine("runahead(rob=128)").name == "runahead-128"
    assert parse_machine("r10(rob=32,name=tiny)").name == "tiny"


def test_spec_whitespace_and_extras():
    assert parse_machine("  r10( rob = 256 , iq = 160 )  ") == R10_256
    wide = parse_machine("r10(width=8)")
    assert (wide.fetch_width, wide.issue_width) == (8, 8)
    ino = parse_machine("r10(sched=ino)")
    assert ino.scheduler == SchedulerPolicy.IN_ORDER


def test_preset_spec_strings_round_trip():
    """Each preset's documented spec string parses back to its config."""
    for name in ("R10-64", "R10-256", "KILO-1024", "D-KIP-2048",
                 "limit-rob-inf", "runahead-64", "OOO-BP-64-gshare-14",
                 "OOO-BP-64-oracle", "DUAL-64", "DUAL-64-contended"):
        preset = get_preset(name)
        assert preset is not None
        assert parse_machine(preset.spec) == preset.config


def test_split_specs_respects_parens():
    assert split_specs("r10,dkip(llib=4096,cp=OOO-60),kilo") == [
        "r10",
        "dkip(llib=4096,cp=OOO-60)",
        "kilo",
    ]


def test_apply_params_merges_and_overrides():
    assert apply_params("dkip(cp=INO)", {"llib": "4096"}) == "dkip(cp=INO,llib=4096)"
    assert apply_params("dkip(llib=1024)", {"llib": "4096"}) == "dkip(llib=4096)"
    # Presets resolve through their equivalent spec string first.
    assert parse_machine(apply_params("R10-64", {"rob": "128"})).rob_size == 128


def test_parse_memory_presets_and_grammar():
    assert parse_memory("default") is DEFAULT_MEMORY
    assert parse_memory("MEM-400") is TABLE1_CONFIGS["MEM-400"]
    assert parse_memory("mem-1000") is TABLE1_CONFIGS["MEM-1000"]
    assert parse_memory("mem(lat=800)") == DEFAULT_MEMORY.with_mem_latency(800)
    assert parse_memory("mem(l2=1M)") == DEFAULT_MEMORY.with_l2_size(1 * MB)
    assert parse_memory("mem(l2=64K)") == DEFAULT_MEMORY.with_l2_size(64 * KB)
    combo = parse_memory("mem(lat=800,l2=1M,name=hot)")
    assert combo.mem_latency == 800 and combo.l2_size == 1 * MB
    assert combo.name == "hot"
    perfect = parse_memory("mem(lat=inf)")
    assert perfect.mem_latency is None


def test_load_spec_file_toml_and_json(tmp_path):
    toml = tmp_path / "s.toml"
    toml.write_text(
        'machines = ["dkip"]\nworkloads = ["swim"]\n[axes]\nllib = [1024, 2048]\n'
    )
    data = load_spec_file(toml)
    assert data["machines"] == ["dkip"]
    assert data["axes"]["llib"] == [1024, 2048]

    jsn = tmp_path / "s.json"
    jsn.write_text(json.dumps({"machines": ["r10"], "memory": ["MEM-400"]}))
    data = load_spec_file(jsn)
    assert data["memory"] == ["MEM-400"]
