"""The machine-kind registry: construction goes through one table."""

import pytest

from repro.baselines.kilo import KiloCore
from repro.baselines.limit import LimitCore
from repro.baselines.ooo import R10Core
from repro.baselines.runahead import RunaheadCore
from repro.branch import make_predictor
from repro.core.dkip import DkipProcessor
from repro.machines import build_machine, get_kind, kind_of, machine_kinds
from repro.memory import DEFAULT_MEMORY, MemoryHierarchy
from repro.sim.config import (
    DKIP_2048,
    KILO_1024,
    R10_64,
    LimitMachine,
    RunaheadConfig,
)
from repro.sim.runner import build_core


def _build(config):
    hierarchy = MemoryHierarchy(DEFAULT_MEMORY)
    return build_machine(config, iter([]), hierarchy, make_predictor("perceptron"))


def test_all_builtin_kinds_registered():
    kinds = machine_kinds()
    assert {"r10", "kilo", "dkip", "runahead", "limit"} <= set(kinds)
    for kind in kinds.values():
        assert kind.grammar and kind.description


def test_build_machine_instantiates_each_kind():
    assert isinstance(_build(R10_64), R10Core)
    assert isinstance(_build(KILO_1024), KiloCore)
    assert isinstance(_build(DKIP_2048), DkipProcessor)
    assert isinstance(_build(RunaheadConfig()), RunaheadCore)
    assert isinstance(_build(LimitMachine(rob_size=64)), LimitCore)


def test_build_core_delegates_to_registry():
    hierarchy = MemoryHierarchy(DEFAULT_MEMORY)
    core = build_core(R10_64, iter([]), hierarchy, make_predictor("perceptron"))
    assert isinstance(core, R10Core)


def test_kind_of_and_get_kind_agree():
    assert kind_of(DKIP_2048) is get_kind("dkip")
    assert kind_of(LimitMachine()) is get_kind("limit")
    assert get_kind("DKIP") is get_kind("dkip")  # case-insensitive


def test_unregistered_config_raises_type_error():
    with pytest.raises(TypeError):
        build_machine(object(), iter([]), None, None)


def test_get_kind_unknown_lists_registered():
    with pytest.raises(ValueError, match="registered kinds"):
        get_kind("z80")


def test_machines_cli_lists_kinds_and_presets(capsys):
    from repro.experiments.cli import main

    assert main(["machines"]) == 0
    out = capsys.readouterr().out
    for expected in ("dkip(", "r10(", "R10-64", "D-KIP-2048", "Figure 9",
                     "sweep presets", "fig9"):
        assert expected in out
