"""Error paths of the spec grammar: every bad spec names its grammar."""

import pytest

from repro.machines import SpecError, parse_machine, parse_memory, split_specs
from repro.machines.spec import load_spec_file


@pytest.mark.parametrize(
    "bad",
    [
        "warp-drive",                # unknown kind, not a preset
        "r10(rob=64",                # unbalanced parens
        "r10(rob)",                  # missing value
        "r10(=64)",                  # missing key
        "r10(rob=64,rob=128)",       # duplicate key
        "r10(flux=9)",               # unknown parameter
        "r10(rob=0)",                # zero count
        "r10(rob=-4)",               # negative count
        "r10(rob=lots)",             # non-numeric count
        "r10(sched=maybe)",          # bad enum value
        "dkip(cp=OOO-0)",            # queue grammar: zero size
        "dkip(cp=OOO--5)",           # queue grammar: negative size
        "dkip(mp=FAST)",             # queue grammar: unknown word
        "limit(histogram=perhaps)",  # bad boolean
        "kilo(sliq=12.5)",           # non-integer count
    ],
)
def test_bad_machine_specs_raise(bad):
    with pytest.raises(ValueError):
        parse_machine(bad)


def test_unknown_kind_lists_alternatives():
    with pytest.raises(ValueError, match="dkip"):
        parse_machine("warp-drive")


def test_unknown_parameter_names_grammar():
    with pytest.raises(ValueError, match=r"grammar: r10\("):
        parse_machine("r10(flux=9)")


def test_queue_error_propagates_with_grammar():
    with pytest.raises(ValueError, match="OOO-"):
        parse_machine("dkip(cp=OOO-0)")


@pytest.mark.parametrize(
    "bad",
    [
        "MEM-9000",          # not a Table-1 name
        "cache(lat=1)",      # unknown spec kind
        "mem(lat=0)",        # zero latency
        "mem(l2=-1M)",       # negative size
        "mem(warp=1)",       # unknown key
    ],
)
def test_bad_memory_specs_raise(bad):
    with pytest.raises(SpecError):
        parse_memory(bad)


def test_split_specs_rejects_unbalanced():
    with pytest.raises(SpecError):
        split_specs("dkip(llib=4096")
    with pytest.raises(SpecError):
        split_specs("dkip)llib=4096(")


def test_spec_file_rejects_unknown_suffix(tmp_path):
    path = tmp_path / "scenario.yaml"
    path.write_text("machines: [r10]\n")
    with pytest.raises(SpecError, match=".toml or .json"):
        load_spec_file(path)
