"""Error paths of the spec grammar: every bad spec names its grammar."""

import pytest

from repro.machines import SpecError, parse_machine, parse_memory, split_specs
from repro.machines.spec import load_spec_file


@pytest.mark.parametrize(
    "bad",
    [
        "warp-drive",                # unknown kind, not a preset
        "r10(rob=64",                # unbalanced parens
        "r10(rob)",                  # missing value
        "r10(=64)",                  # missing key
        "r10(rob=64,rob=128)",       # duplicate key
        "r10(flux=9)",               # unknown parameter
        "r10(rob=0)",                # zero count
        "r10(rob=-4)",               # negative count
        "r10(rob=lots)",             # non-numeric count
        "r10(sched=maybe)",          # bad enum value
        "dkip(cp=OOO-0)",            # queue grammar: zero size
        "dkip(cp=OOO--5)",           # queue grammar: negative size
        "dkip(mp=FAST)",             # queue grammar: unknown word
        "limit(histogram=perhaps)",  # bad boolean
        "kilo(sliq=12.5)",           # non-integer count
        "ooo-bp(bp=tage)",           # unknown predictor family
        "ooo-bp(bp=gshare-x)",       # non-numeric predictor parameter
        "ooo-bp(bp=gshare-14-16)",   # history exceeds table bits
        "ooo-bp(bp=perceptron-100)", # rows not a power of two
        "ooo-bp(bp=)",               # empty predictor spec
        "ooo-bp(flux=1)",            # unknown parameter
        "ooo-bp(sched=fast)",        # bad enum value
        "dual(co=warp(x=1))",        # co-runner isn't a workload spec
        "dual(co=synth(stream=0))",  # bad parameter inside the co spec
        "dual(l2ports=0)",           # arbiter needs at least one port
        "dual(l2busy=-1)",           # negative port occupancy
        "dual(bp=bogus-3)",          # unknown predictor on the dual axis
        "dual(coseed=-1)",           # negative seed
        "dual(turbo=1)",             # unknown parameter
    ],
)
def test_bad_machine_specs_raise(bad):
    with pytest.raises(ValueError):
        parse_machine(bad)


def test_unknown_kind_lists_alternatives():
    with pytest.raises(ValueError, match="dkip"):
        parse_machine("warp-drive")


def test_unknown_parameter_names_grammar():
    with pytest.raises(ValueError, match=r"grammar: r10\("):
        parse_machine("r10(flux=9)")


def test_queue_error_propagates_with_grammar():
    with pytest.raises(ValueError, match="OOO-"):
        parse_machine("dkip(cp=OOO-0)")


def test_bad_bp_names_ooobp_and_predictor_grammars():
    """A malformed bp= names both the machine grammar and the predictor
    grammar it delegates to."""
    with pytest.raises(SpecError, match=r"grammar: ooo-bp\(") as excinfo:
        parse_machine("ooo-bp(bp=tage)")
    assert "perceptron[-ENTRIES" in str(excinfo.value)
    with pytest.raises(SpecError, match=r"grammar: dual\("):
        parse_machine("dual(bp=tage)")


def test_bad_co_runner_names_dual_and_workload_grammars():
    """A malformed co= chains the workload error under the dual grammar."""
    with pytest.raises(SpecError, match=r"grammar: dual\(") as excinfo:
        parse_machine("dual(co=warp(x=1))")
    message = str(excinfo.value)
    assert "bad co-runner" in message
    assert "warp" in message


def test_unknown_dual_parameter_names_grammar():
    with pytest.raises(SpecError, match=r"grammar: dual\("):
        parse_machine("dual(turbo=1)")
    with pytest.raises(SpecError, match=r"grammar: ooo-bp\("):
        parse_machine("ooo-bp(flux=1)")


@pytest.mark.parametrize(
    "bad",
    [
        "MEM-9000",          # not a Table-1 name
        "cache(lat=1)",      # unknown spec kind
        "mem(lat=0)",        # zero latency
        "mem(l2=-1M)",       # negative size
        "mem(warp=1)",       # unknown key
    ],
)
def test_bad_memory_specs_raise(bad):
    with pytest.raises(SpecError):
        parse_memory(bad)


def test_split_specs_rejects_unbalanced():
    with pytest.raises(SpecError):
        split_specs("dkip(llib=4096")
    with pytest.raises(SpecError):
        split_specs("dkip)llib=4096(")


def test_spec_file_rejects_unknown_suffix(tmp_path):
    path = tmp_path / "scenario.yaml"
    path.write_text("machines: [r10]\n")
    with pytest.raises(SpecError, match=".toml or .json"):
        load_spec_file(path)
