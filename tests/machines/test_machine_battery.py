"""Registry-driven determinism battery over every machine kind.

Unlike the per-feature suites, this battery iterates the machine-kind
registry itself: adding a kind without adding example specs here fails
loudly (``test_every_kind_has_examples``), so new machines cannot dodge
the determinism contract.  For every example of every kind it enforces:

* same-seed bit-identity — two independent ``simulate`` runs on fresh
  hierarchies agree on *every* ``SimStats`` field;
* parse determinism — one spec string always parses to the same config
  value and the same store fingerprint;
* store round-trip — configs survive JSON serialization bit-exactly
  (equal value, equal fingerprint), so warm store cells stay reachable;
* fingerprint distinctness — no two distinct examples (within or across
  kinds) collide in the result store;
* snapshot/restore — a warmed hierarchy snapshot restored into two fresh
  hierarchies yields bit-identical runs.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.machines import parse_machine
from repro.machines.registry import kind_of, machine_kinds
from repro.memory import MemoryHierarchy, warm_caches
from repro.memory.configs import TABLE1_CONFIGS
from repro.sim.runner import simulate
from repro.sim.stats import SimStats
from repro.store.serialize import from_jsonable, to_jsonable
from repro.workloads import get_workload

NUM_INSTRUCTIONS = 400
MEMORY = "MEM-100"
WORKLOAD = "mcf"

#: Example spec strings per registered kind.  Every registered kind MUST
#: appear here — the battery fails loudly otherwise.  Parameters are
#: deliberately non-default so the examples also exercise each kind's
#: parse hook.
KIND_EXAMPLES: dict[str, tuple[str, ...]] = {
    "r10": ("r10(rob=32)",),
    "kilo": ("kilo(sliq=256)",),
    "runahead": ("runahead(rob=32)",),
    "dkip": ("dkip(llib=512)",),
    "limit": ("limit(rob=64)",),
    "ooo-bp": (
        "ooo-bp(bp=gshare-10,rob=32)",
        "ooo-bp(bp=oracle,rob=32)",
    ),
    "dual": (
        "dual(rob=32)",
        "dual(rob=32,co=synth(chase=4),bp=gshare-10)",
    ),
}

ALL_EXAMPLES = [
    (kind, spec) for kind, specs in KIND_EXAMPLES.items() for spec in specs
]
EXAMPLE_IDS = [spec for _, spec in ALL_EXAMPLES]


def examples_for(kind_name: str) -> tuple[str, ...]:
    examples = KIND_EXAMPLES.get(kind_name)
    assert examples, (
        f"machine kind {kind_name!r} is registered but has no examples in "
        "KIND_EXAMPLES — every kind must pass the determinism battery; add "
        "at least one spec string for it in tests/machines/test_machine_battery.py"
    )
    return examples


def fresh_hierarchy(workload) -> MemoryHierarchy:
    hierarchy = MemoryHierarchy(TABLE1_CONFIGS[MEMORY])
    warm_caches(hierarchy, workload.regions)
    return hierarchy


def run_stats(config, hierarchy=None) -> SimStats:
    workload = get_workload(WORKLOAD)
    trace = workload.trace(NUM_INSTRUCTIONS)
    if hierarchy is None:
        hierarchy = fresh_hierarchy(workload)
    return simulate(config, trace, hierarchy=hierarchy)


def stats_diff(a: SimStats, b: SimStats) -> dict:
    return {
        f.name: (getattr(a, f.name), getattr(b, f.name))
        for f in dataclasses.fields(SimStats)
        if getattr(a, f.name) != getattr(b, f.name)
    }


# ----------------------------------------------------------------------
# Coverage: the registry drives the battery, not the other way around
# ----------------------------------------------------------------------


def test_every_kind_has_examples():
    """Registering a machine kind without battery examples fails here."""
    for name in sorted(machine_kinds()):
        examples_for(name)


def test_no_stale_examples():
    """Examples for kinds that no longer exist are a sign of rot."""
    registered = set(machine_kinds())
    stale = set(KIND_EXAMPLES) - registered
    assert not stale, f"KIND_EXAMPLES covers unregistered kinds: {sorted(stale)}"


@pytest.mark.parametrize("kind_name", sorted(KIND_EXAMPLES))
def test_examples_parse_to_their_kind(kind_name):
    for spec in examples_for(kind_name):
        config = parse_machine(spec)
        assert kind_of(config).name == kind_name


# ----------------------------------------------------------------------
# Determinism: same seed, same bits
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kind_name,spec", ALL_EXAMPLES, ids=EXAMPLE_IDS)
def test_same_seed_bit_identity(kind_name, spec):
    """Two independent runs of the same spec agree on every statistic."""
    first = run_stats(parse_machine(spec))
    second = run_stats(parse_machine(spec))
    mismatches = stats_diff(first, second)
    assert not mismatches, f"{spec} diverged across same-seed runs: {mismatches}"
    assert first.committed == NUM_INSTRUCTIONS


@pytest.mark.parametrize("kind_name,spec", ALL_EXAMPLES, ids=EXAMPLE_IDS)
def test_parse_determinism_and_fingerprint_stability(kind_name, spec):
    """One spec string: one config value, one store fingerprint."""
    a = parse_machine(spec)
    b = parse_machine(spec)
    assert a == b
    assert a.fingerprint() == b.fingerprint()


@pytest.mark.parametrize("kind_name,spec", ALL_EXAMPLES, ids=EXAMPLE_IDS)
def test_store_serialize_round_trip(kind_name, spec):
    """Configs survive the store's JSON (de)serializer bit-exactly."""
    config = parse_machine(spec)
    revived = from_jsonable(json.loads(json.dumps(to_jsonable(config))))
    assert revived == config
    assert revived.fingerprint() == config.fingerprint()


def test_fingerprints_distinct_across_examples():
    """No two battery examples share a store cell."""
    fingerprints = {}
    for kind_name, spec in ALL_EXAMPLES:
        fp = parse_machine(spec).fingerprint()
        assert fp not in fingerprints, (
            f"fingerprint collision: {spec!r} and {fingerprints[fp]!r}"
        )
        fingerprints[fp] = spec


def test_predictor_axis_changes_fingerprint():
    """The bp axis is part of machine identity — a gshare and an oracle
    ooo-bp (and the equivalent r10) must occupy distinct store cells."""
    gshare = parse_machine("ooo-bp(bp=gshare-10,rob=32)")
    oracle = parse_machine("ooo-bp(bp=oracle,rob=32)")
    r10 = parse_machine("r10(rob=32)")
    assert len({gshare.fingerprint(), oracle.fingerprint(), r10.fingerprint()}) == 3


def test_co_runner_axis_changes_fingerprint():
    solo = parse_machine("dual(rob=32)")
    contended = parse_machine("dual(rob=32,co=synth(chase=4))")
    assert solo.fingerprint() != contended.fingerprint()


# ----------------------------------------------------------------------
# Snapshot/restore: warmed hierarchy state round-trips bit-exactly
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kind_name,spec", ALL_EXAMPLES, ids=EXAMPLE_IDS)
def test_snapshot_restore_round_trip(kind_name, spec):
    """Runs from two restores of one warmed-hierarchy snapshot are
    bit-identical (the WarmupCache reuse path)."""
    workload = get_workload(WORKLOAD)
    snapshot = fresh_hierarchy(workload).snapshot()
    config = parse_machine(spec)

    def restored_run() -> SimStats:
        hierarchy = MemoryHierarchy(TABLE1_CONFIGS[MEMORY])
        hierarchy.restore(snapshot)
        return run_stats(config, hierarchy=hierarchy)

    mismatches = stats_diff(restored_run(), restored_run())
    assert not mismatches, (
        f"{spec} diverged across snapshot restores: {mismatches}"
    )
