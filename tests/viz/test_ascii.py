"""Unit tests for the ASCII chart renderers."""

from repro.viz import bar_chart, histogram_chart, line_chart, table


def test_table_alignment_and_title():
    text = table(["name", "ipc"], [["swim", 2.061], ["mcf", 0.05]], title="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert "swim" in text and "2.061" in text
    # all rows aligned to equal width
    assert len(set(len(l) for l in lines[1:])) <= 2


def test_bar_chart_scales_to_peak():
    text = bar_chart({"a": 1.0, "b": 2.0}, width=10)
    a_line = next(l for l in text.splitlines() if l.startswith("a"))
    b_line = next(l for l in text.splitlines() if l.startswith("b"))
    assert b_line.count("#") == 10
    assert a_line.count("#") == 5


def test_bar_chart_empty_and_zero():
    assert bar_chart({}, title="nothing") == "nothing"
    text = bar_chart({"x": 0.0})
    assert "0.000" in text


def test_line_chart_contains_markers_and_legend():
    text = line_chart({"s1": [(1, 1.0), (2, 2.0)], "s2": [(1, 2.0), (2, 1.0)]})
    assert "*" in text and "o" in text
    assert "s1" in text and "s2" in text


def test_line_chart_log_axis_label():
    text = line_chart({"s": [(32, 1.0), (4096, 2.0)]}, logx=True)
    assert "log2" in text


def test_line_chart_empty():
    assert line_chart({}, title="t") == "t"


def test_histogram_chart_percentages():
    text = histogram_chart([(0, 75), (400, 25)], bin_width=25, total=100)
    assert "75.0%" in text and "25.0%" in text


def test_histogram_chart_truncates_long_tails():
    bins = [(i * 25, 1) for i in range(100)]
    text = histogram_chart(bins, bin_width=25, total=100, max_bins=10)
    assert "beyond" in text
