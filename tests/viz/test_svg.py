"""Unit tests for the SVG chart renderers."""

import xml.etree.ElementTree as ET

import pytest

from repro.viz import grouped_bar_chart_svg, line_chart_svg

LINE_SERIES = {
    "MEM-400": [(32, 0.57), (128, 1.08), (1024, 2.50), (4096, 3.06)],
    "L1-2": [(32, 3.98), (4096, 3.98)],
}
BAR_GROUPS = {
    "SpecINT": {"R10-64": 1.19, "D-KIP-2048": 1.33},
    "SpecFP": {"R10-64": 1.26, "D-KIP-2048": 2.37},
}


def _parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


def _by_class(root: ET.Element, cls: str) -> list[ET.Element]:
    return [el for el in root.iter() if el.get("class") == cls]


def test_line_chart_is_valid_xml_with_one_polyline_per_series():
    root = _parse(line_chart_svg(LINE_SERIES, title="t", logx=True))
    assert root.tag.endswith("svg")
    assert len(_by_class(root, "series")) == len(LINE_SERIES)


def test_line_chart_log_axis_labelled_in_x_label():
    svg = line_chart_svg(LINE_SERIES, x_label="ROB entries", logx=True)
    assert "ROB entries (log2 scale)" in svg
    assert "ROB entries (log2 scale)" not in line_chart_svg(
        LINE_SERIES, x_label="ROB entries"
    )


def test_line_chart_reference_overlay_markers():
    svg = line_chart_svg(
        LINE_SERIES,
        reference={"MEM-400": [(32, 0.5), (4096, 3.2)]},
        logx=True,
    )
    root = _parse(svg)
    overlays = _by_class(root, "ref-overlay")
    # One dashed polyline plus one open marker per reference point.
    assert len([el for el in overlays if el.tag.endswith("polyline")]) == 1
    assert len([el for el in overlays if el.tag.endswith("circle")]) == 2
    assert "(paper)" in svg  # legend names the overlay


def test_line_chart_escapes_markup_in_names():
    svg = line_chart_svg({"<a&b>": [(1, 1.0), (2, 2.0)]}, title='x < y & "z"')
    root = _parse(svg)  # would raise on unescaped markup
    assert "<a&b>" not in svg
    assert any("<a&b>" in (el.text or "") for el in root.iter())


def test_line_chart_empty_input_degrades_to_stub():
    root = _parse(line_chart_svg({}, title="nothing"))
    assert root.tag.endswith("svg")
    assert "nothing" in ET.tostring(root, encoding="unicode")


def test_line_chart_rejects_nonpositive_x_only_when_log():
    # log2 axis with x <= 0 would be a domain error; plain axis is fine.
    series = {"s": [(0, 1.0), (1, 2.0)]}
    _parse(line_chart_svg(series))
    with pytest.raises(ValueError):
        line_chart_svg(series, logx=True)


def test_bar_chart_is_valid_xml_with_one_rect_per_value():
    root = _parse(grouped_bar_chart_svg(BAR_GROUPS, title="fig9"))
    bars = _by_class(root, "bar")
    assert len(bars) == 4
    heights = [float(el.get("height")) for el in bars]
    assert max(heights) > 0


def test_bar_chart_reference_markers_only_on_matching_bars():
    reference = {("SpecFP", "D-KIP-2048"): 2.37, ("SpecINT", "R10-64"): 1.19}
    root = _parse(grouped_bar_chart_svg(BAR_GROUPS, reference=reference))
    assert len(_by_class(root, "ref-marker")) == len(reference)


def test_bar_chart_reference_extends_y_range():
    # A paper value far above every measured bar must stay inside the frame.
    svg = grouped_bar_chart_svg(
        {"g": {"s": 1.0}}, reference={("g", "s"): 10.0}
    )
    root = _parse(svg)
    (marker,) = _by_class(root, "ref-marker")
    (bar,) = _by_class(root, "bar")
    assert float(marker.get("y1")) < float(bar.get("y"))
    assert float(marker.get("y1")) > 0


def test_bar_chart_empty_input_degrades_to_stub():
    root = _parse(grouped_bar_chart_svg({}, title="none"))
    assert root.tag.endswith("svg")


def test_charts_are_deterministic():
    assert line_chart_svg(LINE_SERIES, logx=True) == line_chart_svg(
        LINE_SERIES, logx=True
    )
    assert grouped_bar_chart_svg(BAR_GROUPS) == grouped_bar_chart_svg(BAR_GROUPS)
