"""Golden-file tests: the renderers' exact output is part of the contract.

The reproduction report embeds renderer output verbatim, so formatting
drift is user-visible.  These tests pin small, representative charts;
after an intentional renderer change regenerate with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/viz/test_golden.py
"""

import os
import pathlib

import pytest

from repro.viz import bar_chart, grouped_bar_chart_svg, line_chart_svg, table

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

CASES = {
    "table_basic.txt": lambda: table(
        ["machine", "mean IPC", "speedup"],
        [["R10-64", 1.19, "1.00x"], ["D-KIP-2048", 2.37, "1.99x"]],
        title="fig9: headline comparison",
    ),
    "bar_basic.txt": lambda: bar_chart(
        {"swim": 2.061, "mcf": 0.05, "gcc": 1.4},
        width=30,
        title="IPC per benchmark",
    ),
    "line_svg_basic.svg": lambda: line_chart_svg(
        {
            "MEM-400": [(32, 0.57), (128, 1.08), (1024, 2.50), (4096, 3.06)],
            "L1-2": [(32, 3.98), (4096, 3.98)],
        },
        title="fig2: IPC vs window size",
        x_label="ROB entries",
        y_label="mean IPC",
        logx=True,
        reference={"MEM-400": [(32, 0.5), (4096, 3.2)]},
    ),
    "bars_svg_basic.svg": lambda: grouped_bar_chart_svg(
        {
            "SpecINT": {"R10-64": 1.19, "D-KIP-2048": 1.33},
            "SpecFP": {"R10-64": 1.26, "D-KIP-2048": 2.37},
        },
        title="fig9: mean IPC by machine",
        y_label="mean IPC",
        reference={("SpecFP", "D-KIP-2048"): 2.37},
    ),
}


@pytest.mark.parametrize("filename", sorted(CASES))
def test_golden(filename):
    rendered = CASES[filename]()
    path = GOLDEN_DIR / filename
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(rendered + "\n", encoding="utf-8")
    expected = path.read_text(encoding="utf-8")
    assert rendered + "\n" == expected, (
        f"{filename} drifted; regenerate with REPRO_UPDATE_GOLDEN=1 if "
        "the change is intentional"
    )
