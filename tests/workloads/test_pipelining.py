"""Tests for software-pipelining support and its effect on the traces."""

import pytest

from repro.trace.kernel import Kernel
from repro.workloads import get_workload
from repro.workloads.pipelining import RotatingRegs


def test_rotation_reuses_after_full_cycle():
    k = Kernel()
    rot = RotatingRegs(k, slots=3, per_slot=2)
    assert rot(0) == rot(3) == rot(6)
    assert rot(0) != rot(1) != rot(2)


def test_slots_are_disjoint_register_sets():
    k = Kernel()
    rot = RotatingRegs(k, slots=4, per_slot=3)
    seen = set()
    for slot in range(4):
        regs = set(rot(slot))
        assert not regs & seen
        seen |= regs


def test_int_rotation():
    k = Kernel()
    rot = RotatingRegs(k, slots=2, per_slot=2, fp=False)
    assert all(r < 32 for r in rot(0))


def test_validation():
    k = Kernel()
    with pytest.raises(ValueError):
        RotatingRegs(k, slots=0, per_slot=1)


@pytest.mark.parametrize("name", ["swim", "applu", "mgrid", "art", "wupwise"])
def test_fp_kernels_have_no_adjacent_raw_dependences(name):
    """The property the in-order Memory Processor relies on: in the
    software-pipelined FP kernels, an instruction (almost) never reads the
    destination of its immediate predecessor — dependent pairs sit at
    least a pipeline stage apart."""
    trace = get_workload(name).trace(2_000)
    adjacent_raw = 0
    pairs = 0
    for prev, curr in zip(trace, trace[1:]):
        if prev.dest is None:
            continue
        pairs += 1
        if prev.dest in curr.live_srcs():
            adjacent_raw += 1
    assert adjacent_raw / pairs < 0.05, f"{name}: {adjacent_raw}/{pairs}"


def test_unpipelined_int_kernels_do_chain():
    """By contrast, the pointer chasers carry immediate dependences."""
    trace = get_workload("mcf").trace(2_000)
    adjacent_raw = sum(
        1
        for prev, curr in zip(trace, trace[1:])
        if prev.dest is not None and prev.dest in curr.live_srcs()
    )
    assert adjacent_raw > 50
