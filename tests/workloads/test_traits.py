"""Behavioural trait tests for every synthetic SPEC2000 benchmark.

These tests pin the properties the reproduction depends on: instruction
mixes in plausible ranges, working-set sizes that match each benchmark's
documented footprint class, the presence (or absence) of the signature
pathologies, and suite-level contrasts (FP streams miss more; INT is
branchier).
"""

import pytest

from repro.trace.stream import summarize
from repro.workloads import all_names, get_workload, suite

N = 3_000
KB = 1024
MB = 1024 * KB


@pytest.fixture(scope="module")
def summaries():
    out = {}
    for name in all_names():
        workload = get_workload(name)
        trace = workload.trace(N)
        out[name] = (workload, summarize(trace))
    return out


@pytest.mark.parametrize("name", all_names())
def test_generator_is_unbounded_and_exact(name):
    workload = get_workload(name)
    assert len(workload.trace(N)) == N


@pytest.mark.parametrize("name", all_names())
def test_load_fraction_plausible(name, summaries):
    _, s = summaries[name]
    assert 0.10 <= s.load_fraction <= 0.50, f"{name}: {s.load_fraction:.2f}"


@pytest.mark.parametrize("name", all_names())
def test_branch_fraction_plausible(name, summaries):
    _, s = summaries[name]
    assert 0.05 <= s.branch_fraction <= 0.35, f"{name}: {s.branch_fraction:.2f}"


@pytest.mark.parametrize("name", all_names())
def test_some_stores_exist(name, summaries):
    _, s = summaries[name]
    if name == "art":  # art's scan phase is read-only
        return
    assert s.stores > 0


@pytest.mark.parametrize("name", all_names())
def test_fp_share_matches_suite(name, summaries):
    workload, s = summaries[name]
    if workload.suite == "fp":
        assert s.fp_fraction >= 0.3, f"{name}: fp share {s.fp_fraction:.2f}"
    else:
        assert s.fp_fraction <= 0.05, f"{name}: fp share {s.fp_fraction:.2f}"


@pytest.mark.parametrize("name", all_names())
def test_footprints_match_documented_class(name, summaries):
    workload, _ = summaries[name]
    footprint = workload.footprint
    small = {"eon", "gzip", "mesa", "sixtrack", "galgel", "perlbmk", "bzip2",
             "facerec", "vpr", "vortex"}
    large = {"mcf", "gcc", "art", "swim", "applu", "ammp", "lucas", "mgrid",
             "wupwise", "fma3d"}
    if name in small:
        assert footprint <= 1 * MB, f"{name}: {footprint}"
    if name in large:
        assert footprint >= 1 * MB, f"{name}: {footprint}"


def test_mcf_has_the_biggest_pointer_arena(summaries):
    mcf, _ = summaries["mcf"]
    assert mcf.footprint >= 3 * MB


@pytest.mark.parametrize("name", all_names())
def test_branches_are_biased_not_degenerate(name, summaries):
    _, s = summaries[name]
    assert 0.4 <= s.taken_rate <= 1.0, f"{name}: taken rate {s.taken_rate:.2f}"


def test_int_suite_is_branchier_than_fp(summaries):
    int_mean = sum(summaries[n][1].branch_fraction for n in suite_names("int"))
    fp_mean = sum(summaries[n][1].branch_fraction for n in suite_names("fp"))
    assert int_mean / 12 > fp_mean / 14


def suite_names(which):
    return [w.name for w in suite(which)]


@pytest.mark.parametrize("name", all_names())
def test_addresses_stay_inside_allocations(name, summaries):
    workload, s = summaries[name]
    lo = min(base for base, _ in workload.regions)
    hi = max(base + size for base, size in workload.regions)
    assert s.min_addr >= lo
    assert s.max_addr <= hi


@pytest.mark.parametrize("name", ["mcf", "gap", "parser"])
def test_pointer_chasers_have_dependent_loads(name):
    """The signature pathology: loads whose base register is itself the
    destination of an earlier load."""
    workload = get_workload(name)
    trace = workload.trace(N)
    load_dests = set()
    dependent = 0
    for instr in trace:
        if instr.is_load:
            if any(src in load_dests for src in instr.live_srcs()):
                dependent += 1
            if instr.dest is not None:
                load_dests.add(instr.dest)
        elif instr.dest is not None:
            load_dests.discard(instr.dest)
    assert dependent > 0, f"{name} should chase pointers"


def test_streaming_fp_misses_with_small_cache():
    """swim's working set defeats a 512KB L2 (the memory-bound archetype)."""
    from repro.memory import DEFAULT_MEMORY, MemoryHierarchy, warm_caches

    workload = get_workload("swim")
    trace = workload.trace(N)
    h = MemoryHierarchy(DEFAULT_MEMORY)
    warm_caches(h, workload.regions)
    for instr in trace:
        if instr.addr is not None:
            h.access(instr.addr, write=instr.is_store, now=0)
    # Streaming brings a steady flow of new lines from memory.
    assert h.memory.accesses > 50
    assert h.l1.miss_rate > 0.05


def test_cache_resident_fp_hits():
    """mesa stays cache resident (the compute-bound archetype)."""
    from repro.memory import DEFAULT_MEMORY, MemoryHierarchy, warm_caches

    workload = get_workload("mesa")
    trace = workload.trace(N)
    h = MemoryHierarchy(DEFAULT_MEMORY)
    warm_caches(h, workload.regions)
    misses = 0
    for instr in trace:
        if instr.addr is not None:
            _, level = h.access(instr.addr, write=instr.is_store, now=0)
            misses += level == 3
    assert misses < 20
