"""Error paths of the workload grammar: every bad spec names its grammar.

Mirrors ``tests/machines/test_machine_errors.py`` for the workload side:
unknown kinds, bad trait values and missing trace files must raise
:class:`repro.grammar.SpecError` with the offending kind's grammar
string in the message, so a CLI user can fix the spec without reading
source.
"""

import pytest

from repro.grammar import SpecError
from repro.workloads import (
    apply_workload_params,
    get_workload,
    parse_workload,
    parse_workloads,
)
from repro.workloads.synth import SynthWorkload
from repro.workloads.tracefile import TraceFileWorkload


@pytest.mark.parametrize(
    "bad",
    [
        "quake3",                      # unknown kind, not a benchmark
        "linpack(n=100)",              # unknown kind with params
        "synth(chase=8",               # unbalanced parens
        "synth(chase)",                # missing value
        "synth(=8)",                   # missing key
        "synth(chase=8,chase=4)",      # duplicate key
        "synth(warp=9)",               # unknown trait
        "synth(chase=-1)",             # negative count
        "synth(chase=lots)",           # non-numeric count
        "synth(chase=90)",             # above the register-budget cap
        "synth(br=2)",                 # fraction out of range
        "synth(br=maybe)",             # non-numeric fraction
        "synth(stores=-0.1)",          # negative fraction
        "synth(ilp=0)",                # zero strand count
        "synth(ilp=12)",               # above cap
        "synth(mlp=0)",                # zero stream count
        "synth(stride=0)",             # zero stride
        "synth(footprint=0)",          # zero size
        "synth(footprint=1K)",         # below the 4K minimum
        "synth(footprint=inf)",        # sizes must be finite
        "synth(fp=perhaps)",           # bad boolean
        "bench()",                     # missing required name
        "bench(name=quake3)",          # unknown benchmark
        "bench(title=mcf)",            # unknown parameter
        "trace()",                     # missing required file
        "trace(file=/no/such/file.trc)",   # missing trace file
        "trace(file=/tmp/x.trc,mode=fast)",  # unknown parameter
    ],
)
def test_bad_workload_specs_raise_spec_error(bad):
    with pytest.raises(SpecError):
        parse_workload(bad)


def test_unknown_workload_lists_kinds_and_benchmarks():
    with pytest.raises(SpecError, match="synth") as excinfo:
        parse_workload("quake3")
    message = str(excinfo.value)
    assert "trace" in message and "mcf" in message


@pytest.mark.parametrize(
    "bad,grammar_fragment",
    [
        ("synth(warp=9)", r"grammar: synth\("),
        ("synth(chase=-1)", r"grammar: synth\("),
        ("synth(br=2)", r"grammar: synth\("),
        ("synth(footprint=1K)", r"grammar: synth\("),
        ("synth(footprint=inf)", r"grammar: synth\("),
        ("bench(name=quake3)", "mcf"),  # lists the real benchmarks
        ("bench()", r"grammar: bench\("),
        ("trace()", r"grammar: trace\("),
        ("trace(file=/no/such/file.trc)", r"grammar: trace\("),
    ],
)
def test_bad_specs_name_their_grammar(bad, grammar_fragment):
    with pytest.raises(SpecError, match=grammar_fragment):
        parse_workload(bad)


def test_missing_trace_file_error_names_the_path():
    with pytest.raises(SpecError, match="/no/such/file.trc"):
        parse_workload("trace(file=/no/such/file.trc)")
    # The class constructor shares the spec-grammar error path.
    with pytest.raises(SpecError, match="does not exist"):
        TraceFileWorkload("/no/such/file.trc")


def test_synth_keyword_twin_shares_the_error_path():
    """Directly-built synth workloads validate like spec-built ones."""
    with pytest.raises(SpecError, match=r"grammar: synth\("):
        SynthWorkload(chase=-1)
    with pytest.raises(SpecError, match=r"grammar: synth\("):
        SynthWorkload(br=1.5)
    with pytest.raises(SpecError, match=r"grammar: synth\("):
        SynthWorkload(mlp=99)


def test_get_workload_still_rejects_plain_unknown_names():
    with pytest.raises(ValueError, match="unknown workload"):
        get_workload("linpack")


def test_parse_workloads_propagates_position_of_bad_spec():
    with pytest.raises(SpecError):
        parse_workloads("mcf,synth(warp=1)")
    with pytest.raises(SpecError, match="unbalanced"):
        parse_workloads("mcf,synth(chase=4")


def test_apply_workload_params_rejects_benchmarks_and_unknown_kinds():
    with pytest.raises(SpecError, match="mcf"):
        apply_workload_params("mcf", {"chase": "4"})
    with pytest.raises(SpecError, match="unknown workload kind"):
        apply_workload_params("quake3(x=1)", {"chase": "4"})
