"""Workload spec grammar: every spec string must equal its class twin.

The contract the store depends on (mirroring
``tests/machines/test_machine_spec.py``): a workload built from a spec
string is *the same value* as the instance built directly — equal
fields, equal name, identical trace, and therefore a bit-identical
store fingerprint and cell key.
"""

import pytest

from repro.memory.configs import DEFAULT_MEMORY
from repro.sim.config import DKIP_2048
from repro.sim.runner import run_core
from repro.store import cell_key
from repro.trace.io import save_trace
from repro.workloads import (
    apply_workload_params,
    get_workload,
    parse_workload,
    parse_workloads,
    workload_kinds,
)
from repro.workloads.specfp import Swim
from repro.workloads.specint import Mcf
from repro.workloads.synth import SynthWorkload
from repro.workloads.tracefile import TraceFileWorkload

KB = 1024
MB = 1024 * KB


def twins():
    """(spec string, directly-built twin) pairs across every kind."""
    return [
        ("mcf", Mcf(seed=0)),
        ("bench(name=mcf)", Mcf(seed=0)),
        ("bench(name=swim)", Swim(seed=0)),
        ("synth", SynthWorkload()),
        ("synth(chase=8)", SynthWorkload(chase=8)),
        ("synth(chase=8,footprint=1M)", SynthWorkload(chase=8, footprint=MB)),
        (
            "synth(footprint=1M,hot=64K,br=0.2,fp=on)",
            SynthWorkload(footprint=MB, hot=64 * KB, br=0.2, fp=True),
        ),
        (
            "synth(mlp=4,ilp=6,stride=3,stores=0.5)",
            SynthWorkload(mlp=4, ilp=6, stride=3, stores=0.5),
        ),
    ]


@pytest.mark.parametrize("spec,twin", twins(), ids=[s for s, _ in twins()])
def test_spec_equals_class_twin(spec, twin):
    workload = parse_workload(spec)
    assert workload.name == twin.name
    assert workload.seed == twin.seed
    assert workload.suite == twin.suite
    assert type(workload) is type(twin)
    assert workload.fingerprint() == twin.fingerprint()
    assert workload.trace(400) == twin.trace(400)


@pytest.mark.parametrize("spec,twin", twins(), ids=[s for s, _ in twins()])
def test_spec_twin_store_cell_keys_are_identical(spec, twin):
    """The acceptance criterion: spec-built workloads produce store
    fingerprints identical to their directly-built twins."""
    spec_key = cell_key(DKIP_2048, parse_workload(spec), 500, DEFAULT_MEMORY)
    twin_key = cell_key(DKIP_2048, twin, 500, DEFAULT_MEMORY)
    assert spec_key.digest == twin_key.digest


@pytest.mark.parametrize("spec,twin", twins(), ids=[s for s, _ in twins()])
def test_canonical_name_round_trips(spec, twin):
    """parse(w.name) rebuilds an identical workload for every kind."""
    workload = parse_workload(spec)
    again = parse_workload(workload.name)
    assert again.name == workload.name
    assert again.fingerprint() == workload.fingerprint()


def test_synth_traits_are_parsed_and_coerced():
    w = parse_workload("synth(footprint=2M,hot=64K,chase=3,br=0.25,fp=yes)")
    assert w.traits["footprint"] == 2 * MB
    assert w.traits["hot"] == 64 * KB
    assert w.traits["chase"] == 3
    assert w.traits["br"] == 0.25
    assert w.traits["fp"] is True
    # Keyword coercion: float counts canonicalize like int counts.
    assert SynthWorkload(chase=3.0).name == SynthWorkload(chase=3).name


def test_synth_default_traits_elide_from_name():
    assert SynthWorkload().name == "synth"
    assert parse_workload("synth(chase=0)").name == "synth"  # default value
    assert SynthWorkload(chase=8, footprint=MB).name == (
        "synth(footprint=1M,chase=8)"
    )


def test_spec_whitespace_and_case():
    assert parse_workload("  synth( chase = 8 )  ").name == "synth(chase=8)"
    assert parse_workload("SYNTH(chase=8)").name == "synth(chase=8)"


def test_parse_workloads_splits_paren_aware():
    loads = parse_workloads("mcf,synth(chase=4,footprint=1M),swim")
    assert [w.name for w in loads] == [
        "mcf", "synth(footprint=1M,chase=4)", "swim",
    ]


def test_seed_is_threaded_through_every_kind():
    assert parse_workload("mcf", seed=7).seed == 7
    assert parse_workload("synth(chase=2)", seed=7).seed == 7
    assert get_workload("synth(chase=2)", seed=7).seed == 7


def test_apply_workload_params_merges_and_overrides():
    assert apply_workload_params("synth(br=0.2)", {"chase": "8"}) == (
        "synth(br=0.2,chase=8)"
    )
    assert apply_workload_params("synth(chase=2)", {"chase": "8"}) == (
        "synth(chase=8)"
    )
    assert apply_workload_params("synth", {}) == "synth"


def test_registry_covers_builtin_kinds():
    kinds = workload_kinds()
    assert {"bench", "synth", "trace"} <= set(kinds)
    for kind in kinds.values():
        assert kind.grammar and kind.description


def test_registry_rejects_unreachable_kind_names():
    """Lookups lowercase the kind word, so registration must too."""
    from repro.workloads.kinds import WorkloadKind, register_workload_kind

    with pytest.raises(ValueError, match="lowercase"):
        register_workload_kind(
            WorkloadKind(name="MyKind", parse=lambda params, seed: None)
        )
    with pytest.raises(ValueError, match="lowercase"):
        register_workload_kind(WorkloadKind(name="", parse=lambda p, s: None))


# ----------------------------------------------------------------------
# Trace-file twins and the capture/replay differential
# ----------------------------------------------------------------------


def test_trace_spec_equals_class_twin(tmp_path):
    path = str(tmp_path / "mcf.trc.gz")
    save_trace(Mcf(seed=0), path, 400)
    spec_built = parse_workload(f"trace(file={path})")
    class_built = TraceFileWorkload(path)
    assert spec_built.name == class_built.name
    assert spec_built.fingerprint() == class_built.fingerprint()
    assert spec_built.trace(400) == class_built.trace(400)
    key_a = cell_key(DKIP_2048, spec_built, 400, DEFAULT_MEMORY)
    key_b = cell_key(DKIP_2048, class_built, 400, DEFAULT_MEMORY)
    assert key_a.digest == key_b.digest
    # Canonical-name round trip holds for trace workloads too.
    assert parse_workload(spec_built.name).fingerprint() == spec_built.fingerprint()


def test_trace_replay_reproduces_identical_simstats(tmp_path):
    """save_trace → trace(...) replay is simulation-equivalent: a quick
    dkip run of the capture matches the original bit for bit."""
    n = 400
    original = Mcf(seed=0)
    path = str(tmp_path / "mcf.trc.gz")
    save_trace(original, path, n)
    replay = parse_workload(f"trace(file={path})")
    direct = run_core(DKIP_2048, Mcf(seed=0), n)
    replayed = run_core(DKIP_2048, replay, n)
    a, b = direct.to_dict(), replayed.to_dict()
    # The workload label names the source (mcf vs trace(file=...)); every
    # simulated quantity must be identical.
    assert a.pop("workload") == "mcf"
    assert b.pop("workload") == replay.name
    assert a == b
