"""Unit tests for the workload registry."""

import pytest

from repro.workloads import (
    SPECFP_NAMES,
    SPECINT_NAMES,
    all_names,
    get_workload,
    suite,
)

PAPER_SPECINT = {
    "bzip2", "crafty", "eon", "gap", "gcc", "gzip",
    "mcf", "parser", "perlbmk", "twolf", "vortex", "vpr",
}
PAPER_SPECFP = {
    "ammp", "applu", "apsi", "art", "equake", "facerec", "fma3d",
    "galgel", "lucas", "mesa", "mgrid", "sixtrack", "swim", "wupwise",
}


def test_full_spec2000_coverage():
    assert set(SPECINT_NAMES) == PAPER_SPECINT
    assert set(SPECFP_NAMES) == PAPER_SPECFP
    assert len(all_names()) == 26


def test_get_workload_by_name():
    workload = get_workload("mcf")
    assert workload.name == "mcf"
    assert workload.suite == "int"
    assert workload.description


def test_unknown_name_rejected():
    with pytest.raises(ValueError):
        get_workload("linpack")


def test_suite_instantiation():
    int_suite = suite("int")
    fp_suite = suite("fp")
    assert [w.name for w in int_suite] == list(SPECINT_NAMES)
    assert all(w.suite == "fp" for w in fp_suite)


def test_suite_rejects_bad_name():
    with pytest.raises(ValueError):
        suite("vector")


def test_seed_is_propagated():
    assert get_workload("swim", seed=7).seed == 7
