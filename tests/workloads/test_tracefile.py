"""The trace-file workload kind: capture → replay fidelity."""

import gzip
import shutil

import pytest

from repro.grammar import SpecError
from repro.trace.io import TraceFormatError, dump_trace, save_trace
from repro.workloads import get_workload, parse_workload
from repro.workloads.tracefile import TraceFileWorkload


@pytest.fixture
def capture(tmp_path):
    """A 300-instruction gzipped mcf capture and its source workload."""
    source = get_workload("mcf")
    path = str(tmp_path / "mcf.trc.gz")
    assert save_trace(source, path, 300) == 300
    return path, source


def test_replay_matches_source_instructions(capture):
    path, source = capture
    replay = TraceFileWorkload(path)
    assert replay.trace(300) == source.trace(300)
    assert replay.trace(100) == source.trace(100)


def test_replay_restores_region_map(capture):
    path, source = capture
    replay = TraceFileWorkload(path)
    replay.trace(300)
    assert replay.regions == source.regions
    assert replay.footprint == source.footprint


def test_plain_text_capture_replays_too(tmp_path):
    source = get_workload("eon")
    path = str(tmp_path / "eon.trc")  # no .gz
    save_trace(source, path, 120)
    assert TraceFileWorkload(path).trace(120) == source.trace(120)


def test_requesting_more_than_captured_is_a_clean_error(capture):
    path, _ = capture
    replay = TraceFileWorkload(path)
    with pytest.raises(TraceFormatError, match="shorter than the requested"):
        replay.trace(301)


def test_fingerprint_is_content_addressed(capture, tmp_path):
    path, _ = capture
    original = TraceFileWorkload(path)
    # A byte-identical copy under another name fingerprints identically
    # (the digest covers content, not location) even though names differ.
    copy_path = str(tmp_path / "copied.trc.gz")
    shutil.copy(path, copy_path)
    copy = TraceFileWorkload(copy_path)
    assert copy.name != original.name
    assert copy.fingerprint() == original.fingerprint()
    # Compression variance doesn't matter either: recompressing the same
    # records (different gzip metadata) keeps the fingerprint.
    recompressed = str(tmp_path / "recompressed.trc.gz")
    with gzip.open(path, "rb") as fin, gzip.open(
        recompressed, "wb", compresslevel=1
    ) as fout:
        fout.write(fin.read())
    assert TraceFileWorkload(recompressed).fingerprint() == original.fingerprint()


def test_fingerprint_changes_when_content_changes(tmp_path):
    source = get_workload("eon")
    a_path = str(tmp_path / "a.trc")
    b_path = str(tmp_path / "b.trc")
    save_trace(source, a_path, 100)
    dump_trace(source.trace(99), b_path, regions=source.regions)
    assert (
        TraceFileWorkload(a_path).fingerprint()
        != TraceFileWorkload(b_path).fingerprint()
    )


def test_replay_is_seed_insensitive(capture):
    path, _ = capture
    assert (
        TraceFileWorkload(path, seed=1).trace(300)
        == TraceFileWorkload(path, seed=2).trace(300)
    )
    # The fingerprint is seed-invariant too: replay ignores the seed, so
    # equal content means equal identity.  (Store cell keys still carry
    # the seed separately in their payload.)
    assert (
        TraceFileWorkload(path, seed=1).fingerprint()
        == TraceFileWorkload(path, seed=2).fingerprint()
    )


def test_spec_round_trip_through_get_workload(capture):
    path, source = capture
    via_spec = get_workload(f"trace(file={path})")
    assert via_spec.trace(300) == source.trace(300)
    assert parse_workload(via_spec.name).fingerprint() == via_spec.fingerprint()


def test_regionless_capture_still_replays(tmp_path):
    """Files written by plain dump_trace (no region map) stay valid."""
    source = get_workload("eon")
    path = str(tmp_path / "bare.trc")
    dump_trace(source.trace(80), path)
    replay = TraceFileWorkload(path)
    assert replay.trace(80) == source.trace(80)
    assert replay.regions == []  # no map captured, nothing to warm


def test_regions_read_is_cached_even_when_empty(tmp_path, monkeypatch):
    """Repeated .regions accesses hit the cache, emptiness included —
    the warm-up path reads .regions more than once per cell."""
    import repro.workloads.tracefile as tracefile_module

    source = get_workload("eon")
    path = str(tmp_path / "bare.trc")
    dump_trace(source.trace(40), path)
    replay = TraceFileWorkload(path)
    assert replay.regions == []
    calls = []
    monkeypatch.setattr(
        tracefile_module,
        "read_trace_regions",
        lambda p: calls.append(p),
    )
    assert replay.regions == []
    assert calls == []  # cached; the file was not re-opened


def test_path_with_spec_delimiters_is_rejected_at_construction(tmp_path):
    """A path the grammar cannot round-trip must fail at construction,
    not later inside a pool worker re-parsing the canonical name."""
    for bad_name in ("runs,v2.trc", "cap(1).trc"):
        bad_dir = tmp_path / "d"
        bad_dir.mkdir(exist_ok=True)
        path = bad_dir / bad_name
        path.write_text("# repro-trace v1\n")
        with pytest.raises(SpecError, match="delimiter"):
            TraceFileWorkload(str(path))


def test_corrupt_capture_fingerprint_is_a_clean_error(tmp_path):
    """fingerprint() happens at store-keying time; a corrupt .gz must
    surface as TraceFormatError there too, not raw gzip errors."""
    path = tmp_path / "junk.trc.gz"
    path.write_bytes(b"this is not gzip data")
    workload = TraceFileWorkload(str(path))
    with pytest.raises(TraceFormatError, match="corrupt or truncated"):
        workload.fingerprint()


def test_directory_path_is_a_clean_error(tmp_path):
    """A directory satisfies the ctor's existence check but must still
    fail as a TraceFormatError, not a raw IsADirectoryError."""
    replay = TraceFileWorkload(str(tmp_path))
    with pytest.raises(TraceFormatError, match="cannot open trace"):
        replay.trace(10)
    with pytest.raises(TraceFormatError, match="cannot open trace"):
        replay.regions
