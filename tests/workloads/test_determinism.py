"""Determinism guarantees: identical seeds yield identical traces."""

import pytest

from repro.workloads import all_names, get_workload

N = 1_000


def fingerprint(trace):
    return [
        (i.seq, i.pc, int(i.op), i.dest, i.srcs, i.addr, i.taken) for i in trace
    ]


@pytest.mark.parametrize("name", all_names())
def test_same_seed_same_trace(name):
    a = get_workload(name, seed=1).trace(N)
    b = get_workload(name, seed=1).trace(N)
    assert fingerprint(a) == fingerprint(b)


@pytest.mark.parametrize("name", ["mcf", "twolf", "gcc", "ammp"])
def test_different_seed_different_trace(name):
    # (swim is excluded: its generator is purely structural — streaming
    # stencils draw nothing from the rng, so all seeds coincide.)
    a = get_workload(name, seed=1).trace(N)
    b = get_workload(name, seed=2).trace(N)
    assert fingerprint(a) != fingerprint(b)


@pytest.mark.parametrize("name", ["mcf", "swim"])
def test_trace_cache_extension_is_consistent(name):
    """Requesting a longer trace re-generates but keeps the same prefix."""
    workload = get_workload(name)
    short = list(workload.trace(200))
    long = workload.trace(800)
    assert fingerprint(short) == fingerprint(long[:200])


def test_trace_cache_reuses_materialization():
    workload = get_workload("swim")
    first = workload.trace(500)
    second = workload.trace(500)
    assert first is not second or first == second
    assert workload.trace(300) == first[:300]


def test_regions_available_after_trace():
    workload = get_workload("swim")
    workload.trace(100)
    assert workload.regions
    assert workload.footprint > 0


def test_regions_lazy_bootstrap():
    workload = get_workload("swim")
    assert workload.regions  # triggers a minimal generation


def test_instructions_iterator_is_fresh_each_time():
    workload = get_workload("gcc")
    first = [next(iter(workload.instructions())).seq for _ in range(2)]
    assert first == [0, 0]
