"""Determinism guarantees: identical seeds yield identical traces.

Two layers:

* the named-benchmark checks the suite has always had, and
* a *registry-driven battery* that iterates every registered workload
  kind (bench, synth, trace, and anything registered later) over
  example specs, asserting the full determinism contract per kind:
  same seed → identical trace, different seed → different trace (or
  identical, for kinds registered ``seed_sensitive=False``), and
  ``trace(n)`` is a prefix of ``trace(2n)``.

A kind registered without an entry in :data:`KIND_EXAMPLES` (or the
``trace`` fixture below) fails the battery loudly, so future kinds are
covered by construction.
"""

import pytest

from repro.trace.io import save_trace
from repro.workloads import all_names, get_workload, parse_workload, workload_kinds

N = 1_000

#: Trace length for the per-kind battery (smaller: it covers every kind
#: times every example spec, twice per property).
BATTERY_N = 400

#: Example spec strings per registered kind.  Chosen to exercise the
#: kind's parameter space, and — for seed-sensitive kinds — to draw from
#: the rng so different seeds provably diverge.
KIND_EXAMPLES = {
    "bench": ("mcf", "bench(name=gcc)", "ammp"),
    "synth": (
        "synth",
        "synth(chase=6,footprint=1M)",
        "synth(fp=on,mlp=4,ilp=4,br=0.3)",
        "synth(footprint=64K,hot=16K,stride=9,stores=0.5)",
    ),
    # trace and phases need a file on disk; specs come from the fixture.
    "trace": (),
    "phases": (),
}


@pytest.fixture(scope="session")
def trace_fixture_file(tmp_path_factory):
    """A small captured mcf trace the trace/phases batteries replay.

    Long enough (4 x BATTERY_N) that a ``phases`` example with
    ``interval=2*BATTERY_N, index=1`` can satisfy the battery's largest
    request (``trace(2n)`` replays one whole interval).
    """
    path = tmp_path_factory.mktemp("traces") / "mcf.trc.gz"
    save_trace(get_workload("mcf"), str(path), 4 * BATTERY_N)
    return str(path)


@pytest.fixture
def kind_examples(trace_fixture_file):
    """Example spec strings for one kind; fails for uncovered kinds."""

    def examples_for(name: str) -> tuple[str, ...]:
        if name == "trace":
            return (f"trace(file={trace_fixture_file})",)
        if name == "phases":
            interval = 2 * BATTERY_N
            return (
                f"phases(file={trace_fixture_file},interval={interval},index=0)",
                f"phases(file={trace_fixture_file},interval={interval},index=1)",
            )
        specs = KIND_EXAMPLES.get(name, ())
        assert specs, (
            f"workload kind {name!r} has no determinism-battery examples; "
            "add example specs to KIND_EXAMPLES so the kind is covered"
        )
        return specs

    return examples_for


def fingerprint(trace):
    return [
        (i.seq, i.pc, int(i.op), i.dest, i.srcs, i.addr, i.taken) for i in trace
    ]


# ----------------------------------------------------------------------
# The registry-driven battery (covers every registered kind)
# ----------------------------------------------------------------------


def test_every_registered_kind_has_examples(kind_examples):
    for name in workload_kinds():
        assert kind_examples(name)


@pytest.mark.parametrize("kind_name", sorted(workload_kinds()))
def test_battery_same_seed_same_trace(kind_name, kind_examples):
    for spec in kind_examples(kind_name):
        a = parse_workload(spec, seed=1).trace(BATTERY_N)
        b = parse_workload(spec, seed=1).trace(BATTERY_N)
        assert fingerprint(a) == fingerprint(b), spec


@pytest.mark.parametrize("kind_name", sorted(workload_kinds()))
def test_battery_seed_sensitivity(kind_name, kind_examples):
    """Seed-sensitive kinds diverge across seeds; insensitive kinds
    (trace replay) are bit-identical for every seed."""
    kind = workload_kinds()[kind_name]
    for spec in kind_examples(kind_name):
        a = parse_workload(spec, seed=1).trace(BATTERY_N)
        b = parse_workload(spec, seed=2).trace(BATTERY_N)
        if kind.seed_sensitive:
            assert fingerprint(a) != fingerprint(b), spec
        else:
            assert fingerprint(a) == fingerprint(b), spec


@pytest.mark.parametrize("kind_name", sorted(workload_kinds()))
def test_battery_trace_n_is_prefix_of_trace_2n(kind_name, kind_examples):
    for spec in kind_examples(kind_name):
        short = parse_workload(spec, seed=1).trace(BATTERY_N)
        long = parse_workload(spec, seed=1).trace(2 * BATTERY_N)
        assert fingerprint(short) == fingerprint(long[:BATTERY_N]), spec


@pytest.mark.parametrize("kind_name", sorted(workload_kinds()))
def test_battery_cache_extension_keeps_prefix(kind_name, kind_examples):
    """Extending one instance's cached trace preserves the prefix too."""
    for spec in kind_examples(kind_name):
        workload = parse_workload(spec, seed=1)
        short = list(workload.trace(BATTERY_N // 2))
        long = workload.trace(BATTERY_N)
        assert fingerprint(short) == fingerprint(long[: BATTERY_N // 2]), spec


@pytest.mark.parametrize("kind_name", sorted(workload_kinds()))
def test_battery_regions_published_after_trace(kind_name, kind_examples):
    for spec in kind_examples(kind_name):
        workload = parse_workload(spec, seed=1)
        workload.trace(BATTERY_N)
        assert workload.regions, spec
        assert workload.footprint > 0, spec


# ----------------------------------------------------------------------
# Named-benchmark checks (the original battery)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", all_names())
def test_same_seed_same_trace(name):
    a = get_workload(name, seed=1).trace(N)
    b = get_workload(name, seed=1).trace(N)
    assert fingerprint(a) == fingerprint(b)


@pytest.mark.parametrize("name", ["mcf", "twolf", "gcc", "ammp"])
def test_different_seed_different_trace(name):
    # (swim is excluded: its generator is purely structural — streaming
    # stencils draw nothing from the rng, so all seeds coincide.)
    a = get_workload(name, seed=1).trace(N)
    b = get_workload(name, seed=2).trace(N)
    assert fingerprint(a) != fingerprint(b)


@pytest.mark.parametrize("name", ["mcf", "swim"])
def test_trace_cache_extension_is_consistent(name):
    """Requesting a longer trace re-generates but keeps the same prefix."""
    workload = get_workload(name)
    short = list(workload.trace(200))
    long = workload.trace(800)
    assert fingerprint(short) == fingerprint(long[:200])


def test_trace_cache_reuses_materialization():
    workload = get_workload("swim")
    first = workload.trace(500)
    second = workload.trace(500)
    assert first is not second or first == second
    assert workload.trace(300) == first[:300]


def test_regions_available_after_trace():
    workload = get_workload("swim")
    workload.trace(100)
    assert workload.regions
    assert workload.footprint > 0


def test_regions_lazy_bootstrap():
    workload = get_workload("swim")
    assert workload.regions  # triggers a minimal generation


def test_instructions_iterator_is_fresh_each_time():
    workload = get_workload("gcc")
    first = [next(iter(workload.instructions())).seq for _ in range(2)]
    assert first == [0, 0]
