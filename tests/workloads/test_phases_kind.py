"""The phases workload kind: slice replay fidelity and spec grammar."""

import pytest

from repro.grammar import SpecError
from repro.trace.io import TraceFormatError, save_trace
from repro.workloads import get_workload, parse_workload
from repro.workloads.phases import PhaseWorkload, expand_phases


@pytest.fixture
def capture(tmp_path):
    """A 900-instruction gzipped mcf capture and its source workload."""
    source = get_workload("mcf")
    path = str(tmp_path / "mcf.trc.gz")
    assert save_trace(source, path, 900) == 900
    return path, source


def test_phase_slice_matches_full_trace(capture):
    path, source = capture
    full = source.trace(900)
    for index in range(3):
        phase = PhaseWorkload(path, index=index, interval=300)
        assert phase.trace(300) == full[index * 300 : (index + 1) * 300]


def test_phase_restores_region_map(capture):
    path, source = capture
    phase = PhaseWorkload(path, index=1, interval=300)
    phase.trace(300)
    assert phase.regions == source.regions


def test_canonical_name_round_trips(capture):
    path, _ = capture
    phase = PhaseWorkload(path, index=2, interval=300)
    assert phase.name == f"phases(file={path},interval=300,index=2)"
    rebuilt = parse_workload(phase.name)
    assert isinstance(rebuilt, PhaseWorkload)
    assert rebuilt.trace(300) == phase.trace(300)
    assert rebuilt.fingerprint() == phase.fingerprint()


def test_fingerprint_ignores_seed_but_not_geometry(capture):
    path, _ = capture
    base = PhaseWorkload(path, index=1, interval=300)
    assert PhaseWorkload(path, index=1, interval=300, seed=9).fingerprint() == (
        base.fingerprint()
    )
    assert PhaseWorkload(path, index=2, interval=300).fingerprint() != (
        base.fingerprint()
    )
    assert PhaseWorkload(path, index=1, interval=150).fingerprint() != (
        base.fingerprint()
    )


def test_overrunning_the_interval_is_a_clean_error(capture):
    path, _ = capture
    phase = PhaseWorkload(path, index=0, interval=300)
    with pytest.raises(TraceFormatError, match=r"\[0, 300\)"):
        phase.trace(301)


def test_phase_past_end_of_capture_is_a_clean_error(capture):
    path, _ = capture
    phase = PhaseWorkload(path, index=9, interval=300)  # starts at 2700
    with pytest.raises(TraceFormatError, match="index=9"):
        phase.trace(300)


def test_grammar_errors(capture):
    path, _ = capture
    with pytest.raises(SpecError, match="missing required parameter 'file'"):
        get_workload("phases(index=0)")
    with pytest.raises(SpecError, match="only sweeps can run"):
        get_workload(f"phases(file={path})")
    with pytest.raises(SpecError, match="do not apply"):
        get_workload(f"phases(file={path},index=0,k=3)")
    with pytest.raises(SpecError, match="unknown 'phases' parameter"):
        get_workload(f"phases(file={path},index=0,bogus=1)")
    with pytest.raises(SpecError, match="interval"):
        PhaseWorkload(path, index=0, interval=0)
    with pytest.raises(SpecError, match="index"):
        PhaseWorkload(path, index=-1)


def test_expand_phases_ignores_non_set_specs(capture):
    path, _ = capture
    assert expand_phases("mcf") is None
    assert expand_phases(f"trace(file={path})") is None
    assert expand_phases(f"phases(file={path},interval=300,index=1)") is None


def test_expand_phases_builds_weighted_members(capture):
    path, _ = capture
    expansion = expand_phases(f"phases(file={path},interval=300,k=2)")
    assert expansion is not None
    assert expansion.num_intervals == 3
    assert expansion.total_instructions == 900
    assert len(expansion.names) == len(expansion.weights)
    assert sum(expansion.weights) == pytest.approx(1.0)
    assert 0.0 < expansion.coverage <= 1.0
    for name in expansion.names:
        member = parse_workload(name)
        assert isinstance(member, PhaseWorkload)
        assert member.interval == 300


def test_expand_phases_validates_parameters(capture):
    path, _ = capture
    with pytest.raises(SpecError, match="unknown 'phases' parameter"):
        expand_phases(f"phases(file={path},bogus=1)")
    with pytest.raises(SpecError, match="missing required parameter 'file'"):
        expand_phases("phases(k=2)")
