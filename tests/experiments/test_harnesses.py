"""Smoke tests for every experiment harness at quick scale.

These guard the regeneration pipeline itself (the shape assertions live in
tests/integration/); each harness must produce a well-formed result.
"""

import pytest

from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.common import Scale


def test_registry_covers_every_table_and_figure():
    paper = {
        "table1",
        "fig1",
        "fig2",
        "fig3",
        "fig9",
        "fig10",
        "fig10int",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
    }
    ablations = {
        "ablation-timer",
        "ablation-llib",
        "ablation-predictor",
        "ablation-runahead",
    }
    methodology = {"sampling"}
    extensions = {"contention"}
    assert set(EXPERIMENTS) == paper | ablations | methodology | extensions


def test_unknown_experiment_rejected():
    with pytest.raises(ValueError):
        get_experiment("fig99")


def test_table1_runs():
    result = get_experiment("table1")(Scale.QUICK)
    assert len(result.rows) == 6


@pytest.mark.slow
@pytest.mark.parametrize("name", ["fig1", "fig2"])
def test_window_sweeps_run(name):
    result = get_experiment(name)(Scale.QUICK)
    assert len(result.rows) == 3          # three memory configs at quick
    assert len(result.rows[0]) == 5       # label + four window sizes
    assert result.charts


@pytest.mark.slow
def test_fig3_runs():
    result = get_experiment("fig3")(Scale.QUICK)
    fractions = [row[1] for row in result.rows]
    assert sum(fractions) == pytest.approx(1.0, abs=0.02)


@pytest.mark.slow
def test_fig9_runs():
    result = get_experiment("fig9")(Scale.QUICK)
    assert len(result.rows) == 8          # 2 suites x 4 machines
    assert all(row[2] > 0 for row in result.rows)


@pytest.mark.slow
def test_fig10_runs():
    result = get_experiment("fig10")(Scale.QUICK)
    assert len(result.rows) == 3          # three CP configs at quick
    assert result.notes


@pytest.mark.slow
@pytest.mark.parametrize("name", ["fig11", "fig12"])
def test_cache_sweeps_run(name):
    result = get_experiment(name)(Scale.QUICK)
    assert len(result.rows) == 3          # R10-256 + two D-KIP configs
    assert result.charts


@pytest.mark.slow
@pytest.mark.parametrize("name", ["fig13", "fig14"])
def test_occupancy_runs(name):
    result = get_experiment(name)(Scale.QUICK)
    for _, max_instr, max_regs, _ in result.rows:
        assert 0 <= max_regs <= max_instr or max_instr == 0


@pytest.mark.slow
def test_sampling_runs(tmp_path):
    from repro.store import ResultStore

    store = ResultStore(tmp_path / "store")
    result = get_experiment("sampling")(Scale.QUICK, store=store)
    assert len(result.rows) == 4              # 2 benchmarks x 2 machines
    for row in result.rows:
        full_ipc, sampled_ipc = row[4], row[5]
        assert full_ipc > 0 and sampled_ipc > 0
    # No trace paths leak into the report-facing table.
    assert not any("/" in str(cell) for row in result.rows for cell in row)
    # Warm re-run serves every cell from the store.
    writes = store.writes
    get_experiment("sampling")(Scale.QUICK, store=store)
    assert store.writes == writes


def test_cli_list(capsys):
    from repro.experiments.cli import main

    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig9" in out


def test_cli_runs_table1(capsys):
    from repro.experiments.cli import main

    assert main(["table1", "--scale", "quick"]) == 0
    assert "MEM-400" in capsys.readouterr().out


def test_cli_rejects_unknown(capsys):
    from repro.experiments.cli import main

    assert main(["fig99"]) == 2
