"""Workload specs and workload axes through the sweep engine and CLI.

The workload side of the declarative layer, end to end: spec tokens
(``synth(...)``, ``trace(file=...)``) resolve into grid cells, workload
axes cross traits the way machine axes cross parameters, cells persist
and resume through the result store, and the spec-built cells share the
store keyspace with directly-built twins.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import cli
from repro.experiments.common import Scale, WorkloadPool
from repro.experiments.sweep import (
    SWEEP_PRESETS,
    SweepSpec,
    expand_workload_tokens,
    resolve_workloads,
    run_sweep,
    sweep_grid,
)
from repro.machines import SpecError
from repro.memory.configs import DEFAULT_MEMORY
from repro.sim.config import DKIP_2048
from repro.sim.runner import run_core
from repro.store import ResultStore, cell_key
from repro.trace.io import save_trace
from repro.workloads import get_workload
from repro.workloads.synth import SynthWorkload

#: Tiny synth points: small footprints keep warm-up and simulation quick.
CHASE_A = "synth(footprint=64K,hot=16K,chase=2)"
CHASE_B = "synth(footprint=64K,hot=16K,chase=8)"


def test_resolve_workloads_accepts_specs_and_canonicalizes():
    resolved = resolve_workloads(("int", CHASE_A, "synth(chase=0)"), Scale.QUICK)
    assert resolved[CHASE_A] == ("synth(footprint=64K,hot=16K,chase=2)",)
    # Default-valued traits elide: the canonical cell name is "synth".
    assert resolved["synth(chase=0)"] == ("synth",)
    assert len(resolved["int"]) == 5


def test_resolve_workloads_error_names_specs():
    with pytest.raises(SpecError, match="unknown workload"):
        resolve_workloads(("quake3",), Scale.QUICK)
    with pytest.raises(SpecError, match=r"grammar: synth\("):
        resolve_workloads(("synth(warp=1)",), Scale.QUICK)


def test_expand_workload_tokens_crosses_axes():
    spec = SweepSpec(
        machines=("r10",),
        workloads=("synth(br=0.2)",),
        workload_axes=(("chase", ("0", "4")), ("mlp", ("1", "2"))),
    )
    assert expand_workload_tokens(spec) == (
        "synth(br=0.2,chase=0,mlp=1)",
        "synth(br=0.2,chase=0,mlp=2)",
        "synth(br=0.2,chase=4,mlp=1)",
        "synth(br=0.2,chase=4,mlp=2)",
    )


def test_expand_workload_tokens_rejects_suite_tokens():
    spec = SweepSpec(
        machines=("r10",),
        workloads=("int",),
        workload_axes=(("chase", ("0", "4")),),
    )
    with pytest.raises(SpecError, match="suite token"):
        expand_workload_tokens(spec)


def test_from_mapping_parses_workload_axes():
    spec = SweepSpec.from_mapping(
        {
            "machines": ["dkip"],
            "workloads": ["synth"],
            "workload_axes": {"chase": [0, 8]},
        }
    )
    assert spec.workload_axes == (("chase", ("0", "8")),)
    with pytest.raises(SpecError, match="axis"):
        SweepSpec.from_mapping(
            {"machines": ["r10"], "workload_axes": {"chase": []}}
        )


def test_sweep_grid_over_synth_specs_cold_then_warm(tmp_path):
    """The acceptance flow: a 2-point synth sweep runs end to end
    through the store cold, then warm with zero re-simulations."""
    spec = SweepSpec(
        name="synths",
        machines=("dkip(llib=1024)",),
        workloads=(CHASE_A, CHASE_B),
        instructions=500,
    )
    store = ResultStore(tmp_path / "store")
    grid = sweep_grid(spec, Scale.QUICK, jobs=1, store=store)
    assert store.writes == 2
    assert set(grid.benches) == {
        "synth(footprint=64K,hot=16K,chase=2)",
        "synth(footprint=64K,hot=16K,chase=8)",
    }
    for bench in grid.benches:
        assert grid.stats(0, 0, bench).committed == 500
        assert grid.stats(0, 0, bench).workload == bench
    warm = sweep_grid(spec, Scale.QUICK, jobs=1, store=store)
    assert store.writes == 2  # zero re-simulations
    assert store.hits == 2
    for bench in grid.benches:
        assert warm.stats(0, 0, bench).to_dict() == grid.stats(0, 0, bench).to_dict()


def test_sweep_cells_share_keyspace_with_direct_runs(tmp_path):
    """A spec-built sweep cell is the *same store cell* as a run over
    the directly-constructed workload twin."""
    store = ResultStore(tmp_path / "store")
    twin = SynthWorkload(footprint=64 * 1024, hot=16 * 1024, chase=2)
    stats = run_core(DKIP_2048, twin, 400)
    store.put(cell_key(DKIP_2048, twin, 400, DEFAULT_MEMORY), stats)
    spec = SweepSpec(
        name="shared",
        machines=("dkip",),
        workloads=(CHASE_A,),
        instructions=400,
    )
    grid = sweep_grid(spec, Scale.QUICK, jobs=1, store=store)
    assert store.writes == 1  # served entirely by the twin's cell
    assert store.hits == 1
    assert grid.stats(0, 0, twin.name).to_dict() == stats.to_dict()


def test_sweep_grid_over_trace_capture(tmp_path):
    """trace(file=...) workloads run through the grid like any other."""
    source = get_workload("eon")
    path = str(tmp_path / "eon.trc.gz")
    save_trace(source, path, 400)
    spec = SweepSpec(
        name="replay",
        machines=("r10(rob=32)",),
        workloads=(f"trace(file={path})",),
        instructions=400,
    )
    store = ResultStore(tmp_path / "store")
    grid = sweep_grid(spec, Scale.QUICK, jobs=1, store=store)
    replay_stats = grid.stats(0, 0, f"trace(file={path})")
    direct_stats = run_core(parse_r10_32(), get_workload("eon"), 400)
    a, b = replay_stats.to_dict(), direct_stats.to_dict()
    a.pop("workload"), b.pop("workload")
    assert a == b


def parse_r10_32():
    from repro.machines import parse_machine

    return parse_machine("r10(rob=32)")


def test_workload_pool_caches_spec_instances():
    pool = WorkloadPool()
    first = pool.get(CHASE_A)
    assert pool.get(CHASE_A) is first
    assert first.traits["chase"] == 2


def test_chase_preset_registered():
    assert "chase" in SWEEP_PRESETS
    preset = SWEEP_PRESETS["chase"]
    assert preset.spec.workload_axes
    assert expand_workload_tokens(preset.spec) == (
        "synth(chase=0)",
        "synth(chase=4)",
        "synth(chase=16)",
    )
    # Canonicalization happens at resolve time: chase=0 is the default
    # point, so its grid cell is plain "synth".
    resolved = resolve_workloads(expand_workload_tokens(preset.spec), Scale.QUICK)
    assert resolved["synth(chase=0)"] == ("synth",)


def test_run_sweep_rows_label_workload_specs(tmp_path):
    spec = SweepSpec(
        name="labels",
        machines=("r10(rob=32)",),
        workloads=(CHASE_A,),
        instructions=400,
    )
    result = run_sweep(spec, Scale.QUICK, jobs=1)
    assert result.rows[0][0] == "R10-32"
    assert result.rows[0][2] == CHASE_A
    assert result.charts  # the generic bar chart renders per token


# ----------------------------------------------------------------------
# CLI end to end
# ----------------------------------------------------------------------


def test_cli_sweep_workload_specs_cold_then_warm(tmp_path, capsys):
    """`dkip-experiments sweep --workloads "synth(...),synth(...)"` runs
    end to end through the store (the issue's acceptance criterion)."""
    store_dir = str(tmp_path / "store")
    argv = [
        "sweep",
        "--machines", "dkip(llib=1024)",
        "--workloads", f"{CHASE_A},{CHASE_B}",
        "--scale", "quick",
        "--instructions", "500",
        "--store", store_dir,
    ]
    assert cli.main(argv) == 0
    out = capsys.readouterr().out
    assert "2 simulated" in out
    assert CHASE_A in out and CHASE_B in out
    assert cli.main(argv) == 0
    assert "2 cells cached, 0 simulated" in capsys.readouterr().out


def test_cli_sweep_workload_axes_flag(tmp_path, capsys):
    assert (
        cli.main(
            [
                "sweep",
                "--machines", "r10(rob=32)",
                "--workloads", "synth(footprint=64K,hot=16K)",
                "--workload-axes", "chase=2,8",
                "--scale", "quick",
                "--instructions", "400",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "chase=2" in out and "chase=8" in out


def test_cli_sweep_malformed_workload_axes(capsys):
    assert (
        cli.main(
            [
                "sweep",
                "--machines", "r10",
                "--workloads", "synth",
                "--workload-axes", "chase",
            ]
        )
        == 2
    )
    assert "--workload-axes" in capsys.readouterr().err


def test_cli_sweep_bad_workload_spec_is_clean(capsys):
    assert (
        cli.main(["sweep", "--machines", "r10", "--workloads", "synth(warp=1)"])
        == 2
    )
    assert "grammar: synth(" in capsys.readouterr().err


def test_cli_scenario_file_with_workload_axes(tmp_path, capsys):
    scenario = tmp_path / "scenario.json"
    scenario.write_text(
        json.dumps(
            {
                "name": "wl-axes",
                "machines": ["r10(rob=32)"],
                "workloads": ["synth(footprint=64K,hot=16K)"],
                "workload_axes": {"chase": [2, 8]},
                "instructions": 400,
            }
        )
    )
    assert cli.main(["sweep", str(scenario), "--scale", "quick"]) == 0
    out = capsys.readouterr().out
    assert "wl-axes" in out and "chase=2" in out and "chase=8" in out


def test_cli_workloads_subcommand(capsys):
    assert cli.main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "workload kinds" in out
    for fragment in ("bench", "synth(", "trace(file=", "mcf", "swim"):
        assert fragment in out
