"""The `dkip-experiments simpoint` subcommand, end to end."""

from __future__ import annotations

import pytest

from repro.experiments import cli
from repro.trace.io import save_trace
from repro.workloads import get_workload


def test_capture_analyze_and_sweep_cold_then_warm(tmp_path, capsys):
    """The cookbook flow: capture -> phase table -> spec file -> sweep
    cold into a store -> warm re-run simulates zero cells."""
    pytest.importorskip("tomllib")  # the spec file is TOML (Python >= 3.11)
    trace = str(tmp_path / "cap.trc.gz")
    spec = str(tmp_path / "phases.toml")
    store = str(tmp_path / "store")
    assert (
        cli.main(
            [
                "simpoint", trace,
                "--capture", "mcf",
                "--instructions", "2000",
                "--interval", "400",
                "--k", "3",
                "--machines", "dkip(llib=1024)",
                "--spec-out", spec,
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "captured 2000 instructions" in out
    assert "SimPoint phases of" in out
    assert "sweep token: phases(" in out
    assert f"[phase spec written to {spec}]" in out

    assert cli.main(["sweep", spec, "--scale", "quick", "--store", store]) == 0
    cold = capsys.readouterr().out
    assert "0 cells cached" in cold
    assert cli.main(["sweep", spec, "--scale", "quick", "--store", store]) == 0
    assert ", 0 simulated" in capsys.readouterr().out


def test_analyze_existing_capture_without_capture_flag(tmp_path, capsys):
    trace = str(tmp_path / "swim.trc.gz")
    save_trace(get_workload("swim"), trace, 1500)
    assert cli.main(["simpoint", trace, "--interval", "300", "--k", "2"]) == 0
    out = capsys.readouterr().out
    assert "1500 instructions, 5 complete interval(s)" in out


def test_usage_errors(tmp_path, capsys):
    # No trace word at all.
    assert cli.main(["simpoint"]) == 2
    assert "usage: dkip-experiments simpoint" in capsys.readouterr().err
    # Missing file.
    assert cli.main(["simpoint", str(tmp_path / "nope.trc")]) == 2
    assert capsys.readouterr().err
    # Capture shorter than one interval.
    trace = str(tmp_path / "tiny.trc.gz")
    assert (
        cli.main(
            [
                "simpoint", trace,
                "--capture", "eon",
                "--instructions", "50",
                "--interval", "100",
            ]
        )
        == 2
    )
    assert "fewer than one complete" in capsys.readouterr().err


def test_workloads_listing_documents_phases(capsys):
    assert cli.main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "phases(file=" in out
    assert "dkip-experiments simpoint" in out


def test_help_text_mentions_simpoint(capsys):
    with pytest.raises(SystemExit):
        cli.main(["--help"])
    out = capsys.readouterr().out
    assert "simpoint" in out
