"""CLI surface of the result store plus exit-code semantics."""

from __future__ import annotations

import json

from repro.experiments import cli
from repro.experiments.common import ExperimentResult, Scale


def run_main(argv):
    return cli.main(argv)


def test_table1_json_export(tmp_path, capsys):
    out_dir = tmp_path / "out"
    assert run_main(["table1", "--scale", "quick", "--json", str(out_dir)]) == 0
    data = json.loads((out_dir / "table1.json").read_text())
    assert data["name"] == "table1"
    assert data["scale"] == "quick"
    assert data["headers"][0] == "config"
    assert len(data["rows"]) == 6
    roundtrip = ExperimentResult.from_dict(data)
    assert roundtrip.rows == data["rows"]
    assert roundtrip.scale == Scale.QUICK
    assert "json written" in capsys.readouterr().out


def test_failures_counted_named_and_capped(monkeypatch, capsys):
    def empty(scale, store=None, force=False):
        return ExperimentResult(name="empty", title="t", headers=["h"])

    def boom(scale, store=None, force=False):
        raise RuntimeError("kaboom")

    fakes = {f"exp{i}": (empty if i % 2 else boom) for i in range(300)}
    monkeypatch.setattr(cli, "EXPERIMENTS", fakes)
    monkeypatch.setattr(cli, "get_experiment", lambda name: fakes[name])
    # 300 failures must not overflow the exit-status byte.
    assert run_main(list(fakes)) == 255
    err = capsys.readouterr().err
    assert "failed experiments:" in err
    assert "exp0" in err and "kaboom" in err


def test_single_failure_exit_code_and_stderr(monkeypatch, capsys):
    def boom(scale, store=None, force=False):
        raise RuntimeError("dead")

    def ok(scale, store=None, force=False):
        return ExperimentResult(name="ok", title="t", headers=["h"], rows=[[1]])

    fakes = {"bad": boom, "good": ok}
    monkeypatch.setattr(cli, "EXPERIMENTS", fakes)
    monkeypatch.setattr(cli, "get_experiment", lambda name: fakes[name])
    assert run_main(["bad", "good"]) == 1
    captured = capsys.readouterr()
    assert "failed experiments: bad" in captured.err
    assert "ok: t" in captured.out  # the good one still rendered


def test_unknown_experiment_still_exit_2(capsys):
    assert run_main(["fig99"]) == 2


def test_store_flag_round_trip(tmp_path, capsys):
    store_dir = tmp_path / "cells"
    args = ["fig13", "--scale", "quick", "--store", str(store_dir)]
    assert run_main(args) == 0
    first = capsys.readouterr().out
    assert store_dir.is_dir()
    assert run_main(args) == 0
    second = capsys.readouterr().out

    def rows(text):
        return [line for line in text.splitlines() if line.startswith("|")]

    assert rows(first) == rows(second)


def test_no_store_overrides_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "envstore"))
    assert run_main(["table1", "--scale", "quick", "--no-store"]) == 0
    assert not (tmp_path / "envstore").exists()


def test_cache_requires_store(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    assert run_main(["cache", "stats"]) == 2
    assert "no result store" in capsys.readouterr().err


def test_cache_unknown_subcommand(tmp_path, capsys):
    assert run_main(["cache", "frobnicate", "--store", str(tmp_path)]) == 2
    assert "unknown cache command" in capsys.readouterr().err


def test_cache_stats_prune_verify_cycle(tmp_path, capsys):
    store_dir = str(tmp_path / "cells")
    assert run_main(["fig13", "--scale", "quick", "--store", store_dir]) == 0
    capsys.readouterr()

    assert run_main(["cache", "stats", "--store", store_dir]) == 0
    out = capsys.readouterr().out
    assert "entries         5" in out
    assert "DkipConfig" in out

    assert run_main(["cache", "verify", "--sample", "2", "--store", store_dir]) == 0
    out = capsys.readouterr().out
    assert "verified 2 cell(s), 0 stale/errored" in out

    assert run_main(["cache", "prune", "--all", "--store", store_dir]) == 0
    assert "pruned 5 entries" in capsys.readouterr().out

    assert run_main(["cache", "stats", "--store", store_dir]) == 0
    assert "entries         0" in capsys.readouterr().out


def test_cache_verify_flags_stale_cells(tmp_path, capsys):
    store_dir = tmp_path / "cells"
    assert run_main(["fig13", "--scale", "quick", "--store", str(store_dir)]) == 0
    capsys.readouterr()
    # Simulate code drift in one cell (keeping the entry internally
    # consistent): verify must flag it and exit non-zero.
    from repro.fingerprint import digest

    tampered = 0
    for path in store_dir.glob("objects/*/*.json"):
        entry = json.loads(path.read_text())
        entry["stats"]["cycles"] += 1
        entry["stats_digest"] = digest(entry["stats"])
        path.write_text(json.dumps(entry))
        tampered += 1
        break
    assert tampered == 1
    assert run_main(["cache", "verify", "--store", str(store_dir)]) == 1
    assert "stale" in capsys.readouterr().out
