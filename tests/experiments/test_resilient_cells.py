"""Resilience at the run_cells/CLI layer: deadlocks, jobs policy, strictness."""

from __future__ import annotations

import pytest

from repro.experiments import cli
from repro.experiments.common import WorkloadPool, resolve_jobs, run_cells
from repro.machines import parse_machine
from repro.memory import DEFAULT_MEMORY
from repro.resilience import (
    STRICT,
    CellExecutionError,
    ExecutionPolicy,
    FailureReport,
)


@pytest.fixture
def pool():
    return WorkloadPool()


@pytest.fixture
def config():
    return parse_machine("r10(rob=32)")


# ----------------------------------------------------------------------
# Deadlocks are permanent and name the offending cell
# ----------------------------------------------------------------------


def test_deadlocked_cell_fails_fast_naming_the_cell_spec(pool, config):
    # max_cycles=1 cannot commit anything: the run loop's deadlock guard
    # trips deterministically, which must never be retried.
    cells = [(config, "mcf", DEFAULT_MEMORY)]
    with pytest.raises(CellExecutionError) as excinfo:
        run_cells(cells, 600, pool, jobs=1, max_cycles=1)
    failure = excinfo.value.failure
    assert failure.kind == "permanent"
    assert failure.error == "DeadlockError"
    assert failure.attempts == 1  # no retries spent on a modelling bug
    # The error names the full machine × workload × memory cell spec.
    message = str(excinfo.value)
    assert "R10-32 × mcf × default" in message
    assert "no forward progress" in message


def test_deadlocked_cell_is_tolerated_under_a_budget(pool, config):
    cells = [(config, "mcf", DEFAULT_MEMORY), (config, "swim", DEFAULT_MEMORY)]
    report = FailureReport()
    tolerant = ExecutionPolicy(max_failures=None)
    flat = run_cells(
        cells, 600, pool, jobs=1, max_cycles=1, policy=tolerant, report=report
    )
    assert flat == [None, None]
    assert [f.error for f in report.failures] == ["DeadlockError"] * 2
    assert report.retries == 0


# ----------------------------------------------------------------------
# resolve_jobs / REPRO_JOBS edge cases
# ----------------------------------------------------------------------


def test_resolve_jobs_explicit_argument_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "7")
    assert resolve_jobs(2, 100) == 2


@pytest.mark.parametrize("env", ["0", "-4"])
def test_resolve_jobs_clamps_non_positive_env_to_one(monkeypatch, env):
    monkeypatch.setenv("REPRO_JOBS", env)
    assert resolve_jobs(None, 100) == 1


def test_resolve_jobs_huge_env_is_capped_by_task_count(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "1000000")
    assert resolve_jobs(None, 3) == 3


def test_resolve_jobs_non_integer_env_is_a_clean_error(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "two")
    with pytest.raises(ValueError, match="REPRO_JOBS must be an integer"):
        resolve_jobs(None, 100)


def test_resolve_jobs_zero_tasks_still_returns_one_worker():
    assert resolve_jobs(None, 0) == 1
    assert resolve_jobs(8, 0) == 1


# ----------------------------------------------------------------------
# Strict mode is bit-for-bit today's fail-fast path
# ----------------------------------------------------------------------


def test_explicit_strict_policy_matches_the_default_path(pool, config):
    cells = [(config, "mcf", DEFAULT_MEMORY), (config, "swim", DEFAULT_MEMORY)]
    plain = run_cells(cells, 400, pool, jobs=1)
    explicit = run_cells(
        cells, 400, pool, jobs=1,
        policy=ExecutionPolicy(max_failures=0), report=FailureReport(),
    )
    pooled = run_cells(cells, 400, pool, jobs=2, policy=STRICT)
    assert [s.to_dict() for s in plain] == [s.to_dict() for s in explicit]
    assert [s.to_dict() for s in plain] == [s.to_dict() for s in pooled]


def test_cli_max_failures_zero_matches_the_flagless_run(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "2")
    argv = [
        "sweep", "--machines", "r10(rob=32)", "--workloads", "mcf",
        "--scale", "quick", "--instructions", "400", "--no-store",
    ]
    assert cli.main(argv) == 0
    flagless = capsys.readouterr().out
    assert cli.main(argv + ["--max-failures", "0"]) == 0
    strict = capsys.readouterr().out
    assert strict == flagless


# ----------------------------------------------------------------------
# CLI flag validation and the failure exit path
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    ("flags", "message"),
    [
        (["--cell-timeout", "0"], "--cell-timeout must be positive"),
        (["--cell-timeout", "-2"], "--cell-timeout must be positive"),
        (["--retries", "-1"], "--retries must be >= 0"),
    ],
)
def test_cli_rejects_malformed_resilience_flags(capsys, flags, message):
    assert cli.main(["sweep", "--machines", "r10"] + flags) == 2
    assert message in capsys.readouterr().err


def test_cli_tolerant_sweep_reports_failures_and_exits_nonzero(
    tmp_path, capsys, monkeypatch
):
    monkeypatch.setenv("REPRO_JOBS", "2")
    monkeypatch.setenv("REPRO_FAULT", "cell:fail@mcf")
    failures_json = tmp_path / "failures.json"
    argv = [
        "sweep", "--machines", "r10(rob=32)", "--workloads", "mcf,swim",
        "--scale", "quick", "--instructions", "400", "--no-store",
        "--max-failures", "-1", "--failures-json", str(failures_json),
    ]
    assert cli.main(argv) == 1
    captured = capsys.readouterr()
    assert "n/a (failed: permanent)" in captured.out
    assert "cell failures: 1 of 2 cell(s) failed" in captured.err
    assert "InjectedFailure" in captured.err
    import json

    report = json.loads(failures_json.read_text())
    assert report["failed"] == 1 and report["completed"] == 1
    assert report["policy"]["max_failures"] is None
    (failure,) = report["failures"]
    assert "mcf" in failure["cell"] and failure["kind"] == "permanent"


def test_cli_strict_budget_aborts_the_sweep(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "2")
    monkeypatch.setenv("REPRO_FAULT", "cell:fail@mcf")
    argv = [
        "sweep", "--machines", "r10(rob=32)", "--workloads", "mcf,swim",
        "--scale", "quick", "--instructions", "400", "--no-store",
        "--max-failures", "0",
    ]
    assert cli.main(argv) == 1
    err = capsys.readouterr().err
    assert "aborted: cell" in err and "mcf" in err
