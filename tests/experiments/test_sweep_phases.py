"""SimPoint phase sets through the sweep engine: expansion, weighting, store reuse."""

from __future__ import annotations

import pytest

from repro.experiments.common import Scale, weighted_mean_ipc
from repro.experiments.sweep import (
    SweepSpec,
    resolve_workloads,
    run_sweep,
    sweep_grid,
)
from repro.machines import SpecError
from repro.store import ResultStore
from repro.trace.io import save_trace
from repro.workloads import get_workload
from repro.workloads.phases import expand_phases


@pytest.fixture(scope="module")
def capture(tmp_path_factory):
    """A 1200-instruction mcf capture shared across the module."""
    path = str(tmp_path_factory.mktemp("phases") / "mcf.trc.gz")
    save_trace(get_workload("mcf"), path, 1200)
    return path


def token_for(capture, k=2):
    return f"phases(file={capture},interval=300,k={k},seed=0)"


def test_resolve_workloads_expands_phase_sets(capture):
    token = token_for(capture)
    resolved = resolve_workloads((token, "mcf"), Scale.QUICK)
    expansion = expand_phases(token)
    assert resolved[token] == expansion.names
    assert resolved["mcf"] == ("mcf",)
    for name in expansion.names:
        assert name.startswith("phases(") and "index=" in name


def test_default_instruction_budget_clamps_to_interval(capture):
    spec = SweepSpec(
        name="clamp",
        machines=("r10(rob=32)",),
        workloads=(token_for(capture),),
    )
    grid = sweep_grid(spec, Scale.QUICK, jobs=1)
    # Scale presets ask for 4000 instructions; a phase holds only 300.
    assert grid.instructions == 300


def test_explicit_budget_beyond_interval_is_a_clean_error(capture):
    spec = SweepSpec(
        name="overrun",
        machines=("r10(rob=32)",),
        workloads=(token_for(capture),),
        instructions=301,
    )
    with pytest.raises(SpecError, match="exceeds the 300-instruction interval"):
        sweep_grid(spec, Scale.QUICK, jobs=1)


def test_weighted_mean_matches_hand_combination_bit_for_bit(capture):
    """The differential proof: the grid's phase-token mean IPC equals the
    hand-weighted combination of the per-phase cells exactly."""
    token = token_for(capture)
    spec = SweepSpec(
        name="weights",
        machines=("r10(rob=32)", "dkip(llib=1024)"),
        workloads=(token,),
        instructions=300,
    )
    grid = sweep_grid(spec, Scale.QUICK, jobs=1)
    expansion = grid.phases[token]
    assert sum(expansion.weights) == pytest.approx(1.0)
    for mi in range(len(grid.machines)):
        stats = grid.suite_stats(mi, 0, token)
        by_hand = sum(
            w * s.ipc for w, s in zip(expansion.weights, stats)
        ) / sum(expansion.weights)
        assert grid.mean_ipc(mi, 0, token) == by_hand  # bitwise, not approx
        assert grid.mean_ipc(mi, 0, token) == weighted_mean_ipc(
            stats, expansion.weights
        )


def test_phase_cells_resume_from_store(capture, tmp_path):
    token = token_for(capture)
    spec = SweepSpec(
        name="resume",
        machines=("r10(rob=32)",),
        workloads=(token,),
        instructions=300,
    )
    store = ResultStore(tmp_path / "store")
    cold = sweep_grid(spec, Scale.QUICK, jobs=1, store=store)
    members = len(cold.workloads[token])
    assert store.writes == members
    warm = sweep_grid(spec, Scale.QUICK, jobs=1, store=store)
    assert store.writes == members  # zero re-simulations
    assert store.hits == members
    for bench in cold.benches:
        assert warm.stats(0, 0, bench).to_dict() == cold.stats(0, 0, bench).to_dict()


def test_reclustering_reuses_stored_phase_cells(capture, tmp_path):
    """Phase-cell identity excludes k and the clustering seed, so
    re-clustering the same capture only simulates genuinely new phases."""
    store = ResultStore(tmp_path / "store")

    def run_k(k):
        spec = SweepSpec(
            name=f"k{k}",
            machines=("r10(rob=32)",),
            workloads=(token_for(capture, k=k),),
            instructions=300,
        )
        return sweep_grid(spec, Scale.QUICK, jobs=1, store=store)

    first = run_k(3)
    first_names = set(first.workloads[token_for(capture, k=3)])
    writes_after_first = store.writes
    assert writes_after_first == len(first_names)
    second = run_k(2)
    second_names = set(second.workloads[token_for(capture, k=2)])
    # Only phases not already simulated under k=3 cost new writes.
    assert store.writes == writes_after_first + len(second_names - first_names)
    assert store.hits >= len(second_names & first_names)


def test_run_sweep_notes_the_sampling_summary(capture):
    token = token_for(capture)
    spec = SweepSpec(
        name="notes",
        machines=("r10(rob=32)",),
        workloads=(token,),
        instructions=300,
    )
    result = run_sweep(spec, Scale.QUICK, jobs=1)
    assert any("SimPoint estimate" in note for note in result.notes)
    assert any("weighted phase(s)" in note for note in result.notes)
