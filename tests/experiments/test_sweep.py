"""The generic sweep engine: declarative grids, presets, CLI, store reuse."""

from __future__ import annotations

import json

import pytest

from repro.experiments import cli
from repro.experiments.sweep import (
    SWEEP_PRESETS,
    SweepSpec,
    expand_machines,
    get_sweep_preset,
    resolve_workloads,
    run_sweep,
    sweep_grid,
)
from repro.experiments.common import Scale
from repro.machines import SpecError
from repro.sim.config import DKIP_2048
from repro.store import ResultStore

#: Tiny grid used throughout: cheap machines, one short benchmark each.
TINY = SweepSpec(
    name="tiny",
    machines=("r10(rob=32)", "limit(rob=64,histogram=off)"),
    memory=("default",),
    workloads=("mcf", "swim"),
    instructions=600,
)


def test_from_mapping_validates():
    spec = SweepSpec.from_mapping(
        {"machines": ["dkip"], "axes": {"llib": [1024, 2048]}, "workloads": "fp"}
    )
    assert spec.machines == ("dkip",)
    assert spec.axes == (("llib", ("1024", "2048")),)
    assert spec.workloads == ("fp",)
    with pytest.raises(SpecError, match="at least one machine"):
        SweepSpec.from_mapping({})
    with pytest.raises(SpecError, match="unknown sweep key"):
        SweepSpec.from_mapping({"machines": ["r10"], "turbo": True})
    with pytest.raises(SpecError, match="axis"):
        SweepSpec.from_mapping({"machines": ["r10"], "axes": {"llib": []}})
    with pytest.raises(SpecError, match="integer"):
        SweepSpec.from_mapping({"machines": ["r10"], "instructions": "many"})
    with pytest.raises(SpecError, match="positive"):
        SweepSpec.from_mapping({"machines": ["r10"], "instructions": 0})
    with pytest.raises(SpecError, match="positive"):
        sweep_grid(SweepSpec(machines=("r10",), instructions=-5), Scale.QUICK)


def test_expand_machines_crosses_axes_in_product_order():
    spec = SweepSpec(
        machines=("dkip",),
        axes=(("cp", ("INO", "OOO-20")), ("mp", ("INO", "OOO-40"))),
    )
    machines = expand_machines(spec)
    assert [m.axes for m in machines] == [
        (("cp", "INO"), ("mp", "INO")),
        (("cp", "INO"), ("mp", "OOO-40")),
        (("cp", "OOO-20"), ("mp", "INO")),
        (("cp", "OOO-20"), ("mp", "OOO-40")),
    ]
    # Axis-built configs are the with_cp/with_mp twins, bit for bit.
    assert machines[3].config == DKIP_2048.with_cp("OOO-20").with_mp("OOO-40")
    assert (
        machines[3].config.fingerprint()
        == DKIP_2048.with_cp("OOO-20").with_mp("OOO-40").fingerprint()
    )


def test_expand_machines_disambiguates_duplicate_names():
    # iq does not rename, so both expansions keep the default name and
    # labels must fall back to the spec string.
    spec = SweepSpec(machines=("r10(iq=20)", "r10(iq=60)"))
    labels = [m.label for m in expand_machines(spec)]
    assert labels == ["r10(iq=20)", "r10(iq=60)"]


def test_resolve_workloads_tokens():
    resolved = resolve_workloads(("int", "mcf"), Scale.QUICK)
    assert "mcf" in resolved and resolved["mcf"] == ("mcf",)
    assert len(resolved["int"]) == 5  # quick subset
    with pytest.raises(SpecError, match="unknown workload"):
        resolve_workloads(("quake3",), Scale.QUICK)


def test_sweep_grid_runs_and_indexes():
    grid = sweep_grid(TINY, Scale.QUICK, jobs=1)
    assert len(grid.machines) == 2 and len(grid.memories) == 1
    assert grid.benches == ("mcf", "swim")
    for mi in range(2):
        for bench in grid.benches:
            stats = grid.stats(mi, 0, bench)
            assert stats.committed == 600
            assert stats.workload == bench
    assert grid.mean_ipc(0, 0, "mcf") == grid.stats(0, 0, "mcf").ipc


def test_run_sweep_cold_then_warm_store(tmp_path):
    store = ResultStore(tmp_path / "store")
    cold = run_sweep(TINY, Scale.QUICK, store=store, jobs=1)
    assert store.writes == 4  # 2 machines x 2 benchmarks
    warm = run_sweep(TINY, Scale.QUICK, store=store, jobs=1)
    assert store.writes == 4  # nothing recomputed
    assert store.hits == 4
    assert warm.rows == cold.rows
    assert cold.headers[0] == "machine"
    # Generic formatting: one row per (machine, memory, workload token).
    assert len(cold.rows) == 4


def test_sweep_shares_the_figure_store_keyspace(tmp_path):
    """A sweep over a figure's machines reuses the figure's cells."""
    store = ResultStore(tmp_path / "store")
    run_sweep(TINY, Scale.QUICK, store=store, jobs=1)
    writes = store.writes
    again = SweepSpec(
        name="again",
        machines=("r10(rob=32)",),
        workloads=("mcf",),
        instructions=600,
    )
    run_sweep(again, Scale.QUICK, store=store, jobs=1)
    assert store.writes == writes  # fully served from the tiny grid's cells


def test_fig_presets_registered():
    assert {"fig9", "fig10", "fig10int"} <= set(SWEEP_PRESETS)
    assert get_sweep_preset("fig9").runner is not None
    with pytest.raises(ValueError, match="unknown sweep preset"):
        get_sweep_preset("fig99")


def test_cli_adhoc_sweep_with_svg_and_store(tmp_path, capsys):
    store_dir = tmp_path / "store"
    svg_path = tmp_path / "sweep.svg"
    argv = [
        "sweep",
        "--machines", "r10(rob=32),limit(rob=64,histogram=off)",
        "--workloads", "mcf",
        "--scale", "quick",
        "--instructions", "600",
        "--store", str(store_dir),
        "--svg", str(svg_path),
    ]
    assert cli.main(argv) == 0
    out = capsys.readouterr().out
    assert "R10-32" in out
    assert "2 cells cached" not in out and "2 simulated" in out
    assert svg_path.exists() and svg_path.read_text().startswith("<svg")
    # Warm re-run simulates nothing.
    assert cli.main(argv[:-2]) == 0
    out = capsys.readouterr().out
    assert "2 cells cached, 0 simulated" in out


def test_cli_sweep_scenario_file(tmp_path, capsys):
    scenario = tmp_path / "scenario.json"
    scenario.write_text(
        json.dumps(
            {
                "name": "file-sweep",
                "machines": ["r10"],
                "axes": {"rob": [32, 48]},
                "workloads": ["mcf"],
                "instructions": 600,
            }
        )
    )
    assert cli.main(["sweep", str(scenario), "--scale", "quick"]) == 0
    out = capsys.readouterr().out
    assert "file-sweep" in out and "R10-32" in out and "R10-48" in out


def test_cli_sweep_requires_machines(capsys):
    assert cli.main(["sweep"]) == 2
    assert "--machines" in capsys.readouterr().err


def test_cli_sweep_bad_spec_is_a_clean_error(capsys):
    assert cli.main(["sweep", "--machines", "warp-drive"]) == 2
    err = capsys.readouterr().err
    assert "unknown machine kind" in err


def test_cli_sweep_unknown_preset(capsys):
    assert cli.main(["sweep", "fig99"]) == 2
    assert "unknown sweep preset" in capsys.readouterr().err


@pytest.mark.slow
def test_cli_sweep_fig9_preset_matches_direct_run(tmp_path, capsys):
    """The acceptance criterion: `sweep fig9` is the fig9 table."""
    from repro.experiments.registry import get_experiment

    store_dir = str(tmp_path / "store")
    assert cli.main(["sweep", "fig9", "--scale", "quick", "--store", store_dir]) == 0
    out = capsys.readouterr().out
    # The direct harness run against the same warm store must agree cell
    # for cell with what the sweep preset printed.
    direct = get_experiment("fig9")("quick", store=ResultStore(store_dir))
    for row in direct.rows:
        for value in row:
            assert str(value) in out
    assert direct.render().splitlines()[1] in out  # header row, verbatim
