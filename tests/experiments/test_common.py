"""Unit tests for the experiment plumbing."""

import os

import pytest

from repro.experiments.common import (
    ExperimentResult,
    INSTRUCTIONS,
    QUICK_SUBSET,
    Scale,
    Stopwatch,
    WorkloadPool,
    mean_ipc,
    scale_of,
    suite_names,
)
from repro.sim.stats import SimStats
from repro.workloads import SPECFP_NAMES, SPECINT_NAMES


def test_scale_coercion():
    assert scale_of("quick") == Scale.QUICK
    assert scale_of(Scale.FULL) == Scale.FULL
    with pytest.raises(ValueError):
        scale_of("huge")


def test_scales_order_instruction_budgets():
    assert INSTRUCTIONS[Scale.QUICK] < INSTRUCTIONS[Scale.DEFAULT] < INSTRUCTIONS[Scale.FULL]


def test_suite_names_respect_scale():
    assert suite_names("int", Scale.DEFAULT) == SPECINT_NAMES
    assert suite_names("fp", Scale.FULL) == SPECFP_NAMES
    assert suite_names("int", Scale.QUICK) == QUICK_SUBSET["int"]


def test_quick_subsets_are_valid_names():
    assert set(QUICK_SUBSET["int"]) <= set(SPECINT_NAMES)
    assert set(QUICK_SUBSET["fp"]) <= set(SPECFP_NAMES)


def test_workload_pool_caches_instances():
    pool = WorkloadPool()
    assert pool.get("swim") is pool.get("swim")
    assert pool.get("swim") is not pool.get("mcf")


def test_mean_ipc():
    runs = [SimStats(committed=10, cycles=5), SimStats(committed=10, cycles=10)]
    assert mean_ipc(runs) == pytest.approx(1.5)
    assert mean_ipc([]) == 0.0


def test_result_render_and_csv(tmp_path):
    result = ExperimentResult(
        name="unit", title="test", headers=["a", "b"], rows=[[1, 2.5]]
    )
    result.notes.append("note")
    text = result.render()
    assert "unit" in text and "note" in text
    path = result.write_csv(str(tmp_path))
    assert os.path.exists(path)
    with open(path) as f:
        assert f.read().startswith("a,b")


def test_stopwatch_records_elapsed():
    result = ExperimentResult(name="x", title="y", headers=[])
    with Stopwatch(result):
        pass
    assert result.elapsed_seconds >= 0.0
