"""Unit tests for the experiment plumbing."""

import os

import pytest

from repro.experiments.common import (
    ExperimentResult,
    INSTRUCTIONS,
    QUICK_SUBSET,
    Scale,
    Stopwatch,
    WorkloadPool,
    mean_ipc,
    scale_of,
    suite_names,
)
from repro.sim.stats import SimStats
from repro.workloads import SPECFP_NAMES, SPECINT_NAMES


def test_scale_coercion():
    assert scale_of("quick") == Scale.QUICK
    assert scale_of(Scale.FULL) == Scale.FULL
    with pytest.raises(ValueError):
        scale_of("huge")


def test_scales_order_instruction_budgets():
    assert INSTRUCTIONS[Scale.QUICK] < INSTRUCTIONS[Scale.DEFAULT] < INSTRUCTIONS[Scale.FULL]


def test_suite_names_respect_scale():
    assert suite_names("int", Scale.DEFAULT) == SPECINT_NAMES
    assert suite_names("fp", Scale.FULL) == SPECFP_NAMES
    assert suite_names("int", Scale.QUICK) == QUICK_SUBSET["int"]


def test_quick_subsets_are_valid_names():
    assert set(QUICK_SUBSET["int"]) <= set(SPECINT_NAMES)
    assert set(QUICK_SUBSET["fp"]) <= set(SPECFP_NAMES)


def test_workload_pool_caches_instances():
    pool = WorkloadPool()
    assert pool.get("swim") is pool.get("swim")
    assert pool.get("swim") is not pool.get("mcf")


def test_mean_ipc():
    runs = [SimStats(committed=10, cycles=5), SimStats(committed=10, cycles=10)]
    assert mean_ipc(runs) == pytest.approx(1.5)
    assert mean_ipc([]) == 0.0


def test_result_render_and_csv(tmp_path):
    result = ExperimentResult(
        name="unit", title="test", headers=["a", "b"], rows=[[1, 2.5]]
    )
    result.notes.append("note")
    text = result.render()
    assert "unit" in text and "note" in text
    path = result.write_csv(str(tmp_path))
    assert os.path.exists(path)
    with open(path) as f:
        assert f.read().startswith("a,b")


def test_stopwatch_records_elapsed():
    result = ExperimentResult(name="x", title="y", headers=[])
    with Stopwatch(result):
        pass
    assert result.elapsed_seconds >= 0.0


# ----------------------------------------------------------------------
# Process-pool suite runner and warm-up cache
# ----------------------------------------------------------------------


def test_resolve_jobs_env_override(monkeypatch):
    from repro.experiments.common import resolve_jobs

    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(3, 10) == 3          # explicit argument wins
    assert resolve_jobs(8, 2) == 2           # never more workers than tasks
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs(None, 10) == 5       # env override
    assert resolve_jobs(None, 3) == 3
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert resolve_jobs(None, 10) == 1       # floor at one worker


def test_parallel_run_suite_matches_serial():
    from repro.experiments.common import run_suite
    from repro.sim.config import R10_64

    pool = WorkloadPool()
    names = ("swim", "mcf")
    serial = run_suite(R10_64, names, 600, pool, jobs=1)
    fanned = run_suite(R10_64, names, 600, pool, jobs=2)
    assert [s.workload for s in fanned] == list(names)  # deterministic order
    for a, b in zip(serial, fanned):
        assert a == b


def test_run_many_matches_per_config_suites():
    from repro.experiments.common import run_many, run_suite
    from repro.sim.config import R10_64, R10_256

    pool = WorkloadPool()
    names = ("swim",)
    grid = run_many((R10_64, R10_256), names, 600, pool, jobs=2)
    assert len(grid) == 2 and all(len(row) == 1 for row in grid)
    for config, row in zip((R10_64, R10_256), grid):
        assert row == run_suite(config, names, 600, pool, jobs=1)


def test_warmup_cache_restores_identical_state():
    from repro.experiments.common import WarmupCache
    from repro.memory import DEFAULT_MEMORY
    from repro.sim.config import R10_64
    from repro.sim.runner import run_core

    pool = WorkloadPool()
    workload = pool.get("swim")
    cache = WarmupCache()
    fresh = run_core(R10_64, workload, 600)
    warmed_once = run_core(R10_64, workload, 600, warm_cache=cache)
    warmed_twice = run_core(R10_64, workload, 600, warm_cache=cache)
    assert cache.misses == 1 and cache.hits == 1
    assert fresh == warmed_once == warmed_twice
    # A different memory configuration is a different cache key.
    run_core(R10_64, workload, 600, memory=DEFAULT_MEMORY.with_mem_latency(100),
             warm_cache=cache)
    assert cache.misses == 2


def test_parallel_run_suite_ships_warm_snapshots():
    from repro.experiments.common import WarmupCache, run_suite
    from repro.sim.config import R10_64

    pool = WorkloadPool()
    names = ("swim", "mcf")
    cache = WarmupCache()
    serial = run_suite(R10_64, names, 600, pool, jobs=1)
    fanned = run_suite(R10_64, names, 600, pool, jobs=2, warm_cache=cache)
    assert cache.misses == 2  # warmed once per workload, in the parent
    for a, b in zip(serial, fanned):
        assert a == b
