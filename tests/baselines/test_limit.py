"""Unit tests for the idealized (ROB-only) limit simulator."""

from repro.branch import AlwaysTakenPredictor
from repro.baselines.limit import issue_distance_histogram, simulate_limit
from repro.memory import DEFAULT_MEMORY, MemoryHierarchy, TABLE1_CONFIGS

from tests.conftest import make_alu_chain, make_load_chain, make_loop


def run(trace, rob=64, memory=DEFAULT_MEMORY, predictor=None):
    return simulate_limit(
        iter(trace),
        MemoryHierarchy(memory),
        rob_size=rob,
        predictor=predictor or AlwaysTakenPredictor(),
    )


def test_width_bounds_ipc():
    result = run(make_alu_chain(4000, dep=False), rob=None)
    assert 3.5 <= result.ipc <= 4.0


def test_serial_chain_is_ipc_one():
    result = run(make_alu_chain(1000, dep=True), rob=None)
    assert 0.9 <= result.ipc <= 1.05


def test_window_scaling_recovers_independent_misses():
    """Independent misses: IPC grows monotonically with ROB size."""
    from repro.isa import InstructionBuilder

    b = InstructionBuilder()
    trace = []
    for i in range(600):
        trace.append(b.load(1 + (i % 4), 30, addr=0x10_0000 + i * 64))
        trace.append(b.alu(5 + (i % 4), 1 + (i % 4), 30))
        trace.append(b.alu(9 + (i % 8), 29, 30))
    ipcs = [run(trace, rob=w).ipc for w in (32, 128, 1024)]
    assert ipcs[0] < ipcs[1] < ipcs[2]


def test_window_scaling_cannot_help_serial_chains():
    trace = make_load_chain(30, stride=1 << 14)
    small = run(trace, rob=32)
    large = run(trace, rob=4096)
    assert abs(small.cycles - large.cycles) < small.cycles * 0.05


def test_perfect_cache_ignores_memory_pressure():
    trace = make_load_chain(100, stride=1 << 14)
    result = run(trace, rob=32, memory=TABLE1_CONFIGS["L1-2"])
    assert result.cycles < 100 * 10


def test_mispredicted_branches_stall_fetch():
    taken_loop = make_loop(iterations=100, body_alu=3, taken=True)
    not_taken_loop = make_loop(iterations=100, body_alu=3, taken=False)
    good = run(taken_loop)           # always-taken: all correct
    bad = run(not_taken_loop)        # always-taken: all wrong
    assert bad.stats.branch_mispredictions == 100
    assert bad.cycles > good.cycles


def test_issue_distance_histogram_splits_by_dependence():
    from repro.isa import InstructionBuilder

    b = InstructionBuilder()
    trace = []
    for i in range(64):
        trace.append(b.load(1, 30, addr=0x10_0000 + i * (1 << 14)))
        trace.append(b.alu(2, 1, 1))            # waits ~400 cycles
        trace.extend(b.alu(3 + (j % 4), 29, 30) for j in range(8))
    hist = issue_distance_histogram(
        iter(trace), MemoryHierarchy(DEFAULT_MEMORY), AlwaysTakenPredictor()
    )
    assert hist.fraction_below(100) > 0.7          # independent work
    assert hist.fraction_in(300, 500) > 0.05       # the miss consumers


def test_commit_bandwidth_respected():
    result = run(make_alu_chain(4000, dep=False), rob=None)
    # 4-wide commit: cycles >= n/4
    assert result.cycles >= 1000


def test_result_reports_memory_stats():
    trace = make_load_chain(10, stride=1 << 14)
    result = run(trace)
    assert result.stats.memory_accesses == 10
    assert result.committed == 10


def test_histogram_bin_width_configurable():
    result = simulate_limit(
        iter(make_alu_chain(100)),
        MemoryHierarchy(DEFAULT_MEMORY),
        rob_size=None,
        predictor=AlwaysTakenPredictor(),
        histogram_bin=50,
    )
    assert result.issue_distance.bin_width == 50
