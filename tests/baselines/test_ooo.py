"""Unit tests for the R10000-style out-of-order core."""

from repro.branch import AlwaysTakenPredictor, make_predictor
from repro.baselines.ooo import R10Core
from repro.memory import DEFAULT_MEMORY, MemoryHierarchy, TABLE1_CONFIGS
from repro.sim.config import R10_64, CoreConfig, SchedulerPolicy

from tests.conftest import make_alu_chain, make_load_chain, make_loop


def run(trace, config=R10_64, memory=DEFAULT_MEMORY, predictor=None):
    core = R10Core(
        iter(trace),
        config,
        MemoryHierarchy(memory),
        predictor or AlwaysTakenPredictor(),
    )
    return core.run(len(trace))


def test_independent_alu_reaches_full_width():
    stats = run(make_alu_chain(400, dep=False))
    assert stats.ipc > 3.0


def test_dependent_chain_serializes():
    stats = run(make_alu_chain(400, dep=True))
    assert 0.8 <= stats.ipc <= 1.1


def test_perfect_cache_loads_are_fast():
    trace = make_load_chain(50, stride=0)  # same address repeatedly
    stats = run(trace, memory=TABLE1_CONFIGS["L1-2"])
    # serial chain of 2-cycle loads + 1-cycle agen
    assert stats.cycles < 50 * 5


def test_memory_chain_costs_full_latency_each():
    trace = make_load_chain(20, stride=1 << 14)
    stats = run(trace)
    assert stats.cycles > 20 * 400


def test_rob_capacity_limits_overlap():
    """Two independent misses ~100 instructions apart overlap only when the
    ROB is large enough to hold the span between them."""
    from repro.isa import InstructionBuilder

    def trace():
        b = InstructionBuilder()
        out = [b.load(1, 30, addr=0x10_0000)]
        out += [b.alu(2 + (i % 4), 29, 30) for i in range(120)]
        out.append(b.load(5, 30, addr=0x20_0000))
        out += [b.alu(6, 5, 5)]
        return out

    small = run(trace(), config=CoreConfig(name="small", rob_size=32))
    large = run(trace(), config=CoreConfig(name="large", rob_size=256, iq_int=160))
    assert large.cycles < small.cycles - 300  # misses overlapped


def test_correct_branches_are_cheap():
    trace = make_loop(iterations=40, body_alu=3, taken=True)
    stats = run(trace)  # always-taken predictor is always right here
    assert stats.branch_mispredictions == 0
    assert stats.ipc > 1.2


def test_mispredicted_branches_stall_fetch():
    trace = make_loop(iterations=40, body_alu=3, taken=False)
    stats = run(trace)  # always-taken predictor is always wrong
    assert stats.branch_mispredictions == 40
    assert stats.fetch_stall_cycles > 40
    assert stats.ipc < 1.0


def test_in_order_config_is_slower_on_mixed_code():
    from repro.isa import InstructionBuilder

    b = InstructionBuilder()
    trace = []
    for i in range(60):
        trace.append(b.load(1, 30, addr=0x10_0000 + i * 8))
        trace.append(b.alu(2, 1, 1))       # depends on load
        trace.append(b.alu(3 + (i % 3), 29, 30))  # independent
    ooo = run(trace)
    ino = run(
        trace,
        config=CoreConfig(name="ino", scheduler=SchedulerPolicy.IN_ORDER),
    )
    assert ino.cycles >= ooo.cycles


def test_store_load_forwarding_path():
    from repro.isa import InstructionBuilder

    b = InstructionBuilder()
    trace = []
    for i in range(30):
        trace.append(b.store(1, 30, addr=0x50_0000))
        trace.append(b.load(2, 30, addr=0x50_0000))
        trace.append(b.alu(1, 2, 2))
    stats = run(trace)
    assert stats.committed == 90


def test_stats_accounting_consistent():
    trace = make_loop(iterations=30, body_alu=4, taken=True)
    stats = run(trace, predictor=make_predictor("perceptron"))
    assert stats.committed == len(trace)
    assert stats.fetched >= stats.committed
    assert stats.cycles > 0


def test_lsq_capacity_bounds_dispatch():
    config = CoreConfig(name="tiny-lsq", lsq_size=2)
    trace = make_load_chain(10, stride=1 << 14)
    stats = run(trace, config=config)
    assert stats.committed == 10  # completes despite the tiny LSQ
