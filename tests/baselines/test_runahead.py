"""Unit tests for the runahead-execution comparator."""

from repro.branch import AlwaysTakenPredictor
from repro.baselines.ooo import R10Core
from repro.baselines.runahead import RunaheadCore, _ReplayingIterator
from repro.memory import DEFAULT_MEMORY, MemoryHierarchy
from repro.sim.config import R10_64

from tests.conftest import make_alu_chain, make_load_chain


def run_runahead(trace):
    core = RunaheadCore(
        iter(trace), R10_64, MemoryHierarchy(DEFAULT_MEMORY), AlwaysTakenPredictor()
    )
    stats = core.run(len(trace))
    return core, stats


def run_r10(trace):
    core = R10Core(
        iter(trace), R10_64, MemoryHierarchy(DEFAULT_MEMORY), AlwaysTakenPredictor()
    )
    return core.run(len(trace))


def _streaming_trace(lines=24, work=30):
    """Independent line misses with enough work between them for episodes
    to reach the next miss (the prefetchable pattern)."""
    from repro.isa import InstructionBuilder

    b = InstructionBuilder()
    out = []
    for i in range(lines):
        out.append(b.load(1, 30, addr=0x100_0000 + i * (1 << 14)))
        out.append(b.alu(2, 1, 1))
        for j in range(work):
            out.append(b.alu(3 + (j % 4), 29, 30))
    return out


def test_replaying_iterator_round_trip():
    it = _ReplayingIterator(iter(range(5)))
    assert next(it) == 0
    it.start_recording()
    assert [next(it), next(it)] == [1, 2]
    assert it.rewind() == 2
    assert [next(it), next(it), next(it)] == [1, 2, 3]


def test_all_instructions_commit_exactly_once():
    core, stats = run_runahead(_streaming_trace())
    assert stats.committed == len(_streaming_trace())
    assert core.runahead_episodes > 0


def test_runahead_beats_baseline_on_streaming_misses():
    trace = _streaming_trace()
    _, ra = run_runahead(trace)
    base = run_r10(trace)
    assert ra.cycles < base.cycles * 0.75


def test_runahead_cannot_prefetch_serial_chains():
    trace = make_load_chain(12, stride=1 << 14)
    core, stats = run_runahead(trace)
    base = run_r10(trace)
    assert stats.committed == 12
    assert stats.cycles > base.cycles * 0.8   # no real gain possible


def test_no_episodes_without_misses():
    core, stats = run_runahead(make_alu_chain(200))
    assert core.runahead_episodes == 0
    assert stats.ipc > 3.0


def test_speculation_prefetches_future_lines():
    """During an episode the memory system sees accesses beyond the
    blocking load — the prefetches that pay for the episode."""
    trace = _streaming_trace(lines=16, work=20)
    core, _ = run_runahead(trace)
    # Fewer distinct demand misses than lines => some were prefetched.
    assert core.runahead_episodes < 16


def test_runner_integration():
    from repro.sim.config import RunaheadConfig
    from repro.sim.runner import run_core
    from repro.workloads import get_workload

    stats = run_core(RunaheadConfig(), get_workload("applu"), 2_000)
    assert stats.committed == 2_000
