"""Unit tests for the KILO-1024 comparator."""

import dataclasses

from repro.branch import AlwaysTakenPredictor
from repro.baselines.kilo import KiloCore
from repro.baselines.ooo import R10Core
from repro.memory import DEFAULT_MEMORY, MemoryHierarchy
from repro.sim.config import KILO_1024, R10_64

from tests.conftest import make_alu_chain, make_load_chain


def run_kilo(trace, config=KILO_1024):
    core = KiloCore(
        iter(trace), config, MemoryHierarchy(DEFAULT_MEMORY), AlwaysTakenPredictor()
    )
    return core.run(len(trace))


def run_r10(trace):
    core = R10Core(
        iter(trace), R10_64, MemoryHierarchy(DEFAULT_MEMORY), AlwaysTakenPredictor()
    )
    return core.run(len(trace))


def _miss_shadow_trace(misses=8, shadow=100):
    """Independent misses separated by independent shadow work."""
    from repro.isa import InstructionBuilder

    b = InstructionBuilder()
    out = []
    for m in range(misses):
        out.append(b.load(1, 30, addr=0x100_0000 + m * (1 << 14)))
        out.append(b.alu(2, 1, 1))  # consumer of the miss
        for i in range(shadow):
            out.append(b.alu(3 + (i % 4), 29, 30))
    return out


def test_kilo_overlaps_misses_beyond_small_rob():
    trace = _miss_shadow_trace()
    kilo = run_kilo(trace)
    r10 = run_r10(trace)
    assert kilo.cycles < r10.cycles * 0.7


def test_slices_move_to_sliq():
    trace = _miss_shadow_trace()
    stats = run_kilo(trace)
    assert stats.llib_insertions >= 8  # at least the miss consumers


def test_commit_accounting_complete():
    trace = _miss_shadow_trace(misses=4, shadow=40)
    stats = run_kilo(trace)
    assert stats.committed == len(trace)
    assert stats.committed_cp + stats.committed_mp == len(trace)


def test_pure_alu_code_avoids_sliq():
    stats = run_kilo(make_alu_chain(300, dep=False))
    assert stats.llib_insertions == 0
    assert stats.ipc > 3.0


def test_serial_chains_execute_via_ooo_wakeup():
    """A pointer chase completes and stays ordered (no deadlock, no loss)."""
    trace = make_load_chain(12, stride=1 << 14)
    stats = run_kilo(trace)
    assert stats.committed == 12


def test_sliq_reissue_delay_costs_cycles():
    """A small delay hides under the memory latency the slice is already
    waiting for; a delay longer than the memory latency must show up."""
    fast = dataclasses.replace(KILO_1024, sliq_reissue_delay=0)
    slow = dataclasses.replace(KILO_1024, sliq_reissue_delay=1500)
    trace = make_load_chain(10, stride=1 << 14)
    t_fast = run_kilo(trace, fast).cycles
    t_small = run_kilo(trace, KILO_1024).cycles
    t_slow = run_kilo(trace, slow).cycles
    assert t_small <= t_fast * 1.05    # the default 4-cycle delay hides
    assert t_slow > t_fast + 1000      # a 1500-cycle delay cannot


def test_sliq_occupancy_recorded():
    trace = _miss_shadow_trace(misses=6, shadow=150)
    stats = run_kilo(trace)
    assert stats.llib_max_instructions_int > 0


def test_mispredicted_slice_branch_pays_recovery():
    from repro.isa import InstructionBuilder, OpClass

    b = InstructionBuilder()
    trace = [b.load(1, 30, addr=0x200_0000)]
    trace.append(
        b.emit(OpClass.BRANCH, srcs=(1,), taken=False, target=0, pc=0x7000)
    )  # depends on the miss; always-taken predictor mispredicts
    trace += [b.alu(2 + (i % 4), 29, 30) for i in range(30)]
    stats = run_kilo(trace)
    assert stats.checkpoint_recoveries >= 1
    assert stats.cycles > 400  # waited out the memory latency


def test_out_of_order_commit_keeps_window_moving():
    """Short-latency chains do not cap the effective window at the
    pseudo-ROB size (multicheckpointing commits out of order)."""
    deep_chain = make_alu_chain(400, dep=True)
    kilo = run_kilo(deep_chain)
    r10 = run_r10(deep_chain)
    assert kilo.cycles <= r10.cycles * 1.1
