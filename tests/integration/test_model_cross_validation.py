"""Cross-validation between the two independent timing models.

The limit simulator (one-pass timestamp computation) and the cycle-level
R10 core were written independently; on traces where their differing
assumptions don't bite (no structural hazards beyond the ROB, predictable
branches), they must agree closely.  Divergence on such traces would mean
a timing bug in one of them — this is the strongest internal consistency
check the repository has.
"""

import pytest

from repro.branch import AlwaysTakenPredictor
from repro.baselines.limit import simulate_limit
from repro.baselines.ooo import R10Core
from repro.memory import DEFAULT_MEMORY, MemoryHierarchy, TABLE1_CONFIGS
from repro.sim.config import CoreConfig

from tests.conftest import make_alu_chain, make_load_chain, make_loop

#: A cycle core with resources so large only the ROB can stall — the
#: machine the limit simulator models.
UNCONSTRAINED = CoreConfig(
    name="xcheck",
    rob_size=64,
    iq_int=512,
    iq_fp=512,
    fetch_buffer=64,
)


def limit_cycles(trace, rob=64, memory=TABLE1_CONFIGS["L1-2"]):
    result = simulate_limit(
        iter(trace), MemoryHierarchy(memory), rob, AlwaysTakenPredictor()
    )
    return result.cycles


def core_cycles(trace, memory=TABLE1_CONFIGS["L1-2"], config=UNCONSTRAINED):
    import dataclasses

    config = dataclasses.replace(
        config,
        fus=dataclasses.replace(config.fus, int_alu=64, mem_ports=64),
    )
    core = R10Core(
        iter(trace), config, MemoryHierarchy(memory), AlwaysTakenPredictor()
    )
    return core.run(len(trace)).cycles


@pytest.mark.slow
def test_models_agree_on_independent_alu():
    trace = make_alu_chain(2_000, dep=False)
    a, b = limit_cycles(trace), core_cycles(trace)
    assert abs(a - b) <= max(a, b) * 0.1 + 10


@pytest.mark.slow
def test_models_agree_on_serial_alu_chain():
    trace = make_alu_chain(1_000, dep=True)
    a, b = limit_cycles(trace), core_cycles(trace)
    assert abs(a - b) <= max(a, b) * 0.1 + 10


@pytest.mark.slow
def test_models_agree_on_taken_loops():
    trace = make_loop(iterations=300, body_alu=3, taken=True)
    a, b = limit_cycles(trace), core_cycles(trace)
    assert abs(a - b) <= max(a, b) * 0.15 + 10


@pytest.mark.slow
def test_models_agree_on_serial_miss_chain():
    """A pure pointer chase is dominated by memory latency in both models;
    they must agree to within a small per-hop pipeline offset."""
    trace = make_load_chain(20, stride=1 << 14)
    a = limit_cycles(trace, memory=DEFAULT_MEMORY)
    b = core_cycles(trace, memory=DEFAULT_MEMORY)
    assert abs(a - b) <= 20 * 20  # <= ~20 cycles of skew per hop


@pytest.mark.slow
def test_models_agree_on_rob_limited_misses():
    """Independent misses spaced wider than the ROB: both models must
    serialize them the same way."""
    from repro.isa import InstructionBuilder

    b = InstructionBuilder()
    trace = []
    for i in range(12):
        trace.append(b.load(1, 30, addr=0x100_0000 + i * (1 << 14)))
        trace.extend(b.alu(2 + (j % 4), 29, 30) for j in range(100))
    lim = limit_cycles(trace, rob=64, memory=DEFAULT_MEMORY)
    cyc = core_cycles(trace, memory=DEFAULT_MEMORY)
    assert abs(lim - cyc) <= max(lim, cyc) * 0.15
