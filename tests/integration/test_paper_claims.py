"""Integration tests asserting the paper's qualitative claims.

Each test reproduces one *shape* from the evaluation at reduced scale:
who wins, roughly by how much, and where the crossovers are.  Absolute
IPC is not asserted (the substrate is synthetic); orderings and ratios
are.
"""

import statistics

import pytest

from repro.baselines.limit import simulate_limit
from repro.branch import make_predictor
from repro.memory import (
    DEFAULT_MEMORY,
    MemoryHierarchy,
    TABLE1_CONFIGS,
    warm_caches,
)
from repro.memory.configs import KB, MB, memory_config_for_l2_size
from repro.sim.config import DKIP_2048, KILO_1024, R10_256, R10_64
from repro.sim.runner import run_core, simulate
from repro.workloads import get_workload

N = 6_000
INT_SAMPLE = ("eon", "gcc", "mcf", "twolf", "vpr", "gzip")
FP_SAMPLE = ("swim", "art", "apsi", "galgel", "wupwise", "applu")


def suite_mean(config, names, n=N, memory=DEFAULT_MEMORY):
    ipcs = []
    for name in names:
        ipcs.append(run_core(config, get_workload(name), n, memory=memory).ipc)
    return statistics.mean(ipcs)


@pytest.fixture(scope="module")
def fig9():
    """Shared Figure-9 grid for the comparison tests."""
    grid = {}
    for suite, names in (("int", INT_SAMPLE), ("fp", FP_SAMPLE)):
        for machine in (R10_64, R10_256, KILO_1024, DKIP_2048):
            grid[(suite, machine.name)] = suite_mean(machine, names)
    return grid


# ----------------------------------------------------------------------
# Section 2 (Figures 1-3)
# ----------------------------------------------------------------------

@pytest.mark.slow
def test_window_scaling_recovers_specfp_ipc():
    """Figure 2: at MEM-400, a 4K-entry ROB recovers most of the IPC the
    small window loses on streaming FP code."""
    workload = get_workload("swim")
    trace = workload.trace(N)

    def limit_ipc(mem, rob):
        h = MemoryHierarchy(TABLE1_CONFIGS[mem])
        warm_caches(h, workload.regions)
        return simulate_limit(
            iter(trace), h, rob, make_predictor("perceptron")
        ).ipc

    small = limit_ipc("MEM-400", 32)
    big = limit_ipc("MEM-400", 4096)
    perfect = limit_ipc("L1-2", 4096)
    assert big > small * 5
    assert big > perfect * 0.7


@pytest.mark.slow
def test_window_scaling_cannot_recover_pointer_chasing():
    """Figure 1: SpecINT improves with window size but — unlike SpecFP —
    stays far from the perfect-cache IPC (serial misses and miss-dependent
    mispredictions remain on the critical path)."""
    workload = get_workload("mcf")
    trace = workload.trace(N)

    def limit_ipc(mem, rob):
        h = MemoryHierarchy(TABLE1_CONFIGS[mem])
        warm_caches(h, workload.regions)
        return simulate_limit(
            iter(trace), h, rob, make_predictor("perceptron")
        ).ipc

    small = limit_ipc("MEM-400", 32)
    big = limit_ipc("MEM-400", 4096)
    perfect = limit_ipc("L1-2", 4096)
    assert big >= small                  # never detrimental
    assert big < perfect * 0.4           # but recovery stays partial


@pytest.mark.slow
def test_issue_latency_is_trimodal_on_fp():
    """Figure 3: most instructions issue fast; consumers of misses cluster
    at ~1x the memory latency."""
    workload = get_workload("ammp")
    trace = workload.trace(N)
    h = MemoryHierarchy(DEFAULT_MEMORY)
    warm_caches(h, workload.regions)
    result = simulate_limit(iter(trace), h, None, make_predictor("perceptron"))
    hist = result.issue_distance
    assert hist.fraction_below(300) > 0.35
    assert hist.fraction_in(300, 500) > 0.05
    assert hist.fraction_in(700, 900) > 0.005   # the two-miss chains


# ----------------------------------------------------------------------
# Figure 9
# ----------------------------------------------------------------------

@pytest.mark.slow
def test_fig9_fp_ordering(fig9):
    """KILO-class machines far ahead on SpecFP; R10-256 between."""
    r64 = fig9[("fp", "R10-64")]
    r256 = fig9[("fp", "R10-256")]
    kilo = fig9[("fp", "KILO-1024")]
    dkip = fig9[("fp", "D-KIP-2048")]
    assert r64 < r256 < dkip
    assert r64 < r256 < kilo
    assert dkip > r64 * 1.8             # paper: +88% over R10-64
    assert dkip > r256 * 1.3            # paper: +40% over R10-256
    assert abs(dkip - kilo) / kilo < 0.25  # same class of machine


@pytest.mark.slow
def test_fig9_int_ordering(fig9):
    """SpecINT gains compress; the OOO-SLIQ KILO stays slightly ahead."""
    r64 = fig9[("int", "R10-64")]
    r256 = fig9[("int", "R10-256")]
    kilo = fig9[("int", "KILO-1024")]
    dkip = fig9[("int", "D-KIP-2048")]
    assert r64 < r256
    assert dkip > r64                    # large windows never hurt INT
    assert kilo >= dkip * 0.95           # KILO's OOO buffer helps chasing
    assert dkip < r64 * 1.6              # INT gains stay modest


@pytest.mark.slow
def test_fig9_fp_gains_exceed_int_gains(fig9):
    fp_gain = fig9[("fp", "D-KIP-2048")] / fig9[("fp", "R10-64")]
    int_gain = fig9[("int", "D-KIP-2048")] / fig9[("int", "R10-64")]
    assert fp_gain > int_gain * 1.5


# ----------------------------------------------------------------------
# Figure 10
# ----------------------------------------------------------------------

@pytest.mark.slow
def test_fig10_cp_ooo_matters_mp_barely():
    """An OOO CP is worth ~tens of percent; an OOO MP only a few."""
    names = ("swim", "applu", "apsi")
    ino_ino = suite_mean(DKIP_2048.with_cp("INO").with_mp("INO"), names)
    ooo_ino = suite_mean(DKIP_2048.with_cp("OOO-40").with_mp("INO"), names)
    ooo_ooo = suite_mean(DKIP_2048.with_cp("OOO-40").with_mp("OOO-40"), names)
    cp_gain = ooo_ino / ino_ino
    mp_gain = ooo_ooo / ooo_ino
    assert cp_gain > 1.2
    assert mp_gain < cp_gain
    assert mp_gain < 1.25


# ----------------------------------------------------------------------
# Figures 11/12 (+ §4.4)
# ----------------------------------------------------------------------

@pytest.mark.slow
def test_fig12_dkip_is_cache_insensitive_on_fp():
    """The conventional core needs the big cache; the D-KIP tolerates the
    small one (paper: 1.55x vs 1.18x across the sweep)."""
    names = ("swim", "art", "apsi")
    small, big = memory_config_for_l2_size(64 * KB), memory_config_for_l2_size(4 * MB)
    r10_gain = suite_mean(R10_256, names, memory=big) / suite_mean(
        R10_256, names, memory=small
    )
    dkip_gain = suite_mean(DKIP_2048, names, memory=big) / suite_mean(
        DKIP_2048, names, memory=small
    )
    assert r10_gain > dkip_gain * 1.5


@pytest.mark.slow
def test_fig11_int_scales_with_cache_everywhere():
    names = ("gcc", "mcf", "twolf")
    small, big = memory_config_for_l2_size(64 * KB), memory_config_for_l2_size(4 * MB)
    for machine in (R10_256, DKIP_2048):
        gain = suite_mean(machine, names, memory=big) / suite_mean(
            machine, names, memory=small
        )
        assert gain > 1.3, f"{machine.name}: {gain:.2f}"


@pytest.mark.slow
def test_cp_share_grows_with_cache_size():
    """§4.4: a bigger L2 turns more instructions high-locality."""
    workload = get_workload("swim")
    trace = workload.trace(N)
    shares = []
    for size in (64 * KB, 4 * MB):
        stats = simulate(
            DKIP_2048, trace, memory=memory_config_for_l2_size(size),
            regions=workload.regions,
        )
        shares.append(stats.cp_fraction)
    assert shares[1] > shares[0]


# ----------------------------------------------------------------------
# Figures 13/14
# ----------------------------------------------------------------------

@pytest.mark.slow
def test_fig13_14_llib_pressure_contrast():
    """INT chasing stresses the integer LLIB harder than streaming FP
    stresses the FP one, and registers stay below instructions."""
    mcf = run_core(DKIP_2048, get_workload("mcf"), N)
    swim = run_core(DKIP_2048, get_workload("swim"), N)
    assert mcf.llib_max_instructions_int > 0
    assert swim.llib_max_instructions_fp > 0
    assert mcf.llib_max_registers_int <= mcf.llib_max_instructions_int
    assert swim.llib_max_registers_fp <= swim.llib_max_instructions_fp


@pytest.mark.slow
def test_analyze_stall_overhead_is_small():
    """§3.2: stalling Analyze for in-flight shorts costs ~0.7% IPC —
    assert it stays a small fraction of cycles on FP code."""
    stats = run_core(DKIP_2048, get_workload("applu"), N)
    assert stats.analyze_stall_cycles < stats.cycles * 0.25
