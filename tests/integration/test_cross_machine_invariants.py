"""Cross-machine invariants: properties every simulator must satisfy on
every workload, regardless of calibration."""

import pytest

from repro.sim.config import DKIP_2048, KILO_1024, R10_256, R10_64, RunaheadConfig
from repro.sim.runner import run_core
from repro.workloads import get_workload

N = 2_500
MACHINES = [R10_64, R10_256, KILO_1024, DKIP_2048, RunaheadConfig()]
WORKLOADS = ["eon", "mcf", "gzip", "swim", "ammp", "mesa", "equake", "twolf"]


@pytest.fixture(scope="module")
def grid():
    out = {}
    for bench in WORKLOADS:
        workload = get_workload(bench)
        for machine in MACHINES:
            out[(bench, machine.name)] = run_core(machine, workload, N)
    return out


@pytest.mark.slow
@pytest.mark.parametrize("bench", WORKLOADS)
@pytest.mark.parametrize("machine", [m.name for m in MACHINES])
def test_every_instruction_commits_exactly_once(grid, bench, machine):
    stats = grid[(bench, machine)]
    assert stats.committed == N


@pytest.mark.slow
@pytest.mark.parametrize("bench", WORKLOADS)
def test_ipc_never_exceeds_machine_width(grid, bench):
    for machine in MACHINES:
        assert grid[(bench, machine.name)].ipc <= 4.0


@pytest.mark.slow
@pytest.mark.parametrize("bench", WORKLOADS)
def test_dkip_commit_split_is_consistent(grid, bench):
    stats = grid[(bench, "D-KIP-2048")]
    assert stats.committed_cp + stats.committed_mp == stats.committed
    assert stats.llib_max_registers_int <= max(stats.llib_max_instructions_int, 1)
    assert stats.llib_max_registers_fp <= max(stats.llib_max_instructions_fp, 1)


@pytest.mark.slow
@pytest.mark.parametrize("bench", WORKLOADS)
def test_bigger_window_never_catastrophically_worse(grid, bench):
    """R10-256 should never fall meaningfully below R10-64 (same design,
    strictly more resources)."""
    small = grid[(bench, "R10-64")]
    large = grid[(bench, "R10-256")]
    assert large.ipc >= small.ipc * 0.95


@pytest.mark.slow
@pytest.mark.parametrize("bench", WORKLOADS)
def test_fetch_accounting(grid, bench):
    for machine in MACHINES:
        stats = grid[(bench, machine.name)]
        assert stats.fetched >= stats.committed or machine.name.startswith("runahead")


@pytest.mark.slow
def test_runs_are_order_independent():
    """Running machines in a different order gives identical results
    (no hidden shared state between simulations)."""
    workload = get_workload("gap")
    first = run_core(DKIP_2048, workload, N).cycles
    run_core(R10_64, workload, N)
    run_core(KILO_1024, workload, N)
    again = run_core(DKIP_2048, workload, N).cycles
    assert first == again
