"""Chaos battery: real worker processes dying under ``$REPRO_FAULT``.

The kill clause is scoped to attempt token ``#0`` and workers key fault
injection by ticket *generation*, so every generation-0 worker genuinely
dies (``os._exit(137)``) mid-shard while the requeued generation runs
clean — the scheduler must heal the grid through real process deaths.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.service import Scheduler, ServiceQueue, build_job, worker_main
from repro.service.jobs import DONE
from repro.store import ResultStore

MAPPING = {
    "name": "svc-chaos",
    "machines": ["r10(rob=32)", "dkip(llib=4096)"],
    "workloads": ["mcf", "swim"],
    "instructions": 400,
}


def _spawn_worker(queue, store, slot):
    process = multiprocessing.Process(
        target=worker_main,
        args=(str(queue.root),),
        kwargs={"store_root": str(store.root), "poll": 0.02, "name": f"w{slot}"},
        daemon=True,
    )
    process.start()
    return process


@pytest.mark.slow
def test_killed_workers_requeue_and_heal_to_a_complete_grid(
    tmp_path, monkeypatch
):
    monkeypatch.setenv("REPRO_FAULT", "cell:kill@#0")
    queue = ServiceQueue(tmp_path / "svc")  # real wall clock
    queue.ensure()
    store = ResultStore(tmp_path / "store")
    job, _ = queue.submit(build_job(MAPPING, "quick", shards=2, retries=1))
    scheduler = Scheduler(queue, store, lease=2.0)
    workers = [_spawn_worker(queue, store, slot) for slot in range(2)]
    deaths = 0
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            scheduler.poll_once()
            if scheduler.drained():
                break
            for slot, process in enumerate(workers):
                if not process.is_alive():
                    deaths += 1
                    workers[slot] = _spawn_worker(queue, store, slot)
            time.sleep(0.05)
    finally:
        queue.request_stop()
        for process in workers:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - last resort
                process.terminate()
    healed = queue.load_job(job.job_id)
    assert healed is not None and healed.state == DONE
    assert deaths >= 1  # the kill clause really took processes down
    assert healed.requeues >= 1 and healed.generation >= 2
    assert not healed.lost and not healed.failed_digests()
    assert all(store.validated(cell.store_key()) for cell in healed.cells)
    assert "0 failed" in healed.summary_line()
