"""Shared fixtures for the sweep-service tests.

Everything here runs in-process (workers included) against a fake
clock, so lease expiry and heartbeat age are deterministic; only the
chaos battery spawns real worker processes.
"""

from __future__ import annotations

import pytest

from repro.service import ServiceQueue
from repro.store import ResultStore

#: A tiny 2 machines x 2 workloads grid every service test reuses.
MAPPING = {
    "name": "svc",
    "machines": ["r10(rob=32)", "dkip(llib=4096)"],
    "workloads": ["mcf", "swim"],
    "instructions": 400,
}


class FakeClock:
    """An injectable wall clock tests advance by hand."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def drain(scheduler, workers, rounds: int = 50) -> list[str]:
    """Alternate scheduler and worker polls until the spool drains."""
    events: list[str] = []
    for _ in range(rounds):
        events += scheduler.poll_once()
        while any(worker.poll_once() for worker in workers):
            pass
        if scheduler.drained():
            return events
    raise AssertionError(f"service did not drain; events so far: {events}")


@pytest.fixture
def mapping() -> dict:
    return dict(MAPPING)


@pytest.fixture
def drain_service():
    return drain


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def queue(tmp_path, clock) -> ServiceQueue:
    spool = ServiceQueue(tmp_path / "svc", clock=clock)
    spool.ensure()
    return spool


@pytest.fixture
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "store")
