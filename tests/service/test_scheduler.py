"""Scheduler behaviour: planning, sharding, leases, healing, completion."""

from __future__ import annotations

from repro.service import Scheduler, ServiceWorker, build_job
from repro.service.jobs import DONE, FAILED, RUNNING


def _submit(queue, mapping, shards=2):
    job, _ = queue.submit(build_job(mapping, "quick", shards=shards, retries=1))
    return job


def test_plan_expands_and_shards_the_grid(queue, store, mapping):
    job = _submit(queue, mapping, shards=2)
    scheduler = Scheduler(queue, store)
    events = scheduler.poll_once()
    planned = queue.load_job(job.job_id)
    assert planned.state == RUNNING
    assert len(planned.cells) == 4  # 2 machines x 2 workloads
    assert len({cell.digest for cell in planned.cells}) == 4
    assert all(" × " in cell.label for cell in planned.cells)
    tickets = queue.iter_tickets()
    assert len(tickets) == 2
    covered = sorted(
        index for _name, data in tickets for index in data["indices"]
    )
    assert covered == [0, 1, 2, 3]  # a disjoint, complete partition
    assert any("planned: 4 cells, 0 cached" in event for event in events)
    assert any("dispatched 4 cell(s) in 2 shard(s)" in event for event in events)


def test_shard_count_never_exceeds_cell_count(queue, store, mapping):
    _submit(queue, dict(mapping, workloads=["mcf"]), shards=8)
    Scheduler(queue, store).poll_once()
    assert len(queue.iter_tickets()) == 2  # 2 cells -> 2 shards, not 8


def test_planning_error_fails_the_job(queue, store, mapping):
    job = _submit(queue, dict(mapping, machines=["no-such-machine(x=1)"]))
    events = Scheduler(queue, store).poll_once()
    failed = queue.load_job(job.job_id)
    assert failed.state == FAILED and failed.error
    assert queue.iter_tickets() == []
    assert any("failed to plan" in event for event in events)


def test_warm_resubmit_completes_with_zero_simulations(
    queue, store, mapping, drain_service
):
    job = _submit(queue, mapping)
    scheduler = Scheduler(queue, store)
    worker = ServiceWorker(queue, store, name="w1")
    drain_service(scheduler, [worker])
    writes = store.writes
    assert queue.load_job(job.job_id).state == DONE
    # Resubmit the identical grid against the warm store.
    _submit(queue, mapping)
    events = drain_service(scheduler, [worker])
    warm = queue.load_job(job.job_id)
    assert warm.state == DONE
    assert warm.cached == 4 and warm.summary()["simulated"] == 0
    assert store.writes == writes  # nothing re-simulated
    assert any(", 0 simulated" in event for event in events)


def test_torn_store_entry_is_rescheduled_not_trusted(
    queue, store, mapping, drain_service
):
    job = _submit(queue, mapping)
    scheduler = Scheduler(queue, store)
    worker = ServiceWorker(queue, store, name="w1")
    drain_service(scheduler, [worker])
    # A host crash (or store:corrupt fault) leaves one entry zero-length:
    # contains() still says present, so the skip decision must not use it.
    victim = queue.load_job(job.job_id).cells[0]
    store.path_for(victim.store_key()).write_text("")
    assert store.contains(victim.store_key())
    _submit(queue, mapping)
    events = drain_service(scheduler, [worker])
    assert any("dispatched 1 cell(s)" in event for event in events)
    healed = queue.load_job(job.job_id)
    assert healed.state == DONE and healed.cached == 3
    assert store.get(victim.store_key()) is not None


def test_stale_claim_is_reaped_and_requeued(
    queue, store, mapping, clock, drain_service
):
    job = _submit(queue, mapping, shards=2)
    scheduler = Scheduler(queue, store, lease=30.0)
    scheduler.poll_once()
    # A worker claims one shard and silently dies (no heartbeats).
    assert queue.claim("doomed") is not None
    clock.advance(31.0)
    events = scheduler.poll_once()
    assert any("stale" in event for event in events)
    reaped = queue.load_job(job.job_id)
    assert reaped.requeues == 1
    assert reaped.counters.get("worker_losses") == 1
    # The replacement tickets cover the dead shard's cells; a healthy
    # worker then completes the full grid.
    events = drain_service(scheduler, [ServiceWorker(queue, store, name="w2")])
    healed = queue.load_job(job.job_id)
    assert healed.state == DONE
    assert healed.summary()["stored"] == 4 and not healed.lost


def test_requeue_budget_exhaustion_marks_cells_lost(
    queue, store, mapping, clock
):
    job = _submit(queue, mapping, shards=1)
    scheduler = Scheduler(queue, store, lease=30.0, requeue_budget=0)
    scheduler.poll_once()
    assert queue.claim("doomed") is not None
    clock.advance(31.0)
    events = scheduler.poll_once()
    abandoned = queue.load_job(job.job_id)
    assert abandoned.state == DONE  # complete, but with lost cells
    assert len(abandoned.lost) == 4
    assert any("abandoning 4 cell(s)" in event for event in events)
    assert "4 lost" in abandoned.summary_line()


def test_cross_job_overlap_is_not_double_dispatched(queue, store, mapping):
    _submit(queue, mapping, shards=1)
    overlapping = dict(
        mapping, name="svc-overlap", machines=[mapping["machines"][0]]
    )
    other = _submit(queue, overlapping, shards=1)
    scheduler = Scheduler(queue, store)
    scheduler.poll_once()
    # The overlapping job's two cells are already covered by the first
    # job's outstanding ticket, so no second ticket mentions them.
    tickets = queue.iter_tickets()
    dispatched = [data["job"] for _name, data in tickets]
    assert other.job_id not in dispatched
    total_indices = sum(len(data["indices"]) for _n, data in tickets)
    assert total_indices == 4  # the union, each cell exactly once


def test_drained_reflects_outstanding_work(queue, store, mapping):
    scheduler = Scheduler(queue, store)
    assert scheduler.drained()  # empty spool counts as drained
    _submit(queue, mapping)
    assert not scheduler.drained()  # a queued job is outstanding
    scheduler.poll_once()
    assert not scheduler.drained()  # now its tickets are
