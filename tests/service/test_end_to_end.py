"""End-to-end service runs: bit-identity, dedup, and healing guarantees.

Workers run in-process here (sharing one ``ResultStore`` instance), so
``store.writes`` is a global write counter — the "exactly one store
write per cell" guarantees are asserted directly against it.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import WorkloadPool, run_cells, scale_of
from repro.experiments.sweep import SweepSpec, plan_grid
from repro.service import (
    Scheduler,
    ServiceQueue,
    ServiceWorker,
    build_job,
    collect_results,
    job_status,
)
from repro.service.jobs import DONE


def _submit(queue, mapping, shards=2):
    job, outcome = queue.submit(
        build_job(mapping, "quick", shards=shards, retries=1)
    )
    return job, outcome


def test_service_grid_is_bit_identical_to_serial_run(
    queue, store, mapping, drain_service
):
    # The reference: the same grid through the serial sweep path.
    plan = plan_grid(SweepSpec.from_mapping(mapping), scale_of("quick"))
    serial = run_cells(plan.cells(), plan.instructions, WorkloadPool())
    # The service: two workers sharding the same grid.
    job, _ = _submit(queue, mapping, shards=2)
    scheduler = Scheduler(queue, store)
    workers = [ServiceWorker(queue, store, name=f"w{i}") for i in range(2)]
    drain_service(scheduler, workers)
    finished = queue.load_job(job.job_id)
    assert finished.state == DONE
    stored = [store.get(cell.store_key()) for cell in finished.cells]
    assert stored == serial  # SimStats equality is field-for-field
    assert store.writes == len(finished.cells)  # one write per cell


def test_two_submitters_converge_to_one_job_and_one_write_per_cell(
    queue, store, mapping, clock, drain_service
):
    # Two clients race the same submission into one spool.
    other_client = ServiceQueue(queue.root, clock=clock)
    job, outcome = _submit(queue, mapping)
    assert outcome == "new"
    duplicate, outcome = _submit(other_client, mapping)
    assert outcome == "attached" and duplicate.job_id == job.job_id
    scheduler = Scheduler(queue, store)
    workers = [ServiceWorker(queue, store, name=f"w{i}") for i in range(2)]
    drain_service(scheduler, workers)
    assert len(queue.iter_jobs()) == 1
    assert queue.load_job(job.job_id).state == DONE
    assert store.writes == 4  # zero double-simulations


def test_overlapping_jobs_share_cells_without_double_simulation(
    queue, store, mapping, drain_service
):
    disjoint = dict(mapping, name="svc-b", machines=["r10(rob=48)"])
    overlap = dict(mapping, name="svc-c")  # same grid, different name
    jobs = [
        _submit(queue, m, shards=2)[0] for m in (mapping, disjoint, overlap)
    ]
    unique = 4 + 2  # mapping (4 cells) + disjoint (2); overlap adds none
    scheduler = Scheduler(queue, store)
    workers = [ServiceWorker(queue, store, name=f"w{i}") for i in range(2)]
    drain_service(scheduler, workers)
    for job in jobs:
        assert queue.load_job(job.job_id).state == DONE
    assert store.writes == unique


class DyingWorker(ServiceWorker):
    """Dies (raises out of the poll) after completing *survive* cells,
    leaving its claim abandoned exactly like a killed process would."""

    def __init__(self, *args, survive: int = 1, **kwargs):
        super().__init__(*args, **kwargs)
        self.survive = survive

    def _after_cell(self, job, cell):
        self.survive -= 1
        if self.survive <= 0:
            raise RuntimeError("worker killed mid-shard")


def test_killed_worker_heals_to_a_complete_grid_without_rework(
    queue, store, mapping, clock, drain_service
):
    job, _ = _submit(queue, mapping, shards=2)
    scheduler = Scheduler(queue, store, lease=30.0)
    scheduler.poll_once()
    dying = DyingWorker(queue, store, name="doomed", survive=1)
    with pytest.raises(RuntimeError):
        dying.poll_once()
    # Its claim is now orphaned with one of its cells already stored.
    assert len(queue.iter_claims()) == 1
    assert store.writes == 1
    clock.advance(31.0)
    healthy = ServiceWorker(queue, store, name="healthy")
    drain_service(scheduler, [healthy])
    healed = queue.load_job(job.job_id)
    assert healed.state == DONE
    assert healed.requeues == 1
    assert healed.counters.get("worker_losses") == 1
    assert all(store.validated(cell.store_key()) for cell in healed.cells)
    # The dead worker's completed cell was never re-simulated.
    assert store.writes == len(healed.cells)


def test_status_and_results_reflect_the_finished_job(
    queue, store, mapping, drain_service
):
    job, _ = _submit(queue, mapping)
    scheduler = Scheduler(queue, store)
    drain_service(scheduler, [ServiceWorker(queue, store, name="w1")])
    finished = queue.load_job(job.job_id)
    status = job_status(queue, store, finished)
    assert status["state"] == DONE
    assert status["stored"] == status["cells"] == 4
    assert status["failed"] == status["lost"] == 0
    assert status["shards"] == []  # nothing outstanding
    result, missing = collect_results(queue, store, finished)
    assert missing == 0
    rendered = result.render()
    assert "mean IPC" in rendered and "n/a" not in rendered
