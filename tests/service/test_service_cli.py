"""The CLI service surface: submit / serve --once / status / results."""

from __future__ import annotations

import json

from repro.experiments import cli

GRID = [
    "--machines", "r10(rob=32),dkip(llib=4096)",
    "--workloads", "mcf,swim",
    "--scale", "quick",
    "--instructions", "400",
    "--shards", "2",
]


def _svc(tmp_path):
    return ["--service", str(tmp_path / "svc")]


def test_service_commands_require_a_spool(monkeypatch, capsys):
    monkeypatch.delenv("REPRO_SERVICE", raising=False)
    for command in ("submit", "serve", "status", "results"):
        assert cli.main([command]) == 2
    assert "no service directory configured" in capsys.readouterr().err


def test_submit_requires_a_grid_description(tmp_path, capsys):
    assert cli.main(["submit", *_svc(tmp_path)]) == 2
    assert "needs --machines" in capsys.readouterr().err


def test_submit_serve_status_results_end_to_end(tmp_path, capsys):
    svc = _svc(tmp_path)
    assert cli.main(["submit", *svc, *GRID]) == 0
    out = capsys.readouterr().out
    assert " new " in out
    # The content-addressed dedup: an identical submission attaches.
    assert cli.main(["submit", *svc, *GRID]) == 0
    assert " attached " in capsys.readouterr().out
    # Drain with a scheduler and one real worker process.
    assert cli.main(["serve", *svc, "--workers", "1", "--once"]) == 0
    out = capsys.readouterr().out
    assert "planned: 4 cells" in out and "4 simulated" in out
    # Status renders completion; a bogus prefix is a usage error.
    assert cli.main(["status", *svc]) == 0
    assert "4/4 cells stored" in capsys.readouterr().out
    assert cli.main(["status", "nope", *svc]) == 2
    capsys.readouterr()
    # Results pulls the rendered grid straight from the store.
    assert cli.main(["results", *svc]) == 2  # needs exactly one job id
    capsys.readouterr()
    cli.main(["status", *svc])  # recover the job id for the prefix lookup
    job_prefix = capsys.readouterr().out.split()[1][:8]
    assert cli.main(["results", job_prefix, *svc]) == 0
    out = capsys.readouterr().out
    assert "mean IPC" in out and "n/a" not in out
    # The warm resubmit completes with zero simulations.
    assert cli.main(["submit", *svc, *GRID]) == 0
    capsys.readouterr()
    assert cli.main(["serve", *svc, "--workers", "1", "--once"]) == 0
    assert ", 0 simulated" in capsys.readouterr().out


def test_submit_accepts_scenario_files(tmp_path, capsys):
    scenario = tmp_path / "grid.json"
    scenario.write_text(
        json.dumps(
            {
                "name": "filed",
                "machines": ["r10(rob=32)"],
                "workloads": ["mcf"],
                "instructions": 400,
            }
        )
    )
    assert cli.main(["submit", str(scenario), *_svc(tmp_path)]) == 0
    assert "(filed)" in capsys.readouterr().out
    missing = str(tmp_path / "no.json")
    assert cli.main(["submit", missing, *_svc(tmp_path)]) == 2


def test_submit_rejects_malformed_specs(tmp_path, capsys):
    bad = ["--machines", "r10(rob=32)", "--axes", "broken-chunk"]
    assert cli.main(["submit", *_svc(tmp_path), *bad]) == 2
    assert "malformed" in capsys.readouterr().err
