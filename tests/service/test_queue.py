"""The spool transport: atomic writes, claims, dedup, drain flag."""

from __future__ import annotations

from repro.service import build_job
from repro.service.jobs import DONE, QUEUED, RUNNING
from repro.service.queue import atomic_write_json, read_json


def _job(mapping, name="svc"):
    return build_job(dict(mapping, name=name), "quick", shards=2, retries=1)


def test_atomic_write_leaves_no_tmp_litter(tmp_path):
    path = tmp_path / "spool" / "record.json"
    atomic_write_json(path, {"a": 1})
    atomic_write_json(path, {"a": 2})
    assert read_json(path) == {"a": 2}
    assert list(path.parent.glob("*.tmp.*")) == []


def test_read_json_treats_torn_and_absent_as_none(tmp_path):
    assert read_json(tmp_path / "absent.json") is None
    torn = tmp_path / "torn.json"
    torn.write_text('{"a": ')
    assert read_json(torn) is None
    wrong_shape = tmp_path / "list.json"
    wrong_shape.write_text("[1, 2]")
    assert read_json(wrong_shape) is None


def test_submit_deduplicates_on_content_address(queue, mapping, clock):
    first, outcome = queue.submit(_job(mapping))
    assert outcome == "new" and first.state == QUEUED
    # An identical submission while the first is in flight attaches.
    attached, outcome = queue.submit(_job(mapping))
    assert outcome == "attached"
    assert attached.job_id == first.job_id
    assert len(queue.iter_jobs()) == 1
    # Still attached while running.
    first.state = RUNNING
    queue.save_job(first)
    _, outcome = queue.submit(_job(mapping))
    assert outcome == "attached"
    # Once done, the same submission re-enqueues a fresh record.
    first.state = DONE
    queue.save_job(first)
    clock.advance(10.0)
    again, outcome = queue.submit(_job(mapping))
    assert outcome == "resubmitted"
    assert again.job_id == first.job_id and again.state == QUEUED
    assert again.submitted_at > first.submitted_at


def test_iter_jobs_orders_by_submission_time(queue, mapping, clock):
    late = _job(mapping, name="late")
    early = _job(mapping, name="early")
    queue.submit(early)
    clock.advance(5.0)
    queue.submit(late)
    assert [job.job_id for job in queue.iter_jobs()] == [
        early.job_id, late.job_id
    ]


def test_match_job_needs_a_unique_prefix(queue, mapping):
    job, _ = queue.submit(_job(mapping))
    assert queue.match_job(job.job_id[:8]).job_id == job.job_id
    assert queue.match_job("definitely-not-a-digest") is None
    # The empty prefix matches every job: ambiguous once there are two.
    queue.submit(_job(mapping, name="other"))
    assert queue.match_job("") is None


def test_claim_is_exclusive_and_heartbeats(queue, mapping, clock):
    job, _ = queue.submit(_job(mapping))
    for part, indices in enumerate(([0, 2], [1, 3], [4])):
        queue.write_ticket(job.job_id, 0, part, indices)
    assert len(queue.iter_tickets()) == 3
    seen = []
    for _ in range(3):
        claim = queue.claim("w1")
        assert claim is not None and claim["worker"] == "w1"
        assert claim["heartbeat"] == clock()
        seen.append(claim["name"])
    assert queue.claim("w2") is None  # nothing left to claim
    assert sorted(seen) == sorted(name for name, _ in queue.iter_claims())
    assert queue.iter_tickets() == []
    # Heartbeats move with the clock; finishing retires the claim.
    name, claim = queue.iter_claims()[0]
    clock.advance(7.0)
    claim["name"] = name
    queue.heartbeat(claim)
    assert dict(queue.iter_claims())[name]["heartbeat"] == clock()
    queue.finish_claim(claim)
    assert name not in dict(queue.iter_claims())


def test_claim_skips_tickets_lost_to_a_racing_worker(queue, mapping):
    job, _ = queue.submit(_job(mapping))
    queue.write_ticket(job.job_id, 0, 0, [0])
    queue.write_ticket(job.job_id, 0, 1, [1])
    # Simulate another worker winning the first rename.
    first = sorted(queue.shards_dir.glob("*.json"))[0]
    first.unlink()
    claim = queue.claim("w1")
    assert claim is not None and claim["part"] == 1


def test_reports_are_scoped_per_job(queue, mapping):
    job_a, _ = queue.submit(_job(mapping, name="a"))
    job_b, _ = queue.submit(_job(mapping, name="b"))
    claim = {"name": queue.ticket_name(job_a.job_id, 0, 0)}
    queue.write_report(claim, {"completed": 2})
    assert [data for _n, data in queue.iter_reports(job_a.job_id)] == [
        {"completed": 2}
    ]
    assert queue.iter_reports(job_b.job_id) == []


def test_stop_flag_round_trip(queue):
    assert not queue.stop_requested()
    queue.request_stop()
    assert queue.stop_requested()
    queue.clear_stop()
    assert not queue.stop_requested()
