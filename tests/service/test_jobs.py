"""Job records: content-addressed ids, round-trips, accounting."""

from __future__ import annotations

import json

import pytest

from repro.service import Job, JobCell, build_job, job_id_for
from repro.service.jobs import DONE, QUEUED

MAPPING = {
    "name": "svc",
    "machines": ["r10(rob=32)", "dkip(llib=4096)"],
    "workloads": ["mcf", "swim"],
    "instructions": 400,
}


def test_job_id_is_content_addressed():
    a = {"name": "s", "machines": ["r10"], "workloads": ["mcf"]}
    b = {"workloads": ["mcf"], "machines": ["r10"], "name": "s"}
    assert job_id_for(a, "quick") == job_id_for(b, "quick")
    assert job_id_for(a, "quick") != job_id_for(a, "full")
    c = dict(a, workloads=["swim"])
    assert job_id_for(a, "quick") != job_id_for(c, "quick")


def test_build_job_canonicalizes_equivalent_spellings():
    # A scalar machines/workloads value and the list form describe the
    # same grid, so they must hash to the same job.
    scalar = {"name": "svc", "machines": "r10(rob=32)", "workloads": "mcf"}
    listed = {"name": "svc", "machines": ["r10(rob=32)"], "workloads": ["mcf"]}
    assert build_job(scalar, "quick").job_id == build_job(listed, "quick").job_id


def test_build_job_rejects_malformed_mappings():
    with pytest.raises(Exception):
        build_job({"name": "svc", "machines": [], "bogus_key": 1}, "quick")


def test_job_round_trips_through_json():
    job = build_job(MAPPING, "quick", shards=3, retries=1)
    job.cells = [JobCell(digest="d1", label="m x w", key={"machine": {}})]
    job.stored = ["d1"]
    job.failures = [{"digest": "d2", "kind": "permanent"}]
    job.lost = ["d3"]
    job.requeues = 2
    job.generation = 3
    job.counters = {"completed": 1}
    job.state = DONE
    again = Job.from_dict(json.loads(json.dumps(job.to_dict())))
    assert again == job


def test_job_from_dict_rejects_unknown_format():
    data = build_job(MAPPING, "quick").to_dict()
    data["format"] = 99
    with pytest.raises(ValueError):
        Job.from_dict(data)


def test_failed_digests_exclude_later_successes():
    job = build_job(MAPPING, "quick")
    job.failures = [
        {"digest": "a", "kind": "permanent"},
        {"digest": "b", "kind": "timeout"},
    ]
    job.stored = ["b"]  # b eventually landed after a retry elsewhere
    assert job.failed_digests() == {"a": "permanent"}


def test_summary_counts_simulated_versus_cached():
    job = build_job(MAPPING, "quick")
    job.cells = [
        JobCell(digest=d, label=d, key={}) for d in ("a", "b", "c", "d")
    ]
    job.stored = ["a", "b", "c"]
    job.cached = 2
    job.failures = [{"digest": "d", "kind": "permanent"}]
    summary = job.summary()
    assert summary == {
        "cells": 4,
        "stored": 3,
        "simulated": 1,
        "cached": 2,
        "failed": 1,
        "lost": 0,
    }
    line = job.summary_line()
    assert "4 cells, 1 simulated, 2 cached, 1 failed" in line
    assert job.state == QUEUED
