"""Report assembly: Markdown structure, embedded SVG, CLI surface."""

import re
import xml.etree.ElementTree as ET

import pytest

from repro.experiments import cli
from repro.report.build import build_report, markdown_table


def test_markdown_table_escapes_pipes_and_formats_floats():
    text = markdown_table(["a", "b"], [["x|y", 1.2345]])
    lines = text.splitlines()
    assert lines[0] == "| a | b |"
    assert "x\\|y" in lines[2] and "1.234" in lines[2]


def _extract_svgs(document):
    return re.findall(r"<svg.*?</svg>", document, flags=re.DOTALL)


@pytest.mark.slow
def test_build_report_single_experiment_structure(tmp_path):
    from repro.store import ResultStore

    store = ResultStore(tmp_path / "cells")
    document = build_report(["table1", "fig13"], "quick", store=store)
    # Standalone: every figure is inline SVG, no external references.
    svgs = _extract_svgs(document)
    assert len(svgs) == 1  # table1 is chartless; fig13 renders bars
    for svg in svgs:
        ET.fromstring(svg)
    assert "http" not in document.replace("http://www.w3.org/2000/svg", "")
    # Each section carries a verdict line; the summary indexes both.
    assert document.count("**Verdict:**") == 2
    assert "| `table1` | Table 1 |" in document
    assert "| `fig13` | Figure 13 |" in document
    # The caveat and regeneration instructions are present.
    assert "Quick-scale caveat" in document
    assert "make reproduce" in document


@pytest.mark.slow
def test_build_report_uses_store_cells(tmp_path):
    from repro.store import ResultStore

    store = ResultStore(tmp_path / "cells")
    build_report(["fig13"], "quick", store=store)
    assert store.writes > 0
    warm = ResultStore(tmp_path / "cells")
    build_report(["fig13"], "quick", store=warm)
    assert warm.writes == 0 and warm.hits > 0


def test_build_report_rejects_unknown_experiment():
    with pytest.raises(ValueError):
        build_report(["fig99"], "quick")


@pytest.mark.slow
def test_cli_report_subcommand_writes_document(tmp_path, capsys):
    out = tmp_path / "R.md"
    code = cli.main(
        [
            "report",
            "table1",
            "fig13",
            "--scale",
            "quick",
            "--store",
            str(tmp_path / "cells"),
            "--out",
            str(out),
        ]
    )
    assert code == 0
    assert "wrote" in capsys.readouterr().out
    document = out.read_text(encoding="utf-8")
    assert document.count("## `") >= 2
    assert "<svg" in document


def test_cli_report_all_alias_builds_every_experiment(tmp_path, monkeypatch):
    captured = {}

    def fake_build_report(names, scale, store=None, force=False):
        captured["names"] = names
        return "# stub\n"

    import repro.report

    monkeypatch.setattr(repro.report, "build_report", fake_build_report)
    out = tmp_path / "R.md"
    assert cli.main(["report", "all", "--out", str(out)]) == 0
    assert captured["names"] is None  # None = every registered experiment
    assert out.read_text() == "# stub\n"


@pytest.mark.slow
def test_fig10_variants_do_not_share_a_name(tmp_path):
    from repro.experiments.registry import get_experiment

    fp = get_experiment("fig10")("quick")
    intres = get_experiment("fig10int")("quick")
    assert fp.name == "fig10" and intres.name == "fig10int"
    # Distinct names mean --csv/--json exports cannot clobber each other.
    assert fp.write_csv(str(tmp_path)) != intres.write_csv(str(tmp_path))


def test_cli_report_unknown_experiment_exits_2(tmp_path, capsys):
    code = cli.main(["report", "fig99", "--out", str(tmp_path / "R.md")])
    assert code == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_list_shows_descriptions_and_paper_mapping(capsys):
    assert cli.main(["--list"]) == 0
    out = capsys.readouterr().out
    assert re.search(r"fig9\s+Figure 9\s+Headline IPC comparison", out)
    assert re.search(r"ablation-timer\s+design study", out)
