"""Spec extraction: parsing, series/group extractors and check metrics."""

import pytest

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import REGISTRY
from repro.report.spec import (
    cell,
    cell_ratio,
    max_row_ratio,
    columns_as_series,
    long_rows_as_groups,
    parse_axis_value,
    parse_numeric,
    row_count,
    row_span_ratio,
    rows_as_series,
    single_series,
    wide_rows_as_groups,
)


@pytest.mark.parametrize(
    ("text", "expected"),
    [
        ("rob-32", 32.0),
        ("rob-4096", 4096.0),
        ("64KB", 64.0),
        ("4MB", 4096.0),
        ("INO", 1.0),
        ("OOO-40", 40.0),
        (128, 128.0),
        (2.5, 2.5),
        ("memory", None),
        ("sweep gain", None),
        ("CP% 64K→4M", None),
        ("R10-256", None),  # embedded model number is not a coordinate
    ],
)
def test_parse_axis_value(text, expected):
    assert parse_axis_value(text) == expected


@pytest.mark.parametrize(
    ("value", "pick", "expected"),
    [
        (1.5, "first", 1.5),
        ("1.55x", "first", 1.55),
        ("67%→77%", "last", 0.77),
        ("67%→77%", "first", 0.67),
        ("-", "first", None),
        (True, "first", None),
        ("MEM-400", "first", 400.0),  # hyphen after alnum = separator
        ("-400", "first", -400.0),    # leading minus still a sign
    ],
)
def test_parse_numeric(value, pick, expected):
    assert parse_numeric(value, pick=pick) == expected


SWEEP = ExperimentResult(
    name="figX",
    title="t",
    headers=["memory", "rob-32", "rob-128", "sweep gain"],
    rows=[["MEM-400", 0.5, 1.5, "3.00x"], ["L1-2", 2.0, 2.0, "1.00x"]],
)

GRID = ExperimentResult(
    name="figY",
    title="t",
    headers=["CP config", "MP INO", "MP OOO-40"],
    rows=[["INO", 1.0, 1.1], ["OOO-20", 2.0, 2.2], ["OOO-80", 2.4, 2.6]],
)

LONG = ExperimentResult(
    name="figZ",
    title="t",
    headers=["suite", "machine", "mean IPC"],
    rows=[
        ["SpecFP", "R10-64", 1.0],
        ["SpecFP", "D-KIP-2048", 2.0],
        ["SpecINT", "R10-64", 0.9],
    ],
)


def test_rows_as_series_skips_noncoordinate_columns():
    series = rows_as_series()(SWEEP)
    assert series == {
        "MEM-400": [(32.0, 0.5), (128.0, 1.5)],
        "L1-2": [(32.0, 2.0), (128.0, 2.0)],
    }


def test_columns_as_series_parses_row_labels():
    series = columns_as_series()(GRID)
    assert series["MP INO"] == [(1.0, 1.0), (20.0, 2.0), (80.0, 2.4)]
    assert len(series) == 2


def test_single_series_uses_the_named_columns():
    result = ExperimentResult(
        name="a", title="t", headers=["timer", "rob", "ipc"],
        rows=[[4, 16, 1.0], [8, 32, 1.2]],
    )
    assert single_series("s", x_col=0, y_col=2)(result) == {
        "s": [(4.0, 1.0), (8.0, 1.2)]
    }


def test_long_rows_as_groups():
    groups = long_rows_as_groups(0, 1, 2)(LONG)
    assert groups["SpecFP"] == {"R10-64": 1.0, "D-KIP-2048": 2.0}
    assert groups["SpecINT"] == {"R10-64": 0.9}


def test_wide_rows_as_groups():
    result = ExperimentResult(
        name="b", title="t", headers=["bench", "instr", "regs"],
        rows=[["mcf", 158, 79], ["gcc", 116, 47]],
    )
    groups = wide_rows_as_groups(0, {"instructions": 1, "registers": 2})(result)
    assert groups["mcf"] == {"instructions": 158.0, "registers": 79.0}


def test_cell_and_cell_ratio():
    ipc = cell("mean IPC", suite="SpecFP", machine="D-KIP-2048")
    assert ipc(LONG) == 2.0
    speedup = cell_ratio(
        ipc, cell("mean IPC", suite="SpecFP", machine="R10-64")
    )
    assert speedup(LONG) == 2.0
    assert cell("mean IPC", suite="SpecFP", machine="nope")(LONG) is None
    assert cell("missing col", suite="SpecFP")(LONG) is None


def test_row_span_ratio_ignores_non_numeric_cells():
    assert row_span_ratio("MEM-400")(SWEEP) == 3.0
    assert row_span_ratio("absent")(SWEEP) is None


def test_max_row_ratio_is_per_row_worst_case():
    result = ExperimentResult(
        name="c", title="t", headers=["bench", "max instructions", "max registers"],
        rows=[["mcf", 158, 79], ["gcc", 20, 35], ["eon", 0, 0]],
    )
    # gcc violates the claim (35/20) even though mcf has the larger peaks;
    # the zero-instruction row is skipped rather than dividing by zero.
    assert max_row_ratio("max registers", "max instructions")(result) == 35 / 20
    assert max_row_ratio("max registers", "missing")(result) is None


def test_row_count():
    assert row_count()(LONG) == 3.0


def test_every_registered_experiment_has_a_spec_and_paper_mapping():
    for name, info in REGISTRY.items():
        assert info.description, name
        assert info.paper, name
        assert info.spec is not None, name
        assert info.spec.kind in ("line", "bars", "table"), name
        if info.spec.kind == "line":
            assert info.spec.series is not None, name
        if info.spec.kind == "bars":
            assert info.spec.groups is not None, name
