"""Verdict grading: match/at_least/at_most modes and aggregation."""

import pytest

from repro.experiments.common import ExperimentResult
from repro.report.spec import Check, FigureSpec
from repro.report.verdict import (
    DEVIATES,
    NO_DATA,
    PASS,
    SHAPE_ONLY,
    WITHIN,
    evaluate,
    evaluate_check,
)

RESULT = ExperimentResult(name="x", title="t", headers=["h"], rows=[[1]])


def _check(paper, value, mode="match", **kw):
    return Check("c", paper, lambda result: value, mode=mode, **kw)


@pytest.mark.parametrize(
    ("paper", "value", "status"),
    [
        (1.0, 1.0, PASS),
        (1.0, 1.14, PASS),       # within ±15%
        (1.0, 1.30, WITHIN),     # within ±40%
        (1.0, 1.80, DEVIATES),
        (1.0, 0.55, DEVIATES),
        (1.0, None, NO_DATA),
    ],
)
def test_match_mode_grades_by_relative_error(paper, value, status):
    assert evaluate_check(_check(paper, value), RESULT).status == status


def test_at_least_passes_on_or_above_the_bound():
    assert evaluate_check(_check(2.0, 5.0, "at_least"), RESULT).status == PASS
    assert evaluate_check(_check(2.0, 2.0, "at_least"), RESULT).status == PASS
    # Falling short by less than warn_rel is within-tolerance.
    assert evaluate_check(_check(2.0, 1.5, "at_least"), RESULT).status == WITHIN
    assert evaluate_check(_check(2.0, 0.5, "at_least"), RESULT).status == DEVIATES


def test_at_most_mirrors_at_least():
    assert evaluate_check(_check(1.0, 0.5, "at_most"), RESULT).status == PASS
    assert evaluate_check(_check(1.0, 1.2, "at_most"), RESULT).status == WITHIN
    assert evaluate_check(_check(1.0, 2.5, "at_most"), RESULT).status == DEVIATES


def test_unknown_mode_raises():
    with pytest.raises(ValueError):
        evaluate_check(_check(1.0, 1.0, "exactly"), RESULT)


def test_figure_verdict_is_worst_check():
    spec = FigureSpec(
        kind="table",
        caption="c",
        checks=(_check(1.0, 1.0), _check(1.0, 1.3), _check(1.0, 1.0)),
    )
    verdict = evaluate(spec, RESULT)
    assert verdict.status == WITHIN
    assert len(verdict.checks) == 3


def test_no_checks_means_shape_only():
    assert evaluate(FigureSpec(kind="line", caption="c"), RESULT).status == SHAPE_ONLY
    assert evaluate(None, RESULT).status == SHAPE_ONLY


def test_describe_mentions_values_and_note():
    check = Check("ipc ratio", 2.0, lambda r: 1.9, note="why it matters")
    text = evaluate_check(check, RESULT).describe()
    assert "1.9" in text and "2" in text and "why it matters" in text
    missing = Check("gone", 2.0, lambda r: None)
    assert "no data" in evaluate_check(missing, RESULT).describe()
