"""Unit tests for the load/store queue."""

import pytest

from repro.isa import InstructionBuilder
from repro.pipeline.entry import InFlight
from repro.pipeline.lsq import FORWARD_LATENCY, LoadStoreQueue


def mem_entry(instr):
    return InFlight(instr, fetch_cycle=0)


def test_capacity():
    lsq = LoadStoreQueue(2)
    lsq.allocate()
    lsq.allocate()
    assert not lsq.has_space
    with pytest.raises(RuntimeError):
        lsq.allocate()
    lsq.release()
    assert lsq.has_space
    lsq.release()
    with pytest.raises(RuntimeError):
        lsq.release()


def test_store_to_load_forwarding():
    lsq = LoadStoreQueue(8)
    b = InstructionBuilder()
    store = mem_entry(b.store(1, 2, addr=0x100))
    load = mem_entry(b.load(3, 2, addr=0x100))
    lsq.store_issued(store)
    assert lsq.forwarding_store(load)
    assert lsq.load_latency_if_forwarded(load) == FORWARD_LATENCY
    assert lsq.forwarded_loads == 1


def test_no_forwarding_from_younger_store():
    lsq = LoadStoreQueue(8)
    b = InstructionBuilder()
    load = mem_entry(b.load(3, 2, addr=0x100))     # seq 0
    store = mem_entry(b.store(1, 2, addr=0x100))   # seq 1 (younger)
    lsq.store_issued(store)
    assert not lsq.forwarding_store(load)
    assert lsq.load_latency_if_forwarded(load) is None


def test_no_forwarding_on_different_address():
    lsq = LoadStoreQueue(8)
    b = InstructionBuilder()
    store = mem_entry(b.store(1, 2, addr=0x200))
    load = mem_entry(b.load(3, 2, addr=0x100))
    lsq.store_issued(store)
    assert not lsq.forwarding_store(load)


def test_commit_closes_forwarding_window():
    lsq = LoadStoreQueue(8)
    b = InstructionBuilder()
    store = mem_entry(b.store(1, 2, addr=0x100))
    load = mem_entry(b.load(3, 2, addr=0x100))
    lsq.store_issued(store)
    lsq.store_committed(store)
    assert not lsq.forwarding_store(load)


def test_multiple_stores_same_address():
    lsq = LoadStoreQueue(8)
    b = InstructionBuilder()
    s1 = mem_entry(b.store(1, 2, addr=0x100))
    s2 = mem_entry(b.store(1, 2, addr=0x100))
    load = mem_entry(b.load(3, 2, addr=0x100))
    lsq.store_issued(s1)
    lsq.store_issued(s2)
    lsq.store_committed(s1)
    assert lsq.forwarding_store(load)
    lsq.store_committed(s2)
    assert not lsq.forwarding_store(load)


def test_commit_of_unissued_store_is_harmless():
    lsq = LoadStoreQueue(8)
    b = InstructionBuilder()
    store = mem_entry(b.store(1, 2, addr=0x100))
    lsq.store_committed(store)  # no crash
