"""Unit tests for the fetch unit's stall-until-resolve model."""

from repro.branch import AlwaysTakenPredictor, make_predictor
from repro.isa import InstructionBuilder
from repro.pipeline.fetch import FetchUnit
from repro.sim.stats import SimStats

from tests.conftest import make_loop


def make_fetch(trace, predictor=None, width=4, buffer_size=16, penalty=5):
    stats = SimStats()
    predictor = predictor or AlwaysTakenPredictor()
    return FetchUnit(iter(trace), width, buffer_size, predictor, penalty, stats), stats


def test_fetches_width_per_cycle():
    b = InstructionBuilder()
    trace = [b.alu(1, 2, 3) for _ in range(12)]
    fetch, stats = make_fetch(trace)
    fetch.cycle(0)
    assert len(fetch.buffer) == 4
    fetch.cycle(1)
    assert len(fetch.buffer) == 8


def test_buffer_capacity_respected():
    b = InstructionBuilder()
    trace = [b.alu(1, 2, 3) for _ in range(100)]
    fetch, _ = make_fetch(trace, buffer_size=6)
    fetch.cycle(0)
    fetch.cycle(1)
    assert len(fetch.buffer) == 6


def test_exhaustion_detected():
    b = InstructionBuilder()
    fetch, _ = make_fetch([b.alu(1, 2, 3)])
    fetch.cycle(0)
    fetch.cycle(1)
    assert fetch.exhausted


def test_taken_branch_ends_fetch_group():
    trace = make_loop(iterations=3, body_alu=1, taken=True)
    fetch, _ = make_fetch(trace)   # always-taken predictor: no mispredicts
    fetch.cycle(0)
    assert len(fetch.buffer) == 2  # alu + taken branch end the group


def test_mispredict_stalls_until_resolved():
    trace = make_loop(iterations=2, body_alu=1, taken=False)
    fetch, stats = make_fetch(trace)  # always-taken => always mispredicted
    fetch.cycle(0)
    assert fetch.stalled
    assert stats.branch_mispredictions == 1
    buffered = len(fetch.buffer)
    fetch.cycle(1)
    assert len(fetch.buffer) == buffered  # no progress while stalled
    assert stats.fetch_stall_cycles == 1


def test_resolution_resumes_after_redirect_penalty():
    trace = make_loop(iterations=2, body_alu=1, taken=False)
    fetch, _ = make_fetch(trace, penalty=5)
    fetch.cycle(0)
    seq = fetch.waiting_seq
    assert seq is not None
    fetch.on_branch_resolved(seq, resolve_cycle=10)
    assert not fetch.stalled
    fetch.cycle(12)               # still inside the redirect shadow
    assert len(fetch.buffer) == 2
    fetch.cycle(15)               # 10 + 5 penalty => may fetch again
    assert len(fetch.buffer) > 2


def test_unrelated_resolution_ignored():
    trace = make_loop(iterations=2, body_alu=1, taken=False)
    fetch, _ = make_fetch(trace)
    fetch.cycle(0)
    fetch.on_branch_resolved(999_999, resolve_cycle=3)
    assert fetch.stalled


def test_predictor_updates_counted():
    trace = make_loop(iterations=3, body_alu=0, taken=True)
    fetch, stats = make_fetch(trace, predictor=make_predictor("perceptron"))
    for cycle in range(10):
        fetch.cycle(cycle)
        while fetch.pop() is not None:
            pass
    assert stats.branch_predictions >= 2


def test_pop_and_peek():
    b = InstructionBuilder()
    trace = [b.alu(1, 2, 3), b.alu(2, 3, 4)]
    fetch, _ = make_fetch(trace)
    fetch.cycle(0)
    assert fetch.peek().seq == 0
    assert fetch.pop().seq == 0
    assert fetch.pop().seq == 1
    assert fetch.pop() is None
