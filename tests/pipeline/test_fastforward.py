"""Differential suite for the quiescence-aware cycle-skipping engine.

The fast-forward run loop must be a pure simulator speedup: every
statistic a run produces — cycles, committed, IPC, and all the per-cycle
stall counters — must be bit-identical to the tick-every-cycle reference
mode, for every core type and memory system.  These tests enforce that,
plus the reworked deadlock detection: a machine that goes quiescent with
no pending completion events must raise immediately instead of ticking to
the ``max_cycles`` bound.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.branch import make_predictor
from repro.machines import parse_machine
from repro.memory import MemoryHierarchy, warm_caches
from repro.memory.configs import TABLE1_CONFIGS
from repro.pipeline.core import DeadlockError
from repro.sim.config import DKIP_2048, KILO_1024, R10_64, RunaheadConfig
from repro.sim.runner import build_core
from repro.sim.stats import SimStats
from repro.workloads import get_workload

#: Kept small enough for CI but long enough that every machine enters —
#: and leaves — memory-bound quiescent phases on the slow configurations.
NUM_INSTRUCTIONS = 1200

CORES = {
    "r10": R10_64,
    "kilo": KILO_1024,
    "runahead": RunaheadConfig(),
    "dkip": DKIP_2048,
    # Predictor-axis OoO: misprediction-stall accounting must replay
    # bit-exactly through the skip hooks.
    "ooo-bp": parse_machine("ooo-bp(bp=gshare-12,rob=32)"),
    # Dual-core with a co-runner: L2-arbitration interleavings must be
    # identical with and without cycle skipping.
    "dual": parse_machine("dual(rob=32,co=synth(chase=8),bp=gshare-10)"),
}

MEMORIES = ("MEM-100", "MEM-400", "L2-11")

WORKLOADS = ("mcf", "swim")  # one SpecINT pointer-chaser, one SpecFP streamer


def run_once(config, workload_name: str, memory_name: str, fast_forward: bool):
    workload = get_workload(workload_name)
    trace = workload.trace(NUM_INSTRUCTIONS)
    hierarchy = MemoryHierarchy(TABLE1_CONFIGS[memory_name])
    warm_caches(hierarchy, workload.regions)
    predictor = make_predictor(getattr(config, "predictor", None) or "perceptron")
    core = build_core(config, iter(trace), hierarchy, predictor, SimStats(config="diff"))
    stats = core.run(len(trace), fast_forward=fast_forward)
    return stats, core


@pytest.mark.parametrize("workload_name", WORKLOADS)
@pytest.mark.parametrize("memory_name", MEMORIES)
@pytest.mark.parametrize("core_name", sorted(CORES))
def test_fast_forward_is_bit_identical(core_name, memory_name, workload_name):
    config = CORES[core_name]
    reference, _ = run_once(config, workload_name, memory_name, fast_forward=False)
    fast, _ = run_once(config, workload_name, memory_name, fast_forward=True)
    assert fast.cycles == reference.cycles
    assert fast.committed == reference.committed
    assert fast.ipc == reference.ipc
    # The strong form: every stall counter, cache statistic and locality
    # split must match too (the skip hooks replay per-cycle accounting).
    mismatches = {
        f.name: (getattr(reference, f.name), getattr(fast, f.name))
        for f in dataclasses.fields(SimStats)
        if getattr(reference, f.name) != getattr(fast, f.name)
    }
    assert not mismatches, f"stats diverged under fast-forward: {mismatches}"


def test_fast_forward_actually_skips_cycles():
    """Guard against the differential suite passing vacuously: on a
    pointer-chasing workload with 400-cycle memory the machine must be
    quiescent most of the time."""
    stats, core = run_once(R10_64, "mcf", "MEM-400", fast_forward=True)
    assert core.cycles_fast_forwarded > stats.cycles // 2


def test_fast_forward_defaults_on():
    workload = get_workload("mcf")
    trace = workload.trace(400)
    hierarchy = MemoryHierarchy(TABLE1_CONFIGS["MEM-400"])
    core = build_core(
        R10_64, iter(trace), hierarchy, make_predictor("perceptron"), SimStats()
    )
    core.run(len(trace))
    assert core.cycles_fast_forwarded > 0


# ----------------------------------------------------------------------
# Deadlock detection
# ----------------------------------------------------------------------


def _stuck_core():
    """An R10 core whose completions are swallowed — a modelling-bug stand-in
    that stalls with no events pending."""
    from repro.baselines.ooo import R10Core

    class NoCompletionCore(R10Core):
        def schedule_completion(self, entry, done_cycle):
            entry.done_cycle = done_cycle  # never enqueued: never completes

    workload = get_workload("mcf")
    trace = workload.trace(64)
    hierarchy = MemoryHierarchy(TABLE1_CONFIGS["MEM-400"])
    return NoCompletionCore(
        iter(trace), R10_64, hierarchy, make_predictor("perceptron"), SimStats()
    )


def test_eventless_stall_raises_deadlock_immediately():
    core = _stuck_core()
    with pytest.raises(DeadlockError) as excinfo:
        # An enormous bound: only true no-event deadlock detection can
        # terminate this run in reasonable time.
        core.run(64, max_cycles=10**9, fast_forward=True)
    assert core.now < 10_000  # detected at quiescence, not at the bound
    assert "quiescent" in str(excinfo.value)


def test_reference_mode_still_bounds_deadlocks():
    core = _stuck_core()
    with pytest.raises(DeadlockError):
        core.run(64, max_cycles=5_000, fast_forward=False)
