"""Unit tests for the cycle-driver base class (event wheel & wakeup)."""

import pytest

from repro.isa import InstructionBuilder
from repro.memory import DEFAULT_MEMORY, MemoryHierarchy
from repro.pipeline.core import CycleCore, DeadlockError
from repro.pipeline.entry import InFlight
from repro.sim.stats import SimStats


class Recorder:
    def __init__(self):
        self.woken = []

    def wake(self, entry):
        self.woken.append(entry)


class TrivialCore(CycleCore):
    """Commits one instruction per step (for run-loop testing)."""

    def step(self):
        self.process_completions()
        self.committed += 1


class StuckCore(CycleCore):
    def step(self):
        pass


def make_core(cls=TrivialCore):
    return cls("test", MemoryHierarchy(DEFAULT_MEMORY), SimStats())


def test_run_counts_cycles():
    core = make_core()
    stats = core.run(10)
    assert stats.committed == 10
    assert stats.cycles == 10


def test_deadlock_guard():
    core = make_core(StuckCore)
    with pytest.raises(DeadlockError):
        core.run(1, max_cycles=100)


def test_completion_event_wakes_waiters():
    core = make_core()
    b = InstructionBuilder()
    producer = InFlight(b.alu(1, 2, 3), fetch_cycle=0)
    waiter = InFlight(b.alu(2, 1, 1), fetch_cycle=0)
    recorder = Recorder()
    waiter.unready = 1
    waiter.owner = recorder
    producer.add_waiter(waiter)
    core.schedule_completion(producer, 3)
    core.now = 3
    core.process_completions()
    assert producer.executed
    assert waiter.unready == 0
    assert recorder.woken == [waiter]


def test_completion_only_fires_at_scheduled_cycle():
    core = make_core()
    b = InstructionBuilder()
    entry = InFlight(b.alu(1, 2, 3), fetch_cycle=0)
    core.schedule_completion(entry, 5)
    core.now = 4
    core.process_completions()
    assert not entry.executed
    core.now = 5
    core.process_completions()
    assert entry.executed


def test_wakeup_waits_for_all_sources():
    core = make_core()
    b = InstructionBuilder()
    p1 = InFlight(b.alu(1, 30, 30), fetch_cycle=0)
    p2 = InFlight(b.alu(2, 30, 30), fetch_cycle=0)
    waiter = InFlight(b.alu(3, 1, 2), fetch_cycle=0)
    recorder = Recorder()
    waiter.unready = 2
    waiter.owner = recorder
    p1.add_waiter(waiter)
    p2.add_waiter(waiter)
    core.schedule_completion(p1, 1)
    core.schedule_completion(p2, 2)
    core.now = 1
    core.process_completions()
    assert recorder.woken == []
    core.now = 2
    core.process_completions()
    assert recorder.woken == [waiter]


def test_memory_stats_copied_at_end():
    core = make_core()
    core.hierarchy.access(0x40)
    stats = core.run(1)
    assert stats.l1_misses == 1
    assert stats.memory_accesses == 1
