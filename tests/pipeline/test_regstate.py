"""Unit tests for register→producer tracking."""

from repro.isa import Instruction, InstructionBuilder, OpClass
from repro.pipeline.entry import InFlight
from repro.pipeline.regstate import RegisterTracker


def entry_for(instr):
    e = InFlight(instr, fetch_cycle=0)
    return e


def test_define_and_lookup():
    t = RegisterTracker()
    b = InstructionBuilder()
    producer = entry_for(b.alu(1, 2, 3))
    t.define(producer)
    assert t.producer_of(1) is producer


def test_executed_producer_reads_as_architectural():
    t = RegisterTracker()
    b = InstructionBuilder()
    producer = entry_for(b.alu(1, 2, 3))
    t.define(producer)
    producer.executed = True
    assert t.producer_of(1) is None
    assert t.raw_producer(1) is producer


def test_link_sources_counts_unready():
    t = RegisterTracker()
    b = InstructionBuilder()
    p1 = entry_for(b.alu(1, 30, 30))
    p2 = entry_for(b.alu(2, 30, 30))
    t.define(p1)
    t.define(p2)
    consumer = entry_for(b.alu(3, 1, 2))
    t.link_sources(consumer)
    assert consumer.unready == 2
    assert set(consumer.sources) == {p1, p2}
    assert consumer in (p1.waiters or [])
    assert consumer in (p2.waiters or [])


def test_link_sources_skips_executed_producers():
    t = RegisterTracker()
    b = InstructionBuilder()
    p = entry_for(b.alu(1, 30, 30))
    t.define(p)
    p.executed = True
    consumer = entry_for(b.alu(3, 1, 1))
    t.link_sources(consumer)
    assert consumer.unready == 0
    assert consumer.sources == ()


def test_zero_registers_never_linked():
    t = RegisterTracker()
    b = InstructionBuilder()
    consumer = entry_for(
        Instruction(seq=9, pc=0, op=OpClass.INT_ALU, dest=1, srcs=(31,))
    )
    t.link_sources(consumer)
    assert consumer.unready == 0


def test_redefinition_supersedes_producer():
    t = RegisterTracker()
    b = InstructionBuilder()
    old = entry_for(b.alu(1, 30, 30))
    new = entry_for(b.alu(1, 30, 30))
    t.define(old)
    t.define(new)
    consumer = entry_for(b.alu(2, 1, 1))
    t.link_sources(consumer)
    # The same producer feeds both sources: linked (and woken) twice.
    assert consumer.sources == (new, new)
    assert consumer.unready == 2


def test_clear_forgets_everything():
    t = RegisterTracker()
    b = InstructionBuilder()
    t.define(entry_for(b.alu(1, 2, 3)))
    t.clear()
    assert t.producer_of(1) is None
