"""Unit tests for functional-unit arbitration."""

from repro.isa import OpClass
from repro.pipeline.fu import FuKind, FuPool, fu_kind_of
from repro.sim.config import FuConfig


def test_op_to_kind_mapping():
    assert fu_kind_of(OpClass.INT_ALU) == FuKind.ALU
    assert fu_kind_of(OpClass.BRANCH) == FuKind.ALU
    assert fu_kind_of(OpClass.INT_MUL) == FuKind.IMUL
    assert fu_kind_of(OpClass.FP_ADD) == FuKind.FPADD
    assert fu_kind_of(OpClass.FP_DIV) == FuKind.FPMUL
    assert fu_kind_of(OpClass.LOAD) == FuKind.MEM
    assert fu_kind_of(OpClass.FP_STORE) == FuKind.MEM


def test_every_op_class_has_a_unit():
    for op in OpClass:
        assert isinstance(fu_kind_of(op), FuKind)


def test_limits_enforced_per_cycle():
    pool = FuPool(FuConfig(int_alu=2, int_mul=1))
    assert pool.try_take(FuKind.ALU)
    assert pool.try_take(FuKind.ALU)
    assert not pool.try_take(FuKind.ALU)
    assert pool.try_take(FuKind.IMUL)
    assert not pool.try_take(FuKind.IMUL)


def test_new_cycle_resets_slots():
    pool = FuPool(FuConfig(int_alu=1))
    assert pool.try_take(FuKind.ALU)
    assert not pool.try_take(FuKind.ALU)
    pool.new_cycle()
    assert pool.try_take(FuKind.ALU)


def test_kinds_are_independent():
    pool = FuPool(FuConfig(int_alu=1, fp_add=1))
    assert pool.try_take(FuKind.ALU)
    assert pool.try_take(FuKind.FPADD)


def test_available_counts():
    pool = FuPool(FuConfig(mem_ports=2))
    assert pool.available(FuKind.MEM) == 2
    pool.try_take(FuKind.MEM)
    assert pool.available(FuKind.MEM) == 1


def test_table2_default_unit_mix():
    pool = FuPool(FuConfig())
    assert pool.available(FuKind.ALU) == 4
    assert pool.available(FuKind.IMUL) == 1
    assert pool.available(FuKind.FPADD) == 4
    assert pool.available(FuKind.FPMUL) == 1
    assert pool.available(FuKind.MEM) == 2
