"""Unit and property tests for issue queues (OOO and in-order)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import Instruction, OpClass
from repro.pipeline.entry import InFlight
from repro.pipeline.queues import IssueQueue
from repro.sim.config import SchedulerPolicy


def make_entry(seq, unready=0):
    instr = Instruction(seq=seq, pc=seq * 4, op=OpClass.INT_ALU, dest=1, srcs=())
    entry = InFlight(instr, fetch_cycle=0)
    entry.unready = unready
    return entry


def ooo(size=8):
    return IssueQueue("q", size, SchedulerPolicy.OUT_OF_ORDER)


def ino(size=8):
    return IssueQueue("q", size, SchedulerPolicy.IN_ORDER)


def test_ooo_issues_ready_oldest_first():
    q = ooo()
    entries = [make_entry(2), make_entry(0), make_entry(1)]
    for e in entries:
        q.add(e)
    order = []
    while (e := q.next_issuable(0)) is not None:
        q.take(e)
        order.append(e.seq)
    assert order == [0, 1, 2]


def test_ooo_waiting_entries_need_wake():
    q = ooo()
    waiting = make_entry(0, unready=1)
    q.add(waiting)
    assert q.next_issuable(0) is None
    waiting.unready = 0
    q.wake(waiting)
    assert q.next_issuable(0) is waiting


def test_ino_head_blocks_queue():
    q = ino()
    head = make_entry(0, unready=1)
    ready = make_entry(1)
    q.add(head)
    q.add(ready)
    assert q.next_issuable(0) is None     # head not ready => nothing issues
    head.unready = 0
    assert q.next_issuable(0) is head


def test_capacity_tracking():
    q = ooo(size=2)
    q.add(make_entry(0))
    q.add(make_entry(1))
    assert not q.has_space
    with pytest.raises(RuntimeError):
        q.add(make_entry(2))
    e = q.next_issuable(0)
    q.take(e)
    assert q.has_space


def test_take_marks_issued_and_frees_slot():
    q = ooo(size=1)
    e = make_entry(0)
    q.add(e)
    q.take(q.next_issuable(0))
    assert e.issued
    assert q.occupancy == 0
    assert q.next_issuable(0) is None


def test_remove_detaches_waiting_entry():
    q = ooo(size=2)
    e = make_entry(0, unready=1)
    q.add(e)
    q.remove(e)
    assert q.occupancy == 1 - 1
    assert e.owner is None


def test_ino_skips_detached_entries():
    q = ino()
    first = make_entry(0, unready=1)
    second = make_entry(1)
    q.add(first)
    q.add(second)
    q.remove(first)           # Analyze moved it to the LLIB
    assert q.next_issuable(0) is second


def test_defer_allows_next_candidate():
    q = ooo()
    blocked = make_entry(0)
    other = make_entry(1)
    q.add(blocked)
    q.add(other)
    assert q.next_issuable(0) is blocked
    q.defer(blocked)
    assert q.next_issuable(0) is other
    q.wake(blocked)           # re-armed for next cycle
    assert q.next_issuable(0) is blocked


def test_add_sets_owner():
    q = ooo()
    e = make_entry(0)
    q.add(e)
    assert e.owner is q


def test_drain_returns_unissued():
    q = ooo()
    a, b = make_entry(0), make_entry(1)
    q.add(a)
    q.add(b)
    q.take(q.next_issuable(0))
    drained = q.drain()
    assert drained == [b]
    assert q.occupancy == 0


@settings(max_examples=40, deadline=None)
@given(st.permutations(list(range(10))))
def test_property_ooo_select_is_age_ordered(order):
    """Whatever the insertion order, ready instructions issue oldest first."""
    q = ooo(size=16)
    for seq in order:
        q.add(make_entry(seq))
    issued = []
    while (e := q.next_issuable(0)) is not None:
        q.take(e)
        issued.append(e.seq)
    assert issued == sorted(issued)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.booleans(), min_size=1, max_size=30))
def test_property_ino_is_fifo(ready_flags):
    """In-order queues only ever issue the current head, in FIFO order."""
    q = ino(size=64)
    entries = [make_entry(i, unready=0 if flag else 1) for i, flag in enumerate(ready_flags)]
    for e in entries:
        q.add(e)
    issued = []
    for e in entries:
        head = q.next_issuable(0)
        if head is None:
            break
        assert head.seq == len(issued)
        q.take(head)
        issued.append(head.seq)
    expected = 0
    for flag in ready_flags:
        if not flag:
            break
        expected += 1
    assert len(issued) == expected


# ----------------------------------------------------------------------
# Lazy-removal garbage compaction
# ----------------------------------------------------------------------


def test_ooo_compacts_when_stale_entries_dominate():
    q = ooo(size=256)
    entries = [make_entry(i) for i in range(80)]
    for e in entries:
        q.add(e)
    # Detach most entries without ever touching the head (the D-KIP's
    # Analyze stage does this when it moves instructions to the LLIB on a
    # low-issue-rate run): the lazy drops at the head never fire.
    for e in entries[10:]:
        q.remove(e)
    assert q.compactions >= 1
    # Garbage is bounded: at most the compaction threshold of stale entries
    # can outlive their removal (compaction fires as soon as they dominate).
    from repro.pipeline.queues import COMPACT_THRESHOLD

    assert len(q._ready_heap) <= 10 + COMPACT_THRESHOLD
    # The survivors still issue in seq order.
    order = []
    while (e := q.next_issuable(0)) is not None:
        q.take(e)
        order.append(e.seq)
    assert order == list(range(10))


def test_ino_compacts_when_stale_entries_dominate():
    q = ino(size=256)
    entries = [make_entry(i, unready=1) for i in range(80)]
    for e in entries:
        q.add(e)
    for e in entries[1:74]:
        q.remove(e)
        e.owner = None
    assert q.compactions >= 1
    assert len(q._fifo) == 80 - 73
    assert q.occupancy == 80 - 73


def test_compaction_preserves_waiting_entries():
    q = ooo(size=256)
    keeper = make_entry(999, unready=1)
    q.add(keeper)  # not ready: lives outside the ready heap
    entries = [make_entry(i) for i in range(64)]
    for e in entries:
        q.add(e)
    for e in entries:
        q.remove(e)
    assert q.compactions >= 1
    assert q.occupancy == 1
    # Wakeup still lands the keeper in the (rebuilt) ready heap.
    keeper.unready = 0
    q.wake(keeper)
    assert q.next_issuable(0) is keeper
