"""The resilient executor: retries, deadlines, worker supervision, budget."""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.resilience import (
    PERMANENT,
    RETRYABLE,
    STRICT,
    TIMEOUT,
    CellExecutionError,
    ExecutionPolicy,
    FailureReport,
    ResilientExecutor,
    TransientCellError,
    active_policy,
    active_report,
    classify_exception,
    resilience_context,
    run_attempts,
)

# ----------------------------------------------------------------------
# Worker bodies (module-level so they survive any pickling start method)
# ----------------------------------------------------------------------


def _double(payload):
    return payload * 2


def _fail_on_three(payload):
    if payload == 3:
        raise ValueError("three is right out")
    return payload


def _transient_until_marker(payload):
    marker, value = payload
    if not os.path.exists(marker):
        open(marker, "w").close()
        raise TransientCellError("first attempt is unlucky")
    return value


def _die_until_marker(payload):
    marker, value = payload
    if not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(137)
    return value


def _always_die(payload):
    os._exit(1)


def _sleep_forever(payload):
    time.sleep(60)


def _sleep_if_negative(payload):
    if payload < 0:
        time.sleep(60)
    return payload


def _tasks(payloads):
    return [(i, f"cell-{i}", p) for i, p in enumerate(payloads)]


# ----------------------------------------------------------------------
# Policy and classification
# ----------------------------------------------------------------------


def test_classify_exception_taxonomy():
    from repro.pipeline import DeadlockError

    assert classify_exception(TransientCellError("x")) == RETRYABLE
    assert classify_exception(ConnectionError("x")) == RETRYABLE
    assert classify_exception(DeadlockError("stuck")) == PERMANENT
    assert classify_exception(ValueError("x")) == PERMANENT


def test_backoff_is_exponential_capped_and_jittered():
    policy = ExecutionPolicy(backoff_base=0.1, backoff_cap=0.5)
    rng = random.Random(0)
    for attempt, ceiling in [(1, 0.1), (2, 0.2), (3, 0.4), (4, 0.5), (9, 0.5)]:
        for _ in range(16):
            delay = policy.backoff(attempt, rng)
            assert ceiling / 2 <= delay <= ceiling
    assert ExecutionPolicy(backoff_base=0).backoff(5, rng) == 0.0


def test_strict_policy_is_fail_fast():
    assert STRICT.max_failures == 0
    assert STRICT.cell_timeout is None


def test_resilience_context_nests_and_restores():
    assert active_policy() is STRICT and active_report() is None
    tolerant = ExecutionPolicy(max_failures=None)
    with resilience_context(tolerant) as report:
        assert active_policy() is tolerant and active_report() is report
        inner = ExecutionPolicy(retries=9)
        with resilience_context(inner, report) as inner_report:
            assert active_policy() is inner and inner_report is report
        assert active_policy() is tolerant
    assert active_policy() is STRICT and active_report() is None


# ----------------------------------------------------------------------
# run_attempts (the serial twin)
# ----------------------------------------------------------------------


def test_run_attempts_ok_path_counts_completed():
    report = FailureReport()
    assert run_attempts(0, "cell", lambda: 42, STRICT, report) == 42
    assert report.completed == 1 and report.cells == 1 and not report.failures


def test_run_attempts_retries_transient_then_succeeds():
    report = FailureReport()
    calls = []

    def compute():
        calls.append(1)
        if len(calls) < 3:
            raise TransientCellError("flaky")
        return "done"

    naps = []
    policy = ExecutionPolicy(retries=2)
    result = run_attempts(0, "cell", compute, policy, report, sleep=naps.append)
    assert result == "done" and len(calls) == 3
    assert report.retries == 2 and len(naps) == 2 and not report.failures


def test_run_attempts_permanent_failure_never_retries():
    report = FailureReport()
    policy = ExecutionPolicy(retries=5, max_failures=None)

    def compute():
        raise ValueError("deterministic bug")

    assert run_attempts(0, "the × cell", compute, policy, report) is None
    (failure,) = report.failures
    assert failure.kind == PERMANENT and failure.attempts == 1
    assert failure.error == "ValueError" and "the × cell" in failure.describe()
    assert report.retries == 0


def test_run_attempts_budget_exhaustion_raises_naming_the_cell():
    report = FailureReport()

    def compute():
        raise ValueError("boom")

    with pytest.raises(CellExecutionError, match="m × w × g"):
        run_attempts(0, "m × w × g", compute, STRICT, report)
    assert len(report.failures) == 1


# ----------------------------------------------------------------------
# ResilientExecutor (the supervised pool)
# ----------------------------------------------------------------------


def test_executor_runs_all_tasks_and_streams_results():
    report = FailureReport()
    streamed = []
    executor = ResilientExecutor(_double, jobs=2, report=report)
    results = executor.run(
        _tasks([1, 2, 3, 4]), on_result=lambda i, r: streamed.append((i, r))
    )
    assert results == {0: 2, 1: 4, 2: 6, 3: 8}
    assert sorted(streamed) == [(0, 2), (1, 4), (2, 6), (3, 8)]
    assert report.completed == 4 and report.cells == 4 and not report.failures


def test_executor_permanent_failure_is_tolerated_under_budget():
    report = FailureReport()
    policy = ExecutionPolicy(max_failures=None)
    executor = ResilientExecutor(_fail_on_three, jobs=2, policy=policy, report=report)
    results = executor.run(_tasks([1, 2, 3, 4]))
    assert results == {0: 1, 1: 2, 3: 4}  # index 2 (payload 3) is absent
    (failure,) = report.failures
    assert failure.index == 2 and failure.kind == PERMANENT
    assert failure.error == "ValueError" and "cell-2" in failure.cell
    assert "three is right out" in failure.message
    assert "three is right out" in failure.traceback


def test_executor_strict_budget_aborts_but_keeps_streamed_results():
    report = FailureReport()
    streamed = []
    executor = ResilientExecutor(_fail_on_three, jobs=1, report=report)
    with pytest.raises(CellExecutionError, match="cell-2"):
        executor.run(_tasks([1, 2, 3, 4]), on_result=lambda i, r: streamed.append(i))
    assert streamed == [0, 1]  # jobs=1 preserves dispatch order
    assert not executor._workers  # shutdown ran


def test_executor_retries_transient_failures(tmp_path):
    report = FailureReport()
    policy = ExecutionPolicy(retries=2, backoff_base=0.001)
    executor = ResilientExecutor(
        _transient_until_marker, jobs=1, policy=policy, report=report
    )
    marker = str(tmp_path / "marker")
    results = executor.run(_tasks([(marker, "value")]))
    assert results == {0: "value"}
    assert report.retries == 1 and report.completed == 1 and not report.failures


def test_executor_respawns_dead_worker_and_requeues_its_cell(tmp_path):
    report = FailureReport()
    policy = ExecutionPolicy(retries=2, backoff_base=0.001)
    executor = ResilientExecutor(
        _die_until_marker, jobs=1, policy=policy, report=report
    )
    marker = str(tmp_path / "marker")
    results = executor.run(_tasks([(marker, "survived")]))
    assert results == {0: "survived"}
    assert report.worker_deaths == 1 and report.retries == 1


def test_executor_worker_death_past_budget_is_a_final_failure():
    report = FailureReport()
    policy = ExecutionPolicy(retries=1, max_failures=None, backoff_base=0.001)
    executor = ResilientExecutor(_always_die, jobs=1, policy=policy, report=report)
    results = executor.run(_tasks(["x"]))
    assert results == {}
    (failure,) = report.failures
    assert failure.error == "WorkerDeath" and failure.attempts == 2
    assert report.worker_deaths == 2  # initial attempt + one retry


def test_executor_timeout_kills_and_fails_past_budget():
    report = FailureReport()
    policy = ExecutionPolicy(cell_timeout=0.3, retries=0, max_failures=None)
    executor = ResilientExecutor(_sleep_forever, jobs=1, policy=policy, report=report)
    start = time.monotonic()
    results = executor.run(_tasks(["x"]))
    assert time.monotonic() - start < 10  # nowhere near the 60s sleep
    assert results == {}
    (failure,) = report.failures
    assert failure.kind == TIMEOUT and failure.error == "CellTimeout"
    assert report.timeouts == 1


def test_executor_timeout_only_hits_the_overdue_cell():
    report = FailureReport()
    policy = ExecutionPolicy(cell_timeout=0.5, retries=0, max_failures=None)
    executor = ResilientExecutor(
        _sleep_if_negative, jobs=2, policy=policy, report=report
    )
    results = executor.run(_tasks([-1, 7]))
    assert results == {1: 7}
    (failure,) = report.failures
    assert failure.index == 0 and failure.kind == TIMEOUT


def test_backoff_for_is_keyed_per_cell_and_attempt():
    """Jitter draws are a pure function of (seed, label, attempt).

    Regression: the executor used to draw jitter from one shared RNG,
    so the delay any given cell saw depended on how many other cells
    had retried first — making ``$REPRO_FAULT`` replays schedule
    differently run to run.  Keyed RNGs make the schedule stable under
    reordering.
    """
    policy = ExecutionPolicy(seed=7, backoff_base=0.1, backoff_cap=10.0)
    reference = policy.backoff_for("machine x swim", 2)
    # Interleave draws for other cells/attempts in arbitrary order...
    for label in ("a", "b", "machine x mcf"):
        for attempt in (1, 2, 3):
            policy.backoff_for(label, attempt)
    # ...and the original (label, attempt) still gets the same delay.
    assert policy.backoff_for("machine x swim", 2) == reference
    # A fresh policy with the same seed reproduces it exactly.
    again = ExecutionPolicy(seed=7, backoff_base=0.1, backoff_cap=10.0)
    assert again.backoff_for("machine x swim", 2) == reference
    # Different key or seed: a different (but still bounded) draw.
    assert policy.backoff_for("machine x swim", 3) != reference
    assert policy.backoff_for("other", 2) != reference
    other_seed = ExecutionPolicy(seed=8, backoff_base=0.1, backoff_cap=10.0)
    assert other_seed.backoff_for("machine x swim", 2) != reference
    assert 0.1 <= reference <= 0.2  # attempt-2 ceiling, half-to-full jitter
