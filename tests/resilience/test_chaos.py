"""Chaos battery: injected faults must not change final grid contents.

Every test runs a real (tiny) sweep twice — once clean, once under a
``REPRO_FAULT`` plan — and asserts the surviving results are
bit-identical.  Determinism is the whole point of the harness: the same
plan fires on the same attempts every run, and a healed cell must
produce exactly the stats a fault-free run would have.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import Scale, WorkloadPool, run_cells
from repro.experiments.sweep import SweepSpec, sweep_grid
from repro.machines import parse_machine
from repro.memory import DEFAULT_MEMORY
from repro.resilience import (
    ExecutionPolicy,
    FailureReport,
    resilience_context,
)
from repro.store import ResultStore

TINY = SweepSpec(
    name="chaos-tiny",
    machines=("r10(rob=32)",),
    workloads=("mcf", "swim"),
    instructions=400,
)

#: Generous retry budget + near-zero backoff: chaos runs heal fast.
HEALING = ExecutionPolicy(retries=8, backoff_base=0.001, max_failures=0)


def _grid_dict(grid):
    return {key: stats.to_dict() for key, stats in grid.results.items()}


@pytest.fixture
def clean_grid():
    return _grid_dict(sweep_grid(TINY, Scale.QUICK, jobs=2))


def test_chaos_worker_kills_leave_the_grid_bit_identical(clean_grid, monkeypatch):
    monkeypatch.setenv("REPRO_FAULT", "cell:kill:0.4,seed=11")
    with resilience_context(HEALING) as report:
        chaos = sweep_grid(TINY, Scale.QUICK, jobs=2)
    assert _grid_dict(chaos) == clean_grid
    assert not report.failures
    assert report.worker_deaths > 0  # the plan actually fired


def test_chaos_transient_storm_heals_bit_identically(clean_grid, monkeypatch):
    monkeypatch.setenv(
        "REPRO_FAULT", "cell:transient:0.5,cell:delay:0.3:0.01,seed=5"
    )
    with resilience_context(HEALING) as report:
        chaos = sweep_grid(TINY, Scale.QUICK, jobs=2)
    assert _grid_dict(chaos) == clean_grid
    assert not report.failures
    assert report.retries > 0


def test_chaos_mixed_kill_and_transient(clean_grid, monkeypatch):
    monkeypatch.setenv("REPRO_FAULT", "cell:kill:0.2,cell:transient:0.2,seed=2")
    with resilience_context(HEALING) as report:
        chaos = sweep_grid(TINY, Scale.QUICK, jobs=2)
    assert _grid_dict(chaos) == clean_grid
    assert not report.failures


def test_chaos_store_corruption_self_heals_on_the_next_run(
    clean_grid, tmp_path, monkeypatch
):
    store = ResultStore(tmp_path / "store")
    # Corrupt the very first write (token "<digest>#0") down to zero
    # bytes — the file a crash between write and fsync would leave.
    monkeypatch.setenv("REPRO_FAULT", "store:corrupt@#0:1.0:0")
    first = sweep_grid(TINY, Scale.QUICK, jobs=2, store=store)
    assert _grid_dict(first) == clean_grid  # in-memory results unharmed
    monkeypatch.delenv("REPRO_FAULT")
    # The truncated entry reads as a miss; only that one cell recomputes.
    healed = sweep_grid(TINY, Scale.QUICK, jobs=2, store=store)
    assert _grid_dict(healed) == clean_grid
    assert store.corrupt == 1
    # And a third run is fully served from the now-healthy store.
    writes = store.writes
    again = sweep_grid(TINY, Scale.QUICK, jobs=2, store=store)
    assert _grid_dict(again) == clean_grid
    assert store.writes == writes


def test_chaos_partial_grid_is_deterministic(monkeypatch):
    """A permanently failing cell yields the same partial grid each run."""
    monkeypatch.setenv("REPRO_FAULT", "cell:fail@mcf")
    pool = WorkloadPool()
    config = parse_machine("r10(rob=32)")
    cells = [(config, "mcf", DEFAULT_MEMORY), (config, "swim", DEFAULT_MEMORY)]
    tolerant = ExecutionPolicy(retries=1, backoff_base=0.001, max_failures=None)
    outcomes = []
    for _ in range(2):
        report = FailureReport()
        flat = run_cells(cells, 400, pool, jobs=2, policy=tolerant, report=report)
        assert flat[0] is None and flat[1] is not None
        (failure,) = report.failures
        assert failure.kind == "permanent" and "mcf" in failure.cell
        outcomes.append(flat[1].to_dict())
    assert outcomes[0] == outcomes[1]
