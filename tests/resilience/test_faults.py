"""The fault-injection grammar: parsing, determinism, injection actions."""

from __future__ import annotations

import pytest

from repro.resilience.faults import (
    FaultClause,
    FaultPlan,
    FaultSpecError,
    InjectedFailure,
    TransientCellError,
    plan_from_env,
)


def test_parse_full_grammar():
    plan = FaultPlan.parse("cell:kill:0.1,store:corrupt@#0:1.0:0,seed=7")
    assert plan.seed == 7
    assert plan.clauses == (
        FaultClause("cell", "kill", 0.1),
        FaultClause("store", "corrupt", 1.0, "#0", 0.0),
    )


def test_parse_defaults_and_match():
    plan = FaultPlan.parse("cell:fail@mcf")
    (clause,) = plan.clauses
    assert clause.probability == 1.0 and clause.match == "mcf"
    assert clause.param is None
    assert plan.seed == 0


@pytest.mark.parametrize(
    ("text", "message"),
    [
        ("disk:eject", "unknown fault site"),
        ("cell:explode", "unknown cell fault action"),
        ("store:kill", "unknown store fault action"),
        ("cell:kill:maybe", "malformed number"),
        ("cell:kill:1.5", "probability"),
        ("cell:delay:1.0:-2", "non-negative"),
        ("cell", "malformed fault clause"),
        ("cell:kill:0.5:1:2", "malformed fault clause"),
        ("seed=soon", "seed must be an integer"),
    ],
)
def test_parse_rejects_malformed_clauses(text, message):
    with pytest.raises(FaultSpecError, match=message):
        FaultPlan.parse(text)


def test_decisions_are_deterministic_functions_of_seed_and_token():
    plan = FaultPlan.parse("cell:kill:0.5,seed=3")
    clause = plan.clauses[0]
    tokens = [f"cell-{i}#0" for i in range(64)]
    first = [plan._fires(clause, t) for t in tokens]
    assert first == [plan._fires(clause, t) for t in tokens]  # stable
    assert any(first) and not all(first)  # p=0.5 actually splits
    other = FaultPlan.parse("cell:kill:0.5,seed=4")
    assert first != [other._fires(other.clauses[0], t) for t in tokens]


def test_retries_reroll_because_the_attempt_is_in_the_token():
    plan = FaultPlan.parse("cell:kill:0.5,seed=1")
    clause = plan.clauses[0]
    decisions = {plan._fires(clause, f"cell-a#{attempt}") for attempt in range(16)}
    assert decisions == {True, False}


def test_match_filter_targets_cells():
    plan = FaultPlan.parse("cell:fail@mcf")
    with pytest.raises(InjectedFailure, match="R10-64 × mcf"):
        plan.inject_cell("R10-64 × mcf × default", attempt=0)
    plan.inject_cell("R10-64 × swim × default", attempt=0)  # no fire


def test_transient_action_raises_retryable_error():
    plan = FaultPlan.parse("cell:transient")
    with pytest.raises(TransientCellError, match="attempt 2"):
        plan.inject_cell("any-cell", attempt=2)


def test_delay_action_sleeps_for_the_param(monkeypatch):
    naps = []
    monkeypatch.setattr("repro.resilience.faults.time.sleep", naps.append)
    FaultPlan.parse("cell:delay:1.0:0.5").inject_cell("c", 0)
    FaultPlan.parse("cell:delay").inject_cell("c", 0)
    assert naps == [0.5, 0.02]


def test_corrupt_store_text_truncates_matching_writes():
    plan = FaultPlan.parse("store:corrupt@#0:1.0:0")
    text = '{"stats": "x"}'
    assert plan.corrupt_store_text("abcdef#0", text) == ""
    assert plan.corrupt_store_text("abcdef#1", text) == text  # counter moved on
    half = FaultPlan.parse("store:corrupt:1.0:0.5")
    assert half.corrupt_store_text("abcdef#0", text) == text[: len(text) // 2]


def test_plan_from_env_parses_and_defaults():
    assert plan_from_env({}) is None
    assert plan_from_env({"REPRO_FAULT": "  "}) is None
    plan = plan_from_env({"REPRO_FAULT": "cell:kill:0.1,seed=9"})
    assert plan.seed == 9 and plan.clauses[0].action == "kill"
    with pytest.raises(FaultSpecError):
        plan_from_env({"REPRO_FAULT": "warp:core-breach"})
