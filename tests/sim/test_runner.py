"""Unit tests for run orchestration."""

import pytest

from repro.branch import AlwaysTakenPredictor
from repro.memory import DEFAULT_MEMORY, MemoryHierarchy
from repro.sim.config import DKIP_2048, KILO_1024, R10_64
from repro.sim.runner import build_core, run_core, simulate
from repro.workloads import get_workload


def test_build_core_dispatches_on_config_type():
    from repro.baselines.kilo import KiloCore
    from repro.baselines.ooo import R10Core
    from repro.core.dkip import DkipProcessor

    h = MemoryHierarchy(DEFAULT_MEMORY)
    p = AlwaysTakenPredictor()
    assert isinstance(build_core(R10_64, iter([]), h, p), R10Core)
    assert isinstance(build_core(KILO_1024, iter([]), h, p), KiloCore)
    assert isinstance(build_core(DKIP_2048, iter([]), h, p), DkipProcessor)


def test_build_core_rejects_unknown_config():
    with pytest.raises(TypeError):
        build_core(object(), iter([]), None, None)


def test_simulate_runs_a_materialized_trace():
    workload = get_workload("eon")
    trace = workload.trace(600)
    stats = simulate(R10_64, trace, regions=workload.regions)
    assert stats.committed == 600
    assert stats.config == "R10-64"
    assert stats.branch_predictions > 0


def test_run_core_stamps_workload_name():
    stats = run_core(R10_64, get_workload("eon"), 400)
    assert stats.workload == "eon"
    assert stats.committed == 400


def test_warmup_changes_results():
    workload = get_workload("gzip")
    warm = run_core(R10_64, workload, 1_500, warmup=True)
    cold = run_core(R10_64, workload, 1_500, warmup=False)
    assert warm.cycles < cold.cycles  # cold misses hurt


def test_predictor_override():
    workload = get_workload("eon")
    trace = workload.trace(500)
    always = simulate(R10_64, trace, predictor_name="always-taken")
    perceptron = simulate(R10_64, trace, predictor_name="perceptron")
    assert always.branch_predictions == perceptron.branch_predictions
    assert perceptron.branch_mispredictions <= always.branch_mispredictions


def test_runs_are_reproducible():
    workload = get_workload("swim")
    a = run_core(DKIP_2048, workload, 800)
    b = run_core(DKIP_2048, workload, 800)
    assert a.cycles == b.cycles
    assert a.llib_insertions == b.llib_insertions
