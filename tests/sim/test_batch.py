"""Differential + failure-isolation suite for the batched sweep kernel.

The batching layer (:class:`repro.sim.batch.BatchRunner` +
``run_cells(batch=N)``) is a pure dispatch optimization: interleaving N
independent cells inside one process must leave every cell's whole
:class:`SimStats` record bit-identical to serial execution, for every
registered machine kind, and a cell that fails inside a batch must fail
alone — its siblings complete, persist to the store, and survive even a
fault-injected worker death.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import WorkloadPool, run_cells
from repro.machines import parse_machine
from repro.memory.configs import TABLE1_CONFIGS
from repro.pipeline.core import DeadlockError
from repro.resilience import ExecutionPolicy, FailureReport
from repro.sim.batch import BatchRunner
from repro.sim.config import DKIP_2048, KILO_1024, R10_64, RunaheadConfig
from repro.sim.runner import simulate
from repro.store import ResultStore
from repro.workloads import get_workload

NUM_INSTRUCTIONS = 800

#: Every machine kind the sweep layer can dispatch, including the limit
#: core (no cooperative driver: exercises the one-shot fallback).
CORES = {
    "r10": R10_64,
    "kilo": KILO_1024,
    "runahead": RunaheadConfig(),
    "dkip": DKIP_2048,
    "ooo-bp": parse_machine("ooo-bp(bp=gshare-12,rob=32)"),
    "dual": parse_machine("dual(rob=32,co=synth(chase=8),bp=gshare-10)"),
    "limit": parse_machine("limit"),
}

MEMORY = TABLE1_CONFIGS["MEM-400"]


@pytest.fixture(scope="module")
def workload():
    return get_workload("mcf")


@pytest.fixture(scope="module")
def batched_vs_serial(workload):
    """One batch interleaving every machine kind, plus serial references.

    A small round budget forces many generator suspensions per cell, so
    the interleaving is as aggressive as the batching layer allows.
    """
    trace = workload.trace(NUM_INSTRUCTIONS)
    serial = {
        tag: simulate(config, trace, memory=MEMORY, regions=workload.regions)
        for tag, config in CORES.items()
    }
    runner = BatchRunner(round_budget=256)
    for tag, config in CORES.items():
        runner.add_simulation(tag, config, trace, memory=MEMORY,
                              regions=workload.regions)
    return serial, runner.run()


@pytest.mark.parametrize("tag", list(CORES))
def test_batched_stats_bit_identical(batched_vs_serial, tag):
    serial, batched = batched_vs_serial
    outcome, stats = batched[tag]
    assert outcome == "ok"
    assert stats.to_dict() == serial[tag].to_dict()


def test_reference_mode_cell(workload):
    """``fast_forward=False`` cells drive the tick-every-cycle loop."""
    trace = workload.trace(400)
    reference = simulate(DKIP_2048, trace, memory=MEMORY,
                         regions=workload.regions, fast_forward=False)
    runner = BatchRunner(round_budget=64)
    runner.add_simulation("ref", DKIP_2048, trace, memory=MEMORY,
                          regions=workload.regions, fast_forward=False)
    outcome, stats = runner.run()["ref"]
    assert outcome == "ok"
    assert stats.to_dict() == reference.to_dict()
    assert stats.cycles == reference.cycles


def test_batch_of_one(workload):
    trace = workload.trace(NUM_INSTRUCTIONS)
    expected = simulate(R10_64, trace, memory=MEMORY, regions=workload.regions)
    runner = BatchRunner()
    runner.add_simulation("only", R10_64, trace, memory=MEMORY,
                          regions=workload.regions)
    outcome, stats = runner.run()["only"]
    assert outcome == "ok"
    assert stats.to_dict() == expected.to_dict()


def test_deadlock_mid_batch_fails_alone(workload):
    """A cell hitting its cycle bound errors without touching siblings."""
    trace = workload.trace(600)
    runner = BatchRunner(round_budget=128)
    runner.add_simulation("good1", R10_64, trace, regions=workload.regions)
    runner.add_simulation("bad", R10_64, trace, regions=workload.regions,
                          max_cycles=50)
    runner.add_simulation("good2", R10_64, trace, regions=workload.regions)
    out = runner.run()
    assert out["bad"][0] == "error"
    assert isinstance(out["bad"][1], DeadlockError)
    for tag in ("good1", "good2"):
        outcome, stats = out[tag]
        assert outcome == "ok"
        assert stats.committed == 600


GRID = [
    (R10_64, "mcf", MEMORY),
    (DKIP_2048, "swim", TABLE1_CONFIGS["MEM-100"]),
    (parse_machine("ooo-bp(bp=gshare-10,rob=24)"), "mcf",
     TABLE1_CONFIGS["L2-11"]),
    (R10_64, "swim", MEMORY),
]


@pytest.fixture(scope="module")
def grid_baseline():
    return [
        stats.to_dict()
        for stats in run_cells(GRID, 600, WorkloadPool())
    ]


@pytest.fixture(autouse=True)
def _no_ambient_batching(monkeypatch):
    monkeypatch.delenv("REPRO_BATCH", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_FAULT", raising=False)


def test_run_cells_batch_larger_than_grid(grid_baseline):
    got = run_cells(GRID, 600, WorkloadPool(), batch=99)
    assert [stats.to_dict() for stats in got] == grid_baseline


def test_run_cells_batched_pool(grid_baseline, tmp_path):
    store = ResultStore(tmp_path)
    got = run_cells(GRID, 600, WorkloadPool(), jobs=2, batch=2, store=store)
    assert [stats.to_dict() for stats in got] == grid_baseline
    # Every cell persisted individually; a warm rerun is all hits.
    rerun = run_cells(GRID, 600, WorkloadPool(), jobs=2, batch=2, store=store)
    assert [stats.to_dict() for stats in rerun] == grid_baseline
    assert store.hits == len(GRID)


def test_run_cells_tolerant_deadlock_sibling_persists(tmp_path):
    """Under a tolerant policy, a deadlocking cell inside a batch becomes
    its own failure record while siblings complete and persist."""
    cells = [
        (R10_64, "mcf", MEMORY),               # ~11k cycles at 600 insns
        (R10_64, "swim", TABLE1_CONFIGS["MEM-100"]),  # ~800 cycles
    ]
    store = ResultStore(tmp_path)
    policy = ExecutionPolicy(retries=0, max_failures=1)
    report = FailureReport()
    got = run_cells(cells, 600, WorkloadPool(), batch=2, store=store,
                    max_cycles=3000, policy=policy, report=report)
    assert got[0] is None
    assert got[1] is not None and got[1].committed == 600
    assert len(report.failures) == 1
    failure = report.failures[0]
    assert failure.error == "DeadlockError"
    assert "mcf" in failure.cell
    assert store.writes == 1  # the surviving sibling persisted


def test_run_cells_broken_cell_fails_alone():
    """A cell that cannot even be constructed fails inside the batch."""
    cells = [
        (R10_64, "swim", TABLE1_CONFIGS["MEM-100"]),
        (R10_64, "no-such-benchmark", MEMORY),
    ]
    policy = ExecutionPolicy(retries=0, max_failures=1)
    report = FailureReport()
    got = run_cells(cells, 400, WorkloadPool(), batch=2,
                    policy=policy, report=report)
    assert got[0] is not None and got[0].committed == 400
    assert got[1] is None
    assert len(report.failures) == 1


def test_pool_worker_kill_requeues_only_unfinished(monkeypatch, tmp_path,
                                                   grid_baseline):
    """A fault-injected worker death mid-batch loses only the cells that
    had not streamed yet: finished siblings persist exactly once and the
    requeued batch is pruned to the remainder."""
    monkeypatch.setenv("REPRO_FAULT", "cell:kill@swim × MEM-100#0")
    store = ResultStore(tmp_path)
    puts = []
    original_put = ResultStore.put
    monkeypatch.setattr(
        ResultStore, "put",
        lambda self, key, stats: (puts.append(key),
                                  original_put(self, key, stats))[1],
    )
    policy = ExecutionPolicy(retries=3, max_failures=0)
    report = FailureReport()
    got = run_cells(GRID, 600, WorkloadPool(), jobs=2, batch=4, store=store,
                    policy=policy, report=report)
    assert [stats.to_dict() for stats in got] == grid_baseline
    assert report.worker_deaths >= 1
    assert report.retries >= 1
    # One store write per cell — the killed batch's finished cells were
    # not recomputed on the retry attempt.
    assert len(puts) == len(GRID)
    assert len(set(puts)) == len(GRID)
