"""Unit and property tests for statistics records and histograms."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.stats import Histogram, SimStats, arithmetic_mean_ipc


def test_ipc_definition():
    stats = SimStats(committed=100, cycles=50)
    assert stats.ipc == 2.0
    assert SimStats().ipc == 0.0


def test_branch_accuracy():
    stats = SimStats(branch_predictions=100, branch_mispredictions=5)
    assert stats.branch_accuracy == pytest.approx(0.95)
    assert SimStats().branch_accuracy == 1.0


def test_l2_miss_rate():
    stats = SimStats(l2_hits=80, l2_misses=20)
    assert stats.l2_miss_rate == pytest.approx(0.2)
    assert SimStats().l2_miss_rate == 0.0


def test_cp_fraction():
    stats = SimStats(committed_cp=75, committed_mp=25)
    assert stats.cp_fraction == pytest.approx(0.75)
    assert SimStats().cp_fraction == 1.0


def test_as_dict_round_trip():
    stats = SimStats(workload="swim", config="D-KIP-2048", committed=10, cycles=5)
    d = stats.as_dict()
    assert d["workload"] == "swim"
    assert d["ipc"] == 2.0


def test_arithmetic_mean_ipc():
    runs = [SimStats(committed=10, cycles=10), SimStats(committed=30, cycles=10)]
    assert arithmetic_mean_ipc(runs) == pytest.approx(2.0)
    assert arithmetic_mean_ipc([]) == 0.0


def test_histogram_binning():
    h = Histogram(bin_width=10)
    for v in (0, 5, 9, 10, 25):
        h.add(v)
    assert dict(h.bins()) == {0: 3, 10: 1, 20: 1}
    assert h.count == 5


def test_histogram_fractions():
    h = Histogram(bin_width=10)
    for v in (5, 15, 25, 35):
        h.add(v)
    assert h.fraction_below(20) == pytest.approx(0.5)
    assert h.fraction_in(10, 30) == pytest.approx(0.5)


def test_histogram_clamps_to_max():
    h = Histogram(bin_width=10, max_value=50)
    h.add(1_000)
    assert h.bins() == [(50, 1)]


def test_histogram_weighted_add():
    h = Histogram(bin_width=10)
    h.add(5, weight=4)
    assert h.count == 4


def test_histogram_rejects_negative():
    with pytest.raises(ValueError):
        Histogram().add(-1)
    with pytest.raises(ValueError):
        Histogram(bin_width=0)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2000), min_size=1, max_size=300))
def test_property_histogram_conserves_mass(values):
    h = Histogram(bin_width=25)
    for v in values:
        h.add(v)
    assert sum(c for _, c in h.bins()) == len(values)
    assert h.fraction_below(10**9) == pytest.approx(1.0)
    assert h.mean == pytest.approx(sum(values) / len(values))
