"""Unit tests for machine configurations (Tables 2/3, Figure-9 machines)."""

import pytest

from repro.sim.config import (
    DKIP_2048,
    KILO_1024,
    R10_256,
    R10_64,
    CoreConfig,
    SchedulerPolicy,
    _parse_queue_config,
)


def test_r10_64_matches_paper():
    assert R10_64.rob_size == 64
    assert R10_64.iq_int == 40 and R10_64.iq_fp == 40
    assert R10_64.scheduler == SchedulerPolicy.OUT_OF_ORDER
    assert R10_64.lsq_size == 512


def test_r10_256_matches_paper():
    assert R10_256.rob_size == 256
    assert R10_256.iq_int == 160


def test_kilo_matches_paper():
    assert KILO_1024.pseudo_rob == 64
    assert KILO_1024.sliq_size == 1024
    assert KILO_1024.core.iq_int == 72


def test_dkip_matches_tables_2_and_3():
    cp = DKIP_2048.cache_processor
    assert cp.rob_size == 64                       # 16-cycle timer x 4-wide
    assert DKIP_2048.rob_timer == 16
    assert cp.iq_int == 40 and cp.iq_fp == 40
    assert DKIP_2048.llib_size == 2048
    assert DKIP_2048.llrf_banks == 8
    assert DKIP_2048.llrf_bank_size == 256
    mp = DKIP_2048.memory_processor
    assert mp.queue_size == 20
    assert mp.scheduler == SchedulerPolicy.IN_ORDER
    assert mp.decode_width == 4


def test_fu_mix_matches_table2():
    fus = DKIP_2048.cache_processor.fus
    assert (fus.int_alu, fus.int_mul, fus.fp_add, fus.fp_mul) == (4, 1, 4, 1)
    assert fus.mem_ports == 2


def test_queue_config_parser():
    assert _parse_queue_config("INO") == (SchedulerPolicy.IN_ORDER, 20)
    assert _parse_queue_config("OOO-40") == (SchedulerPolicy.OUT_OF_ORDER, 40)
    assert _parse_queue_config("ooo-80")[1] == 80
    with pytest.raises(ValueError):
        _parse_queue_config("SOMETHING")


@pytest.mark.parametrize(
    "bad", ["OOO-0", "OOO--5", "OOO-", "OOO-x", "OOO-4_0", "OOO- 40", "", "OOO"]
)
def test_queue_config_rejects_invalid_sizes(bad):
    """Zero, negative, and non-decimal sizes all raise with the grammar."""
    with pytest.raises(ValueError, match="INO|OOO-"):
        _parse_queue_config(bad)


def test_queue_config_error_names_the_grammar():
    with pytest.raises(ValueError, match=r"OOO-<positive\s+integer>"):
        _parse_queue_config("OOO-0")
    with pytest.raises(ValueError, match="expected INO or OOO-"):
        _parse_queue_config("FAST")


def test_with_cp_clones():
    config = DKIP_2048.with_cp("OOO-80")
    assert config.cache_processor.iq_int == 80
    assert DKIP_2048.cache_processor.iq_int == 40  # original untouched


def test_with_mp_clones():
    config = DKIP_2048.with_mp("OOO-40")
    assert config.memory_processor.queue_size == 40
    assert config.memory_processor.scheduler == SchedulerPolicy.OUT_OF_ORDER


def test_with_queues_on_core_config():
    core = CoreConfig().with_queues(60, SchedulerPolicy.OUT_OF_ORDER)
    assert core.iq_int == 60 and core.name == "OOO-60"
    ino = CoreConfig().with_queues(20, SchedulerPolicy.IN_ORDER)
    assert ino.name == "INO"


def test_configs_are_frozen():
    with pytest.raises(AttributeError):
        R10_64.rob_size = 1  # type: ignore[misc]
