"""Unit and property tests for trace serialization."""

import gzip

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import Instruction, OpClass
from repro.trace.io import (
    TraceFormatError,
    dump_trace,
    load_trace,
    read_trace_regions,
    save_trace,
)
from repro.workloads import get_workload


def test_round_trip_workload_trace(tmp_path):
    trace = get_workload("mcf").trace(500)
    path = str(tmp_path / "mcf.trace")
    assert dump_trace(trace, path) == 500
    loaded = list(load_trace(path))
    assert loaded == trace


def test_round_trip_gzip(tmp_path):
    trace = get_workload("swim").trace(300)
    path = str(tmp_path / "swim.trace.gz")
    dump_trace(trace, path)
    assert list(load_trace(path)) == trace
    import os

    raw = str(tmp_path / "swim.trace")
    dump_trace(trace, raw)
    assert os.path.getsize(path) < os.path.getsize(raw)


def test_header_is_checked(tmp_path):
    path = tmp_path / "bad.trace"
    path.write_text("not a trace\n")
    with pytest.raises(ValueError, match="not a repro trace"):
        list(load_trace(str(path)))


def test_malformed_record_reports_line(tmp_path):
    path = tmp_path / "bad.trace"
    path.write_text("# repro-trace v1\ngarbage\n")
    with pytest.raises(ValueError, match=":2:"):
        list(load_trace(str(path)))


def test_blank_lines_and_comments_skipped(tmp_path):
    trace = get_workload("eon").trace(10)
    path = str(tmp_path / "t.trace")
    dump_trace(trace, path)
    with open(path) as f:
        content = f.read()
    with open(path, "w") as f:
        f.write(content.replace("\n", "\n# comment\n\n", 1))
    assert list(load_trace(path)) == trace


def test_missing_file_is_a_clean_error():
    with pytest.raises(TraceFormatError, match="does not exist"):
        list(load_trace("/no/such/trace.trc"))
    with pytest.raises(TraceFormatError, match="does not exist"):
        read_trace_regions("/no/such/trace.trc.gz")


def test_unopenable_path_is_a_clean_error(tmp_path):
    """Open-time OSErrors beyond FileNotFoundError (directory path,
    permission denial) honour the TraceFormatError contract too."""
    with pytest.raises(TraceFormatError, match="cannot open trace"):
        list(load_trace(str(tmp_path)))
    with pytest.raises(TraceFormatError, match="cannot open trace"):
        read_trace_regions(str(tmp_path))


def test_truncated_gzip_raises_trace_format_error(tmp_path):
    """A capture cut off mid-stream (killed writer, partial copy) must
    surface as TraceFormatError, not a raw EOFError from gzip."""
    trace = get_workload("swim").trace(300)
    path = tmp_path / "swim.trc.gz"
    dump_trace(trace, str(path))
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(TraceFormatError, match="corrupt or truncated"):
        list(load_trace(str(path)))


def test_corrupt_gzip_raises_trace_format_error(tmp_path):
    """Binary junk with a .gz name is a format error, not a BadGzipFile
    leaking out of the parser (and no file handle leaks with it)."""
    path = tmp_path / "junk.trc.gz"
    path.write_bytes(b"this is not gzip data at all")
    with pytest.raises(TraceFormatError, match="corrupt or truncated"):
        list(load_trace(str(path)))
    with pytest.raises(TraceFormatError):
        read_trace_regions(str(path))


def test_gzip_with_binary_payload_raises_trace_format_error(tmp_path):
    """A valid gzip stream whose payload is not text still fails clean."""
    path = tmp_path / "binary.trc.gz"
    with gzip.open(path, "wb") as handle:
        handle.write(bytes(range(256)) * 16)
    with pytest.raises(TraceFormatError):
        list(load_trace(str(path)))


def test_trace_format_error_is_a_value_error():
    """Callers that caught ValueError before the subclass existed keep
    working."""
    assert issubclass(TraceFormatError, ValueError)


def test_malformed_field_value_names_the_line(tmp_path):
    path = tmp_path / "bad.trace"
    # Nine whitespace-separated fields, but the opcode is unknown.
    path.write_text("# repro-trace v1\n0 100 WARP - - - 8 - -\n")
    with pytest.raises(TraceFormatError, match=":2:"):
        list(load_trace(str(path)))


def test_region_map_round_trips(tmp_path):
    workload = get_workload("mcf")
    path = str(tmp_path / "mcf.trc.gz")
    assert save_trace(workload, path, 200) == 200
    assert read_trace_regions(path) == workload.regions
    # Region comments are invisible to the instruction reader.
    assert list(load_trace(path)) == workload.trace(200)


def test_region_map_defaults_to_empty(tmp_path):
    path = str(tmp_path / "bare.trace")
    dump_trace(get_workload("eon").trace(50), path)
    assert read_trace_regions(path) == []


def test_malformed_region_comment_is_an_error(tmp_path):
    path = tmp_path / "bad.trace"
    path.write_text("# repro-trace v1\n# region zzz\n")
    with pytest.raises(TraceFormatError, match="malformed region"):
        read_trace_regions(str(path))


def test_region_scan_stops_at_first_record(tmp_path):
    """Only the header block is scanned: a region-shaped comment after
    records is commentary, not data."""
    workload = get_workload("eon")
    path = str(tmp_path / "t.trace")
    dump_trace(workload.trace(10), path, regions=[(0x1000, 64)])
    with open(path, "a") as handle:
        handle.write("# region ffff 4096\n")
    assert read_trace_regions(path) == [(0x1000, 64)]


_ops = st.sampled_from(list(OpClass))


@st.composite
def instructions(draw, seq):
    op = draw(_ops)
    is_mem = op in (OpClass.LOAD, OpClass.STORE, OpClass.FP_LOAD, OpClass.FP_STORE)
    is_branch = op in (OpClass.BRANCH, OpClass.JUMP)
    return Instruction(
        seq=seq,
        pc=draw(st.integers(0, 1 << 32)),
        op=op,
        dest=draw(st.one_of(st.none(), st.integers(0, 63))),
        srcs=tuple(draw(st.lists(st.integers(0, 63), max_size=2))),
        addr=draw(st.integers(0, 1 << 40)) if is_mem else None,
        size=draw(st.sampled_from([1, 2, 4, 8])),
        taken=draw(st.booleans()) if is_branch else None,
        target=draw(st.one_of(st.none(), st.integers(0, 1 << 32))) if is_branch else None,
    )


@settings(max_examples=30, deadline=None)
@given(st.data(), st.integers(min_value=1, max_value=40))
def test_property_round_trip_is_exact(data, n):
    import os
    import tempfile

    trace = [data.draw(instructions(seq=i)) for i in range(n)]
    fd, path = tempfile.mkstemp(suffix=".trace")
    os.close(fd)
    try:
        dump_trace(trace, path)
        assert list(load_trace(path)) == trace
    finally:
        os.unlink(path)
