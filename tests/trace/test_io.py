"""Unit and property tests for trace serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import Instruction, OpClass
from repro.trace.io import dump_trace, load_trace
from repro.workloads import get_workload


def test_round_trip_workload_trace(tmp_path):
    trace = get_workload("mcf").trace(500)
    path = str(tmp_path / "mcf.trace")
    assert dump_trace(trace, path) == 500
    loaded = list(load_trace(path))
    assert loaded == trace


def test_round_trip_gzip(tmp_path):
    trace = get_workload("swim").trace(300)
    path = str(tmp_path / "swim.trace.gz")
    dump_trace(trace, path)
    assert list(load_trace(path)) == trace
    import os

    raw = str(tmp_path / "swim.trace")
    dump_trace(trace, raw)
    assert os.path.getsize(path) < os.path.getsize(raw)


def test_header_is_checked(tmp_path):
    path = tmp_path / "bad.trace"
    path.write_text("not a trace\n")
    with pytest.raises(ValueError, match="not a repro trace"):
        list(load_trace(str(path)))


def test_malformed_record_reports_line(tmp_path):
    path = tmp_path / "bad.trace"
    path.write_text("# repro-trace v1\ngarbage\n")
    with pytest.raises(ValueError, match=":2:"):
        list(load_trace(str(path)))


def test_blank_lines_and_comments_skipped(tmp_path):
    trace = get_workload("eon").trace(10)
    path = str(tmp_path / "t.trace")
    dump_trace(trace, path)
    with open(path) as f:
        content = f.read()
    with open(path, "w") as f:
        f.write(content.replace("\n", "\n# comment\n\n", 1))
    assert list(load_trace(path)) == trace


_ops = st.sampled_from(list(OpClass))


@st.composite
def instructions(draw, seq):
    op = draw(_ops)
    is_mem = op in (OpClass.LOAD, OpClass.STORE, OpClass.FP_LOAD, OpClass.FP_STORE)
    is_branch = op in (OpClass.BRANCH, OpClass.JUMP)
    return Instruction(
        seq=seq,
        pc=draw(st.integers(0, 1 << 32)),
        op=op,
        dest=draw(st.one_of(st.none(), st.integers(0, 63))),
        srcs=tuple(draw(st.lists(st.integers(0, 63), max_size=2))),
        addr=draw(st.integers(0, 1 << 40)) if is_mem else None,
        size=draw(st.sampled_from([1, 2, 4, 8])),
        taken=draw(st.booleans()) if is_branch else None,
        target=draw(st.one_of(st.none(), st.integers(0, 1 << 32))) if is_branch else None,
    )


@settings(max_examples=30, deadline=None)
@given(st.data(), st.integers(min_value=1, max_value=40))
def test_property_round_trip_is_exact(data, n):
    import os
    import tempfile

    trace = [data.draw(instructions(seq=i)) for i in range(n)]
    fd, path = tempfile.mkstemp(suffix=".trace")
    os.close(fd)
    try:
        dump_trace(trace, path)
        assert list(load_trace(path)) == trace
    finally:
        os.unlink(path)
