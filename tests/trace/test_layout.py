"""Unit tests for the address-space layout helpers."""

import random

import pytest

from repro.trace.layout import AddressSpace, ArrayRef, LinkedList, strided_touch_plan


def test_alloc_alignment_and_ordering():
    space = AddressSpace()
    a = space.alloc(100, align=64)
    b = space.alloc(100, align=64)
    assert a % 64 == 0 and b % 64 == 0
    assert b >= a + 100


def test_alloc_records_regions():
    space = AddressSpace()
    space.alloc(128)
    space.alloc(256)
    assert [size for _, size in space.regions] == [128, 256]
    assert space.footprint == 384


def test_alloc_rejects_bad_arguments():
    space = AddressSpace()
    with pytest.raises(ValueError):
        space.alloc(0)
    with pytest.raises(ValueError):
        space.alloc(64, align=3)


def test_array_ref_addressing():
    space = AddressSpace()
    array = ArrayRef.alloc(space, length=10, elem_size=8)
    assert array.addr(0) == array.base
    assert array.addr(3) == array.base + 24
    assert array.addr(13) == array.addr(3)  # wraps
    assert array.size == 80


def test_linked_list_visits_every_node():
    space = AddressSpace()
    lst = LinkedList(space, nodes=16, node_size=64, rng=random.Random(1))
    seen = {lst.current()}
    for _ in range(15):
        seen.add(lst.advance())
    assert len(seen) == 16
    for addr in seen:
        assert lst.base <= addr < lst.base + 16 * 64


def test_linked_list_is_shuffled():
    space = AddressSpace()
    lst = LinkedList(space, nodes=64, node_size=64, rng=random.Random(7))
    addresses = [lst.advance() for _ in range(63)]
    strides = [b - a for a, b in zip(addresses, addresses[1:])]
    assert any(s != 64 for s in strides)  # not sequential


def test_linked_list_wraps_and_resets():
    space = AddressSpace()
    lst = LinkedList(space, nodes=4, node_size=64, rng=random.Random(0))
    start = lst.current()
    for _ in range(4):
        lst.advance()
    assert lst.current() == start
    lst.advance()
    lst.reset()
    assert lst.current() == start


def test_linked_list_needs_nodes():
    with pytest.raises(ValueError):
        LinkedList(AddressSpace(), nodes=0)


def test_strided_touch_plan_covers_lines():
    plan = list(strided_touch_plan([(0, 256)], stride=64))
    assert [addr for addr, _ in plan] == [0, 64, 128, 192]
    assert all(not write for _, write in plan)


def test_strided_touch_plan_multiple_regions():
    plan = list(strided_touch_plan([(0, 64), (1024, 128)], stride=64))
    assert [addr for addr, _ in plan] == [0, 1024, 1088]
