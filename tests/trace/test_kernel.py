"""Unit tests for the kernel DSL."""

import pytest

from repro.isa import OpClass
from repro.isa.registers import FP_BASE, INT_ZERO, NUM_FP_REGS, NUM_INT_REGS
from repro.trace.kernel import Kernel


def test_sequence_numbers_are_dense():
    k = Kernel()
    instrs = [k.alu(1, 2), k.nop(), k.load(3, addr=0x100)]
    assert [i.seq for i in instrs] == [0, 1, 2]


def test_register_allocation_is_disjoint():
    k = Kernel()
    a = k.iregs(4)
    b = k.iregs(4)
    assert not set(a) & set(b)
    f = k.fregs(3)
    assert all(r >= FP_BASE for r in f)


def test_register_exhaustion_raises():
    k = Kernel()
    k.iregs(NUM_INT_REGS - 2)
    with pytest.raises(ValueError):
        k.iregs(2)
    k2 = Kernel()
    k2.fregs(NUM_FP_REGS - 1)
    with pytest.raises(ValueError):
        k2.fregs(1)


def test_sites_are_stable():
    k = Kernel()
    b1 = k.branch("loop", srcs=(k.zero,), taken=True)
    k.alu(1, 2)
    b2 = k.branch("loop", srcs=(k.zero,), taken=False)
    b3 = k.branch("other", srcs=(k.zero,), taken=True)
    assert b1.pc == b2.pc
    assert b3.pc != b1.pc


def test_load_defaults_to_zero_base():
    k = Kernel()
    load = k.load(1, addr=0x40)
    assert load.srcs == (INT_ZERO,)
    assert load.live_srcs() == ()


def test_load_with_pointer_base():
    k = Kernel()
    load = k.load(1, addr=0x40, base=5)
    assert load.srcs == (5,)
    assert load.live_srcs() == (5,)


def test_fp_load_and_store_classes():
    k = Kernel()
    f = k.fregs(1)[0]
    assert k.load(f, addr=0, fp=True).op == OpClass.FP_LOAD
    assert k.store(f, addr=0, fp=True).op == OpClass.FP_STORE


def test_store_sources_value_and_base():
    k = Kernel()
    st = k.store(7, addr=0x80, base=9)
    assert st.srcs == (7, 9)


def test_loop_branch_is_zero_sourced():
    k = Kernel()
    br = k.loop_branch("l")
    assert br.taken is True
    assert br.live_srcs() == ()


def test_jump_is_taken():
    k = Kernel()
    assert k.jump("target").taken is True


def test_fp_ops_emit_expected_classes():
    k = Kernel()
    f0, f1 = k.fregs(2)
    assert k.fadd(f0, f1, f1).op == OpClass.FP_ADD
    assert k.fmul(f0, f1, f1).op == OpClass.FP_MUL
    assert k.fdiv(f0, f1, f1).op == OpClass.FP_DIV


def test_determinism_per_seed():
    def emit(seed):
        k = Kernel(seed=seed)
        out = []
        for _ in range(50):
            out.append(k.load(1, addr=k.rng.randrange(1 << 20)))
            out.append(k.branch("b", srcs=(1,), taken=k.rng.random() < 0.5))
        return [(i.op, i.addr, i.taken) for i in out]

    assert emit(3) == emit(3)
    assert emit(3) != emit(4)
