"""Unit tests for trace stream utilities."""

import pytest

from repro.isa import InstructionBuilder, OpClass
from repro.trace import TraceRecorder, materialize, replay, summarize, take


def _alu_trace(n):
    b = InstructionBuilder()
    return [b.alu(1, 2, 3) for _ in range(n)]


def test_take_limits_stream():
    trace = _alu_trace(10)
    assert len(list(take(trace, 4))) == 4


def test_take_handles_short_streams():
    assert len(list(take(_alu_trace(2), 10))) == 2


def test_materialize_round_trip():
    trace = _alu_trace(6)
    out = materialize(iter(trace), 6)
    assert out == trace
    assert list(replay(out)) == trace


def test_materialize_raises_on_short_trace():
    with pytest.raises(ValueError):
        materialize(iter(_alu_trace(3)), 5)


def test_recorder_captures_everything():
    trace = _alu_trace(5)
    recorder = TraceRecorder(iter(trace))
    consumed = list(recorder)
    assert consumed == trace
    assert recorder.recorded == trace


def test_summarize_counts_mix():
    b = InstructionBuilder()
    trace = [
        b.load(1, 2, addr=0x100),
        b.store(1, 2, addr=0x140),
        b.alu(3, 1, 1),
        b.branch(3, taken=True),
        b.branch(3, taken=False),
    ]
    s = summarize(trace)
    assert s.count == 5
    assert s.loads == 1 and s.stores == 1 and s.branches == 2
    assert s.taken_branches == 1
    assert s.load_fraction == pytest.approx(0.2)
    assert s.branch_fraction == pytest.approx(0.4)
    assert s.taken_rate == pytest.approx(0.5)


def test_summarize_footprint_lines():
    b = InstructionBuilder()
    trace = [
        b.load(1, 2, addr=0),
        b.load(1, 2, addr=32),     # same 64B line
        b.load(1, 2, addr=64),     # second line
    ]
    s = summarize(trace)
    assert s.unique_lines == 2
    assert s.footprint_bytes == 128
    assert s.min_addr == 0
    assert s.max_addr == 64 + 8


def test_summarize_branch_sites():
    b = InstructionBuilder()
    trace = [
        b.emit(OpClass.BRANCH, srcs=(1,), taken=True, pc=0x100),
        b.emit(OpClass.BRANCH, srcs=(1,), taken=True, pc=0x100),
        b.emit(OpClass.BRANCH, srcs=(1,), taken=True, pc=0x200),
    ]
    assert summarize(trace).unique_branch_sites == 2


def test_summarize_empty_trace():
    s = summarize([])
    assert s.count == 0
    assert s.load_fraction == 0.0
    assert s.taken_rate == 0.0
