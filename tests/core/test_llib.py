"""Unit tests for the Low-Locality Instruction Buffer (FIFO)."""

from repro.core.llib import LowLocalityInstructionBuffer
from repro.core.llrf import BankedRegisterFile
from repro.isa import InstructionBuilder
from repro.pipeline.entry import InFlight


def make_llib(capacity=8, banks=2, bank_size=4):
    return LowLocalityInstructionBuffer(
        "llib-test", capacity, BankedRegisterFile(banks, bank_size)
    )


def alu_entry(builder):
    return InFlight(builder.alu(1, 2, 3), fetch_cycle=0)


def load_entry(builder, executed=False):
    e = InFlight(builder.load(4, 5, addr=0x100), fetch_cycle=0)
    e.executed = executed
    return e


def test_insert_and_extract_fifo_order():
    llib = make_llib()
    b = InstructionBuilder()
    first, second = alu_entry(b), alu_entry(b)
    assert llib.insert(first, has_ready_operand=False)
    assert llib.insert(second, has_ready_operand=False)
    assert llib.head() is first
    assert llib.extract() is first
    assert llib.extract() is second


def test_insert_sets_ownership_and_tags():
    llib = make_llib()
    b = InstructionBuilder()
    entry = alu_entry(b)
    llib.insert(entry, has_ready_operand=False)
    assert entry.where == "llib"
    assert entry.owner is llib


def test_ready_operand_captured_in_llrf():
    llib = make_llib()
    b = InstructionBuilder()
    entry = alu_entry(b)
    llib.insert(entry, has_ready_operand=True)
    assert entry.ready_operand_bank >= 0
    assert llib.llrf.occupancy == 1
    llib.extract()
    assert llib.llrf.occupancy == 0  # released at extraction
    assert entry.ready_operand_bank == -1


def test_capacity_stall():
    llib = make_llib(capacity=1)
    b = InstructionBuilder()
    assert llib.insert(alu_entry(b), has_ready_operand=False)
    assert not llib.insert(alu_entry(b), has_ready_operand=False)
    assert llib.full_stalls == 1
    assert not llib.has_space


def test_llrf_exhaustion_stalls_insert():
    llib = make_llib(capacity=8, banks=1, bank_size=1)
    b = InstructionBuilder()
    assert llib.insert(alu_entry(b), has_ready_operand=True)
    assert not llib.insert(alu_entry(b), has_ready_operand=True)
    # but an operand-free instruction still fits
    assert llib.insert(alu_entry(b), has_ready_operand=False)


def test_head_blocks_on_unexecuted_load_producer():
    llib = make_llib()
    b = InstructionBuilder()
    producer = load_entry(b, executed=False)
    consumer = alu_entry(b)
    consumer.sources = (producer,)
    llib.insert(consumer, has_ready_operand=False)
    assert not llib.head_extractable()
    producer.executed = True
    assert llib.head_extractable()


def test_head_does_not_block_on_alu_producer():
    """Non-load producers are waited for in the MP, not at the head."""
    llib = make_llib()
    b = InstructionBuilder()
    producer = alu_entry(b)       # not executed, but not a load
    consumer = alu_entry(b)
    consumer.sources = (producer,)
    llib.insert(consumer, has_ready_operand=False)
    assert llib.head_extractable()


def test_empty_llib_not_extractable():
    assert not make_llib().head_extractable()


def test_occupancy_statistics():
    llib = make_llib()
    b = InstructionBuilder()
    for _ in range(3):
        llib.insert(alu_entry(b), has_ready_operand=False)
    llib.extract()
    assert llib.max_occupancy == 3
    assert llib.insertions == 3
    assert llib.extractions == 1
    assert len(llib) == 2


def test_recovery_drains_younger_entries():
    llib = make_llib()
    b = InstructionBuilder()
    older, younger = alu_entry(b), alu_entry(b)
    llib.insert(older, has_ready_operand=False)
    llib.insert(younger, has_ready_operand=True)
    dropped = llib.drain_younger_than(older.seq)
    assert dropped == [younger]
    assert len(llib) == 1
    assert llib.llrf.occupancy == 0  # captured operand released
