"""Unit tests for the checkpoint stack."""

from repro.core.checkpoint import CheckpointStack


def test_take_and_policy():
    stack = CheckpointStack(capacity=4, interval=3)
    assert stack.should_take()           # no live checkpoint yet
    checkpoint = stack.take(seq=10, now=100)
    assert checkpoint is not None
    assert not stack.should_take()       # fresh checkpoint covers us
    stack.assign()
    stack.assign()
    stack.assign()
    assert stack.should_take()           # interval reached


def test_assign_charges_newest():
    stack = CheckpointStack(capacity=2, interval=100)
    first = stack.take(seq=1, now=0)
    stack.assign()
    second = stack.take(seq=5, now=10)
    stack.assign()
    assert first.pending == 1
    assert second.pending == 1


def test_writeback_releases_drained_oldest():
    stack = CheckpointStack(capacity=2, interval=100)
    checkpoint = stack.take(seq=1, now=0)
    stack.assign()
    stack.assign()
    stack.writeback(checkpoint)
    assert len(stack) == 1               # one writeback left
    stack.writeback(checkpoint)
    assert len(stack) == 0
    assert stack.released == 1


def test_release_is_in_order():
    stack = CheckpointStack(capacity=4, interval=100)
    old = stack.take(seq=1, now=0)
    stack.assign()
    new = stack.take(seq=9, now=5)
    stack.assign()
    stack.writeback(new)                 # newer drains first
    assert len(stack) == 2               # old still pins the stack
    stack.writeback(old)
    assert len(stack) == 0


def test_capacity_overflow_skips():
    stack = CheckpointStack(capacity=1, interval=1)
    stack.take(seq=1, now=0)
    assert stack.take(seq=2, now=1) is None
    assert stack.overflow_skips == 1


def test_assign_without_checkpoint():
    stack = CheckpointStack(capacity=1, interval=10)
    assert stack.assign() is None


def test_writeback_none_is_noop():
    stack = CheckpointStack()
    stack.writeback(None)


def test_recover_squashes_younger():
    stack = CheckpointStack(capacity=4, interval=100)
    stack.take(seq=10, now=0)
    stack.assign()
    stack.take(seq=20, now=1)
    stack.assign()
    stack.take(seq=30, now=2)
    stack.assign()
    squashed = stack.recover(seq=15)
    assert squashed == 2
    assert len(stack) == 1
    assert stack.recoveries == 1


def test_recover_with_empty_stack():
    stack = CheckpointStack()
    assert stack.recover(seq=0) == 0


def test_tracked_registers_recorded():
    stack = CheckpointStack()
    checkpoint = stack.take(seq=1, now=0, tracked_registers=(3, 7))
    assert checkpoint.tracked_registers == (3, 7)
