"""Unit tests for the Aging-ROB."""

import pytest

from repro.core.aging_rob import AgingRob
from repro.isa import InstructionBuilder
from repro.pipeline.entry import InFlight


def entry(dispatch_cycle=0):
    b = InstructionBuilder()
    e = InFlight(b.alu(1, 2, 3), fetch_cycle=dispatch_cycle)
    e.dispatch_cycle = dispatch_cycle
    return e


def test_capacity_enforced():
    rob = AgingRob(capacity=2, timer=4)
    rob.push(entry())
    rob.push(entry())
    assert not rob.has_space
    with pytest.raises(RuntimeError):
        rob.push(entry())


def test_head_matures_after_timer():
    rob = AgingRob(capacity=8, timer=16)
    e = entry(dispatch_cycle=10)
    rob.push(e)
    assert rob.head_mature(now=20) is None
    assert rob.head_mature(now=25) is None
    assert rob.head_mature(now=26) is e


def test_head_vs_head_mature():
    rob = AgingRob(capacity=8, timer=16)
    e = entry(dispatch_cycle=0)
    rob.push(e)
    assert rob.head() is e          # visible immediately
    assert rob.head_mature(0) is None


def test_fifo_order():
    rob = AgingRob(capacity=8, timer=0)
    first, second = entry(0), entry(0)
    rob.push(first)
    rob.push(second)
    assert rob.pop_head() is first
    assert rob.pop_head() is second
    assert len(rob) == 0


def test_timer_zero_is_immediate():
    rob = AgingRob(capacity=4, timer=0)
    e = entry(dispatch_cycle=5)
    rob.push(e)
    assert rob.head_mature(now=5) is e


def test_empty_rob():
    rob = AgingRob(capacity=4, timer=4)
    assert rob.head() is None
    assert rob.head_mature(0) is None


def test_validation():
    with pytest.raises(ValueError):
        AgingRob(capacity=0, timer=4)
    with pytest.raises(ValueError):
        AgingRob(capacity=4, timer=-1)


def test_paper_sizing_relationship():
    """Table 2: ROB capacity = timer x commit width (16 x 4 = 64)."""
    rob = AgingRob(capacity=16 * 4, timer=16)
    assert rob.capacity == 64
