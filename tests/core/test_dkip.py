"""Integration-grade unit tests for the full D-KIP processor."""

import dataclasses

from repro.branch import AlwaysTakenPredictor
from repro.baselines.ooo import R10Core
from repro.core.dkip import DkipProcessor
from repro.isa import InstructionBuilder, OpClass
from repro.isa.registers import fp_reg
from repro.memory import DEFAULT_MEMORY, MemoryHierarchy
from repro.sim.config import DKIP_2048, R10_64

from tests.conftest import make_alu_chain, make_load_chain


def run_dkip(trace, config=DKIP_2048):
    core = DkipProcessor(
        iter(trace), config, MemoryHierarchy(DEFAULT_MEMORY), AlwaysTakenPredictor()
    )
    stats = core.run(len(trace))
    return core, stats


def run_r10(trace):
    core = R10Core(
        iter(trace), R10_64, MemoryHierarchy(DEFAULT_MEMORY), AlwaysTakenPredictor()
    )
    return core.run(len(trace))


def _miss_shadow_trace(misses=8, shadow=100, fp=False):
    b = InstructionBuilder()
    out = []
    for m in range(misses):
        if fp:
            out.append(
                b.emit(OpClass.FP_LOAD, dest=fp_reg(1), srcs=(30,), addr=0x100_0000 + m * (1 << 14))
            )
            out.append(b.emit(OpClass.FP_ADD, dest=fp_reg(2), srcs=(fp_reg(1), fp_reg(3))))
        else:
            out.append(b.load(1, 30, addr=0x100_0000 + m * (1 << 14)))
            out.append(b.alu(2, 1, 1))
        for i in range(shadow):
            out.append(b.alu(3 + (i % 4), 29, 30))
    return out


def test_everything_commits_exactly_once():
    trace = _miss_shadow_trace(misses=6, shadow=60)
    _, stats = run_dkip(trace)
    assert stats.committed == len(trace)
    assert stats.committed_cp + stats.committed_mp == len(trace)


def test_miss_consumers_flow_through_the_llib():
    trace = _miss_shadow_trace()
    core, stats = run_dkip(trace)
    assert stats.llib_insertions >= 8
    assert stats.committed_mp >= 8


def test_fp_slices_use_the_fp_llib():
    trace = _miss_shadow_trace(fp=True)
    core, stats = run_dkip(trace)
    assert stats.llib_max_instructions_fp > 0
    assert stats.llib_max_instructions_int == 0


def test_dkip_beats_small_core_on_independent_misses():
    trace = _miss_shadow_trace(misses=10, shadow=120)
    _, dkip = run_dkip(trace)
    r10 = run_r10(trace)
    assert dkip.cycles < r10.cycles * 0.7


def test_pure_alu_code_stays_in_the_cp():
    _, stats = run_dkip(make_alu_chain(300, dep=False))
    assert stats.llib_insertions == 0
    assert stats.cp_fraction == 1.0
    assert stats.ipc > 3.0


def test_serial_load_chain_serializes_through_llib():
    trace = make_load_chain(10, stride=1 << 14)
    _, stats = run_dkip(trace)
    assert stats.committed == 10
    assert stats.cycles > 10 * 400  # the D-KIP cannot break true chains


def test_checkpoints_taken_for_slices():
    trace = _miss_shadow_trace(misses=6, shadow=80)
    _, stats = run_dkip(trace)
    assert stats.checkpoints_taken >= 1


def test_low_locality_mispredict_triggers_recovery():
    b = InstructionBuilder()
    trace = [b.load(1, 30, addr=0x300_0000)]
    trace.append(b.emit(OpClass.BRANCH, srcs=(1,), taken=False, target=0, pc=0x7000))
    trace += [b.alu(2 + (i % 4), 29, 30) for i in range(40)]
    core, stats = run_dkip(trace)
    assert stats.checkpoint_recoveries == 1
    assert core.llbv.set_count == 0      # recovery cleared the LLBV
    assert stats.cycles > 400


def test_high_locality_mispredict_is_cheap():
    b = InstructionBuilder()
    trace = []
    for i in range(20):
        trace.append(b.alu(1, 29, 30))
        trace.append(b.emit(OpClass.BRANCH, srcs=(1,), taken=False, target=0, pc=0x7000))
    _, stats = run_dkip(trace)
    assert stats.checkpoint_recoveries == 0
    assert stats.cycles < 20 * 60


def test_analyze_stalls_are_counted():
    b = InstructionBuilder()
    trace = []
    for i in range(40):
        trace.append(b.emit(OpClass.FP_DIV, dest=fp_reg(1), srcs=(fp_reg(2), fp_reg(3))))
        trace.append(b.emit(OpClass.FP_DIV, dest=fp_reg(2), srcs=(fp_reg(1), fp_reg(3))))
    _, stats = run_dkip(trace)
    assert stats.analyze_stall_cycles > 0  # in-flight shorts stall Analyze


def test_llib_capacity_stall_path():
    tiny = dataclasses.replace(DKIP_2048, name="tiny", llib_size=4)
    trace = make_load_chain(30, stride=1 << 14)
    _, stats = run_dkip(trace, config=tiny)
    assert stats.committed == 30


def test_long_latency_loads_deliver_to_value_fifo():
    trace = _miss_shadow_trace(misses=4, shadow=40)
    core, _ = run_dkip(trace)
    assert core.ap.long_latency_loads >= 4
    assert core.ap.pending_values(fp=False) >= 1


def test_llrf_occupancy_reported():
    b = InstructionBuilder()
    trace = []
    for m in range(8):
        trace.append(b.load(1, 30, addr=0x100_0000 + m * (1 << 14)))
        trace.append(b.alu(2, 1, 29))  # one READY operand (r29)
        trace += [b.alu(3 + (i % 4), 29, 30) for i in range(30)]
    _, stats = run_dkip(trace)
    assert stats.llib_max_registers_int >= 1
    assert stats.llib_max_registers_int <= stats.llib_max_instructions_int


def test_cp_fraction_between_zero_and_one():
    trace = _miss_shadow_trace()
    _, stats = run_dkip(trace)
    assert 0.0 < stats.cp_fraction <= 1.0
