"""Unit tests for the Memory Processor and Address Processor."""

from repro.core.address_processor import AddressProcessor
from repro.core.memory_processor import MemoryProcessor
from repro.isa import InstructionBuilder
from repro.pipeline.entry import InFlight
from repro.pipeline.fu import FuKind
from repro.sim.config import MemoryProcessorConfig, SchedulerPolicy


def test_mp_dispatch_tags_and_counts():
    mp = MemoryProcessor("mp-int", MemoryProcessorConfig())
    b = InstructionBuilder()
    entry = InFlight(b.alu(1, 2, 3), fetch_cycle=0)
    mp.dispatch(entry)
    assert entry.where == "mp"
    assert mp.dispatched == 1
    mp.on_complete(entry)
    assert mp.completed == 1


def test_mp_queue_capacity():
    config = MemoryProcessorConfig(queue_size=2)
    mp = MemoryProcessor("mp", config)
    b = InstructionBuilder()
    mp.dispatch(InFlight(b.alu(1, 2, 3), fetch_cycle=0))
    mp.dispatch(InFlight(b.alu(1, 2, 3), fetch_cycle=0))
    assert not mp.has_space


def test_mp_default_is_in_order():
    mp = MemoryProcessor("mp", MemoryProcessorConfig())
    assert mp.queue.policy == SchedulerPolicy.IN_ORDER
    assert mp.queue.size == 20  # Table 3 default


def test_mp_fus_are_private():
    mp = MemoryProcessor("mp", MemoryProcessorConfig())
    assert mp.fus.available(FuKind.ALU) == 4


def test_ap_port_arbitration():
    ap = AddressProcessor(lsq_size=8, mem_ports=2)
    ap.new_cycle()
    assert ap.try_take_port()
    assert ap.try_take_port()
    assert not ap.try_take_port()
    ap.new_cycle()
    assert ap.try_take_port()


def test_ap_value_fifos_split_by_cluster():
    ap = AddressProcessor()
    b = InstructionBuilder()
    from repro.isa import OpClass
    from repro.isa.registers import fp_reg

    int_load = InFlight(b.load(1, 2, addr=0x10), fetch_cycle=0)
    fp_load = InFlight(
        b.emit(OpClass.FP_LOAD, dest=fp_reg(1), srcs=(2,), addr=0x20),
        fetch_cycle=0,
    )
    ap.deliver_value(int_load)
    ap.deliver_value(fp_load)
    assert ap.pending_values(fp=False) == 1
    assert ap.pending_values(fp=True) == 1


def test_ap_tracks_long_latency_loads():
    ap = AddressProcessor()
    b = InstructionBuilder()
    load = InFlight(b.load(1, 2, addr=0x10), fetch_cycle=0)
    ap.track_long_latency_load(load)
    assert load.where == "ap"
    assert ap.long_latency_loads == 1


def test_ap_owns_the_lsq():
    ap = AddressProcessor(lsq_size=512)
    assert ap.lsq.size == 512  # Table 2: 512-entry LSQ
