"""D-KIP behaviour across its configuration space (Figure-10 axes)."""

import dataclasses

import pytest

from repro.sim.config import DKIP_2048, SchedulerPolicy
from repro.sim.runner import run_core
from repro.workloads import get_workload

N = 3_000


@pytest.mark.parametrize("cp", ["INO", "OOO-20", "OOO-80"])
@pytest.mark.parametrize("mp", ["INO", "OOO-40"])
def test_every_cp_mp_combination_completes(cp, mp):
    config = DKIP_2048.with_cp(cp).with_mp(mp)
    stats = run_core(config, get_workload("apsi"), N)
    assert stats.committed == N
    assert stats.ipc > 0


def test_ooo_cp_beats_ino_cp():
    workload = get_workload("applu")
    ino = run_core(DKIP_2048.with_cp("INO"), workload, N)
    ooo = run_core(DKIP_2048.with_cp("OOO-40"), workload, N)
    assert ooo.ipc > ino.ipc


def test_mp_policy_is_second_order_on_fp():
    workload = get_workload("swim")
    ino_mp = run_core(DKIP_2048.with_mp("INO"), workload, N)
    ooo_mp = run_core(DKIP_2048.with_mp("OOO-40"), workload, N)
    cp_effect = run_core(DKIP_2048.with_cp("INO"), workload, N)
    mp_delta = abs(ooo_mp.ipc - ino_mp.ipc)
    cp_delta = abs(ino_mp.ipc - cp_effect.ipc)
    assert mp_delta <= cp_delta + 0.05


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        DKIP_2048.with_cp("FAST")


def test_tiny_checkpoint_stack_still_correct():
    config = dataclasses.replace(DKIP_2048, name="chpt-1", checkpoint_stack=1)
    stats = run_core(config, get_workload("swim"), N)
    assert stats.committed == N


def test_small_checkpoint_interval_takes_more_checkpoints():
    often = dataclasses.replace(DKIP_2048, name="ck-8", checkpoint_interval=8)
    rarely = dataclasses.replace(DKIP_2048, name="ck-4096", checkpoint_interval=4096)
    workload = get_workload("swim")
    a = run_core(often, workload, N)
    b = run_core(rarely, workload, N)
    assert a.checkpoints_taken >= b.checkpoints_taken


def test_single_bank_llrf_still_correct():
    config = dataclasses.replace(
        DKIP_2048, name="llrf-1", llrf_banks=1, llrf_bank_size=2048
    )
    stats = run_core(config, get_workload("ammp"), N)
    assert stats.committed == N


def test_scheduler_policy_enum_round_trip():
    assert SchedulerPolicy("ino") == SchedulerPolicy.IN_ORDER
    assert SchedulerPolicy("ooo") == SchedulerPolicy.OUT_OF_ORDER
