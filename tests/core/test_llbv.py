"""Unit tests for the Low-Locality Bit Vector and its writers log."""

from repro.core.llbv import LowLocalityBitVector
from repro.isa import InstructionBuilder
from repro.pipeline.entry import InFlight


def make_entry():
    b = InstructionBuilder()
    return InFlight(b.alu(1, 2, 3), fetch_cycle=0)


def test_mark_and_query():
    llbv = LowLocalityBitVector()
    producer = make_entry()
    llbv.mark(5, producer)
    assert llbv.is_long(5)
    assert llbv.producer(5) is producer
    assert llbv.set_count == 1


def test_unmarked_registers_are_short():
    llbv = LowLocalityBitVector()
    assert not llbv.is_long(3)
    assert llbv.producer(3) is None


def test_any_long_source():
    llbv = LowLocalityBitVector()
    llbv.mark(2, make_entry())
    b = InstructionBuilder()
    blocked = InFlight(b.alu(4, 2, 3), fetch_cycle=0)
    clear = InFlight(b.alu(4, 3, 5), fetch_cycle=0)
    assert llbv.any_long_source(blocked)
    assert not llbv.any_long_source(clear)


def test_zero_register_sources_ignored():
    llbv = LowLocalityBitVector()
    llbv.mark(31, make_entry())  # the zero register can be marked but
    b = InstructionBuilder()     # consumers never see it as a live source
    consumer = InFlight(b.alu(1, 31, 31), fetch_cycle=0)
    assert not llbv.any_long_source(consumer)


def test_short_definition_clears():
    llbv = LowLocalityBitVector()
    llbv.mark(7, make_entry())
    llbv.clear_short_definition(7)
    assert not llbv.is_long(7)
    assert llbv.short_clears == 1
    assert llbv.set_count == 0


def test_clear_short_definition_on_clear_bit_is_noop():
    llbv = LowLocalityBitVector()
    llbv.clear_short_definition(7)
    assert llbv.short_clears == 0


def test_remark_does_not_double_count():
    llbv = LowLocalityBitVector()
    llbv.mark(3, make_entry())
    llbv.mark(3, make_entry())
    assert llbv.set_count == 1
    assert llbv.marks == 2


def test_recovery_clears_everything():
    llbv = LowLocalityBitVector()
    for reg in (1, 5, 40):
        llbv.mark(reg, make_entry())
    llbv.clear_all()
    assert llbv.set_count == 0
    assert llbv.recovery_clears == 1
    assert not any(llbv.is_long(r) for r in (1, 5, 40))


def test_marks_persist_after_producer_executes():
    """Paper semantics: MP writeback does NOT clear the bit (results live
    in the checkpoint stack, not the CP register file)."""
    llbv = LowLocalityBitVector()
    producer = make_entry()
    llbv.mark(9, producer)
    producer.executed = True
    assert llbv.is_long(9)
