"""Unit and property tests for the banked Low-Locality Register File."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.llrf import BankedRegisterFile


def test_allocation_rotates_across_banks():
    llrf = BankedRegisterFile(banks=4, bank_size=8)
    banks = [llrf.allocate() for _ in range(4)]
    assert sorted(banks) == [0, 1, 2, 3]


def test_release_returns_capacity():
    llrf = BankedRegisterFile(banks=2, bank_size=1)
    a = llrf.allocate()
    b = llrf.allocate()
    assert llrf.allocate() is None
    llrf.release(a)
    assert llrf.allocate() == a


def test_allocation_failure_when_full():
    llrf = BankedRegisterFile(banks=2, bank_size=2)
    for _ in range(4):
        assert llrf.allocate() is not None
    assert llrf.allocate() is None
    assert llrf.failed_allocations == 1


def test_fallback_to_non_preferred_bank():
    llrf = BankedRegisterFile(banks=2, bank_size=2)
    # Exhaust bank 0 and 1 alternately, then free only bank 1.
    banks = [llrf.allocate() for _ in range(4)]
    llrf.release(1)
    assert llrf.allocate() == 1


def test_max_occupancy_high_water_mark():
    llrf = BankedRegisterFile(banks=2, bank_size=4)
    allocated = [llrf.allocate() for _ in range(5)]
    for bank in allocated[:3]:
        llrf.release(bank)
    assert llrf.occupancy == 2
    assert llrf.max_occupancy == 5


def test_double_free_detected():
    llrf = BankedRegisterFile(banks=2, bank_size=2)
    bank = llrf.allocate()
    llrf.release(bank)
    with pytest.raises(RuntimeError):
        llrf.release(bank)


def test_release_validates_bank_index():
    llrf = BankedRegisterFile(banks=2, bank_size=2)
    with pytest.raises(ValueError):
        llrf.release(5)


def test_paper_configuration_capacity():
    """Table 2: 8 banks x 256 registers each per LLIB."""
    llrf = BankedRegisterFile(banks=8, bank_size=256)
    assert llrf.capacity == 2048


def test_constructor_validation():
    with pytest.raises(ValueError):
        BankedRegisterFile(banks=0, bank_size=4)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.booleans(), min_size=1, max_size=400))
def test_property_occupancy_accounting(ops):
    """Alternating alloc/release sequences keep the free-count invariant:
    occupancy == allocations - releases, and never exceeds capacity."""
    llrf = BankedRegisterFile(banks=4, bank_size=8)
    live: list[int] = []
    for do_alloc in ops:
        if do_alloc:
            bank = llrf.allocate()
            if bank is not None:
                live.append(bank)
        elif live:
            llrf.release(live.pop())
        assert llrf.occupancy == len(live)
        assert 0 <= llrf.occupancy <= llrf.capacity
        assert sum(llrf.free_in_bank(b) for b in range(4)) == llrf.capacity - len(live)
