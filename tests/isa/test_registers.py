"""Unit tests for the register model."""

import pytest

from repro.isa import (
    FP_BASE,
    FP_ZERO,
    INT_ZERO,
    NUM_FP_REGS,
    NUM_INT_REGS,
    NUM_REGS,
    fp_reg,
    int_reg,
    is_fp_reg,
    is_zero_reg,
    reg_name,
)


def test_register_space_layout():
    assert NUM_REGS == NUM_INT_REGS + NUM_FP_REGS
    assert FP_BASE == NUM_INT_REGS


def test_int_reg_mapping():
    assert int_reg(0) == 0
    assert int_reg(31) == 31


def test_fp_reg_mapping():
    assert fp_reg(0) == FP_BASE
    assert fp_reg(31) == FP_BASE + 31


@pytest.mark.parametrize("index", [-1, 32, 100])
def test_out_of_range_indices_rejected(index):
    with pytest.raises(ValueError):
        int_reg(index)
    with pytest.raises(ValueError):
        fp_reg(index)


def test_zero_registers():
    assert is_zero_reg(INT_ZERO)
    assert is_zero_reg(FP_ZERO)
    assert not is_zero_reg(0)
    assert not is_zero_reg(FP_BASE)


def test_is_fp_reg_partition():
    fp_count = sum(1 for r in range(NUM_REGS) if is_fp_reg(r))
    assert fp_count == NUM_FP_REGS


def test_reg_names():
    assert reg_name(0) == "r0"
    assert reg_name(INT_ZERO) == "r31"
    assert reg_name(FP_BASE) == "f0"
    assert reg_name(FP_ZERO) == "f31"


def test_reg_name_out_of_range():
    with pytest.raises(ValueError):
        reg_name(NUM_REGS)
    with pytest.raises(ValueError):
        reg_name(-1)
