"""Unit tests for the latency table."""

import pytest

from repro.isa import DEFAULT_LATENCIES, LatencyTable, OpClass


def test_defaults_are_positive():
    for op in OpClass:
        assert DEFAULT_LATENCIES.latency_of(op) >= 1


def test_relative_latencies_are_sane():
    lat = DEFAULT_LATENCIES
    assert lat.latency_of(OpClass.INT_ALU) < lat.latency_of(OpClass.INT_MUL)
    assert lat.latency_of(OpClass.FP_ADD) < lat.latency_of(OpClass.FP_MUL)
    assert lat.latency_of(OpClass.FP_MUL) < lat.latency_of(OpClass.FP_DIV)


def test_memory_ops_report_agen_only():
    lat = DEFAULT_LATENCIES
    for op in (OpClass.LOAD, OpClass.STORE, OpClass.FP_LOAD, OpClass.FP_STORE):
        assert lat.latency_of(op) == lat.agen


def test_custom_table():
    table = LatencyTable(int_alu=2, fp_div=40)
    assert table.latency_of(OpClass.INT_ALU) == 2
    assert table.latency_of(OpClass.FP_DIV) == 40
    # untouched entries keep their defaults
    assert table.latency_of(OpClass.FP_MUL) == DEFAULT_LATENCIES.fp_mul


def test_table_is_frozen():
    with pytest.raises(AttributeError):
        DEFAULT_LATENCIES.int_alu = 5  # type: ignore[misc]
