"""Unit tests for operation-class predicates."""

import pytest

from repro.isa import (
    BRANCH_OPS,
    FP_OPS,
    INT_OPS,
    MEM_OPS,
    OpClass,
    is_branch_op,
    is_load_op,
    is_mem_op,
    is_store_op,
)


def test_load_ops():
    assert is_load_op(OpClass.LOAD)
    assert is_load_op(OpClass.FP_LOAD)
    assert not is_load_op(OpClass.STORE)
    assert not is_load_op(OpClass.INT_ALU)


def test_store_ops():
    assert is_store_op(OpClass.STORE)
    assert is_store_op(OpClass.FP_STORE)
    assert not is_store_op(OpClass.LOAD)


def test_mem_ops_union():
    for op in (OpClass.LOAD, OpClass.STORE, OpClass.FP_LOAD, OpClass.FP_STORE):
        assert is_mem_op(op)
        assert op in MEM_OPS
    assert not is_mem_op(OpClass.BRANCH)


def test_branch_ops():
    assert is_branch_op(OpClass.BRANCH)
    assert is_branch_op(OpClass.JUMP)
    assert not is_branch_op(OpClass.LOAD)
    assert BRANCH_OPS == {OpClass.BRANCH, OpClass.JUMP}


def test_fp_int_partition_covers_everything():
    assert FP_OPS | INT_OPS == set(OpClass)


def test_fp_int_partition_is_disjoint():
    assert not (FP_OPS & INT_OPS)


@pytest.mark.parametrize("op", list(OpClass))
def test_short_names_unique_and_nonempty(op):
    assert op.short_name
    names = [o.short_name for o in OpClass]
    assert len(set(names)) == len(names)


def test_mem_ops_are_classified_exclusively():
    for op in OpClass:
        assert not (is_load_op(op) and is_store_op(op))
