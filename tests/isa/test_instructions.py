"""Unit tests for the Instruction record and builder."""

import pytest

from repro.isa import Instruction, InstructionBuilder, OpClass
from repro.isa.registers import FP_BASE, FP_ZERO, INT_ZERO, fp_reg


def test_basic_alu_instruction():
    instr = Instruction(seq=0, pc=0x1000, op=OpClass.INT_ALU, dest=1, srcs=(2, 3))
    assert not instr.is_load and not instr.is_store
    assert not instr.is_branch and not instr.is_fp
    assert instr.live_srcs() == (2, 3)


def test_load_requires_address():
    with pytest.raises(ValueError):
        Instruction(seq=0, pc=0, op=OpClass.LOAD, dest=1, srcs=(2,))


def test_branch_requires_outcome():
    with pytest.raises(ValueError):
        Instruction(seq=0, pc=0, op=OpClass.BRANCH, srcs=(1,))


def test_too_many_sources_rejected():
    with pytest.raises(ValueError):
        Instruction(seq=0, pc=0, op=OpClass.INT_ALU, dest=1, srcs=(2, 3, 4))


def test_register_range_validated():
    with pytest.raises(ValueError):
        Instruction(seq=0, pc=0, op=OpClass.INT_ALU, dest=64)
    with pytest.raises(ValueError):
        Instruction(seq=0, pc=0, op=OpClass.INT_ALU, dest=1, srcs=(64,))


def test_fp_classification_by_dest():
    instr = Instruction(
        seq=0, pc=0, op=OpClass.FP_LOAD, dest=fp_reg(2), srcs=(1,), addr=0x100
    )
    assert instr.is_fp and instr.is_load


def test_fp_classification_by_op():
    instr = Instruction(seq=0, pc=0, op=OpClass.FP_STORE, srcs=(FP_BASE, 1), addr=8)
    assert instr.is_fp and instr.is_store


def test_int_load_is_not_fp():
    instr = Instruction(seq=0, pc=0, op=OpClass.LOAD, dest=3, srcs=(1,), addr=0)
    assert not instr.is_fp


def test_live_srcs_excludes_zero_registers():
    instr = Instruction(
        seq=0, pc=0, op=OpClass.INT_ALU, dest=1, srcs=(INT_ZERO, 2)
    )
    assert instr.live_srcs() == (2,)
    fp_instr = Instruction(seq=0, pc=0, op=OpClass.FP_ADD, dest=FP_BASE, srcs=(FP_ZERO,))
    assert fp_instr.live_srcs() == ()


def test_cond_branch_vs_jump():
    br = Instruction(seq=0, pc=0, op=OpClass.BRANCH, srcs=(1,), taken=True)
    jmp = Instruction(seq=1, pc=4, op=OpClass.JUMP, taken=True)
    assert br.is_cond_branch and br.is_branch
    assert jmp.is_branch and not jmp.is_cond_branch


def test_instruction_is_immutable():
    instr = Instruction(seq=0, pc=0, op=OpClass.INT_ALU, dest=1)
    with pytest.raises(AttributeError):
        instr.dest = 2  # type: ignore[misc]


def test_builder_sequences_and_pcs():
    b = InstructionBuilder(start_pc=0x2000)
    first = b.alu(1, 2, 3)
    second = b.alu(2, 1, 1)
    assert (first.seq, second.seq) == (0, 1)
    assert second.pc == first.pc + 4
    assert b.next_seq == 2


def test_builder_helpers():
    b = InstructionBuilder()
    load = b.load(dest=4, base=5, addr=0x800)
    store = b.store(src=4, base=5, addr=0x808)
    branch = b.branch(src=4, taken=False)
    assert load.is_load and load.addr == 0x800
    assert store.is_store and store.srcs == (4, 5)
    assert branch.is_branch and branch.taken is False


def test_disassemble_contains_key_fields():
    b = InstructionBuilder()
    text = b.load(dest=4, base=5, addr=0x800).disassemble()
    assert "ld" in text and "r4" in text and "0x800" in text
