"""Shared-L2 plumbing: the arbiter and the per-core hierarchy views.

The contention model of the ``dual`` machine kind rests on two pieces:
:class:`L2Arbiter` (ports + occupancy, deterministic grant order) and
:class:`SharedL2View` (private L1 over a shared L2/memory).  These tests
pin their semantics directly, below the machine level.
"""

import pytest

from repro.machines import parse_machine
from repro.memory import MemoryHierarchy
from repro.memory.cache import AccessLevel, Cache
from repro.memory.configs import TABLE1_CONFIGS
from repro.memory.shared import L2Arbiter, SharedL2View
from repro.sim.runner import simulate
from repro.workloads import get_workload

MEM = TABLE1_CONFIGS["MEM-100"]


# ----------------------------------------------------------------------
# L2Arbiter
# ----------------------------------------------------------------------


def test_arbiter_free_port_grants_immediately():
    arbiter = L2Arbiter(ports=1, busy_cycles=2)
    assert arbiter.acquire(now=10) == 0
    assert arbiter.accesses == 1
    assert arbiter.conflicts == 0
    assert arbiter.delay_cycles == 0


def test_arbiter_same_cycle_requests_queue():
    """Two same-cycle requests on one port: the second waits one occupancy."""
    arbiter = L2Arbiter(ports=1, busy_cycles=3)
    assert arbiter.acquire(now=5) == 0
    assert arbiter.acquire(now=5) == 3
    assert (arbiter.accesses, arbiter.conflicts, arbiter.delay_cycles) == (2, 1, 3)


def test_arbiter_port_frees_after_occupancy():
    arbiter = L2Arbiter(ports=1, busy_cycles=3)
    arbiter.acquire(now=0)
    assert arbiter.acquire(now=3) == 0  # exactly when the port frees
    arbiter2 = L2Arbiter(ports=1, busy_cycles=3)
    arbiter2.acquire(now=0)
    assert arbiter2.acquire(now=2) == 1  # one cycle early: one cycle wait


def test_arbiter_second_port_absorbs_conflict():
    arbiter = L2Arbiter(ports=2, busy_cycles=3)
    assert arbiter.acquire(now=0) == 0
    assert arbiter.acquire(now=0) == 0  # second port
    assert arbiter.acquire(now=0) == 3  # both busy: queue behind one
    assert arbiter.conflicts == 1


def test_arbiter_waits_accumulate_in_order():
    """Back-to-back same-cycle requests serialize: k-th waits k occupancies."""
    arbiter = L2Arbiter(ports=1, busy_cycles=2)
    waits = [arbiter.acquire(now=0) for _ in range(4)]
    assert waits == [0, 2, 4, 6]
    assert arbiter.delay_cycles == 12


def test_arbiter_validates_arguments():
    with pytest.raises(ValueError):
        L2Arbiter(ports=0)
    with pytest.raises(ValueError):
        L2Arbiter(busy_cycles=0)


def test_arbiter_snapshot_restore_round_trip():
    arbiter = L2Arbiter(ports=2, busy_cycles=2)
    for now in (0, 0, 1, 5):
        arbiter.acquire(now)
    state = arbiter.snapshot()
    twin = L2Arbiter(ports=2, busy_cycles=2)
    twin.restore(state)
    assert twin.acquire(6) == arbiter.acquire(6)
    assert (twin.accesses, twin.conflicts, twin.delay_cycles) == (
        arbiter.accesses, arbiter.conflicts, arbiter.delay_cycles,
    )


# ----------------------------------------------------------------------
# SharedL2View
# ----------------------------------------------------------------------


def _private_l1() -> Cache:
    return Cache("L1-co", MEM.l1_size, MEM.l1_assoc, MEM.line_size, MEM.l1_latency)


def test_views_share_l2_contents():
    """A line one view fetches from memory is an L2 hit for the other."""
    base = MemoryHierarchy(MEM)
    arbiter = L2Arbiter()
    a = SharedL2View(base, arbiter)
    b = SharedL2View(base, arbiter, l1=_private_l1())

    latency_a, level_a = a.access(0x1000, now=0)
    assert level_a is AccessLevel.MEMORY
    # Much later (the fill has landed): B misses its private L1 but hits
    # the shared L2 — cross-core reuse through the shared level.
    latency_b, level_b = b.access(0x1000, now=10_000)
    assert level_b is AccessLevel.L2
    assert latency_b < latency_a


def test_views_keep_l1_private():
    """An L1 fill on one view must not appear in the other's L1."""
    base = MemoryHierarchy(MEM)
    arbiter = L2Arbiter()
    a = SharedL2View(base, arbiter)
    b = SharedL2View(base, arbiter, l1=_private_l1())
    a.access(0x2000, now=0)
    line = 0x2000 >> a._line_bits
    assert a.l1.probe(line)
    assert not b.l1.probe(line)


def test_contended_access_pays_arbiter_wait():
    """Same-cycle L1 misses from two views: the loser's latency includes
    the queueing delay, and its fill lands later."""
    base = MemoryHierarchy(MEM)
    arbiter = L2Arbiter(ports=1, busy_cycles=4)
    a = SharedL2View(base, arbiter)
    b = SharedL2View(base, arbiter, l1=_private_l1())

    latency_a, _ = a.access(0x4000, now=0)
    latency_b, _ = b.access(0x8000, now=0)
    assert latency_b == latency_a + 4
    assert arbiter.conflicts == 1 and arbiter.delay_cycles == 4


def test_solo_view_matches_plain_hierarchy_latency():
    """With no contention (and 1-cycle occupancy), a shared view reports
    the same latencies as an unwrapped hierarchy."""
    plain = MemoryHierarchy(MEM)
    base = MemoryHierarchy(MEM)
    view = SharedL2View(base, L2Arbiter())
    for now, addr in enumerate((0x100, 0x100, 0x4100, 0x100, 0x8100)):
        expected = plain.access(addr, now=now * 1000)
        got = view.access(addr, now=now * 1000)
        assert got == expected, hex(addr)


def test_view_snapshot_restore_round_trip():
    base = MemoryHierarchy(MEM)
    arbiter = L2Arbiter(ports=1, busy_cycles=2)
    view = SharedL2View(base, arbiter)
    view.access(0x100, now=0)
    view.access(0x4100, now=0)
    state = view.snapshot()

    base2 = MemoryHierarchy(MEM)
    arbiter2 = L2Arbiter(ports=1, busy_cycles=2)
    twin = SharedL2View(base2, arbiter2)
    twin.restore(state)
    line = 0x100 >> view._line_bits
    assert twin.l1.probe(line)
    assert twin.access(0x100, now=10_000) == view.access(0x100, now=10_000)
    assert arbiter2.accesses == arbiter.accesses


# ----------------------------------------------------------------------
# End to end: contention must cost cycles at the machine level
# ----------------------------------------------------------------------


def _cycles(spec: str) -> tuple[int, int]:
    workload = get_workload("mcf")
    trace = workload.trace(600)
    stats = simulate(parse_machine(spec), trace, memory=TABLE1_CONFIGS["MEM-400"],
                     regions=workload.regions)
    return stats.cycles, stats.l2_arb_conflicts


def test_co_runner_costs_cycles_never_saves_them():
    solo_cycles, solo_conflicts = _cycles("dual(rob=32,l2busy=2)")
    loaded_cycles, loaded_conflicts = _cycles(
        "dual(rob=32,l2busy=2,co=synth(chase=0,mlp=6,footprint=8M))"
    )
    assert loaded_cycles >= solo_cycles
    assert loaded_conflicts > solo_conflicts
