"""Unit and property tests for the cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import AccessLevel, Cache, MainMemory


def make_cache(size=1024, assoc=2, line=64, latency=2):
    return Cache("L1", size, assoc, line, latency)


def test_miss_then_hit():
    c = make_cache()
    line = c.line_of(0x1234)
    assert not c.lookup(line)
    c.fill(line)
    assert c.lookup(line)
    assert c.hits == 1 and c.misses == 1
    assert c.miss_rate == pytest.approx(0.5)


def test_lru_eviction_order():
    c = make_cache(size=256, assoc=2, line=64)  # 2 sets, 2 ways
    s = c._num_sets
    lines = [i * s for i in range(3)]  # all map to set 0
    c.fill(lines[0])
    c.fill(lines[1])
    c.lookup(lines[0])        # refresh line 0 -> line 1 is LRU
    c.fill(lines[2])          # evicts line 1
    assert c.probe(lines[0])
    assert not c.probe(lines[1])
    assert c.probe(lines[2])


def test_probe_has_no_side_effects():
    c = make_cache()
    c.fill(1)
    hits, misses = c.hits, c.misses
    assert c.probe(1) and not c.probe(2)
    assert (c.hits, c.misses) == (hits, misses)


def test_infinite_cache_never_evicts():
    c = Cache("L2", None, 8, 64, 11)
    for i in range(10_000):
        c.fill(i)
    assert all(c.probe(i) for i in range(0, 10_000, 997))


def test_fill_is_idempotent():
    c = make_cache(size=256, assoc=2, line=64)
    c.fill(0)
    c.fill(0)
    c.fill(c._num_sets)       # same set, second way
    assert c.probe(0)


def test_pending_fill_countdown():
    c = make_cache()
    c.record_fill(5, ready_cycle=100)
    assert c.pending_fill(5, now=60) == 40
    assert c.pending_fill(5, now=100) is None
    # probing is pure: the earlier answer is reproducible, regardless of
    # any probes that happened in between
    assert c.pending_fill(5, now=60) == 40
    # an explicit sweep reclaims expired entries without touching live ones
    c.record_fill(7, ready_cycle=300)
    assert c.sweep_fills(now=100) == 1
    assert c.outstanding_fills == 1
    assert c.pending_fill(5, now=60) is None
    assert c.pending_fill(7, now=100) == 200


def test_pending_fill_unknown_line():
    assert make_cache().pending_fill(42, now=0) is None


def test_constructor_validation():
    with pytest.raises(ValueError):
        Cache("x", 1000, 3, 64, 2)   # size not divisible
    with pytest.raises(ValueError):
        Cache("x", 1024, 2, 60, 2)   # line not power of two
    with pytest.raises(ValueError):
        Cache("x", 1024, 2, 64, 0)   # zero latency


def test_reset_stats():
    c = make_cache()
    c.lookup(1)
    c.reset_stats()
    assert c.accesses == 0


def test_main_memory():
    mem = MainMemory(400)
    assert mem.access() == 400
    assert mem.accesses == 1
    with pytest.raises(ValueError):
        MainMemory(0)


def test_access_levels_are_ordered():
    assert AccessLevel.L1 < AccessLevel.L2 < AccessLevel.MEMORY


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=300))
def test_property_capacity_never_exceeded(lines):
    """LRU invariant: a set never holds more than `assoc` lines, and the
    most recently touched line is always resident."""
    c = Cache("p", 512, 2, 64, 1)  # 4 sets x 2 ways
    for line in lines:
        if not c.lookup(line):
            c.fill(line)
        for s in c._sets:
            assert len(s) <= c.assoc
        assert c.probe(line)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=100),
    st.integers(min_value=1, max_value=4),
)
def test_property_small_working_sets_always_hit(lines, assoc):
    """A working set no larger than one set's associativity never misses
    after the first touch."""
    c = Cache("p", 64 * assoc, assoc, 64, 1)  # one set
    distinct = sorted(set(lines))[:assoc]
    for line in distinct:
        c.lookup(line)
        c.fill(line)
    c.reset_stats()
    for line in distinct * 3:
        assert c.lookup(line)
    assert c.misses == 0
