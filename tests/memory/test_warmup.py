"""Unit tests for functional cache warm-up."""

import pytest

from repro.memory import DEFAULT_MEMORY, MemoryHierarchy, warm_caches
from repro.memory.cache import AccessLevel
from repro.memory.configs import TABLE1_CONFIGS
from repro.memory.warmup import clear_warmup_memo, warm_caches_reference


def test_warmup_touches_every_line():
    h = MemoryHierarchy(DEFAULT_MEMORY)
    touched = warm_caches(h, [(0, 4096)])
    assert touched == 64
    lat, level = h.access(0x0, now=0)
    assert level == AccessLevel.L1


def test_warmup_resets_statistics():
    h = MemoryHierarchy(DEFAULT_MEMORY)
    warm_caches(h, [(0, 65536)])
    assert h.l1.accesses == 0
    assert h.memory.accesses == 0


def test_warmup_respects_capacity():
    """After warming a region larger than the L2, its tail is resident and
    its head is not — the recency order a real run would leave."""
    h = MemoryHierarchy(DEFAULT_MEMORY)
    region = 2 * 1024 * 1024
    warm_caches(h, [(0, region)])
    head_lat, head_level = h.access(0, now=0)
    tail_lat, tail_level = h.access(region - 64, now=0)
    assert head_level == AccessLevel.MEMORY
    assert tail_level in (AccessLevel.L1, AccessLevel.L2)


def test_multiple_passes():
    h = MemoryHierarchy(DEFAULT_MEMORY)
    touched = warm_caches(h, [(0, 4096), (1 << 20, 4096)], passes=2)
    assert touched == 128


def test_empty_regions():
    h = MemoryHierarchy(DEFAULT_MEMORY)
    assert warm_caches(h, []) == 0


# ----------------------------------------------------------------------
# Differential suite: every fast path vs the reference touch loop.
# ----------------------------------------------------------------------

CONFIGS = ("L1-2", "L2-11", "MEM-400")

REGION_SETS = {
    "distinct": [(0, 8192), (1 << 20, 4096)],
    # Overlapping regions produce duplicate lines in the touch plan,
    # forcing the exact-replay fallback instead of the tail install.
    "overlapping": [(0, 8192), (4096, 8192)],
    "larger-than-l2": [(0, 2 * 1024 * 1024)],
}


def _snapshots(config_name, regions, passes):
    clear_warmup_memo()
    fast = MemoryHierarchy(TABLE1_CONFIGS[config_name])
    touched_fast = warm_caches(fast, regions, passes=passes)
    reference = MemoryHierarchy(TABLE1_CONFIGS[config_name])
    touched_ref = warm_caches_reference(reference, regions, passes=passes)
    return (touched_fast, fast.snapshot()), (touched_ref, reference.snapshot())


@pytest.mark.parametrize("config_name", CONFIGS)
@pytest.mark.parametrize("regions", list(REGION_SETS), ids=list(REGION_SETS))
def test_fast_warmup_matches_reference(config_name, regions):
    fast, reference = _snapshots(config_name, REGION_SETS[regions], passes=1)
    assert fast == reference


@pytest.mark.parametrize("regions", list(REGION_SETS), ids=list(REGION_SETS))
def test_fast_warmup_matches_reference_two_passes(regions):
    fast, reference = _snapshots("L2-11", REGION_SETS[regions], passes=2)
    assert fast == reference


def test_memo_hit_restores_identical_state():
    """The second warm-up of the same (geometry, regions, passes) comes
    from the snapshot memo and must equal both the first fast warm-up
    and the reference."""
    regions = REGION_SETS["distinct"]
    clear_warmup_memo()
    first = MemoryHierarchy(TABLE1_CONFIGS["L2-11"])
    warm_caches(first, regions)
    memoized = MemoryHierarchy(TABLE1_CONFIGS["L2-11"])
    warm_caches(memoized, regions)
    reference = MemoryHierarchy(TABLE1_CONFIGS["L2-11"])
    warm_caches_reference(reference, regions)
    assert memoized.snapshot() == first.snapshot() == reference.snapshot()


def test_non_pristine_hierarchy_falls_back_to_replay():
    """A hierarchy that has already seen traffic must not take the
    tail-install shortcut; the exact replay keeps it reference-equal."""
    clear_warmup_memo()
    regions = REGION_SETS["distinct"]
    fast = MemoryHierarchy(TABLE1_CONFIGS["L2-11"])
    fast.touch(0xDEAD000)
    warm_caches(fast, regions)
    reference = MemoryHierarchy(TABLE1_CONFIGS["L2-11"])
    reference.touch(0xDEAD000)
    warm_caches_reference(reference, regions)
    assert fast.snapshot() == reference.snapshot()
