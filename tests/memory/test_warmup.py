"""Unit tests for functional cache warm-up."""

from repro.memory import DEFAULT_MEMORY, MemoryHierarchy, warm_caches
from repro.memory.cache import AccessLevel


def test_warmup_touches_every_line():
    h = MemoryHierarchy(DEFAULT_MEMORY)
    touched = warm_caches(h, [(0, 4096)])
    assert touched == 64
    lat, level = h.access(0x0, now=0)
    assert level == AccessLevel.L1


def test_warmup_resets_statistics():
    h = MemoryHierarchy(DEFAULT_MEMORY)
    warm_caches(h, [(0, 65536)])
    assert h.l1.accesses == 0
    assert h.memory.accesses == 0


def test_warmup_respects_capacity():
    """After warming a region larger than the L2, its tail is resident and
    its head is not — the recency order a real run would leave."""
    h = MemoryHierarchy(DEFAULT_MEMORY)
    region = 2 * 1024 * 1024
    warm_caches(h, [(0, region)])
    head_lat, head_level = h.access(0, now=0)
    tail_lat, tail_level = h.access(region - 64, now=0)
    assert head_level == AccessLevel.MEMORY
    assert tail_level in (AccessLevel.L1, AccessLevel.L2)


def test_multiple_passes():
    h = MemoryHierarchy(DEFAULT_MEMORY)
    touched = warm_caches(h, [(0, 4096), (1 << 20, 4096)], passes=2)
    assert touched == 128


def test_empty_regions():
    h = MemoryHierarchy(DEFAULT_MEMORY)
    assert warm_caches(h, []) == 0
