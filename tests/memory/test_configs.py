"""Unit tests for memory configurations (the paper's Table 1)."""

from repro.memory import DEFAULT_MEMORY, TABLE1_CONFIGS, memory_config_for_l2_size
from repro.memory.configs import FIG11_L2_SIZES, KB, MB


def test_table1_has_six_rows():
    assert set(TABLE1_CONFIGS) == {
        "L1-2",
        "L2-11",
        "L2-21",
        "MEM-100",
        "MEM-400",
        "MEM-1000",
    }


def test_table1_values_match_paper():
    assert TABLE1_CONFIGS["L1-2"].l1_size is None
    assert TABLE1_CONFIGS["L1-2"].l1_latency == 2
    assert TABLE1_CONFIGS["L2-11"].l2_latency == 11
    assert TABLE1_CONFIGS["L2-11"].l2_size is None
    assert TABLE1_CONFIGS["L2-21"].l2_latency == 21
    for lat in (100, 400, 1000):
        config = TABLE1_CONFIGS[f"MEM-{lat}"]
        assert config.mem_latency == lat
        assert config.l1_size == 32 * KB
        assert config.l2_size == 512 * KB


def test_default_memory_matches_tables_2_and_3():
    assert DEFAULT_MEMORY.l1_size == 32 * KB
    assert DEFAULT_MEMORY.l1_latency == 2
    assert DEFAULT_MEMORY.l2_size == 512 * KB
    assert DEFAULT_MEMORY.l2_latency == 11
    assert DEFAULT_MEMORY.mem_latency == 400


def test_l2_size_override():
    config = memory_config_for_l2_size(2 * MB)
    assert config.l2_size == 2 * MB
    assert config.mem_latency == DEFAULT_MEMORY.mem_latency
    assert config.name != DEFAULT_MEMORY.name


def test_mem_latency_override():
    config = DEFAULT_MEMORY.with_mem_latency(1000)
    assert config.mem_latency == 1000


def test_fig11_sweep_range():
    assert FIG11_L2_SIZES[0] == 64 * KB
    assert FIG11_L2_SIZES[-1] == 4 * MB
    assert len(FIG11_L2_SIZES) == 7
    assert all(b == 2 * a for a, b in zip(FIG11_L2_SIZES, FIG11_L2_SIZES[1:]))


def test_configs_are_immutable():
    import pytest

    with pytest.raises(AttributeError):
        DEFAULT_MEMORY.l2_size = 0  # type: ignore[misc]
