"""Property tests over the assembled memory hierarchy."""

from hypothesis import given, settings, strategies as st

from repro.memory import DEFAULT_MEMORY, MemoryHierarchy
from repro.memory.cache import AccessLevel


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 1 << 22), st.booleans()),
        min_size=1,
        max_size=300,
    )
)
def test_latency_matches_reported_level(accesses):
    """Whatever the access stream, the reported latency is consistent with
    the reported level: L1 => l1 latency, L2 => l2 latency, MEMORY =>
    at least the L2 latency and at most memory latency + L1 latency."""
    h = MemoryHierarchy(DEFAULT_MEMORY)
    now = 0
    for addr, write in accesses:
        now += 1
        latency, level = h.access(addr, write=write, now=now)
        if level == AccessLevel.L1:
            assert latency == h.l1.latency
        elif level == AccessLevel.L2:
            assert latency == h.l2.latency
        else:
            assert h.l2.latency <= latency <= h.memory.latency + h.l1.latency


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 1 << 18), min_size=1, max_size=200))
def test_second_access_is_never_slower(addresses):
    """Re-accessing an address immediately (after its fill window) is at
    least as fast as the first access."""
    h = MemoryHierarchy(DEFAULT_MEMORY)
    now = 0
    for addr in addresses:
        now += 1
        first, _ = h.access(addr, now=now)
        second, _ = h.access(addr, now=now + first + 1)
        assert second <= first


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 1 << 22), st.integers(1, 399))
def test_pending_fill_monotone_countdown(addr, delta):
    """A second access to an in-flight line pays strictly less than the
    full latency and strictly more than a hit, proportionally to time."""
    h = MemoryHierarchy(DEFAULT_MEMORY)
    full, level = h.access(addr, now=0)
    assert level == AccessLevel.MEMORY
    partial, level2 = h.access(addr, now=delta)
    assert level2 == AccessLevel.MEMORY
    assert partial == h.l1.latency + (full - delta)
