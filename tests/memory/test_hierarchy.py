"""Unit tests for the assembled memory hierarchy."""

import pytest

from repro.memory import (
    DEFAULT_MEMORY,
    MemoryConfig,
    MemoryHierarchy,
    TABLE1_CONFIGS,
    AccessLevel,
)


def test_default_hierarchy_latencies():
    h = MemoryHierarchy(DEFAULT_MEMORY)
    lat, level = h.access(0x1000)
    assert level == AccessLevel.MEMORY and lat == 400
    lat, level = h.access(0x1000, now=500)
    assert level == AccessLevel.L1 and lat == 2


def test_l2_hit_after_l1_eviction():
    h = MemoryHierarchy(DEFAULT_MEMORY)
    h.access(0x0, now=0)
    # Evict line 0 from the 32KB 2-way L1 by filling its set.
    sets = h.l1._num_sets
    h.access(sets * 64, now=1000)
    h.access(2 * sets * 64, now=2000)
    lat, level = h.access(0x0, now=3000)
    assert level == AccessLevel.L2 and lat == 11


def test_infinite_l1_configuration():
    h = MemoryHierarchy(TABLE1_CONFIGS["L1-2"])
    lat, level = h.access(0xABC)
    assert (lat, level) == (2, AccessLevel.L1)
    lat, level = h.access(0xABC)
    assert (lat, level) == (2, AccessLevel.L1)


def test_infinite_l2_configuration():
    h = MemoryHierarchy(TABLE1_CONFIGS["L2-21"])
    lat, level = h.access(0xABC)
    assert (lat, level) == (21, AccessLevel.L2)
    lat, level = h.access(0xABC)
    assert (lat, level) == (2, AccessLevel.L1)


def test_pending_fill_overlap():
    """A second access to a line being fetched pays only the remainder."""
    h = MemoryHierarchy(DEFAULT_MEMORY)
    h.access(0x40, now=0)               # miss: ready at 400
    lat, level = h.access(0x48, now=100)  # same line, 100 cycles later
    assert level == AccessLevel.MEMORY
    assert lat == h.l1.latency + 300


def test_pending_fill_fully_elapsed():
    h = MemoryHierarchy(DEFAULT_MEMORY)
    h.access(0x40, now=0)
    lat, level = h.access(0x48, now=401)
    assert (lat, level) == (2, AccessLevel.L1)


def test_touch_is_untimed_and_fills():
    h = MemoryHierarchy(DEFAULT_MEMORY)
    h.touch(0x2000)
    assert h.l1.probe(h.l1.line_of(0x2000))
    assert h.memory.accesses == 0


def test_is_long_latency_classification():
    h = MemoryHierarchy(DEFAULT_MEMORY)
    assert h.is_long_latency(AccessLevel.MEMORY)
    assert not h.is_long_latency(AccessLevel.L2)
    assert not h.is_long_latency(AccessLevel.L1)


def test_describe_mentions_all_levels():
    text = MemoryHierarchy(DEFAULT_MEMORY).describe()
    assert "L1" in text and "L2" in text and "MEM" in text


def test_memory_without_l2_rejected():
    config = MemoryConfig(name="bad", l2_latency=None, mem_latency=400)
    with pytest.raises(ValueError):
        MemoryHierarchy(config)


def test_reset_stats():
    h = MemoryHierarchy(DEFAULT_MEMORY)
    h.access(0x40)
    h.reset_stats()
    assert h.l1.accesses == 0 and h.l2.accesses == 0 and h.memory.accesses == 0


def test_write_allocates():
    h = MemoryHierarchy(DEFAULT_MEMORY)
    h.access(0x40, write=True, now=0)
    lat, level = h.access(0x40, now=500)
    assert level == AccessLevel.L1
