"""Unit tests for simulation-point selection."""

import numpy as np
import pytest

from repro.simpoint import choose_simpoints, collect_bbvs, weighted_ipc
from repro.simpoint.bbv import BasicBlockVectors
from repro.simpoint.select import SimPoint
from repro.workloads import get_workload


def fake_bbvs(matrix):
    matrix = np.asarray(matrix, dtype=float)
    return BasicBlockVectors(
        interval_size=100, matrix=matrix, block_ids=list(range(matrix.shape[1]))
    )


def test_weights_sum_to_one():
    workload = get_workload("gcc")
    bbvs = collect_bbvs(iter(workload.trace(4_000)), interval_size=500)
    points = choose_simpoints(bbvs, k=3, seed=0)
    assert sum(p.weight for p in points) == pytest.approx(1.0)
    assert all(0 <= p.interval < bbvs.num_intervals for p in points)


def test_representatives_come_from_their_cluster():
    matrix = [[1.0, 0.0]] * 4 + [[0.0, 1.0]] * 4
    points = choose_simpoints(fake_bbvs(matrix), k=2, seed=0)
    assert len(points) == 2
    assert {p.interval < 4 for p in points} == {True, False}
    for p in points:
        assert p.weight == pytest.approx(0.5)


def test_k_clamped_to_interval_count():
    matrix = [[1.0, 0.0], [0.0, 1.0]]
    points = choose_simpoints(fake_bbvs(matrix), k=10, seed=0)
    assert len(points) <= 2


def test_instruction_range():
    point = SimPoint(interval=3, weight=0.5)
    assert point.instruction_range(1000) == (3000, 4000)


def test_weighted_ipc_combines():
    points = [SimPoint(0, 0.75), SimPoint(5, 0.25)]
    assert weighted_ipc(points, {0: 2.0, 5: 1.0}) == pytest.approx(1.75)


def test_weighted_ipc_requires_all_measurements():
    with pytest.raises(KeyError):
        weighted_ipc([SimPoint(0, 1.0)], {})
    assert weighted_ipc([], {}) == 0.0
