"""Unit tests for basic-block-vector profiling."""

import numpy as np
import pytest

from repro.simpoint import collect_bbvs
from repro.workloads import get_workload

from tests.conftest import make_loop


def test_interval_count():
    trace = make_loop(iterations=100, body_alu=3)  # 400 instructions
    bbvs = collect_bbvs(iter(trace), interval_size=100)
    assert bbvs.num_intervals == 4


def test_partial_final_interval_kept():
    trace = make_loop(iterations=10, body_alu=3)  # 40 instructions
    bbvs = collect_bbvs(iter(trace), interval_size=32)
    assert bbvs.num_intervals == 2


def test_rows_are_l1_normalized():
    workload = get_workload("gcc")
    bbvs = collect_bbvs(iter(workload.trace(2_000)), interval_size=500)
    sums = bbvs.matrix.sum(axis=1)
    assert np.allclose(sums, 1.0)


def test_homogeneous_trace_gives_identical_rows():
    trace = make_loop(iterations=200, body_alu=3)
    bbvs = collect_bbvs(iter(trace), interval_size=200)
    for row in bbvs.matrix[1:]:
        assert np.allclose(row, bbvs.matrix[1], atol=0.05)


def test_block_ids_are_recorded():
    trace = make_loop(iterations=10, body_alu=3)
    bbvs = collect_bbvs(iter(trace), interval_size=20)
    assert bbvs.num_blocks >= 1
    assert len(bbvs.block_ids) == bbvs.num_blocks


def test_invalid_interval_size():
    with pytest.raises(ValueError):
        collect_bbvs(iter([]), interval_size=0)
