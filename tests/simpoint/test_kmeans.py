"""Unit and property tests for the from-scratch k-means."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simpoint import kmeans


def three_blobs(n=30, seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    points = np.vstack(
        [center + rng.normal(scale=0.5, size=(n, 2)) for center in centers]
    )
    return points


def test_recovers_well_separated_clusters():
    points = three_blobs()
    result = kmeans(points, k=3, seed=1)
    assert result.k == 3
    sizes = result.cluster_sizes()
    assert sorted(sizes) == [30, 30, 30]


def test_deterministic_given_seed():
    points = three_blobs()
    a = kmeans(points, k=3, seed=5)
    b = kmeans(points, k=3, seed=5)
    assert np.array_equal(a.labels, b.labels)
    assert a.inertia == b.inertia


def test_k_equal_to_n_gives_zero_inertia():
    points = np.array([[0.0], [1.0], [2.0]])
    result = kmeans(points, k=3, seed=0)
    assert result.inertia == pytest.approx(0.0)


def test_k_one_uses_global_mean():
    points = three_blobs()
    result = kmeans(points, k=1, seed=0)
    assert np.allclose(result.centroids[0], points.mean(axis=0))


def test_invalid_arguments():
    points = three_blobs()
    with pytest.raises(ValueError):
        kmeans(points, k=0)
    with pytest.raises(ValueError):
        kmeans(points, k=len(points) + 1)
    with pytest.raises(ValueError):
        kmeans(np.zeros(5), k=1)  # 1-D input


def test_identical_points_dont_crash():
    points = np.ones((10, 3))
    result = kmeans(points, k=3, seed=0)
    assert result.inertia == pytest.approx(0.0)


def test_inertia_non_increasing_in_k():
    points = three_blobs()
    inertias = [kmeans(points, k=k, seed=0).inertia for k in (1, 3, 9)]
    assert inertias[0] >= inertias[1] >= inertias[2]


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=5),
    st.lists(
        st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
        min_size=5,
        max_size=60,
    ),
)
def test_property_labels_valid_and_assignment_optimal(k, raw_points):
    """Every point gets a valid label, and that label is (one of) its
    nearest centroids — the defining post-condition of Lloyd's algorithm."""
    points = np.array(raw_points)
    k = min(k, len(points))
    result = kmeans(points, k=k, seed=3)
    assert result.labels.shape == (len(points),)
    assert ((0 <= result.labels) & (result.labels < k)).all()
    distances = ((points[:, None, :] - result.centroids[None, :, :]) ** 2).sum(axis=2)
    chosen = distances[np.arange(len(points)), result.labels]
    assert np.allclose(chosen, distances.min(axis=1))
