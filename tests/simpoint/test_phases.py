"""Phase analysis (analyze_trace): edge cases and determinism."""

import numpy as np
import pytest

from repro.simpoint.kmeans import kmeans
from repro.simpoint.phases import PhaseAnalysisError, analyze_trace
from repro.trace.io import TraceFormatError, dump_trace, save_trace
from repro.workloads import get_workload


@pytest.fixture
def capture(tmp_path):
    """A 2500-instruction mcf capture (not a multiple of interval=400)."""
    path = str(tmp_path / "mcf.trc.gz")
    save_trace(get_workload("mcf"), path, 2500)
    return path


def test_selection_is_well_formed(capture):
    phase_set = analyze_trace(capture, interval=400, k=3)
    assert phase_set.num_intervals == 6          # 2500 // 400, tail dropped
    assert phase_set.total_instructions == 2500
    assert 1 <= len(phase_set.points) <= 3
    assert sum(phase_set.weights) == pytest.approx(1.0)
    for point in phase_set.points:
        assert 0 <= point.interval < phase_set.num_intervals
    # Sorted by interval, no duplicates.
    intervals = [p.interval for p in phase_set.points]
    assert intervals == sorted(set(intervals))


def test_empty_capture_is_a_clean_error(tmp_path):
    path = str(tmp_path / "empty.trc")
    dump_trace([], path)
    with pytest.raises(PhaseAnalysisError, match="fewer than one complete"):
        analyze_trace(path, interval=100)


def test_capture_shorter_than_one_interval_is_a_clean_error(tmp_path):
    path = str(tmp_path / "short.trc.gz")
    save_trace(get_workload("eon"), path, 50)
    with pytest.raises(PhaseAnalysisError, match="50 instruction"):
        analyze_trace(path, interval=100)


def test_missing_file_raises_the_trace_layer_error(tmp_path):
    with pytest.raises(TraceFormatError):
        analyze_trace(str(tmp_path / "nope.trc"), interval=100)


def test_bad_parameters_rejected(capture):
    with pytest.raises(PhaseAnalysisError, match="interval must be positive"):
        analyze_trace(capture, interval=0)
    with pytest.raises(PhaseAnalysisError, match="k must be positive"):
        analyze_trace(capture, k=0)


def test_fewer_intervals_than_k_clamps(capture):
    # 2500 instructions at interval=1000 -> 2 complete intervals < k=5.
    phase_set = analyze_trace(capture, interval=1000, k=5)
    assert phase_set.num_intervals == 2
    assert 1 <= len(phase_set.points) <= 2
    assert sum(phase_set.weights) == pytest.approx(1.0)


def test_same_seed_same_selection(capture):
    first = analyze_trace(capture, interval=250, k=3, seed=7)
    # Defeat the memo cache by re-stat'ing through a fresh parameter set:
    # identical parameters must return the identical (cached) object,
    # and a cache-missing equivalent run must agree point for point.
    again = analyze_trace(capture, interval=250, k=3, seed=7)
    assert again is first                         # memoized
    assert again.points == first.points


def test_degenerate_single_cluster_matrix():
    """All-identical BBV rows must collapse to one phase with weight 1."""
    matrix = np.tile(np.array([[0.5, 0.5]]), (6, 1))
    result = kmeans(matrix, 3, seed=0)
    # However the seeding lands, every point sits on the same coordinates,
    # so the non-empty clusters cover all points at zero inertia.
    assert result.inertia == pytest.approx(0.0)


def test_degenerate_constant_trace_selects_one_phase(tmp_path):
    """A capture with a single repeating block yields one phase."""
    from repro.isa import Instruction, OpClass

    instructions = [
        Instruction(seq=i, pc=0x100, op=OpClass.INT_ALU)
        for i in range(600)
    ]
    path = str(tmp_path / "flat.trc")
    dump_trace(instructions, path)
    phase_set = analyze_trace(path, interval=100, k=4)
    assert len(phase_set.points) == 1
    assert phase_set.weights == (1.0,)


def test_member_specs_and_token_round_trip(capture):
    phase_set = analyze_trace(capture, interval=500, k=2, seed=3)
    for spec, point in zip(phase_set.member_specs(), phase_set.points):
        assert f"index={point.interval}" in spec
        assert "interval=500" in spec
        assert spec.startswith("phases(")
    token = phase_set.token()
    assert "k=2" in token and "seed=3" in token and "index" not in token
    assert 0.0 < phase_set.coverage <= 1.0
    rows = phase_set.table_rows()
    assert len(rows) == len(phase_set.points)
