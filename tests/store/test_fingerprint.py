"""Fingerprint determinism: the store is only sound if equal
configurations digest equally — across objects, processes and runs."""

from __future__ import annotations

import dataclasses
import subprocess
import sys

from repro.fingerprint import canonical, canonical_json, digest
from repro.memory import DEFAULT_MEMORY
from repro.memory.configs import MemoryConfig
from repro.sim.config import (
    DKIP_2048,
    KILO_1024,
    R10_64,
    R10_256,
    CoreConfig,
    LimitMachine,
    SchedulerPolicy,
)
from repro.workloads import get_workload


def test_equal_configs_fingerprint_equal():
    assert R10_64.fingerprint() == CoreConfig(
        name="R10-64", rob_size=64, iq_int=40, iq_fp=40
    ).fingerprint()


def test_any_field_change_changes_fingerprint():
    base = DKIP_2048.fingerprint()
    assert dataclasses.replace(DKIP_2048, llib_size=1024).fingerprint() != base
    assert dataclasses.replace(DKIP_2048, rob_timer=8).fingerprint() != base
    # Nested dataclass fields count too.
    cp = dataclasses.replace(DKIP_2048.cache_processor, iq_int=20)
    assert dataclasses.replace(DKIP_2048, cache_processor=cp).fingerprint() != base


def test_distinct_machines_are_distinct():
    prints = {m.fingerprint() for m in (R10_64, R10_256, KILO_1024, DKIP_2048)}
    assert len(prints) == 4


def test_class_name_disambiguates_identical_fields():
    # Same field values under different kinds must never collide.
    assert canonical(R10_64)["__kind__"] == "CoreConfig"
    assert digest(R10_64) != digest({**canonical(R10_64), "__kind__": "Other"})


def test_enum_and_float_normalization():
    assert canonical(SchedulerPolicy.IN_ORDER) == "ino"
    assert digest({"x": 4.0}) == digest({"x": 4})


def test_memory_and_workload_fingerprints():
    assert DEFAULT_MEMORY.fingerprint() != DEFAULT_MEMORY.with_l2_size(65536).fingerprint()
    assert isinstance(DEFAULT_MEMORY, MemoryConfig)
    swim0, swim1 = get_workload("swim", seed=0), get_workload("swim", seed=1)
    assert swim0.fingerprint() == get_workload("swim", seed=0).fingerprint()
    assert swim0.fingerprint() != swim1.fingerprint()
    assert swim0.fingerprint() != get_workload("mcf", seed=0).fingerprint()


def test_limit_machine_fingerprints():
    a = LimitMachine(rob_size=128, record_histogram=False)
    assert a.fingerprint() == LimitMachine(rob_size=128, record_histogram=False).fingerprint()
    assert a.fingerprint() != LimitMachine(rob_size=256, record_histogram=False).fingerprint()
    assert LimitMachine(rob_size=None).name == "limit-rob-inf"


def test_fingerprint_stable_across_processes():
    """hash() is salted per process; the digest must not be."""
    script = (
        "from repro.sim.config import DKIP_2048\n"
        "from repro.memory import DEFAULT_MEMORY\n"
        "from repro.workloads import get_workload\n"
        "print(DKIP_2048.fingerprint())\n"
        "print(DEFAULT_MEMORY.fingerprint())\n"
        "print(get_workload('mcf', seed=3).fingerprint())\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True, check=True
    ).stdout.split()
    assert out == [
        DKIP_2048.fingerprint(),
        DEFAULT_MEMORY.fingerprint(),
        get_workload("mcf", seed=3).fingerprint(),
    ]


def test_canonical_json_is_key_order_independent():
    assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})
