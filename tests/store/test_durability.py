"""Store durability: fsynced writes, corrupt-write injection, quarantine."""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments import cli
from repro.experiments.common import WorkloadPool, compute_cell
from repro.memory import DEFAULT_MEMORY
from repro.sim.config import R10_64
from repro.sim.runner import run_core
from repro.sim.stats import STATS_SCHEMA_VERSION
from repro.store import ResultStore, cell_key


@pytest.fixture
def pool():
    return WorkloadPool()


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


def _one_cell(pool):
    workload = pool.get("swim")
    key = cell_key(R10_64, workload, 600, DEFAULT_MEMORY)
    stats = run_core(R10_64, workload, 600, memory=DEFAULT_MEMORY)
    return key, stats


def test_put_fsyncs_the_entry_and_its_directory(store, pool, monkeypatch):
    synced = []
    real_fsync = os.fsync
    monkeypatch.setattr(os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd)))
    key, stats = _one_cell(pool)
    store.put(key, stats)
    # One fsync for the temp file's bytes, one for the directory entry
    # publishing the rename — both must land before put() returns.
    assert len(synced) == 2
    assert store.get(key) == stats


def test_injected_corrupt_write_reads_as_a_miss_and_heals(
    store, pool, monkeypatch
):
    key, stats = _one_cell(pool)
    monkeypatch.setenv("REPRO_FAULT", "store:corrupt@#0:1.0:0")
    path = store.put(key, stats)
    assert path.read_text() == ""  # truncated to the crash-torn zero bytes
    assert store.get(key) is None and store.corrupt == 1
    # The injection is keyed by the write counter, so the re-put after
    # the miss lands clean even with the fault plan still active.
    store.put(key, stats)
    assert store.get(key) == stats


def test_partial_truncation_is_also_a_miss(store, pool, monkeypatch):
    key, stats = _one_cell(pool)
    monkeypatch.setenv("REPRO_FAULT", "store:corrupt:1.0:0.5")
    store.put(key, stats)
    assert store.get(key) is None and store.corrupt == 1


def test_verify_quarantines_corrupt_and_stale_entries(store, pool):
    key, stats = _one_cell(pool)
    good = store.put(key, stats)
    bad = good.parent / ("0" * 64 + ".json")
    bad.write_text("{ not json")
    stale = good.parent / ("1" * 64 + ".json")
    entry = json.loads(good.read_text())
    entry["key"]["schema"] = STATS_SCHEMA_VERSION - 1
    entry["digest"] = stale.stem
    from repro.fingerprint import digest as digest_of

    entry["stats_digest"] = digest_of(entry["stats"])
    stale.write_text(json.dumps(entry))

    reports = store.verify(compute_cell, quarantine=True)
    by_status = {}
    for report in reports:
        by_status.setdefault(report["status"], []).append(report)
    assert len(by_status["quarantined"]) == 2
    assert len(by_status["ok"]) == 1
    assert not bad.exists() and not stale.exists()
    quarantine_dir = store.root / ".quarantine"
    assert sorted(p.name for p in quarantine_dir.iterdir()) == [
        bad.name, stale.name,
    ]
    # Quarantined files keep their bytes for post-mortems.
    assert (quarantine_dir / bad.name).read_text() == "{ not json"
    # The good entry is untouched and still serves lookups.
    assert store.get(key) == stats


def test_verify_without_quarantine_leaves_entries_in_place(store, pool):
    key, stats = _one_cell(pool)
    good = store.put(key, stats)
    bad = good.parent / ("0" * 64 + ".json")
    bad.write_text("garbage")
    reports = store.verify(compute_cell)
    assert [r["status"] for r in reports] == ["ok"]
    assert bad.exists()
    assert not (store.root / ".quarantine").exists()


def test_cli_cache_verify_quarantine(tmp_path, capsys, pool):
    store = ResultStore(tmp_path / "store")
    key, stats = _one_cell(pool)
    good = store.put(key, stats)
    (good.parent / ("0" * 64 + ".json")).write_text("garbage")
    code = cli.main(
        ["cache", "verify", "--quarantine", "--store", str(store.root)]
    )
    assert code == 0  # quarantining is remediation, not failure
    out = capsys.readouterr().out
    assert "verified 1 cell(s), 0 stale/errored" in out
    assert "quarantined 1 corrupt/stale entrie(s)" in out
    assert (store.root / ".quarantine" / ("0" * 64 + ".json")).exists()
