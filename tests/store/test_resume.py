"""Resumable, incremental sweeps: the store makes re-runs cost the delta.

The acceptance contract: a sweep run twice against the same store
simulates zero cells the second time and produces bit-identical rows; a
sweep interrupted mid-flight completes only the missing cells when
re-run.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import WorkloadPool, run_many, run_suite
from repro.experiments.registry import get_experiment
from repro.machines import parse_machine
from repro.memory import DEFAULT_MEMORY
from repro.sim.config import DKIP_2048, KILO_1024, R10_64, R10_256, LimitMachine
from repro.store import ResultStore, cell_key

NAMES = ("swim", "mcf", "gcc")
N = 600


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


def test_second_run_simulates_nothing(store):
    pool = WorkloadPool()
    cold = run_suite(R10_64, NAMES, N, pool, jobs=1, store=store)
    assert store.writes == len(NAMES)
    warm = run_suite(R10_64, NAMES, N, pool, jobs=1, store=store)
    assert store.hits == len(NAMES)
    assert store.writes == len(NAMES)  # nothing recomputed
    assert warm == cold


def test_store_results_match_storeless(store):
    pool = WorkloadPool()
    plain = run_suite(R10_64, NAMES, N, pool, jobs=1)
    stored = run_suite(R10_64, NAMES, N, pool, jobs=1, store=store)
    rehydrated = run_suite(R10_64, NAMES, N, pool, jobs=1, store=store)
    assert plain == stored == rehydrated


def test_interrupted_sweep_resumes_missing_cells_only(store):
    """Pre-populate a strict subset of cells (as a killed sweep would
    leave behind), then re-run: only the gap is simulated."""
    pool = WorkloadPool()
    reference = run_suite(R10_64, NAMES, N, pool, jobs=1)
    # "Interrupted" run: only the first cell made it to disk.
    key = cell_key(R10_64, pool.get(NAMES[0]), N, DEFAULT_MEMORY)
    store.put(key, reference[0])
    resumed = run_suite(R10_64, NAMES, N, pool, jobs=1, store=store)
    assert resumed == reference
    assert store.hits == 1
    assert store.writes == 1 + (len(NAMES) - 1)


def test_incremental_run_recomputes_only_changed_cells(store):
    """Changing one swept parameter misses only the changed cells."""
    pool = WorkloadPool()
    run_suite(R10_64, NAMES, N, pool, jobs=1, store=store)
    writes = store.writes
    # Same config, one extra benchmark: exactly one new cell.
    run_suite(R10_64, NAMES + ("art",), N, pool, jobs=1, store=store)
    assert store.writes == writes + 1
    # A different machine config misses every cell again.
    run_suite(R10_256, NAMES, N, pool, jobs=1, store=store)
    assert store.writes == writes + 1 + len(NAMES)


def test_parallel_sweep_writes_back_and_resumes(store):
    pool = WorkloadPool()
    cold = run_many((R10_64, R10_256), NAMES, N, pool, jobs=2, store=store)
    assert store.writes == 2 * len(NAMES)
    warm = run_many((R10_64, R10_256), NAMES, N, pool, jobs=2, store=store)
    assert store.writes == 2 * len(NAMES)
    assert store.hits == 2 * len(NAMES)
    assert warm == cold
    # Serial and parallel paths share one key space.
    serial = run_suite(R10_64, NAMES, N, pool, jobs=1, store=store)
    assert serial == cold[0]
    assert store.writes == 2 * len(NAMES)


def test_spec_built_machine_hits_dataclass_cells(store):
    """Spec↔dataclass equivalence, end to end through the store: every
    machine built from a spec string produces a bit-identical fingerprint
    and SimStats to its dataclass-built twin, so the spec run is served
    entirely from the twin's cached cells."""
    pool = WorkloadPool()
    dataclass_stats = run_suite(R10_256, NAMES, N, pool, jobs=1, store=store)
    writes = store.writes
    spec_stats = run_suite(
        parse_machine("r10(rob=256,iq=160)"), NAMES, N, pool, jobs=1, store=store
    )
    assert store.writes == writes          # zero cells simulated
    assert store.hits == len(NAMES)        # every cell served from disk
    assert spec_stats == dataclass_stats   # SimStats bit-identical


def test_limit_machine_flows_through_the_generic_grid(store):
    """Limit cells share the generic runner path and key space: a
    spec-built limit machine hits the cells a dataclass sweep stored."""
    pool = WorkloadPool()
    machine = LimitMachine(rob_size=64, record_histogram=False)
    dataclass_stats = run_suite(machine, NAMES, N, pool, jobs=1, store=store)
    writes = store.writes
    spec_stats = run_suite(
        parse_machine("limit(rob=64,histogram=off)"),
        NAMES, N, pool, jobs=1, store=store,
    )
    assert store.writes == writes
    assert spec_stats == dataclass_stats
    assert spec_stats[0].config == "limit-rob-64"


@pytest.mark.slow
def test_spec_twins_fingerprint_identically_for_every_kind(store):
    """One cell per kind: spec-built and dataclass-built twins share keys."""
    pool = WorkloadPool()
    pairs = [
        ("kilo(sliq=1024)", KILO_1024),
        ("dkip(cp=OOO-20,mp=OOO-40)", DKIP_2048.with_cp("OOO-20").with_mp("OOO-40")),
    ]
    for spec, twin in pairs:
        built = parse_machine(spec)
        assert built.fingerprint() == twin.fingerprint()
        twin_stats = run_suite(twin, ("mcf",), N, pool, jobs=1, store=store)
        writes = store.writes
        spec_stats = run_suite(built, ("mcf",), N, pool, jobs=1, store=store)
        assert store.writes == writes
        assert spec_stats == twin_stats


@pytest.mark.slow
def test_fig9_rows_bit_identical_and_fully_cached(tmp_path):
    """The acceptance criterion, end to end at quick scale."""
    store = ResultStore(tmp_path / "store")
    cold = get_experiment("fig9")("quick", store=store)
    simulated = store.writes
    assert simulated > 0
    warm = get_experiment("fig9")("quick", store=store)
    assert store.writes == simulated  # zero cells simulated on re-run
    assert warm.rows == cold.rows
    assert warm.headers == cold.headers


@pytest.mark.slow
def test_fig1_limit_cells_cache_and_resume(tmp_path):
    store = ResultStore(tmp_path / "store")
    cold = get_experiment("fig1")("quick", store=store)
    simulated = store.writes
    warm = get_experiment("fig1")("quick", store=store)
    assert store.writes == simulated
    assert warm.rows == cold.rows
    plain = get_experiment("fig1")("quick")
    assert plain.rows == cold.rows
