"""ResultStore behaviour: hit/miss/force, atomicity, corruption, tools."""

from __future__ import annotations

import json

import pytest

from repro.experiments.common import (
    WorkloadPool,
    compute_cell,
    run_core_cached,
    run_snapshot_cell,
)
from repro.fingerprint import digest
from repro.memory import DEFAULT_MEMORY
from repro.sim.config import DKIP_2048, R10_64, LimitMachine
from repro.sim.runner import run_core
from repro.sim.stats import STATS_SCHEMA_VERSION, Histogram, SimStats
from repro.store import ResultStore, cell_key, from_jsonable, to_jsonable


@pytest.fixture
def pool():
    return WorkloadPool()


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


def test_stats_roundtrip_with_histogram():
    stats = SimStats(workload="w", config="c", committed=10, cycles=20)
    stats.issue_distance = Histogram(bin_width=25, max_value=4000)
    stats.issue_distance.add(3)
    stats.issue_distance.add(412)
    again = SimStats.from_dict(json.loads(json.dumps(stats.to_dict())))
    assert again == stats
    assert again.issue_distance == stats.issue_distance


def test_stats_schema_mismatch_rejected():
    data = SimStats().to_dict()
    data["schema"] = STATS_SCHEMA_VERSION + 1
    with pytest.raises(ValueError):
        SimStats.from_dict(data)


def test_config_serialization_roundtrip():
    for config in (R10_64, DKIP_2048, DEFAULT_MEMORY, LimitMachine(rob_size=64)):
        rebuilt = from_jsonable(json.loads(json.dumps(to_jsonable(config))))
        assert rebuilt == config
        assert rebuilt.fingerprint() == config.fingerprint()


def test_get_miss_put_hit(store, pool):
    workload = pool.get("swim")
    key = cell_key(R10_64, workload, 600, DEFAULT_MEMORY)
    assert store.get(key) is None
    stats = run_core(R10_64, workload, 600)
    store.put(key, stats)
    assert store.contains(key)
    assert store.get(key) == stats
    assert (store.hits, store.misses, store.writes) == (1, 1, 1)


def test_run_core_cached_hit_miss_force(store, pool):
    workload = pool.get("mcf")
    cold = run_core_cached(R10_64, workload, 600, store=store)
    assert (store.hits, store.misses) == (0, 1)
    warm = run_core_cached(R10_64, workload, 600, store=store)
    assert (store.hits, store.misses) == (1, 1)
    assert warm == cold
    forced = run_core_cached(R10_64, workload, 600, store=store, force=True)
    # --force never reads, always recomputes and overwrites.
    assert (store.hits, store.misses) == (1, 1)
    assert store.writes == 2
    assert forced == cold


def test_distinct_cells_do_not_collide(store, pool):
    a = cell_key(R10_64, pool.get("swim"), 600, DEFAULT_MEMORY)
    b = cell_key(R10_64, pool.get("swim"), 700, DEFAULT_MEMORY)
    c = cell_key(DKIP_2048, pool.get("swim"), 600, DEFAULT_MEMORY)
    d = cell_key(R10_64, pool.get("mcf"), 600, DEFAULT_MEMORY)
    e = cell_key(R10_64, pool.get("swim"), 600, DEFAULT_MEMORY.with_mem_latency(100))
    f = cell_key(R10_64, pool.get("swim"), 600, DEFAULT_MEMORY, predictor="gshare")
    assert len({k.digest for k in (a, b, c, d, e, f)}) == 6


def test_truncated_entry_recomputes_not_crashes(store, pool):
    workload = pool.get("swim")
    cold = run_core_cached(R10_64, workload, 600, store=store)
    key = cell_key(R10_64, workload, 600, DEFAULT_MEMORY)
    path = store.path_for(key)
    path.write_text(path.read_text()[: len(path.read_text()) // 2])
    again = run_core_cached(R10_64, workload, 600, store=store)
    assert again == cold
    assert store.corrupt == 1
    # The recompute healed the entry.
    assert store.get(key) == cold


def test_garbage_json_and_digest_mismatch_are_misses(store, pool):
    workload = pool.get("swim")
    key = cell_key(R10_64, workload, 600, DEFAULT_MEMORY)
    path = store.path_for(key)
    path.parent.mkdir(parents=True)
    path.write_text("{}")
    assert store.get(key) is None
    path.write_text(json.dumps({"format": 1, "digest": "0" * 64, "stats": {}}))
    assert store.get(key) is None
    assert store.corrupt == 2


def test_summary_prune(store, pool):
    run_core_cached(R10_64, pool.get("swim"), 600, store=store)
    run_core_cached(DKIP_2048, pool.get("mcf"), 600, store=store)
    summary = store.summary()
    assert summary["entries"] == 2
    assert summary["machines"] == {"CoreConfig": 1, "DkipConfig": 1}
    assert summary["workloads"] == {"mcf": 1, "swim": 1}
    assert summary["bytes"] > 0
    # Nothing corrupt or stale: prune is a no-op unless everything=True.
    assert store.prune() == 0
    assert store.prune(everything=True) == 2
    assert store.summary()["entries"] == 0


def test_in_place_stats_tamper_is_a_miss(store, pool):
    """Valid-JSON corruption of the stats body must not be served."""
    cold = run_core_cached(R10_64, pool.get("swim"), 600, store=store)
    key = cell_key(R10_64, pool.get("swim"), 600, DEFAULT_MEMORY)
    path = store.path_for(key)
    entry = json.loads(path.read_text())
    entry["stats"]["cycles"] += 1  # stats_digest now disagrees
    path.write_text(json.dumps(entry))
    assert store.get(key) is None
    assert store.corrupt == 1
    assert run_core_cached(R10_64, pool.get("swim"), 600, store=store) == cold


def test_prune_handles_entry_without_key(store, pool):
    """A well-formed JSON entry missing fields is corrupt, not a crash."""
    run_core_cached(R10_64, pool.get("swim"), 600, store=store)
    key = cell_key(R10_64, pool.get("swim"), 600, DEFAULT_MEMORY)
    path = store.path_for(key)
    path.write_text(json.dumps({"digest": key.digest, "stats": {}}))
    assert store.summary()["corrupt"] == 1
    assert store.prune() == 1
    assert not path.exists()


def test_verify_skips_other_schema_entries(store, pool):
    run_core_cached(R10_64, pool.get("swim"), 600, store=store)
    key = cell_key(R10_64, pool.get("swim"), 600, DEFAULT_MEMORY)
    path = store.path_for(key)
    entry = json.loads(path.read_text())
    entry["key"]["schema"] = STATS_SCHEMA_VERSION + 1
    path.write_text(json.dumps(entry))
    # get() never serves it and verify() must not raise a false alarm.
    assert store.verify(compute_cell) == []
    assert store.summary()["stale_schema"] == 1
    assert store.prune() == 1


def test_prune_removes_corrupt(store, pool):
    run_core_cached(R10_64, pool.get("swim"), 600, store=store)
    key = cell_key(R10_64, pool.get("swim"), 600, DEFAULT_MEMORY)
    store.path_for(key).write_text("not json")
    assert store.prune() == 1
    assert store.summary()["entries"] == 0


def test_verify_detects_tampering(store, pool):
    run_core_cached(R10_64, pool.get("swim"), 600, store=store)
    run_snapshot_cell(
        LimitMachine(rob_size=64), pool.get("mcf"), 600, DEFAULT_MEMORY, store=store
    )
    reports = store.verify(compute_cell)
    assert len(reports) == 2
    assert all(report["status"] == "ok" for report in reports)
    # Simulate code drift: an internally consistent entry (stats digest
    # updated) whose stats no longer match a fresh simulation.
    key = cell_key(R10_64, pool.get("swim"), 600, DEFAULT_MEMORY)
    path = store.path_for(key)
    entry = json.loads(path.read_text())
    entry["stats"]["cycles"] += 1
    entry["stats_digest"] = digest(entry["stats"])
    path.write_text(json.dumps(entry))
    reports = store.verify(compute_cell)
    assert sorted(report["status"] for report in reports) == ["ok", "stale"]


def test_verify_sampling_is_deterministic(store, pool):
    for name in ("swim", "mcf", "gcc"):
        run_core_cached(R10_64, pool.get(name), 600, store=store)
    one = store.verify(compute_cell, sample=1, rng_seed=7)
    two = store.verify(compute_cell, sample=1, rng_seed=7)
    assert [r["digest"] for r in one] == [r["digest"] for r in two]


# ----------------------------------------------------------------------
# Concurrent-writer hardening (sweep-service seams)
# ----------------------------------------------------------------------


def test_put_tmp_names_are_unique_per_call(store, pool, monkeypatch):
    """Two writes of the same key must not share one temp path."""
    import os as os_module

    sources = []
    real_replace = os_module.replace

    def recording_replace(src, dst):
        sources.append(str(src))
        return real_replace(src, dst)

    monkeypatch.setattr("repro.store.store.os.replace", recording_replace)
    key = cell_key(R10_64, pool.get("swim"), 600, DEFAULT_MEMORY)
    stats = run_core(R10_64, pool.get("swim"), 600)
    store.put(key, stats)
    store.put(key, stats)
    assert len(sources) == 2 and sources[0] != sources[1]
    assert all(".tmp." in src for src in sources)


def test_put_failure_leaves_no_tmp_orphan(store, pool, monkeypatch):
    key = cell_key(R10_64, pool.get("swim"), 600, DEFAULT_MEMORY)
    stats = run_core(R10_64, pool.get("swim"), 600)

    def failing_fsync(fd):
        raise OSError("disk full")

    monkeypatch.setattr("repro.store.store.os.fsync", failing_fsync)
    with pytest.raises(OSError):
        store.put(key, stats)
    monkeypatch.undo()
    assert list(store.root.glob("objects/*/*.tmp.*")) == []
    assert store.get(key) is None
    # A clean retry still lands.
    store.put(key, stats)
    assert store.get(key) == stats


def test_iter_entries_tolerates_concurrent_unlink(store, pool):
    """A file vanishing mid-scan is skipped, not reported corrupt."""
    for name in ("swim", "mcf"):
        run_core_cached(R10_64, pool.get(name), 600, store=store)
    entries = store.iter_entries()
    first_path, first_entry = next(entries)
    assert first_entry is not None
    for path in store.root.glob("objects/*/*.json"):
        if path != first_path:
            path.unlink()
    assert list(entries) == []
    assert store.prune() == 0


def test_contains_lies_about_torn_entries_but_validated_does_not(store, pool):
    run_core_cached(R10_64, pool.get("swim"), 600, store=store)
    key = cell_key(R10_64, pool.get("swim"), 600, DEFAULT_MEMORY)
    assert store.validated(key) is True
    store.path_for(key).write_text("")  # a torn/zero-length entry
    assert store.contains(key) is True  # the existence probe is fooled
    assert store.validated(key) is False  # the skip decision is not
    assert store.get(key) is None


def test_validated_does_not_skew_counters(store, pool):
    run_core_cached(R10_64, pool.get("swim"), 600, store=store)
    key = cell_key(R10_64, pool.get("swim"), 600, DEFAULT_MEMORY)
    miss = cell_key(R10_64, pool.get("mcf"), 600, DEFAULT_MEMORY)
    before = (store.hits, store.misses, store.corrupt)
    assert store.validated(key) is True
    assert store.validated(miss) is False
    assert (store.hits, store.misses, store.corrupt) == before
