#!/usr/bin/env python
"""Quickstart: simulate one workload on the four machines of Figure 9.

Run with::

    python examples/quickstart.py [workload] [instructions]

e.g. ``python examples/quickstart.py swim 15000``.  The default workload,
``swim``, is the paper's canonical memory-bound SpecFP code: watch the
two KILO-instruction machines sail past the conventional cores.
"""

import sys

from repro import DKIP_2048, KILO_1024, R10_64, R10_256, get_workload, run_core
from repro.viz import bar_chart


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "swim"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 12_000

    workload = get_workload(name)
    print(f"workload: {workload.name} — {workload.description}")
    print(f"simulating {instructions} committed instructions per machine\n")

    ipcs = {}
    for machine in (R10_64, R10_256, KILO_1024, DKIP_2048):
        stats = run_core(machine, workload, instructions)
        ipcs[machine.name] = stats.ipc
        extra = ""
        if stats.llib_insertions:
            extra = (
                f"  [low-locality: {stats.llib_insertions} insertions, "
                f"CP share {stats.cp_fraction * 100:.0f}%]"
            )
        print(
            f"{machine.name:12s} IPC {stats.ipc:5.2f}  "
            f"cycles {stats.cycles:7d}  "
            f"branch acc {stats.branch_accuracy * 100:5.1f}%"
            f"{extra}"
        )

    print()
    print(bar_chart(ipcs, title=f"IPC on {workload.name}"))


if __name__ == "__main__":
    main()
