#!/usr/bin/env python
"""SimPoint sampling: simulate a fraction of a trace, estimate the whole.

The paper simulates 200M-instruction SimPoint samples of SPEC2000.  This
example runs the same methodology end to end at laptop scale:

1. profile a long trace into per-interval Basic Block Vectors;
2. cluster the BBVs with k-means and pick one representative interval per
   cluster (the *simulation points*);
3. simulate only those intervals on the D-KIP and combine their IPCs with
   the cluster weights;
4. compare the estimate against simulating the entire trace.

The same pipeline runs declaratively against captured trace files:
``dkip-experiments simpoint CAP.trc.gz`` prints the phase table, the
``phases(file=...)`` workload kind replays the selection through any
sweep, and the ``sampling`` experiment grades the estimate for
REPRODUCTION.md (see docs/METHODOLOGY.md).

Run with::

    python examples/simpoint_sampling.py [workload] [instructions] [k]
"""

import sys

from repro import DKIP_2048, get_workload
from repro.sim.runner import simulate
from repro.simpoint import choose_simpoints, collect_bbvs, weighted_ipc


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    total = int(sys.argv[2]) if len(sys.argv) > 2 else 24_000
    k = int(sys.argv[3]) if len(sys.argv) > 3 else 4
    interval = 2_000

    workload = get_workload(name)
    trace = workload.trace(total)
    print(f"workload: {workload.name}, {total} instructions, "
          f"{total // interval} intervals of {interval}")

    bbvs = collect_bbvs(iter(trace), interval_size=interval)
    points = choose_simpoints(bbvs, k=k, seed=42)
    print(f"k-means chose {len(points)} simulation points:")
    for point in points:
        start, end = point.instruction_range(interval)
        print(f"  interval {point.interval:3d} "
              f"(instructions {start}..{end}), weight {point.weight:.2f}")

    ipcs = {}
    simulated = 0
    for point in points:
        start, end = point.instruction_range(interval)
        stats = simulate(DKIP_2048, trace[start:end], regions=workload.regions)
        ipcs[point.interval] = stats.ipc
        simulated += end - start
    estimate = weighted_ipc(points, ipcs)

    full = simulate(DKIP_2048, trace, regions=workload.regions)
    error = abs(estimate - full.ipc) / full.ipc * 100 if full.ipc else 0.0
    print(f"\nSimPoint estimate : IPC {estimate:.3f} "
          f"({simulated}/{total} instructions simulated)")
    print(f"full simulation   : IPC {full.ipc:.3f}")
    print(f"estimation error  : {error:.1f}%")


if __name__ == "__main__":
    main()
