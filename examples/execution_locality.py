#!/usr/bin/env python
"""Measure *execution locality* — the phenomenon behind the D-KIP.

Reproduces the Section-2 analysis of the paper on one workload: run an
unlimited-window processor with 400-cycle memory and histogram how long
every instruction waits between decode and issue.  High-locality
instructions issue almost immediately; consumers of an L2 miss cluster a
full memory latency later; chains of two misses cluster at twice that.

Run with::

    python examples/execution_locality.py [workload] [instructions]
"""

import sys

from repro import DEFAULT_MEMORY, get_workload
from repro.baselines.limit import simulate_limit
from repro.branch import make_predictor
from repro.memory import MemoryHierarchy, warm_caches
from repro.viz import histogram_chart


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "ammp"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 12_000

    workload = get_workload(name)
    trace = workload.trace(instructions)
    hierarchy = MemoryHierarchy(DEFAULT_MEMORY)
    warm_caches(hierarchy, workload.regions)
    result = simulate_limit(
        iter(trace),
        hierarchy,
        rob_size=None,
        predictor=make_predictor("perceptron"),
    )
    hist = result.issue_distance

    print(f"workload: {workload.name} — {workload.description}")
    print(f"unlimited window, 400-cycle memory, IPC {result.ipc:.2f}\n")
    print(
        histogram_chart(
            hist.bins(),
            hist.bin_width,
            hist.count,
            title="decode→issue distance (cycles)",
        )
    )
    print()
    high = hist.fraction_below(300)
    print(f"high execution locality (issue < 300 cycles): {high * 100:.1f}%")
    print(f"~1x memory latency (one miss):  {hist.fraction_in(300, 500) * 100:.1f}%")
    print(f"~2x memory latency (miss chain): {hist.fraction_in(700, 900) * 100:.1f}%")


if __name__ == "__main__":
    main()
