#!/usr/bin/env python
"""The memory-wall study: can a bigger window buy back the lost IPC?

Reproduces the Figure 1/2 methodology on two contrasting workloads: a
streaming SpecFP code (`swim`), whose IPC is fully recovered by a large
enough window even at 400-cycle memory, and the pointer chaser `mcf`,
where no window size helps because the misses are serially dependent.

Run with::

    python examples/memory_wall_study.py [instructions]
"""

import sys

from repro import get_workload
from repro.baselines.limit import simulate_limit
from repro.branch import make_predictor
from repro.memory import MemoryHierarchy, TABLE1_CONFIGS, warm_caches
from repro.viz import line_chart

WINDOWS = (32, 64, 128, 256, 512, 1024, 2048, 4096)
MEMORIES = ("L1-2", "MEM-400")


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    for name in ("swim", "mcf"):
        workload = get_workload(name)
        trace = workload.trace(instructions)
        series = {}
        for mem_name in MEMORIES:
            points = []
            for window in WINDOWS:
                hierarchy = MemoryHierarchy(TABLE1_CONFIGS[mem_name])
                warm_caches(hierarchy, workload.regions)
                sim = simulate_limit(
                    iter(trace),
                    hierarchy,
                    rob_size=window,
                    predictor=make_predictor("perceptron"),
                )
                points.append((window, sim.ipc))
            series[mem_name] = points
        print(line_chart(series, title=f"{name}: IPC vs window size", logx=True))
        recovered = series["MEM-400"][-1][1] / series["L1-2"][-1][1]
        print(
            f"\n{name}: a 4096-entry window at 400-cycle memory reaches "
            f"{recovered * 100:.0f}% of the perfect-cache IPC\n"
        )


if __name__ == "__main__":
    main()
