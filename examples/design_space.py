#!/usr/bin/env python
"""Explore the D-KIP design space: CP/MP scheduling and LLIB sizing.

The paper's design claim is that almost all of the performance lives in a
*small out-of-order Cache Processor* — the Memory Processor can stay
in-order and the LLIB is a plain FIFO.  This example sweeps those choices
on a workload of your choosing and prints where the IPC actually comes
from.

Run with::

    python examples/design_space.py [workload] [instructions]
"""

import dataclasses
import sys

from repro import DKIP_2048, get_workload, run_core
from repro.viz import table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "applu"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000
    workload = get_workload(name)
    print(f"workload: {workload.name} — {workload.description}\n")

    rows = []
    for cp in ("INO", "OOO-20", "OOO-40", "OOO-80"):
        for mp in ("INO", "OOO-40"):
            config = DKIP_2048.with_cp(cp).with_mp(mp)
            stats = run_core(config, workload, instructions)
            rows.append(
                [
                    cp,
                    mp,
                    round(stats.ipc, 3),
                    f"{stats.cp_fraction * 100:.0f}%",
                    stats.llib_max_instructions_int + stats.llib_max_instructions_fp,
                ]
            )
    print(
        table(
            ["CP", "MP", "IPC", "CP share", "LLIB peak"],
            rows,
            title="Cache-Processor / Memory-Processor scheduling sweep",
        )
    )

    print()
    rows = []
    for llib_size in (128, 512, 2048):
        config = dataclasses.replace(DKIP_2048, name=f"llib-{llib_size}", llib_size=llib_size)
        stats = run_core(config, workload, instructions)
        rows.append(
            [
                llib_size,
                round(stats.ipc, 3),
                stats.llib_full_stall_cycles,
            ]
        )
    print(
        table(
            ["LLIB entries", "IPC", "fill-up stall cycles"],
            rows,
            title="LLIB capacity sweep (FIFO size is cheap; CAMs are not)",
        )
    )


if __name__ == "__main__":
    main()
