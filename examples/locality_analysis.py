#!/usr/bin/env python
"""Machine-independent locality analysis: sizing the D-KIP from a trace.

Before committing to hardware parameters, the paper's methodology asks
three questions of the *program*: how much of it is low locality, how
long the low-locality slices run, and how many misses a window could
overlap.  This example answers them for any workload using
:mod:`repro.analysis` — no pipeline simulation involved — and compares
the functional prediction against the timed D-KIP run.

Run with::

    python examples/locality_analysis.py [workload] [instructions]
"""

import sys

from repro import DKIP_2048, get_workload, run_core
from repro.analysis import classify_locality, mlp_profile, slice_profile
from repro.memory import DEFAULT_MEMORY, MemoryHierarchy, warm_caches
from repro.viz import table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000

    workload = get_workload(name)
    trace = workload.trace(instructions)
    print(f"workload: {workload.name} — {workload.description}\n")

    hierarchy = MemoryHierarchy(DEFAULT_MEMORY)
    warm_caches(hierarchy, workload.regions)
    report = classify_locality(trace, hierarchy)
    print(f"low execution locality : {report.low_fraction * 100:5.1f}% "
          f"of {report.total} instructions")
    print(f"long-latency loads     : {report.long_latency_loads}")
    if report.low_by_op:
        mix = ", ".join(f"{op}:{n}" for op, n in report.low_by_op.most_common(5))
        print(f"what fills the LLIB    : {mix}")

    slices = slice_profile(report)
    print(f"\nlow-locality slices    : {slices.slices} "
          f"(mean {slices.mean_length:.1f}, longest {slices.longest})")
    rows = [[f"<= {bucket}", count] for bucket, count in sorted(slices.histogram.items())]
    if rows:
        print(table(["slice length", "count"], rows))

    hierarchy = MemoryHierarchy(DEFAULT_MEMORY)
    warm_caches(hierarchy, workload.regions)
    mlp = mlp_profile(trace, hierarchy, window=256)
    print(f"\nmiss-level parallelism : {mlp.mean_overlap:.1f} independent "
          f"misses per 256-instruction window (max {mlp.max_overlap})")

    stats = run_core(DKIP_2048, workload, instructions)
    print(f"\ntimed D-KIP check      : IPC {stats.ipc:.2f}, "
          f"CP share {stats.cp_fraction * 100:.0f}% "
          f"(functional prediction {100 - report.low_fraction * 100:.0f}%)")


if __name__ == "__main__":
    main()
