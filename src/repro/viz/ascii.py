"""Plain-text charts: the harnesses regenerate the paper's figures in ASCII.

Nothing here affects simulation; it only renders results.  Keeping the
renderer dependency-free means the full experiment pipeline runs in any
terminal (and in CI logs).
"""

from __future__ import annotations

from typing import Mapping, Sequence


def table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def bar_chart(
    data: Mapping[str, float],
    width: int = 50,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one bar per mapping entry."""
    if not data:
        return title or ""
    peak = max(data.values()) or 1.0
    label_width = max(len(k) for k in data)
    lines = [title] if title else []
    for key, value in data.items():
        bar = "#" * max(1, round(width * value / peak)) if value > 0 else ""
        lines.append(f"{key.ljust(label_width)} | {bar} {value:.3f}{unit}")
    return "\n".join(lines)


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str | None = None,
    logx: bool = False,
) -> str:
    """Multi-series scatter/line chart on a character grid.

    Each series is a sequence of (x, y) points; series are drawn with
    distinct marker characters and a legend is appended.
    """
    import math

    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return title or ""

    def _tx(x: float) -> float:
        return math.log2(x) if logx else x

    xs = [_tx(x) for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(0.0, min(ys)), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x@%&=~^"
    legend = []
    for (name, pts), marker in zip(series.items(), markers * 3):
        legend.append(f"{marker} = {name}")
        for x, y in pts:
            col = round((_tx(x) - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker
    lines = [title] if title else []
    for i, row in enumerate(grid):
        y_val = y_hi - i * y_span / (height - 1)
        lines.append(f"{y_val:7.2f} |" + "".join(row))
    lines.append(" " * 8 + "+" + "-" * width)
    lines.append(" " * 9 + f"x: {min(x for x,_ in points):g} .. {max(x for x,_ in points):g}"
                 + ("  (log2 x-axis)" if logx else ""))
    lines.extend("        " + entry for entry in legend)
    return "\n".join(lines)


def histogram_chart(
    bins: Sequence[tuple[int, int]],
    bin_width: int,
    total: int,
    width: int = 50,
    title: str | None = None,
    max_bins: int = 40,
) -> str:
    """Render a histogram as percentage bars (Figure-3 style)."""
    if not bins or not total:
        return title or ""
    shown = bins[:max_bins]
    peak = max(c for _, c in shown) or 1
    lines = [title] if title else []
    for start, count in shown:
        pct = 100.0 * count / total
        bar = "#" * max(0, round(width * count / peak))
        lines.append(f"{start:5d}-{start + bin_width - 1:<5d} | {bar} {pct:.1f}%")
    if len(bins) > max_bins:
        rest = sum(c for _, c in bins[max_bins:])
        lines.append(f"  ...   | (+{100.0 * rest / total:.1f}% beyond)")
    return "\n".join(lines)
