"""Self-contained SVG charts for the reproduction report.

Counterparts to the ASCII renderers in :mod:`repro.viz.ascii`: the same
series/group shapes render to standalone ``<svg>`` fragments that embed
directly into Markdown, with no external assets, stylesheets, fonts or
scripts.  Everything is emitted as plain strings with inline attributes,
so the output is deterministic (golden-testable) and renders identically
in any SVG-capable viewer.

Two chart kinds cover the paper's figures:

* :func:`line_chart_svg` — multi-series lines (window sweeps, cache
  sweeps, queue sweeps), optionally on a log2 x axis, with the paper's
  reference curves overlaid as dashed lines.
* :func:`grouped_bar_chart_svg` — grouped vertical bars (machine
  comparisons, occupancy, distributions), with the paper's reference
  values drawn as floating tick marks over the matching bars.

Reference overlays carry ``class="ref-overlay"`` / ``class="ref-marker"``
attributes so tests (and curious readers) can find them.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence
from xml.sax.saxutils import escape

#: Colorblind-safe categorical palette (Okabe-Ito), cycled per series.
PALETTE = (
    "#0072B2",  # blue
    "#E69F00",  # orange
    "#009E73",  # green
    "#D55E00",  # vermillion
    "#CC79A7",  # purple
    "#56B4E9",  # sky
    "#8C510A",  # brown
    "#444444",  # grey
)

_FONT = 'font-family="Helvetica,Arial,sans-serif"'


def _empty_svg(title: str) -> str:
    """Degenerate chart for empty input: a small labelled stub."""
    return (
        '<svg xmlns="http://www.w3.org/2000/svg" width="200" height="40" '
        'viewBox="0 0 200 40" role="img">'
        f'<text x="8" y="24" {_FONT} font-size="12">'
        f"{escape(title or '(no data)')}</text></svg>"
    )


def compact_number(value: float) -> str:
    """Format a number compactly: integers plain, else 3 significant digits.

    Shared by the axis-tick labels here and the verdict lines of
    :mod:`repro.report.verdict`, so the same value never renders two
    different ways between a chart and its caption.
    """
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.3g}"


_fmt = compact_number


def _ticks(lo: float, hi: float, count: int = 5) -> list[float]:
    """Produce round tick positions spanning [lo, hi]."""
    span = hi - lo
    if span <= 0:
        return [lo]
    raw = span / max(1, count)
    magnitude = 10.0 ** math.floor(math.log10(raw))
    for step in (1, 2, 2.5, 5, 10):
        if raw <= step * magnitude:
            raw = step * magnitude
            break
    first = math.ceil(lo / raw) * raw
    ticks = []
    tick = first
    while tick <= hi + raw * 1e-9:
        ticks.append(round(tick, 10))
        tick += raw
    return ticks or [lo]


class _Frame:
    """Shared plot frame: margins, scales, axes, title and legend."""

    def __init__(
        self,
        width: int,
        height: int,
        title: str,
        x_label: str,
        y_label: str,
        legend_entries: Sequence[tuple[str, str, bool]],
    ) -> None:
        self.width = width
        self.height = height
        self.title = title
        self.left = 58
        self.right = width - 16
        self.top = 40 if title else 20
        self.bottom = height - (46 if x_label else 32)
        self.x_label = x_label
        self.y_label = y_label
        self.legend_entries = list(legend_entries)
        self.parts: list[str] = []

    def header(self) -> str:
        """Opening ``<svg>`` tag with dimensions and viewBox."""
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}" '
            f'role="img">'
        )

    def chrome(self) -> list[str]:
        """Background, title, plot border and axis labels."""
        parts = [
            f'<rect x="0" y="0" width="{self.width}" height="{self.height}" '
            f'fill="#ffffff"/>'
        ]
        if self.title:
            parts.append(
                f'<text x="{self.width // 2}" y="20" text-anchor="middle" '
                f'{_FONT} font-size="14" fill="#222222">{escape(self.title)}</text>'
            )
        # Plot area border.
        parts.append(
            f'<rect x="{self.left}" y="{self.top}" '
            f'width="{self.right - self.left}" height="{self.bottom - self.top}" '
            f'fill="none" stroke="#cccccc" stroke-width="1"/>'
        )
        if self.x_label:
            parts.append(
                f'<text x="{(self.left + self.right) // 2}" y="{self.height - 8}" '
                f'text-anchor="middle" {_FONT} font-size="12" '
                f'fill="#444444">{escape(self.x_label)}</text>'
            )
        if self.y_label:
            x, y = 14, (self.top + self.bottom) // 2
            parts.append(
                f'<text x="{x}" y="{y}" text-anchor="middle" {_FONT} '
                f'font-size="12" fill="#444444" '
                f'transform="rotate(-90 {x} {y})">{escape(self.y_label)}</text>'
            )
        return parts

    def y_axis(self, y_lo: float, y_hi: float, to_y) -> list[str]:
        """Gridlines + tick labels for the y axis (*to_y* maps data→px)."""
        parts = []
        for tick in _ticks(y_lo, y_hi):
            y = to_y(tick)
            parts.append(
                f'<line x1="{self.left}" y1="{y:.1f}" x2="{self.right}" '
                f'y2="{y:.1f}" stroke="#eeeeee" stroke-width="1"/>'
            )
            parts.append(
                f'<text x="{self.left - 6}" y="{y + 4:.1f}" text-anchor="end" '
                f'{_FONT} font-size="11" fill="#444444">{_fmt(tick)}</text>'
            )
        return parts

    def legend(self) -> list[str]:
        """Color/dash swatches + labels in the top-right corner."""
        parts = []
        y = self.top + 14
        x = self.right - 150
        for label, color, dashed in self.legend_entries:
            dash = ' stroke-dasharray="6 4"' if dashed else ""
            parts.append(
                f'<line x1="{x}" y1="{y - 4}" x2="{x + 22}" y2="{y - 4}" '
                f'stroke="{color}" stroke-width="2.5"{dash}/>'
            )
            parts.append(
                f'<text x="{x + 28}" y="{y}" {_FONT} font-size="11" '
                f'fill="#333333">{escape(label)}</text>'
            )
            y += 16
        return parts


def line_chart_svg(
    series: Mapping[str, Sequence[tuple[float, float]]],
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    logx: bool = False,
    reference: Mapping[str, Sequence[tuple[float, float]]] | None = None,
    width: int = 640,
    height: int = 360,
) -> str:
    """Render multi-series (x, y) data as an SVG line chart.

    Each entry of *series* draws as a colored polyline with point
    markers; *reference* series (the paper's stated curves) draw dashed
    in the matching series color — or grey when the name is new — and
    are tagged ``class="ref-overlay"``.  With *logx* the x axis is
    log2-scaled, matching the paper's window/cache-size sweeps.
    """
    reference = reference or {}
    points = [p for pts in series.values() for p in pts]
    ref_points = [p for pts in reference.values() for p in pts]
    if not points and not ref_points:
        return _empty_svg(title)

    def _tx(x: float) -> float:
        return math.log2(x) if logx else x

    all_points = points + ref_points
    xs = [_tx(x) for x, _ in all_points]
    ys = [y for _, y in all_points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(0.0, min(ys)), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    colors = {name: PALETTE[i % len(PALETTE)] for i, name in enumerate(series)}
    legend = [(name, colors[name], False) for name in series]
    for name in reference:
        legend.append((f"{name} (paper)", colors.get(name, "#888888"), True))
    if logx:
        x_label = f"{x_label} (log2 scale)".strip()
    frame = _Frame(width, height, title, x_label, y_label, legend)

    def _to_x(x: float) -> float:
        return frame.left + (_tx(x) - x_lo) / x_span * (frame.right - frame.left)

    def _to_y(y: float) -> float:
        return frame.bottom - (y - y_lo) / y_span * (frame.bottom - frame.top)

    parts = [frame.header()]
    parts.extend(frame.chrome())
    parts.extend(frame.y_axis(y_lo, y_hi, _to_y))
    # X ticks: the actual data x positions when few; otherwise round
    # ticks — powers of two on a log2 axis (linear-space ticks would
    # crowd the right end once mapped through the log).
    data_xs = sorted({x for x, _ in all_points})
    if len(data_xs) <= 9:
        tick_xs = data_xs
    elif logx:
        lo_exp = math.ceil(math.log2(min(data_xs)))
        hi_exp = math.floor(math.log2(max(data_xs)))
        step = max(1, (hi_exp - lo_exp) // 7 + 1)
        tick_xs = [2.0**e for e in range(lo_exp, hi_exp + 1, step)]
    else:
        tick_xs = _ticks(min(data_xs), max(data_xs), 7)
    for tick in tick_xs:
        x = _to_x(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{frame.bottom}" x2="{x:.1f}" '
            f'y2="{frame.bottom + 4}" stroke="#666666" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{frame.bottom + 16}" text-anchor="middle" '
            f'{_FONT} font-size="11" fill="#444444">{_fmt(tick)}</text>'
        )
    for name, pts in series.items():
        if not pts:
            continue
        color = colors[name]
        coords = " ".join(f"{_to_x(x):.1f},{_to_y(y):.1f}" for x, y in pts)
        parts.append(
            f'<polyline class="series" points="{coords}" fill="none" '
            f'stroke="{color}" stroke-width="2.5"/>'
        )
        for x, y in pts:
            parts.append(
                f'<circle cx="{_to_x(x):.1f}" cy="{_to_y(y):.1f}" r="3" '
                f'fill="{color}"/>'
            )
    for name, pts in reference.items():
        if not pts:
            continue
        color = colors.get(name, "#888888")
        coords = " ".join(f"{_to_x(x):.1f},{_to_y(y):.1f}" for x, y in pts)
        parts.append(
            f'<polyline class="ref-overlay" points="{coords}" fill="none" '
            f'stroke="{color}" stroke-width="2" stroke-dasharray="6 4" '
            f'opacity="0.85"/>'
        )
        for x, y in pts:
            parts.append(
                f'<circle class="ref-overlay" cx="{_to_x(x):.1f}" '
                f'cy="{_to_y(y):.1f}" r="3" fill="#ffffff" stroke="{color}" '
                f'stroke-width="1.5"/>'
            )
    parts.extend(frame.legend())
    parts.append("</svg>")
    return "".join(parts)


def grouped_bar_chart_svg(
    groups: Mapping[str, Mapping[str, float]],
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    reference: Mapping[tuple[str, str], float] | None = None,
    width: int = 640,
    height: int = 360,
) -> str:
    """Render ``group -> series -> value`` data as grouped vertical bars.

    Bars within a group sit side by side, colored per series; the
    *reference* mapping ``(group, series) -> paper value`` draws a dashed
    horizontal marker (``class="ref-marker"``) across each matching bar,
    so reproduced-vs-paper gaps are visible at a glance.
    """
    reference = reference or {}
    series_names: list[str] = []
    for bars in groups.values():
        for name in bars:
            if name not in series_names:
                series_names.append(name)
    values = [v for bars in groups.values() for v in bars.values()]
    if not values:
        return _empty_svg(title)
    y_hi = max(list(values) + list(reference.values()) + [0.0])
    y_lo = min(0.0, min(values))
    y_span = (y_hi - y_lo) or 1.0

    colors = {n: PALETTE[i % len(PALETTE)] for i, n in enumerate(series_names)}
    legend = [(n, colors[n], False) for n in series_names] if len(series_names) > 1 else []
    if reference:
        legend.append(("paper", "#222222", True))
    frame = _Frame(width, height, title, x_label, y_label, legend)

    def _to_y(y: float) -> float:
        return frame.bottom - (y - y_lo) / y_span * (frame.bottom - frame.top)

    parts = [frame.header()]
    parts.extend(frame.chrome())
    parts.extend(frame.y_axis(y_lo, y_hi, _to_y))
    plot_w = frame.right - frame.left
    group_w = plot_w / max(1, len(groups))
    pad = group_w * 0.15
    bar_w = (group_w - 2 * pad) / max(1, len(series_names))
    for g, (group, bars) in enumerate(groups.items()):
        gx = frame.left + g * group_w
        label_y = frame.bottom + 16
        parts.append(
            f'<text x="{gx + group_w / 2:.1f}" y="{label_y}" '
            f'text-anchor="middle" {_FONT} font-size="11" '
            f'fill="#444444">{escape(str(group))}</text>'
        )
        for s, name in enumerate(series_names):
            if name not in bars:
                continue
            value = bars[name]
            x = gx + pad + s * bar_w
            y = _to_y(max(value, 0.0))
            h = abs(_to_y(0.0) - _to_y(value))
            parts.append(
                f'<rect class="bar" x="{x:.1f}" y="{y:.1f}" '
                f'width="{bar_w * 0.92:.1f}" height="{h:.1f}" '
                f'fill="{colors[name]}"/>'
            )
            ref = reference.get((group, name))
            if ref is not None:
                ry = _to_y(ref)
                parts.append(
                    f'<line class="ref-marker" x1="{x - 2:.1f}" y1="{ry:.1f}" '
                    f'x2="{x + bar_w * 0.92 + 2:.1f}" y2="{ry:.1f}" '
                    f'stroke="#222222" stroke-width="2" '
                    f'stroke-dasharray="4 3"/>'
                )
    parts.extend(frame.legend())
    parts.append("</svg>")
    return "".join(parts)
