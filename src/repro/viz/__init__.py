"""Dependency-free visualization for the experiment harnesses.

Two renderer families share the same data shapes: :mod:`repro.viz.ascii`
draws in any terminal (and in CI logs), while :mod:`repro.viz.svg`
produces standalone SVG fragments for the reproduction report.
"""

from repro.viz.ascii import bar_chart, histogram_chart, line_chart, table
from repro.viz.svg import compact_number, grouped_bar_chart_svg, line_chart_svg

__all__ = [
    "bar_chart",
    "compact_number",
    "grouped_bar_chart_svg",
    "histogram_chart",
    "line_chart",
    "line_chart_svg",
    "table",
]
