"""ASCII visualization used by the experiment harnesses and examples."""

from repro.viz.ascii import bar_chart, histogram_chart, line_chart, table

__all__ = ["bar_chart", "histogram_chart", "line_chart", "table"]
