"""Sampling methodology validation: SimPoint phases vs the full trace.

The paper evaluates 200M-instruction SimPoint samples rather than whole
program runs; this harness validates that methodology inside the repo's
own pipeline (see ``docs/METHODOLOGY.md``).  For each benchmark it

1. captures a trace of the workload (``repro.trace.io.save_trace``),
2. simulates the *whole* capture on each machine — the ground truth,
3. runs the SimPoint pipeline (interval BBVs → k-means → weighted
   representative phases, :mod:`repro.simpoint.phases`) and simulates
   only the selected phases through the same sweep engine
   (``phases(file=...)`` workload token), and
4. reports the weighted-IPC estimate next to the full-trace IPC with
   the relative sampling error.

The verdict checks grade ``sampled IPC / full IPC`` against 1.0, so the
reproduction report states how much accuracy the sampling methodology
costs on this simulator.  The residual error is dominated by per-phase
cache warm-up: each phase starts from a functionally warmed hierarchy
rather than the state the preceding intervals would have left, which
biases big-cache machines hardest (the D-KIP-2048 column).

Rows deliberately carry no trace paths — captures live under the result
store (``<store>/traces/``) or a throwaway temporary directory, and the
report must not depend on either.
"""

from __future__ import annotations

import os
import tempfile

from repro.experiments.common import (
    ExperimentResult,
    Scale,
    Stopwatch,
    WarmupCache,
    scale_of,
)
from repro.experiments.sweep import SweepSpec, sweep_grid
from repro.report.spec import Check, FigureSpec, cell, cell_ratio
from repro.trace.io import save_trace
from repro.viz.ascii import bar_chart
from repro.workloads import get_workload

#: scale -> (capture length, interval length, requested k).  Interval
#: counts stay small enough for quick CI runs while keeping intervals
#: long enough that per-phase warm-up transients do not swamp the
#: estimate; FULL is the headline configuration of the acceptance bar —
#: a >=1M-instruction capture reduced to at most 5 weighted phases.
PARAMS = {
    Scale.QUICK: (48_000, 8_000, 4),
    Scale.DEFAULT: (160_000, 16_000, 5),
    Scale.FULL: (1_048_576, 65_536, 5),
}

#: Two machine kinds (acceptance bar): a conventional out-of-order core
#: and the paper's D-KIP — opposite ends of the warm-up-sensitivity
#: spectrum thanks to their cache capacities.
MACHINES = ("R10-64", "D-KIP-2048")

#: One pointer-chasing SpecINT benchmark and one streaming SpecFP
#: benchmark: phase structure and memory behaviour could hardly differ
#: more, which is the point of validating on both.
BENCHES = ("mcf", "swim")

#: Relative sampling error the methodology promises (docs/METHODOLOGY.md
#: states the same numbers): <=12% passes, <=30% is a warning.
PASS_REL = 0.12
WARN_REL = 0.30


def _capture_dir(store) -> str:
    """Directory captures live in: under the store when one is given.

    A store-rooted path is stable across runs, so phase-cell fingerprints
    (which hash trace *content*, not paths) get their warm-store reuse,
    and re-running at the same scale skips the capture entirely.
    """
    if store is not None:
        directory = os.path.join(str(store.root), "traces")
        os.makedirs(directory, exist_ok=True)
        return directory
    return tempfile.mkdtemp(prefix="repro-sampling-")


def _capture(bench: str, directory: str, total: int) -> str:
    """Capture *total* instructions of *bench*, reusing an existing file."""
    path = os.path.join(directory, f"{bench}-{total}.trc.gz")
    if not os.path.exists(path):
        save_trace(get_workload(bench), path, total)
    return path


def run(
    scale: Scale | str = Scale.DEFAULT, store=None, force=False
) -> ExperimentResult:
    """Grade the SimPoint weighted-phase estimate against full-trace IPC."""
    scale = scale_of(scale)
    total, interval, k = PARAMS[scale]
    result = ExperimentResult(
        name="sampling",
        title="SimPoint phase sampling vs full-trace simulation",
        headers=[
            "workload",
            "machine",
            "phases",
            "coverage",
            "full IPC",
            "sampled IPC",
            "error %",
        ],
        scale=scale,
    )
    with Stopwatch(result):
        directory = _capture_dir(store)
        warm_cache = WarmupCache()
        for bench in BENCHES:
            path = _capture(bench, directory, total)
            full_token = f"trace(file={path})"
            phase_token = f"phases(file={path},interval={interval},k={k},seed=0)"
            full_grid = sweep_grid(
                SweepSpec(
                    name="sampling-full",
                    machines=MACHINES,
                    workloads=(full_token,),
                    instructions=total,
                ),
                scale,
                store=store,
                force=force,
                warm_cache=warm_cache,
            )
            phase_grid = sweep_grid(
                SweepSpec(
                    name="sampling-phases",
                    machines=MACHINES,
                    workloads=(phase_token,),
                    instructions=interval,
                ),
                scale,
                store=store,
                force=force,
                warm_cache=warm_cache,
            )
            expansion = phase_grid.phases[phase_token]
            chart = {}
            for index, machine in enumerate(phase_grid.machines):
                full_ipc = full_grid.mean_ipc(index, 0, full_token)
                sampled_ipc = phase_grid.mean_ipc(index, 0, phase_token)
                error = (sampled_ipc - full_ipc) / full_ipc if full_ipc else 0.0
                chart[machine.name] = sampled_ipc
                result.rows.append(
                    [
                        bench,
                        machine.name,
                        len(expansion.names),
                        f"{expansion.coverage:.0%}",
                        round(full_ipc, 4),
                        round(sampled_ipc, 4),
                        f"{100 * error:+.2f}",
                    ]
                )
            result.charts.append(
                bar_chart(chart, title=f"{bench}: SimPoint-sampled IPC")
            )
            result.notes.append(
                f"{bench}: {total} captured instructions -> "
                f"{len(expansion.names)} weighted phase(s) of {interval}, "
                f"simulating {expansion.coverage:.0%} of the capture."
            )
    result.notes.append(
        "Residual error is per-phase cache warm-up transient; it shrinks "
        "as intervals grow (see docs/METHODOLOGY.md for the estimator and "
        "measured error at full scale)."
    )
    return result


def _error_check(bench: str, machine: str) -> Check:
    """A verdict check: sampled/full IPC ratio for one grid cell vs 1.0."""
    return Check(
        f"{bench} on {machine}: sampled IPC / full-trace IPC",
        1.0,
        cell_ratio(
            cell("sampled IPC", workload=bench, machine=machine),
            cell("full IPC", workload=bench, machine=machine),
        ),
        pass_rel=PASS_REL,
        warn_rel=WARN_REL,
        note="weighted SimPoint estimate vs whole-capture simulation",
    )


def _groups(result: ExperimentResult) -> dict[str, dict[str, float]]:
    """Chart groups: one per (workload, machine), full vs sampled bars."""
    groups = {}
    for row in result.rows:
        record = dict(zip(result.headers, row))
        groups[f"{record['workload']} / {record['machine']}"] = {
            "full trace": float(record["full IPC"]),
            "SimPoint sample": float(record["sampled IPC"]),
        }
    return groups


SPEC = FigureSpec(
    kind="bars",
    caption="Weighted SimPoint phase estimate vs full-trace IPC on two "
    "machine kinds; the grade is the relative sampling error",
    y_label="IPC",
    groups=_groups,
    checks=tuple(
        _error_check(bench, machine)
        for bench in BENCHES
        for machine in MACHINES
    ),
)


if __name__ == "__main__":
    print(run(Scale.QUICK).render())
