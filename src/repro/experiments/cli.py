"""Command-line entry point regenerating the paper's tables and figures.

Usage::

    python -m repro.experiments all
    python -m repro.experiments fig9 fig12 --scale full
    python -m repro.experiments fig3 --csv results/ --json results/
    dkip-experiments fig9 --store .repro-store     # cached, resumable
    dkip-experiments report --store .repro-store   # build REPRODUCTION.md
    dkip-experiments cache stats                   # inspect the store
    dkip-experiments cache verify --sample 3       # catch stale caches
    dkip-experiments machines                      # kinds, grammar, presets
    dkip-experiments workloads                     # workload kinds + benchmarks
    dkip-experiments sweep fig9                    # a named sweep preset
    dkip-experiments sweep scenario.toml           # a declarative file
    dkip-experiments sweep --machines "dkip(llib=8192),R10-256" \
        --memory "MEM-400,mem(lat=800)" --workloads "mcf,swim" \
        --svg sweep.svg                            # an ad-hoc grid
    dkip-experiments sweep --machines dkip \
        --workloads "synth(chase=4),synth(chase=16)"  # workload specs
    dkip-experiments simpoint long.trc.gz --interval 4096 --k 5 \
        --spec-out phases.toml                     # SimPoint phase table
    dkip-experiments simpoint cap.trc.gz --capture mcf \
        --instructions 50000                       # synthesize + analyze
    dkip-experiments profile dkip mcf --instructions 20000 \
        --profile-out dkip-mcf.pstats              # where does time go?
    dkip-experiments submit --machines "dkip,R10-64" --workloads int \
        --service .svc                             # enqueue a sweep job
    dkip-experiments serve --service .svc --workers 4 --once
    dkip-experiments status --service .svc         # per-shard progress
    dkip-experiments results JOBID --service .svc  # grid from the store
    dkip-experiments --list

``profile`` runs one (machine, workload[, memory]) cell under cProfile
and prints simulation throughput, wall time attributed per pipeline
stage, and the hottest functions — the first stop before touching any
hot loop (see PERFORMANCE.md for the cookbook).

``simpoint`` runs the SimPoint phase analysis over a captured trace
(optionally capturing it first with ``--capture WORKLOAD``): it slices
the capture into ``--interval``-instruction intervals, clusters their
basic-block vectors into ``--k`` groups, prints the weighted phase
table, and — with ``--spec-out`` — writes a sweep scenario file whose
``phases(...)`` workload token replays just the selected phases;
``dkip-experiments sweep <file>`` then reports the weighted-mean IPC
estimate per machine (see docs/METHODOLOGY.md).

The result store (``--store DIR``, or the ``REPRO_STORE`` environment
variable) makes every sweep incremental: cells already on disk are not
re-simulated, and a sweep killed mid-flight resumes from the completed
cells.  ``--force`` recomputes and overwrites; ``--no-store`` ignores
any configured store for this invocation.

``report`` assembles every requested experiment (default: all) into one
standalone Markdown document with embedded SVG charts and a
reproduced-vs-paper verdict per figure; on a warm store it only renders.

The service subcommands run sweeps as a shared, sharded job queue
(:mod:`repro.service`): ``submit`` enqueues a content-addressed job into
the ``--service`` spool directory (``$REPRO_SERVICE``), ``serve`` runs
the scheduler plus ``--workers`` worker processes against it (``--once``
drains the queue and exits), and ``status``/``results`` attach from any
client — progress and the finished grid come straight from the shared
store, so duplicate submissions and worker deaths never re-simulate a
completed cell.

The resilience flags (``--cell-timeout``, ``--retries``,
``--max-failures``, ``--failures-json``) activate the fault-tolerant
executor (:mod:`repro.resilience`) for the whole invocation: hung cells
are killed at their deadline, transient failures and dead workers retry
with backoff, and — under ``--max-failures N`` — a sweep completes with
a partial grid (failed cells rendered as ``n/a``) instead of dying,
exiting nonzero with one typed failure record per lost cell.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments.common import Scale, compute_cell
from repro.experiments.registry import EXPERIMENTS, REGISTRY, get_experiment
from repro.resilience import (
    STRICT,
    CellExecutionError,
    ExecutionPolicy,
    FailureReport,
    resilience_context,
)
from repro.store import ResultStore


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dkip-experiments",
        description="Regenerate the tables and figures of 'A Decoupled "
        "KILO-Instruction Processor' (HPCA 2006)",
        epilog="cache subcommands: 'cache stats' (store inventory), "
        "'cache prune [--all]' (drop corrupt/stale entries), "
        "'cache verify [--sample N]' (re-run stored cells and diff).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment names (e.g. fig9 fig12), 'all', 'report "
        "[names...]', 'cache <cmd>', 'machines', 'workloads', 'sweep "
        "[preset|file.toml ...]', 'simpoint TRACE[.gz]', or "
        "'profile MACHINE WORKLOAD [MEMORY]'",
    )
    parser.add_argument(
        "--scale",
        choices=[s.value for s in Scale],
        default=Scale.DEFAULT.value,
        help="runtime/fidelity preset (default: %(default)s)",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each experiment's rows as CSV into DIR",
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="also write each experiment result as JSON into DIR",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="result-store directory; cached cells are reused and new "
        "cells persisted (default: $REPRO_STORE when set, else off)",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="ignore --store and $REPRO_STORE; always simulate",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="recompute every cell and overwrite store entries",
    )
    parser.add_argument(
        "--sample",
        type=int,
        metavar="N",
        default=None,
        help="cache verify: check N randomly sampled cells (default: all)",
    )
    parser.add_argument(
        "--quarantine",
        action="store_true",
        help="cache verify: move corrupt/schema-stale entries to "
        "<store>/.quarantine/ instead of skipping them",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        dest="prune_all",
        help="cache prune: remove every entry, not just corrupt/stale ones",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="REPRODUCTION.md",
        help="report: output path for the assembled document "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    sweep = parser.add_argument_group(
        "sweep", "ad-hoc grid sweeps over the declarative machine layer"
    )
    sweep.add_argument(
        "--machines",
        action="append",
        metavar="SPECS",
        default=None,
        help="comma-separated machine specs or preset names, e.g. "
        '"R10-64,dkip(llib=8192)" (repeatable)',
    )
    sweep.add_argument(
        "--memory",
        action="append",
        metavar="SPECS",
        default=None,
        help="comma-separated memory specs: Table-1 names, 'default', or "
        'mem(...) grammar, e.g. "MEM-400,mem(lat=800)" (repeatable)',
    )
    sweep.add_argument(
        "--workloads",
        action="append",
        metavar="SPECS",
        default=None,
        help="comma-separated suite tokens (int, fp, all), benchmark "
        'names, and/or workload specs like "synth(chase=8)" or '
        '"trace(file=foo.trc.gz)" (repeatable; default: int)',
    )
    sweep.add_argument(
        "--axes",
        action="append",
        metavar="KEY=V1,V2,...",
        default=None,
        help="cross an extra machine parameter over the given values, "
        'e.g. --axes "llib=1024,4096" --axes "cp=INO,OOO-40" (repeatable)',
    )
    sweep.add_argument(
        "--workload-axes",
        action="append",
        metavar="KEY=V1,V2,...",
        default=None,
        help="cross an extra workload trait over the given values, e.g. "
        '--workloads synth --workload-axes "chase=0,4,16" (repeatable)',
    )
    sweep.add_argument(
        "--name",
        metavar="STR",
        default=None,
        help="sweep: result/experiment name (default: sweep)",
    )
    sweep.add_argument(
        "--title",
        metavar="STR",
        default=None,
        help="sweep: human title for the result table",
    )
    sweep.add_argument(
        "--instructions",
        type=int,
        metavar="N",
        default=None,
        help="sweep: per-cell committed-instruction budget "
        "(default: the --scale preset)",
    )
    sweep.add_argument(
        "--max-cycles",
        type=int,
        metavar="N",
        default=None,
        help="sweep: deadlock-guard cycle bound forwarded to the engine",
    )
    sweep.add_argument(
        "--svg",
        metavar="PATH",
        default=None,
        help="sweep: also render the result chart as an SVG file",
    )
    simpoint = parser.add_argument_group(
        "simpoint", "SimPoint phase analysis of captured traces"
    )
    simpoint.add_argument(
        "--capture",
        metavar="WORKLOAD",
        default=None,
        help="simpoint: synthesize the trace first by capturing this "
        "benchmark name or workload spec (length: --instructions, "
        "default 50000)",
    )
    simpoint.add_argument(
        "--interval",
        type=int,
        metavar="N",
        default=None,
        help="simpoint: instructions per interval/phase (default: 1024)",
    )
    simpoint.add_argument(
        "--k",
        type=int,
        metavar="K",
        default=None,
        help="simpoint: number of clusters, i.e. at most K selected "
        "phases (default: 4)",
    )
    simpoint.add_argument(
        "--phase-seed",
        type=int,
        metavar="S",
        default=None,
        help="simpoint: k-means clustering seed (default: 0)",
    )
    simpoint.add_argument(
        "--spec-out",
        metavar="PATH",
        default=None,
        help="simpoint: write a sweep scenario file (TOML) whose "
        "phases(...) token replays the selected phases; machines come "
        "from --machines (default: dkip)",
    )
    profile = parser.add_argument_group(
        "profile", "cProfile one cell and attribute time to pipeline stages"
    )
    profile.add_argument(
        "--profile-out",
        metavar="PATH",
        default=None,
        help="profile: also dump raw cProfile data to PATH (load with "
        "pstats or snakeviz)",
    )
    profile.add_argument(
        "--sort",
        choices=("tottime", "cumtime", "ncalls"),
        default="tottime",
        help="profile: hot-function table ordering (default: %(default)s)",
    )
    service = parser.add_argument_group(
        "service",
        "sharded sweep service over one shared result store "
        "(serve / submit / status / results)",
    )
    service.add_argument(
        "--service",
        metavar="DIR",
        default=None,
        help="service spool directory (default: $REPRO_SERVICE; the "
        "shared store defaults to DIR/store unless --store is given)",
    )
    service.add_argument(
        "--workers",
        type=int,
        metavar="N",
        default=None,
        help="serve: worker processes to run (default: 2)",
    )
    service.add_argument(
        "--once",
        action="store_true",
        help="serve: exit once every submitted job has completed",
    )
    service.add_argument(
        "--poll",
        type=float,
        metavar="SECONDS",
        default=None,
        help="serve/submit --wait: poll interval (default: 0.2)",
    )
    service.add_argument(
        "--lease",
        type=float,
        metavar="SECONDS",
        default=None,
        help="serve: heartbeat staleness after which a worker's shard "
        "is requeued (default: 30)",
    )
    service.add_argument(
        "--shards",
        type=int,
        metavar="N",
        default=None,
        help="submit: work units the grid is split into per dispatch "
        "(default: 4)",
    )
    service.add_argument(
        "--wait",
        action="store_true",
        help="submit: block until the job completes, printing progress "
        "(a scheduler must be serving the spool)",
    )
    resilience = parser.add_argument_group(
        "resilience",
        "fault tolerance for long sweeps (any of these flags activates "
        "the resilient execution policy for the whole invocation)",
    )
    resilience.add_argument(
        "--cell-timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help="per-cell wall-clock deadline; an overdue cell's worker is "
        "killed and the cell retried (default: no deadline)",
    )
    resilience.add_argument(
        "--retries",
        type=int,
        metavar="N",
        default=None,
        help="retry budget per cell for transient failures, worker "
        f"deaths and timeouts (default: {STRICT.retries})",
    )
    resilience.add_argument(
        "--max-failures",
        type=int,
        metavar="N",
        default=None,
        help="final cell failures tolerated before aborting; 0 = "
        "fail-fast (the default), negative = never abort",
    )
    resilience.add_argument(
        "--failures-json",
        metavar="PATH",
        default=None,
        help="write the machine-readable failure report to PATH",
    )
    return parser


def resolve_policy(args) -> ExecutionPolicy | None:
    """The execution policy the resilience flags describe, if any.

    ``None`` (no flag given) keeps today's behaviour exactly: strict
    fail-fast execution with no ambient failure report.
    """
    flags = (args.cell_timeout, args.retries, args.max_failures,
             args.failures_json)
    if all(flag is None for flag in flags):
        return None
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        raise ValueError(
            f"--cell-timeout must be positive, got {args.cell_timeout}"
        )
    if args.retries is not None and args.retries < 0:
        raise ValueError(f"--retries must be >= 0, got {args.retries}")
    max_failures: int | None = STRICT.max_failures
    if args.max_failures is not None:
        max_failures = None if args.max_failures < 0 else args.max_failures
    return ExecutionPolicy(
        cell_timeout=args.cell_timeout,
        retries=STRICT.retries if args.retries is None else args.retries,
        max_failures=max_failures,
    )


def _finalize_failures(
    args, policy: ExecutionPolicy, report: FailureReport, status: int
) -> int:
    """Write ``--failures-json``, summarize failures, cap the exit code."""
    if args.failures_json:
        report.write_json(args.failures_json, policy)
        print(f"[failure report written to {args.failures_json}]")
    if not report.failures:
        return status
    print(f"cell failures: {report.summary()}", file=sys.stderr)
    for failure in report.failures:
        print(f"  {failure.describe()}", file=sys.stderr)
    # Nonzero but capped: leave the upper range to the shell (126+) and
    # keep the per-experiment failure count (<=255) distinguishable.
    return max(status, min(len(report.failures), 125))


def resolve_store(args) -> ResultStore | None:
    """The store this invocation should use, honouring ``--no-store``."""
    if args.no_store:
        return None
    directory = args.store or os.environ.get("REPRO_STORE", "").strip() or None
    return ResultStore(directory) if directory else None


def run_cache_command(args) -> int:
    """Dispatch ``dkip-experiments cache <stats|prune|verify>``."""
    words = args.experiments[1:]
    command = words[0] if words else "stats"
    if command not in ("stats", "prune", "verify"):
        print(
            f"unknown cache command {command!r}; expected stats, prune or verify",
            file=sys.stderr,
        )
        return 2
    store = resolve_store(args)
    if store is None:
        print(
            "no result store configured; pass --store DIR or set $REPRO_STORE",
            file=sys.stderr,
        )
        return 2

    if command == "stats":
        summary = store.summary()
        print(f"store root      {summary['root']}")
        print(f"entries         {summary['entries']}")
        print(f"corrupt         {summary['corrupt']}")
        print(f"stale schema    {summary['stale_schema']}")
        print(f"size            {summary['bytes']} bytes")
        for kind, count in summary["machines"].items():
            print(f"  machine {kind:<24s} {count}")
        for name, count in summary["workloads"].items():
            print(f"  workload {name:<23s} {count}")
        return 0

    if command == "prune":
        removed = store.prune(everything=args.prune_all)
        what = "entries" if args.prune_all else "corrupt/stale entries"
        print(f"pruned {removed} {what} from {store.root}")
        return 0

    # Fresh sampling entropy per invocation: repeated --sample N runs
    # cover different cells over time instead of re-checking one subset.
    reports = store.verify(
        compute_cell,
        sample=args.sample,
        rng_seed=None,
        quarantine=args.quarantine,
    )
    stale = 0
    quarantined = 0
    for report in reports:
        line = f"{report['status']:<6s} {report['cell']} [{report['digest'][:12]}]"
        if report["status"] == "quarantined":
            quarantined += 1
            line += f"  {report.get('detail', '')}"
        elif report["status"] != "ok":
            stale += 1
            line += f"  {report.get('detail', '')}"
        print(line)
    print(f"verified {len(reports) - quarantined} cell(s), {stale} stale/errored")
    if quarantined:
        print(
            f"quarantined {quarantined} corrupt/stale entrie(s) to "
            f"{store.root / '.quarantine'}"
        )
    return 1 if stale else 0


def _write_result_files(result, args) -> None:
    """Honour ``--csv``/``--json`` for one experiment result."""
    if args.csv:
        path = result.write_csv(args.csv)
        print(f"[csv written to {path}]")
        print()
    if args.json:
        path = result.write_json(args.json)
        print(f"[json written to {path}]")
        print()


def _write_sweep_svg(path: str, result, spec) -> bool:
    """Render *result* through *spec* into an SVG file at *path*.

    Returns False (after a clean stderr message) when the path is
    unwritable — the sweep already ran, so this must not traceback.
    """
    from repro.report.build import figure_svg

    document = figure_svg(spec, result) if spec is not None else None
    if document is None:
        print(f"no chart to render for {result.name}; {path} not written",
              file=sys.stderr)
        return True
    try:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(document)
    except OSError as error:
        print(f"cannot write svg {path}: {error}", file=sys.stderr)
        return False
    print(f"[svg written to {path}]")
    return True


def _adhoc_sweep_mapping(args) -> dict:
    """The sweep mapping the ad-hoc ``--machines/...`` flags describe.

    Shared by ``sweep`` (runs it here) and ``submit`` (serializes it
    into a service job), so both spell grids identically.  Raises
    :class:`~repro.machines.SpecError` on malformed axis flags.
    """
    from repro.machines import SpecError, split_specs

    def parse_axis_flags(chunks, flag):
        axes: dict[str, list[str]] = {}
        for chunk in chunks or []:
            key, sep, values = chunk.partition("=")
            if not sep or not key.strip() or not values.strip():
                raise SpecError(
                    f"malformed {flag} {chunk!r}; expected KEY=V1,V2,..."
                )
            axes[key.strip()] = split_specs(values)
        return axes

    return {
        "name": args.name or "sweep",
        "title": args.title or "",
        "machines": [
            s for chunk in args.machines for s in split_specs(chunk)
        ],
        "memory": [
            s for chunk in args.memory or [] for s in split_specs(chunk)
        ],
        "workloads": [
            s for chunk in args.workloads or [] for s in split_specs(chunk)
        ],
        "axes": parse_axis_flags(args.axes, "--axes"),
        "workload_axes": parse_axis_flags(
            args.workload_axes, "--workload-axes"
        ),
        "instructions": args.instructions,
        "max_cycles": args.max_cycles,
    }


def run_sweep_command(args) -> int:
    """Dispatch ``dkip-experiments sweep [preset|file ...]`` and ad-hoc
    ``--machines/--memory/--workloads/--axes`` grids."""
    from repro.experiments.sweep import (
        SweepSpec,
        figure_spec_for,
        get_sweep_preset,
        run_preset,
        run_sweep,
    )
    from repro.machines import SpecError

    words = args.experiments[1:]
    scale = Scale(args.scale)
    store = resolve_store(args)
    runs: list[tuple[object, object]] = []  # (result, figure spec or None)
    try:
        if words:
            adhoc_flags = (
                args.machines, args.memory, args.workloads, args.axes,
                args.workload_axes, args.name, args.title,
                args.instructions, args.max_cycles,
            )
            if any(flag is not None for flag in adhoc_flags):
                print(
                    "note: --machines/--memory/--workloads/--axes/"
                    "--workload-axes/--name/--title/--instructions/"
                    "--max-cycles are ignored when presets or scenario "
                    "files are named",
                    file=sys.stderr,
                )
            for word in words:
                if word.endswith((".toml", ".json")) or os.path.sep in word:
                    spec = SweepSpec.from_file(word)
                    result = run_sweep(spec, scale, store=store, force=args.force)
                    runs.append((result, figure_spec_for(spec)))
                    continue
                preset = get_sweep_preset(word)
                result = run_preset(word, scale, store=store, force=args.force)
                registered = REGISTRY.get(result.name)
                figure = registered.spec if registered else figure_spec_for(preset.spec)
                runs.append((result, figure))
        else:
            if not args.machines:
                print(
                    "sweep needs --machines SPECS, a preset name, or a "
                    "scenario file; see 'dkip-experiments machines' for "
                    "the grammar",
                    file=sys.stderr,
                )
                return 2
            spec = SweepSpec.from_mapping(_adhoc_sweep_mapping(args))
            result = run_sweep(spec, scale, store=store, force=args.force)
            runs.append((result, figure_spec_for(spec)))
    except (SpecError, ValueError, OSError) as error:
        print(error, file=sys.stderr)
        return 2
    status = 0
    for result, figure in runs:
        print(result.render())
        print()
        _write_result_files(result, args)
        if args.svg:
            path = args.svg
            if len(runs) > 1:
                root, suffix = os.path.splitext(path)
                path = f"{root}-{result.name}{suffix}"
            if not _write_sweep_svg(path, result, figure):
                status = 2
    if store is not None:
        print(
            f"store {store.root}: {store.hits} cells cached, "
            f"{store.writes} simulated"
        )
    return status


def _write_phase_spec(path: str, phase_set, machines: list[str]) -> None:
    """Write a sweep scenario file replaying *phase_set*'s selection.

    Plain TOML written by hand (the stdlib only reads it); string values
    go through ``json.dumps``, whose escaping is valid TOML for the
    paths the workload grammar accepts.
    """
    import json

    stem = os.path.splitext(os.path.basename(phase_set.path))[0]
    stem = stem[:-4] if stem.endswith(".trc") else stem
    title = (
        f"SimPoint phase sweep of {os.path.basename(phase_set.path)} "
        f"(interval={phase_set.interval}, k={phase_set.k})"
    )
    lines = [
        "# Written by `dkip-experiments simpoint`; run with:",
        f"#   dkip-experiments sweep {path} --store .repro-store",
        f"name = {json.dumps(f'phases-{stem}')}",
        f"title = {json.dumps(title)}",
        f"machines = [{', '.join(json.dumps(m) for m in machines)}]",
        f"workloads = [{json.dumps(phase_set.token())}]",
        "# One whole interval per phase cell (the weighted estimate",
        "# assumes complete phases).",
        f"instructions = {phase_set.interval}",
        "",
    ]
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines))


def run_simpoint_command(args) -> int:
    """Dispatch ``dkip-experiments simpoint TRACE``: phase analysis.

    Optionally captures the trace first (``--capture``), then slices,
    clusters and prints the weighted phase table; ``--spec-out`` also
    writes a ready-to-sweep scenario file.
    """
    from repro.machines import SpecError, split_specs
    from repro.simpoint.phases import PhaseAnalysisError, analyze_trace
    from repro.trace.io import TraceFormatError, save_trace
    from repro.viz.ascii import table
    from repro.workloads import get_workload
    from repro.workloads.phases import DEFAULT_INTERVAL, DEFAULT_K

    words = args.experiments[1:]
    if len(words) != 1:
        print(
            "usage: dkip-experiments simpoint TRACE[.gz] [--capture "
            "WORKLOAD] [--instructions N] [--interval N] [--k K] "
            "[--phase-seed S] [--spec-out FILE] [--machines SPECS]",
            file=sys.stderr,
        )
        return 2
    path = words[0]
    interval = args.interval if args.interval is not None else DEFAULT_INTERVAL
    k = args.k if args.k is not None else DEFAULT_K
    seed = args.phase_seed if args.phase_seed is not None else 0
    try:
        if args.capture:
            length = args.instructions if args.instructions is not None else 50_000
            written = save_trace(get_workload(args.capture), path, length)
            print(f"captured {written} instructions of {args.capture!r} to {path}")
        phase_set = analyze_trace(path, interval=interval, k=k, seed=seed)
    except (PhaseAnalysisError, TraceFormatError, SpecError, ValueError,
            OSError) as error:
        print(error, file=sys.stderr)
        return 2
    print(
        table(
            ["phase", "interval", "instructions", "weight", "workload spec"],
            phase_set.table_rows(),
            title=f"SimPoint phases of {path} "
            f"[interval={interval}, k={k}, seed={seed}]",
        )
    )
    print()
    print(
        f"capture: {phase_set.total_instructions} instructions, "
        f"{phase_set.num_intervals} complete interval(s) of {interval}"
    )
    print(
        f"selected {len(phase_set.points)} phase(s) covering "
        f"{phase_set.coverage:.1%} of the capture; weighted-IPC estimate "
        "= sum(weight x phase IPC)"
    )
    print(f"sweep token: {phase_set.token()}")
    if args.spec_out:
        machines = [
            spec for chunk in args.machines or ["dkip"]
            for spec in split_specs(chunk)
        ]
        try:
            _write_phase_spec(args.spec_out, phase_set, machines)
        except OSError as error:
            print(f"cannot write {args.spec_out}: {error}", file=sys.stderr)
            return 2
        print(f"[phase spec written to {args.spec_out}]")
        print(f"run it: dkip-experiments sweep {args.spec_out} --store DIR")
    return 0


def run_machines_command(args) -> int:
    """Dispatch ``dkip-experiments machines``: kinds, grammar, presets."""
    from repro.experiments.sweep import SWEEP_PRESETS
    from repro.machines import MEMORY_GRAMMAR, PRESETS, machine_kinds

    print("machine kinds — spec grammar: KIND(key=value,...) or bare KIND")
    for kind in machine_kinds().values():
        print(f"  {kind.name:<10s}{kind.description}")
        print(f"  {'':<10s}{kind.grammar}")
    print()
    print("named presets (paper provenance):")
    for preset in PRESETS.values():
        print(f"  {preset.name:<14s}{preset.spec:<24s}{preset.provenance}")
    print()
    print("sweep presets (dkip-experiments sweep <name>):")
    for sweep_preset in SWEEP_PRESETS.values():
        print(f"  {sweep_preset.name:<14s}{sweep_preset.description}")
    print()
    print("memory spec grammar:")
    print(f"  {MEMORY_GRAMMAR}")
    return 0


def run_workloads_command(args) -> int:
    """Dispatch ``dkip-experiments workloads``: kinds, grammar, benchmarks."""
    from repro.workloads import SPECFP_NAMES, SPECINT_NAMES, workload_kinds

    print("workload kinds — spec grammar: KIND(key=value,...) or bare KIND")
    for kind in workload_kinds().values():
        print(f"  {kind.name:<10s}{kind.description}")
        print(f"  {'':<10s}{kind.grammar}")
    print()
    print("named benchmarks (bare name or bench(name=...)):")
    print(f"  int: {', '.join(SPECINT_NAMES)}")
    print(f"  fp:  {', '.join(SPECFP_NAMES)}")
    print()
    print("suite tokens for sweeps: int, fp, all")
    print(
        "capture a trace for the trace(...) kind with "
        "repro.trace.io.save_trace(workload, path, n)"
    )
    print(
        "turn a capture into weighted SimPoint phases with "
        "'dkip-experiments simpoint TRACE'; the phases(...) set form "
        "(no index=) is a sweep token that expands to one weighted "
        "cell per selected phase"
    )
    return 0


#: Human stage names for the per-file time attribution of ``profile``.
#: Files not listed fall back to their ``package/module`` path, so new
#: modules show up unnamed rather than vanishing.
_PROFILE_STAGES = {
    "pipeline/fetch.py": "fetch + branch redirect",
    "pipeline/queues.py": "issue queues (wakeup/select)",
    "pipeline/fu.py": "functional units",
    "pipeline/lsq.py": "load/store queues",
    "pipeline/entry.py": "in-flight entries (rename)",
    "pipeline/regstate.py": "register state",
    "pipeline/core.py": "event queue + run loop",
    "branch": "branch prediction",
    "memory": "memory hierarchy",
    "core": "D-KIP model (analyze/extract/MP)",
    "baselines": "baseline core model",
    "workloads": "trace generation",
    "trace": "trace generation",
    "isa": "trace generation",
}


def _profile_stage(filename: str) -> str:
    """Map a profiled code object's file to a pipeline-stage label."""
    marker = f"{os.sep}repro{os.sep}"
    index = filename.rfind(marker)
    if index < 0:
        return "python runtime + other"
    subpath = filename[index + len(marker):].replace(os.sep, "/")
    return (
        _PROFILE_STAGES.get(subpath)
        or _PROFILE_STAGES.get(subpath.split("/", 1)[0])
        or subpath
    )


def run_profile_command(args) -> int:
    """Dispatch ``dkip-experiments profile MACHINE WORKLOAD [MEMORY]``.

    Runs one cell under :mod:`cProfile` and prints (a) a run summary
    with simulation throughput, (b) wall time attributed per pipeline
    stage — exclusive time grouped by the module that implements the
    stage — and (c) the hottest individual functions.  This is the
    entry point the performance cookbook in PERFORMANCE.md builds on;
    ``--profile-out`` keeps the raw profile for offline digging.
    """
    import cProfile
    import pstats
    import time

    from repro.machines import SpecError, parse_machine, parse_memory
    from repro.sim.runner import simulate
    from repro.viz.ascii import table
    from repro.workloads import get_workload

    words = args.experiments[1:]
    if not 1 < len(words) < 4:
        print(
            "usage: dkip-experiments profile MACHINE WORKLOAD [MEMORY] "
            "[--instructions N] [--profile-out FILE] [--sort KEY]",
            file=sys.stderr,
        )
        return 2
    try:
        config = parse_machine(words[0])
        workload = get_workload(words[1])
        memory = parse_memory(words[2] if len(words) == 3 else "default")
    except (SpecError, ValueError) as error:
        print(error, file=sys.stderr)
        return 2
    instructions = args.instructions if args.instructions is not None else 20_000
    trace = workload.trace(instructions)

    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    stats = simulate(config, trace, memory=memory, regions=workload.regions)
    profiler.disable()
    elapsed = time.perf_counter() - started

    label = getattr(config, "name", words[0])
    print(
        f"{label} × {words[1]} × {memory.name}: "
        f"{stats.committed} instructions, {stats.cycles} cycles, "
        f"IPC {stats.ipc:.3f}"
    )
    print(
        f"wall {elapsed:.3f}s — "
        f"{stats.cycles / elapsed / 1e3:.0f}k cycles/s, "
        f"{stats.committed / elapsed / 1e3:.0f}k instructions/s"
    )
    print()

    profile = pstats.Stats(profiler)
    total = sum(row[2] for row in profile.stats.values()) or 1.0
    stages: dict[str, tuple[float, int]] = {}
    for (filename, _lineno, _name), (_cc, ncalls, tottime, _ct, _callers) in (
        profile.stats.items()
    ):
        stage = _profile_stage(filename)
        seconds, calls = stages.get(stage, (0.0, 0))
        stages[stage] = (seconds + tottime, calls + ncalls)
    stage_rows = [
        [stage, f"{seconds:.3f}", f"{100 * seconds / total:5.1f}%", str(calls)]
        for stage, (seconds, calls) in sorted(
            stages.items(), key=lambda item: item[1][0], reverse=True
        )
    ]
    print(
        table(
            ["stage", "seconds", "share", "calls"],
            stage_rows,
            title="per-stage attribution (exclusive time by module)",
        )
    )
    print()

    sort_index = {"tottime": 2, "cumtime": 3, "ncalls": 1}[args.sort]
    hot = sorted(
        profile.stats.items(), key=lambda item: item[1][sort_index], reverse=True
    )[:15]
    hot_rows = []
    for (filename, lineno, name), (_cc, ncalls, tottime, cumtime, _callers) in hot:
        where = _profile_stage(filename)
        base = os.path.basename(filename)
        hot_rows.append(
            [f"{base}:{lineno}({name})", str(ncalls),
             f"{tottime:.3f}", f"{cumtime:.3f}", where]
        )
    print(
        table(
            ["function", "ncalls", "tottime", "cumtime", "stage"],
            hot_rows,
            title=f"hottest functions (by {args.sort})",
        )
    )
    if args.profile_out:
        try:
            profiler.dump_stats(args.profile_out)
        except OSError as error:
            print(f"cannot write {args.profile_out}: {error}", file=sys.stderr)
            return 2
        print(f"\n[raw profile written to {args.profile_out}]")
    return 0


def _resolve_service(args):
    """The service spool (``--service``/``$REPRO_SERVICE``) and its store.

    Returns ``(queue, store)`` or ``None`` after a stderr message when
    no spool directory is configured.  Without an explicit ``--store``
    the shared store lives inside the spool (``<service>/store``), so
    every worker and client agrees on one ledger by construction.
    """
    from repro.service import ServiceQueue

    directory = (
        args.service or os.environ.get("REPRO_SERVICE", "").strip() or None
    )
    if directory is None:
        print(
            "no service directory configured; pass --service DIR or set "
            "$REPRO_SERVICE",
            file=sys.stderr,
        )
        return None
    queue = ServiceQueue(directory)
    queue.ensure()
    store = resolve_store(args) or ResultStore(queue.root / "store")
    return queue, store


def _submission_mappings(args, words) -> list[dict]:
    """The sweep mappings a ``submit`` invocation names.

    Words are sweep presets or scenario files (like ``sweep``); with no
    words the ad-hoc ``--machines/...`` flags describe one grid.
    Raises :class:`~repro.machines.SpecError`/:class:`ValueError` on bad
    input; returns an empty list (after a stderr message) when nothing
    was specified at all.
    """
    from repro.experiments.sweep import SweepSpec, get_sweep_preset

    mappings: list[dict] = []
    if words:
        for word in words:
            if word.endswith((".toml", ".json")) or os.path.sep in word:
                mappings.append(SweepSpec.from_file(word).to_mapping())
            else:
                mappings.append(get_sweep_preset(word).spec.to_mapping())
        return mappings
    if not args.machines:
        print(
            "submit needs --machines SPECS, a preset name, or a scenario "
            "file; see 'dkip-experiments machines' for the grammar",
            file=sys.stderr,
        )
        return []
    return [SweepSpec.from_mapping(_adhoc_sweep_mapping(args)).to_mapping()]


def run_serve_command(args) -> int:
    """Dispatch ``dkip-experiments serve``: scheduler + N local workers.

    The scheduler loop runs in this process; each ``--workers`` slot is
    a separate OS process polling the same spool, so a worker death is a
    real process death and the store is genuinely shared.  ``--once``
    drains every submitted job and exits (the smoke-test mode); without
    it the service runs until interrupted.
    """
    import multiprocessing
    import time

    from repro.service import FAILED, Scheduler, worker_main

    resolved = _resolve_service(args)
    if resolved is None:
        return 2
    queue, store = resolved
    queue.clear_stop()
    workers = args.workers if args.workers is not None else 2
    poll = args.poll if args.poll is not None else 0.2
    lease = args.lease if args.lease is not None else 30.0
    scheduler = Scheduler(queue, store, lease=lease)
    processes = []
    for slot in range(max(0, workers)):
        process = multiprocessing.Process(
            target=worker_main,
            args=(str(queue.root),),
            kwargs={
                "store_root": str(store.root),
                "poll": poll,
                "name": f"worker-{slot}@{os.getpid()}",
            },
            daemon=True,
        )
        process.start()
        processes.append(process)
    print(
        f"serving {queue.root} with {len(processes)} worker(s); "
        f"store {store.root}",
        flush=True,
    )
    status = 0
    try:
        while True:
            for event in scheduler.poll_once():
                print(event, flush=True)
            if args.once and scheduler.drained():
                break
            time.sleep(poll)
    except KeyboardInterrupt:
        pass
    finally:
        queue.request_stop()
        for process in processes:
            process.join(timeout=10.0)
        for process in processes:  # pragma: no cover - last resort
            if process.is_alive():
                process.terminate()
    if args.once:
        status = max(
            (1 for job in queue.iter_jobs() if job.state == FAILED),
            default=0,
        )
    return status


def run_submit_command(args) -> int:
    """Dispatch ``dkip-experiments submit``: enqueue sweep jobs.

    Job ids are content-addressed over the canonical sweep mapping and
    scale, so resubmitting the same grid attaches to the in-flight job
    (or, once done, re-enqueues it to complete instantly off the warm
    store).  ``--wait`` then follows the job to completion.
    """
    from repro.machines import SpecError
    from repro.service import FAILED, job_status, submit_job, wait_for_job

    resolved = _resolve_service(args)
    if resolved is None:
        return 2
    queue, store = resolved
    words = args.experiments[1:]
    try:
        mappings = _submission_mappings(args, words)
    except (SpecError, ValueError, OSError) as error:
        print(error, file=sys.stderr)
        return 2
    if not mappings:
        return 2
    shards = args.shards if args.shards is not None else 4
    retries = args.retries if args.retries is not None else 2
    jobs = []
    for mapping in mappings:
        try:
            job, outcome = submit_job(
                queue, mapping, args.scale, shards=shards, retries=retries
            )
        except (SpecError, ValueError) as error:
            print(error, file=sys.stderr)
            return 2
        jobs.append(job)
        print(f"job {job.job_id[:12]} {outcome} ({mapping['name']})")
    if not args.wait:
        return 0
    status = 0
    poll = args.poll if args.poll is not None else 0.5
    for job in jobs:
        last = None

        def progress(current, job=job, seen=[last]):
            snapshot = job_status(queue, store, current)
            key = (snapshot["stored"], snapshot["failed"], snapshot["lost"])
            if key != seen[0]:
                seen[0] = key
                print(
                    f"job {current.job_id[:12]}: {snapshot['stored']}/"
                    f"{snapshot['cells']} cells stored, "
                    f"{snapshot['failed']} failed",
                    flush=True,
                )

        final = wait_for_job(queue, job.job_id, poll=poll, on_progress=progress)
        if final is None:  # pragma: no cover - no timeout configured
            continue
        print(final.summary_line())
        if final.state == FAILED:
            status = 1
    return status


def run_status_command(args) -> int:
    """Dispatch ``dkip-experiments status [JOB...]``: live job progress.

    With no arguments every job in the spool is listed; job-id prefixes
    narrow it.  Progress counts come from validated store reads and the
    failure taxonomy from the shard reports, so any client can attach to
    a running sweep.
    """
    from repro.service import format_status, job_status

    resolved = _resolve_service(args)
    if resolved is None:
        return 2
    queue, store = resolved
    words = args.experiments[1:]
    if words:
        jobs = []
        for word in words:
            job = queue.match_job(word)
            if job is None:
                print(f"no unique job matches {word!r}", file=sys.stderr)
                return 2
            jobs.append(job)
    else:
        jobs = queue.iter_jobs()
    if not jobs:
        print(f"no jobs submitted to {queue.root}")
        return 0
    for job in jobs:
        for line in format_status(job_status(queue, store, job)):
            print(line)
    return 0


def run_results_command(args) -> int:
    """Dispatch ``dkip-experiments results JOB``: the grid, read-only.

    Collects the job's cells from the shared store — never simulating —
    and renders them through the standard sweep formatter; cells still
    in flight (or failed) appear as ``n/a``.  Exits 1 while the grid is
    incomplete so scripts can poll for completion.
    """
    from repro.machines import SpecError
    from repro.service import collect_results

    resolved = _resolve_service(args)
    if resolved is None:
        return 2
    queue, store = resolved
    words = args.experiments[1:]
    if len(words) != 1:
        print(
            "usage: dkip-experiments results JOBID [--service DIR]; see "
            "'dkip-experiments status' for job ids",
            file=sys.stderr,
        )
        return 2
    job = queue.match_job(words[0])
    if job is None:
        print(f"no unique job matches {words[0]!r}", file=sys.stderr)
        return 2
    try:
        result, missing = collect_results(queue, store, job)
    except (SpecError, ValueError) as error:
        print(error, file=sys.stderr)
        return 2
    print(result.render())
    print()
    _write_result_files(result, args)
    if missing:
        print(
            f"{missing} cell(s) not yet in the store (job state: "
            f"{job.state}); re-run once the sweep completes",
            file=sys.stderr,
        )
        return 1
    return 0


def run_report_command(args) -> int:
    """Dispatch ``dkip-experiments report [names...]``."""
    from repro.report import build_report

    names = args.experiments[1:] or None
    if names is not None and "all" in names:
        names = None  # same semantics as the plain run path
    if args.csv or args.json:
        print(
            "note: --csv/--json apply to plain experiment runs; the report "
            "subcommand only writes --out",
            file=sys.stderr,
        )
    store = resolve_store(args)
    try:
        document = build_report(
            names, Scale(args.scale), store=store, force=args.force
        )
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(document)
    figures = document.count("<svg")
    print(f"wrote {args.out} ({len(document)} chars, {figures} figures)")
    if store is not None:
        print(
            f"store {store.root}: {store.hits} cells cached, "
            f"{store.writes} simulated"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        width = max(len(name) for name in REGISTRY)
        for name, experiment in REGISTRY.items():
            print(f"{name:<{width}}  {experiment.paper:<12}  {experiment.description}")
        return 0
    names = list(args.experiments) or ["all"]
    try:
        policy = resolve_policy(args)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    if policy is None:
        # No resilience flag: today's strict path, byte-for-byte.
        return _dispatch(args, names)
    with resilience_context(policy) as report:
        try:
            status = _dispatch(args, names)
        except CellExecutionError as error:
            print(f"aborted: {error}", file=sys.stderr)
            status = 1
    return _finalize_failures(args, policy, report, status)


def _dispatch(args, names: list[str]) -> int:
    """Route one parsed invocation to its subcommand or experiment runs."""
    if names and names[0] == "cache":
        return run_cache_command(args)
    if names and names[0] == "report":
        return run_report_command(args)
    if names and names[0] == "sweep":
        return run_sweep_command(args)
    if names and names[0] == "machines":
        return run_machines_command(args)
    if names and names[0] == "workloads":
        return run_workloads_command(args)
    if names and names[0] == "simpoint":
        return run_simpoint_command(args)
    if names and names[0] == "profile":
        return run_profile_command(args)
    if names and names[0] == "serve":
        return run_serve_command(args)
    if names and names[0] == "submit":
        return run_submit_command(args)
    if names and names[0] == "status":
        return run_status_command(args)
    if names and names[0] == "results":
        return run_results_command(args)
    if "all" in names:
        names = list(EXPERIMENTS)
    scale = Scale(args.scale)
    store = resolve_store(args)
    failed: list[str] = []
    for name in names:
        try:
            runner = get_experiment(name)
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
        try:
            result = runner(scale, store=store, force=args.force)
        except Exception as error:  # noqa: BLE001 - continue with the rest
            print(f"experiment {name} failed: {error}", file=sys.stderr)
            failed.append(name)
            continue
        print(result.render())
        print()
        if args.csv:
            path = result.write_csv(args.csv)
            print(f"[csv written to {path}]")
            print()
        if args.json:
            path = result.write_json(args.json)
            print(f"[json written to {path}]")
            print()
        if not result.rows:
            failed.append(name)
    if failed:
        print(f"failed experiments: {', '.join(failed)}", file=sys.stderr)
    # The exit status is a single byte; cap so e.g. 256 failures do not
    # wrap around to a "successful" zero.
    return min(len(failed), 255)


if __name__ == "__main__":
    raise SystemExit(main())
