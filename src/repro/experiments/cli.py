"""Command-line entry point regenerating the paper's tables and figures.

Usage::

    python -m repro.experiments all
    python -m repro.experiments fig9 fig12 --scale full
    python -m repro.experiments fig3 --csv results/
    dkip-experiments --list
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.common import Scale
from repro.experiments.registry import EXPERIMENTS, get_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dkip-experiments",
        description="Regenerate the tables and figures of 'A Decoupled "
        "KILO-Instruction Processor' (HPCA 2006)",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment names (e.g. fig9 fig12), or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=[s.value for s in Scale],
        default=Scale.DEFAULT.value,
        help="runtime/fidelity preset (default: %(default)s)",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each experiment's rows as CSV into DIR",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    names = list(args.experiments) or ["all"]
    if "all" in names:
        names = list(EXPERIMENTS)
    scale = Scale(args.scale)
    failures = 0
    for name in names:
        try:
            runner = get_experiment(name)
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
        result = runner(scale)
        print(result.render())
        print()
        if args.csv:
            path = result.write_csv(args.csv)
            print(f"[csv written to {path}]")
            print()
        if not result.rows:
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
