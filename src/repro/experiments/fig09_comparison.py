"""Figure 9: the headline comparison — R10-64, R10-256, KILO-1024, D-KIP-2048.

Average IPC over SpecINT and SpecFP for the four machines, all sharing the
default memory system (Table 2/3) and 512-entry LSQs.

The grid itself is a :class:`~repro.experiments.sweep.SweepSpec` over the
four named machine presets, executed by the generic sweep engine
(``dkip-experiments sweep fig9`` runs the same preset); only the table
formatting — the paper's reference IPC column and speedups over R10-64 —
is figure-specific.

Paper numbers:
    SpecINT: 1.19 / 1.32 / 1.38 / 1.33
    SpecFP : 1.26 / 1.71 / 2.23 / 2.37

Expected shape: both KILO-style machines far ahead of the conventional
cores on SpecFP; on SpecINT the gains compress and the traditional KILO
edges out the D-KIP (its out-of-order SLIQ helps pointer chasing, at much
higher implementation cost).
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Scale,
    Stopwatch,
    scale_of,
)
from repro.experiments.sweep import (
    SweepPreset,
    SweepSpec,
    register_sweep_preset,
    sweep_grid,
)
from repro.report.spec import Check, FigureSpec, cell, cell_ratio, long_rows_as_groups
from repro.viz.ascii import bar_chart

PAPER_IPC = {
    ("int", "R10-64"): 1.19,
    ("int", "R10-256"): 1.32,
    ("int", "KILO-1024"): 1.38,
    ("int", "D-KIP-2048"): 1.33,
    ("fp", "R10-64"): 1.26,
    ("fp", "R10-256"): 1.71,
    ("fp", "KILO-1024"): 2.23,
    ("fp", "D-KIP-2048"): 2.37,
}

#: The declarative grid: the four named machine presets over both suites
#: on the default memory system.
SWEEP = SweepSpec(
    name="fig9",
    title="Performance of the D-KIP compared to baselines and a "
    "traditional KILO processor",
    machines=("R10-64", "R10-256", "KILO-1024", "D-KIP-2048"),
    workloads=("int", "fp"),
)


def run(
    scale: Scale | str = Scale.DEFAULT, store=None, force=False
) -> ExperimentResult:
    scale = scale_of(scale)
    result = ExperimentResult(
        name="fig9",
        title=SWEEP.title,
        headers=["suite", "machine", "mean IPC", "paper IPC", "speedup vs R10-64"],
        scale=scale,
    )
    with Stopwatch(result):
        # One pool task per (machine, workload) pair: the whole grid —
        # all four machines, both suites — is in flight at once.
        grid = sweep_grid(SWEEP, scale, store=store, force=force)
        for suite in ("int", "fp"):
            base = None
            chart_data = {}
            for index, machine in enumerate(grid.machines):
                ipc = grid.mean_ipc(index, 0, suite)
                if base is None:
                    base = ipc
                chart_data[machine.name] = ipc
                result.rows.append(
                    [
                        f"Spec{suite.upper()}",
                        machine.name,
                        round(ipc, 3),
                        PAPER_IPC[(suite, machine.name)],
                        f"{ipc / base:.2f}x" if base else "-",
                    ]
                )
            result.charts.append(
                bar_chart(chart_data, title=f"Spec{suite.upper()} average IPC")
            )
    result.notes.append(
        "Shape check: FP ordering D-KIP/KILO >> R10-256 > R10-64; INT "
        "ordering KILO > D-KIP ~ R10-256 > R10-64 with compressed gaps."
    )
    return result


register_sweep_preset(
    SweepPreset(
        "fig9",
        SWEEP,
        description="Figure 9 headline grid: four named machines x both suites",
        runner=run,
    )
)


def _speedup(suite: str, machine: str):
    """Metric: mean-IPC ratio of *machine* over R10-64 within *suite*."""
    return cell_ratio(
        cell("mean IPC", suite=suite, machine=machine),
        cell("mean IPC", suite=suite, machine="R10-64"),
    )


#: Report spec: the headline comparison.  Absolute IPC depends on the
#: workload substrate, so the verdict checks compare each machine's
#: speedup over R10-64 against the same ratio formed from the paper's
#: stated IPC numbers; the bars still carry the paper's absolute values
#: as reference marks.
SPEC = FigureSpec(
    kind="bars",
    caption="Mean IPC of the four machines over SpecINT and SpecFP; "
    "dashes mark the paper's reported IPC",
    y_label="mean IPC",
    groups=long_rows_as_groups(0, 1, 2),
    reference_points={
        (f"Spec{suite.upper()}", machine): ipc
        for (suite, machine), ipc in PAPER_IPC.items()
    },
    checks=(
        Check(
            "SpecFP speedup, R10-256 vs R10-64",
            round(1.71 / 1.26, 3),
            _speedup("SpecFP", "R10-256"),
        ),
        Check(
            "SpecFP speedup, KILO-1024 vs R10-64",
            round(2.23 / 1.26, 3),
            _speedup("SpecFP", "KILO-1024"),
        ),
        Check(
            "SpecFP speedup, D-KIP-2048 vs R10-64",
            round(2.37 / 1.26, 3),
            _speedup("SpecFP", "D-KIP-2048"),
        ),
        Check(
            "SpecINT speedup, R10-256 vs R10-64",
            round(1.32 / 1.19, 3),
            _speedup("SpecINT", "R10-256"),
        ),
        Check(
            "SpecINT speedup, KILO-1024 vs R10-64",
            round(1.38 / 1.19, 3),
            _speedup("SpecINT", "KILO-1024"),
        ),
        Check(
            "SpecINT speedup, D-KIP-2048 vs R10-64",
            round(1.33 / 1.19, 3),
            _speedup("SpecINT", "D-KIP-2048"),
        ),
    ),
)


if __name__ == "__main__":
    print(run().render())
