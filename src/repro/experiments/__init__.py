"""Experiment harnesses: one module per table/figure of the paper.

Every module exposes ``run(scale) -> ExperimentResult`` and can be invoked
through the CLI::

    python -m repro.experiments all --scale default
    python -m repro.experiments fig9 fig12 --scale full --csv results/

Scales trade fidelity for runtime: ``quick`` (seconds per experiment, used
by the pytest-benchmark harness), ``default`` (a few minutes in total) and
``full`` (longer traces, full sweeps).  Absolute IPC differs from the
paper — the substrate is a synthetic-workload simulator, not the authors'
SimpleScalar/Alpha setup — but each harness reports the paper's numbers
next to the measured ones so the *shape* can be compared directly;
EXPERIMENTS.md records one full set of results.
"""

from repro.experiments.common import ExperimentResult, Scale
from repro.experiments.registry import EXPERIMENTS, get_experiment

__all__ = ["ExperimentResult", "Scale", "EXPERIMENTS", "get_experiment"]
