"""Generic grid-sweep engine over the declarative machine layer.

A :class:`SweepSpec` describes any (machine × memory × workload) grid as
data — machine and memory *spec strings* (:mod:`repro.machines`),
workload suite tokens or benchmark names, and optional parameter *axes*
crossed into every machine spec.  :func:`sweep_grid` runs the grid
through the shared process pool and result store;
:func:`run_sweep` adds generic table/chart formatting and an ad-hoc
:class:`~repro.report.spec.FigureSpec` so any scenario renders to ASCII
and SVG with zero new modules.

The paper's own experiments ride on the same engine: fig9 and fig10 are
registered here as :class:`SweepPreset` entries whose runners produce
their figure-grade tables from a :func:`sweep_grid` call, so
``dkip-experiments sweep fig9`` reproduces the figure bit-identically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.experiments.common import (
    INSTRUCTIONS,
    ExperimentResult,
    Scale,
    Stopwatch,
    WarmupCache,
    WorkloadPool,
    mean_ipc,
    run_cells,
    scale_of,
    suite_names,
    weighted_mean_ipc,
)
from repro.machines import (
    SpecError,
    apply_params,
    load_spec_file,
    parse_machine,
    parse_memory,
)
from repro.memory.configs import MemoryConfig
from repro.report.spec import FigureSpec
from repro.resilience import CellFailure, FailureReport, active_report
from repro.sim.stats import SimStats
from repro.store import ResultStore
from repro.viz.ascii import bar_chart
from repro.workloads import (
    PhaseExpansion,
    all_names,
    apply_workload_params,
    expand_phases,
    parse_workload,
)


# ----------------------------------------------------------------------
# The declarative sweep description
# ----------------------------------------------------------------------

_SPEC_KEYS = frozenset(
    {
        "name", "title", "machines", "memory", "workloads", "axes",
        "workload_axes", "instructions", "max_cycles",
    }
)

#: Suite tokens that expand to benchmark-name sets (vs. single specs).
_SUITE_TOKENS = ("int", "fp", "all")


@dataclass(frozen=True)
class SweepSpec:
    """One (machine × memory × workload) grid, as data.

    *machines* and *memory* are spec strings or preset names
    (:func:`repro.machines.parse_machine` / ``parse_memory``);
    *workloads* mixes suite tokens (``"int"``, ``"fp"``, ``"all"``),
    benchmark names, workload specs
    (:func:`repro.workloads.parse_workload` — ``"synth(chase=8)"``,
    ``"trace(file=foo.trc.gz)"``), and SimPoint phase sets
    (``"phases(file=foo.trc.gz,k=4)"``), which expand to one weighted
    cell per selected phase; *axes* crosses extra ``key=value``
    parameters into every machine spec (the product of all axis values)
    and *workload_axes* does the same over every workload spec, so the
    workload side of the design space sweeps like the machine side.
    """

    machines: tuple[str, ...]
    name: str = "sweep"
    title: str = ""
    memory: tuple[str, ...] = ("default",)
    workloads: tuple[str, ...] = ("int",)
    axes: tuple[tuple[str, tuple[str, ...]], ...] = ()
    workload_axes: tuple[tuple[str, tuple[str, ...]], ...] = ()
    #: Committed-instruction budget; None means the scale preset.
    instructions: int | None = None
    #: Deadlock-guard bound forwarded to the engine (None = default).
    max_cycles: int | None = None

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "SweepSpec":
        """Build a spec from a plain mapping (scenario-file contents)."""
        unknown = sorted(set(data) - _SPEC_KEYS)
        if unknown:
            raise SpecError(
                f"unknown sweep key(s) {', '.join(unknown)}; allowed: "
                f"{', '.join(sorted(_SPEC_KEYS))}"
            )
        machines = tuple(str(m) for m in _as_list(data.get("machines")))
        if not machines:
            raise SpecError("a sweep needs at least one machine spec")
        return cls(
            machines=machines,
            name=str(data.get("name", "sweep")),
            title=str(data.get("title", "")),
            memory=tuple(str(m) for m in _as_list(data.get("memory"))) or ("default",),
            workloads=tuple(str(w) for w in _as_list(data.get("workloads")))
            or ("int",),
            axes=_as_axes(data, "axes"),
            workload_axes=_as_axes(data, "workload_axes"),
            instructions=_as_optional_int(data, "instructions"),
            max_cycles=_as_optional_int(data, "max_cycles"),
        )

    @classmethod
    def from_file(cls, path) -> "SweepSpec":
        """Load a spec from a TOML or JSON scenario file."""
        return cls.from_mapping(load_spec_file(path))

    def to_mapping(self) -> dict[str, Any]:
        """The plain-mapping form of this spec, :meth:`from_mapping`'s
        inverse — what service submissions serialize into job files (and
        hash into content-addressed job ids)."""
        data: dict[str, Any] = {
            "name": self.name,
            "machines": list(self.machines),
            "memory": list(self.memory),
            "workloads": list(self.workloads),
        }
        if self.title:
            data["title"] = self.title
        if self.axes:
            data["axes"] = {axis: list(values) for axis, values in self.axes}
        if self.workload_axes:
            data["workload_axes"] = {
                axis: list(values) for axis, values in self.workload_axes
            }
        if self.instructions is not None:
            data["instructions"] = self.instructions
        if self.max_cycles is not None:
            data["max_cycles"] = self.max_cycles
        return data


def _as_list(value) -> list:
    if value is None:
        return []
    if isinstance(value, (list, tuple)):
        return list(value)
    return [value]


def _as_axes(data: Mapping, key: str) -> tuple[tuple[str, tuple[str, ...]], ...]:
    axes_data = data.get(key, {})
    if not isinstance(axes_data, Mapping):
        raise SpecError(f"sweep {key!r} must map parameter -> list of values")
    axes = tuple(
        (str(axis), tuple(str(v) for v in _as_list(values)))
        for axis, values in axes_data.items()
    )
    for axis, values in axes:
        if not values:
            raise SpecError(f"sweep axis {axis!r} has no values")
    return axes


def _as_optional_int(data: Mapping, key: str) -> int | None:
    value = data.get(key)
    if value is None:
        return None
    try:
        count = int(value)
    except (TypeError, ValueError):
        count = None
    if count is None or count <= 0:
        raise SpecError(
            f"sweep {key!r} must be a positive integer, got {value!r}"
        )
    return count


# ----------------------------------------------------------------------
# Grid expansion and execution
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweptMachine:
    """One expanded grid machine: final spec string, parsed config, and
    the axis assignment that produced it (empty for plain machines)."""

    spec: str
    config: Any
    axes: tuple[tuple[str, str], ...] = ()
    label: str = ""

    @property
    def name(self) -> str:
        """The config's own name (labels fall back to the spec string
        when two expanded machines share a name)."""
        return getattr(self.config, "name", self.spec)


def expand_machines(spec: SweepSpec) -> list[SweptMachine]:
    """Cross every machine spec with the axes' value product."""
    machines: list[SweptMachine] = []
    axis_keys = [key for key, _ in spec.axes]
    axis_values = [values for _, values in spec.axes]
    for base in spec.machines:
        if not axis_keys:
            machines.append(SweptMachine(base, parse_machine(base)))
            continue
        for combo in itertools.product(*axis_values):
            assignment = dict(zip(axis_keys, combo))
            text = apply_params(base, assignment)
            machines.append(
                SweptMachine(text, parse_machine(text), tuple(assignment.items()))
            )
    # Disambiguate labels: configs that rename under their parameters
    # keep their name; duplicates fall back to the full spec string.
    names = [machine.name for machine in machines]
    return [
        SweptMachine(
            m.spec,
            m.config,
            m.axes,
            label=m.name if names.count(m.name) == 1 else m.spec,
        )
        for m in machines
    ]


def expand_workload_tokens(spec: SweepSpec) -> tuple[str, ...]:
    """Cross every workload token with the workload axes' value product.

    Mirrors :func:`expand_machines` on the workload side: with no
    workload axes the tokens pass through untouched; with axes every
    token must be a parametric workload spec (suite tokens have no knobs
    to cross, which :func:`repro.workloads.apply_workload_params`
    rejects with a grammar-naming error).
    """
    if not spec.workload_axes:
        return spec.workloads
    axis_keys = [key for key, _ in spec.workload_axes]
    axis_values = [values for _, values in spec.workload_axes]
    tokens: list[str] = []
    for base in spec.workloads:
        if base.strip().lower() in _SUITE_TOKENS:
            raise SpecError(
                f"cannot apply workload axes to suite token {base!r}; "
                "name explicit workload specs (e.g. synth) instead"
            )
        for combo in itertools.product(*axis_values):
            tokens.append(
                apply_workload_params(base, dict(zip(axis_keys, combo)))
            )
    return tuple(dict.fromkeys(tokens))


def resolve_workloads(
    tokens: Sequence[str], scale: Scale
) -> dict[str, tuple[str, ...]]:
    """Map workload tokens to workload-name tuples at *scale*.

    ``"int"``/``"fp"`` resolve through the scale's suite subsets,
    ``"all"`` to both; a ``phases(...)`` *set* spec (no ``index=``)
    expands through the SimPoint analysis to its member phases — one
    grid cell per selected interval, individually store-keyed, which is
    what makes re-clustering with a different ``k`` reuse the phases
    already simulated; anything else is a registered benchmark name or a
    workload spec (``"synth(chase=8)"``, ``"trace(file=...)"``), which
    resolves to its canonical name so equivalent spellings share one
    grid cell (and one store entry).
    """
    resolved: dict[str, tuple[str, ...]] = {}
    for token in tokens:
        text = token.strip()
        lower = text.lower()
        if lower in ("int", "fp"):
            resolved[text] = suite_names(lower, scale)
        elif lower == "all":
            resolved[text] = suite_names("int", scale) + suite_names("fp", scale)
        elif text in all_names():
            resolved[text] = (text,)
        elif (expansion := expand_phases(text)) is not None:
            resolved[text] = expansion.names
        else:
            try:
                workload = parse_workload(text)
            except SpecError as error:
                raise SpecError(
                    f"unknown workload {text!r}; expected int, fp, all, a "
                    f"benchmark name ({', '.join(all_names())}), or a "
                    f"workload spec: {error}"
                ) from None
            resolved[text] = (workload.name,)
    return resolved


@dataclass
class SweepGrid:
    """Executed grid: expanded machines, memories, and per-cell stats.

    Under a tolerant execution policy a cell that failed past its retry
    budget holds ``None`` in ``results`` and its typed
    :class:`~repro.resilience.CellFailure` in ``failures`` under the
    same (machine index, memory index, benchmark) coordinates, so
    downstream formatting can say *why* a cell is missing.
    """

    spec: SweepSpec
    scale: Scale
    instructions: int
    machines: list[SweptMachine]
    memories: list[MemoryConfig]
    workloads: dict[str, tuple[str, ...]]
    benches: tuple[str, ...]
    results: dict[tuple[int, int, str], SimStats | None] = field(default_factory=dict)
    failures: dict[tuple[int, int, str], CellFailure] = field(default_factory=dict)
    #: Phase-set tokens expanded through the SimPoint analysis, keyed
    #: like ``workloads``; their suites aggregate by cluster weight.
    phases: dict[str, PhaseExpansion] = field(default_factory=dict)

    def stats(self, machine: int, memory: int, bench: str) -> SimStats | None:
        """Stats of one cell by (machine index, memory index, benchmark);
        ``None`` when the cell failed under a tolerant policy."""
        return self.results[(machine, memory, bench)]

    def suite_stats(
        self, machine: int, memory: int, token: str
    ) -> list[SimStats | None]:
        """Per-benchmark stats of one workload token's suite (``None``
        entries mark failed cells)."""
        return [self.stats(machine, memory, b) for b in self.workloads[token]]

    def mean_ipc(self, machine: int, memory: int, token: str) -> float:
        """Aggregate IPC of one workload token's suite.

        Plain suites take the arithmetic mean (the paper's metric);
        phase-set tokens take the SimPoint weighted mean — each phase's
        IPC weighted by its cluster's share of the profiled intervals —
        which is the whole-program estimate for the captured trace.
        Failed cells are skipped either way, matching
        :func:`repro.experiments.common.mean_ipc`'s partial-grid
        aggregation (phase weights renormalize over surviving cells).
        """
        expansion = self.phases.get(token)
        if expansion is not None:
            return weighted_mean_ipc(
                self.suite_stats(machine, memory, token), expansion.weights
            )
        return mean_ipc(self.suite_stats(machine, memory, token))

    def suite_failures(
        self, machine: int, memory: int, token: str
    ) -> list[CellFailure]:
        """The failures, if any, among one workload token's suite cells."""
        return [
            self.failures[(machine, memory, b)]
            for b in self.workloads[token]
            if (machine, memory, b) in self.failures
        ]


@dataclass(frozen=True)
class GridPlan:
    """The expanded, validated execution plan of one sweep grid.

    The shared head of :func:`sweep_grid` and the service scheduler
    (:mod:`repro.service.scheduler`): both need the same canonical cell
    order and instruction budget — one to run the cells through the
    in-process pool, the other to fingerprint and shard them across
    service workers — so the expansion lives in one place and a cell's
    store key is identical no matter which path executes it.
    """

    spec: SweepSpec
    scale: Scale
    instructions: int
    machines: list[SweptMachine]
    memories: list[MemoryConfig]
    workloads: dict[str, tuple[str, ...]]
    benches: tuple[str, ...]
    phases: dict[str, PhaseExpansion]

    def cells(self) -> list[tuple[Any, str, MemoryConfig]]:
        """Every (machine config, benchmark, memory) cell, in the
        canonical machine-major / memory / benchmark order."""
        return [
            (machine.config, bench, memory)
            for machine in self.machines
            for memory in self.memories
            for bench in self.benches
        ]

    def coords(self) -> list[tuple[int, int, str]]:
        """Grid coordinates aligned index-for-index with :meth:`cells`."""
        return [
            (mi, gi, bench)
            for mi in range(len(self.machines))
            for gi in range(len(self.memories))
            for bench in self.benches
        ]

    def grid(self) -> SweepGrid:
        """An empty result grid shaped like this plan."""
        return SweepGrid(
            spec=self.spec,
            scale=self.scale,
            instructions=self.instructions,
            machines=self.machines,
            memories=self.memories,
            workloads=self.workloads,
            benches=self.benches,
            phases=self.phases,
        )


def plan_grid(spec: SweepSpec, scale: Scale | str = Scale.DEFAULT) -> GridPlan:
    """Expand and validate *spec* into its executable grid plan."""
    scale = scale_of(scale)
    machines = expand_machines(spec)
    memories = [parse_memory(m) for m in spec.memory]
    workloads = resolve_workloads(expand_workload_tokens(spec), scale)
    # Phase-set tokens carry their weights out of band (the analysis is
    # memoized, so re-expanding the already-resolved tokens is free).
    phases = {
        token: expansion
        for token in workloads
        if (expansion := expand_phases(token)) is not None
    }
    benches = tuple(dict.fromkeys(
        bench for names in workloads.values() for bench in names
    ))
    if spec.instructions is not None and spec.instructions <= 0:
        raise SpecError(
            f"sweep instructions must be positive, got {spec.instructions}"
        )
    instructions = (
        spec.instructions if spec.instructions is not None else INSTRUCTIONS[scale]
    )
    if phases:
        shortest = min(e.interval for e in phases.values())
        if spec.instructions is None:
            # A phase cell can supply at most one interval; clamp the
            # scale preset so default sweeps replay whole phases.
            instructions = min(instructions, shortest)
        elif spec.instructions > shortest:
            raise SpecError(
                f"sweep instructions={spec.instructions} exceeds the "
                f"{shortest}-instruction interval of a phases(...) "
                "workload; phase cells replay at most one interval"
            )
    return GridPlan(
        spec=spec,
        scale=scale,
        instructions=instructions,
        machines=machines,
        memories=memories,
        workloads=workloads,
        benches=benches,
        phases=phases,
    )


def sweep_grid(
    spec: SweepSpec,
    scale: Scale | str = Scale.DEFAULT,
    pool: WorkloadPool | None = None,
    store: ResultStore | None = None,
    force: bool = False,
    jobs: int | None = None,
    warm_cache: WarmupCache | None = None,
) -> SweepGrid:
    """Execute every cell of *spec*'s grid (store-first, one process
    pool for the whole grid) and return the indexed results."""
    plan = plan_grid(spec, scale)
    pool = pool or WorkloadPool()
    report = active_report()
    if report is None:
        report = FailureReport()
    seen_failures = len(report.failures)
    flat = run_cells(
        plan.cells(),
        plan.instructions,
        pool,
        jobs=jobs,
        warm_cache=warm_cache,
        store=store,
        force=force,
        max_cycles=spec.max_cycles,
        report=report,
    )
    grid = plan.grid()
    coords = plan.coords()
    for index, coord in enumerate(coords):
        grid.results[coord] = flat[index]
    # Map this grid's final failures (appended during the run_cells call
    # above) back to grid coordinates via each failure's flat cell index.
    for failure in report.failures[seen_failures:]:
        if 0 <= failure.index < len(coords):
            grid.failures[coords[failure.index]] = failure
    return grid


# ----------------------------------------------------------------------
# Generic formatting (tables, ASCII bars, ad-hoc FigureSpec)
# ----------------------------------------------------------------------


def adhoc_groups(result: ExperimentResult) -> dict[str, dict[str, float]]:
    """Group extractor for the generic sweep table: machines as groups,
    (memory, workloads) as series — constant columns are elided."""
    memories = {str(row[1]) for row in result.rows}
    tokens = {str(row[2]) for row in result.rows}
    groups: dict[str, dict[str, float]] = {}
    for row in result.rows:
        try:
            value = float(row[3])
        except (TypeError, ValueError):
            continue  # "n/a (failed: ...)" rows carry no plottable value
        parts = []
        if len(memories) > 1:
            parts.append(str(row[1]))
        if len(tokens) > 1:
            parts.append(str(row[2]))
        series = " / ".join(parts) or "mean IPC"
        groups.setdefault(str(row[0]), {})[series] = value
    return groups


def figure_spec_for(spec: SweepSpec) -> FigureSpec:
    """An ad-hoc bar-chart FigureSpec for a generic sweep result."""
    return FigureSpec(
        kind="bars",
        caption=spec.title or f"mean IPC per machine ({spec.name})",
        y_label="mean IPC",
        groups=adhoc_groups,
    )


def summarize_grid(
    grid: SweepGrid, result: ExperimentResult | None = None
) -> ExperimentResult:
    """Format an executed (or store-collected) grid generically.

    One row per (machine, memory, workload token) with mean/min/max IPC,
    ASCII bars per (memory, token), and grid/phase/failure notes.  The
    formatting half of :func:`run_sweep`, shared with the service
    ``results`` client — which fills a :class:`SweepGrid` straight from
    the store without re-running anything and renders it through here.
    """
    if result is None:
        result = ExperimentResult(
            name=grid.spec.name,
            title=grid.spec.title or "ad-hoc machine/memory/workload sweep",
            headers=[
                "machine", "memory", "workloads", "mean IPC", "min IPC", "max IPC",
            ],
            scale=grid.scale,
        )
    for mi, machine in enumerate(grid.machines):
        for gi, memory in enumerate(grid.memories):
            for token in grid.workloads:
                ipcs = [
                    s.ipc
                    for s in grid.suite_stats(mi, gi, token)
                    if s is not None
                ]
                if ipcs:
                    # Weighted estimate for phase sets, plain mean
                    # otherwise (grid.mean_ipc dispatches).
                    cols = [
                        round(grid.mean_ipc(mi, gi, token), 3),
                        round(min(ipcs), 3),
                        round(max(ipcs), 3),
                    ]
                else:
                    kinds = sorted(
                        {f.kind for f in grid.suite_failures(mi, gi, token)}
                    ) or ["unknown"]
                    cols = [f"n/a (failed: {', '.join(kinds)})", "n/a", "n/a"]
                result.rows.append(
                    [machine.label, memory.name, token, *cols]
                )
    for gi, memory in enumerate(grid.memories):
        for token in grid.workloads:
            data = {
                machine.label: grid.mean_ipc(mi, gi, token)
                for mi, machine in enumerate(grid.machines)
            }
            result.charts.append(
                bar_chart(data, title=f"mean IPC — {memory.name} / {token}")
            )
    result.notes.append(
        f"grid: {len(grid.machines)} machine(s) x {len(grid.memories)} "
        f"memory system(s) x {len(grid.benches)} benchmark(s), "
        f"{grid.instructions} instructions per cell"
    )
    for token, expansion in grid.phases.items():
        result.notes.append(
            f"{token}: {len(expansion.names)} weighted phase(s) out of "
            f"{expansion.num_intervals} interval(s) — mean IPC is the "
            f"SimPoint estimate, simulating {expansion.coverage:.1%} of "
            "the capture"
        )
    if grid.failures:
        result.notes.append(
            f"{len(grid.failures)} cell(s) failed and were excluded from "
            "the aggregates above:"
        )
        for failure in grid.failures.values():
            result.notes.append(f"  failed: {failure.describe()}")
    return result


def run_sweep(
    spec: SweepSpec,
    scale: Scale | str = Scale.DEFAULT,
    store: ResultStore | None = None,
    force: bool = False,
    jobs: int | None = None,
) -> ExperimentResult:
    """Run *spec* and format the grid generically: one row per (machine,
    memory, workload token) with mean/min/max IPC, plus ASCII bars."""
    scale = scale_of(scale)
    result = ExperimentResult(
        name=spec.name,
        title=spec.title or "ad-hoc machine/memory/workload sweep",
        headers=["machine", "memory", "workloads", "mean IPC", "min IPC", "max IPC"],
        scale=scale,
    )
    with Stopwatch(result):
        grid = sweep_grid(
            spec,
            scale,
            store=store,
            force=force,
            jobs=jobs,
            warm_cache=WarmupCache(),
        )
    summarize_grid(grid, result)
    return result


# ----------------------------------------------------------------------
# Named sweep presets
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepPreset:
    """A named, reusable sweep: the declarative grid plus an optional
    figure-grade runner (paper columns, reference values, charts)."""

    name: str
    spec: SweepSpec
    description: str = ""
    #: ``runner(scale, store=..., force=...) -> ExperimentResult``; when
    #: None the generic :func:`run_sweep` formatting applies.
    runner: Callable[..., ExperimentResult] | None = None


SWEEP_PRESETS: dict[str, SweepPreset] = {}


def register_sweep_preset(preset: SweepPreset) -> SweepPreset:
    """Register (or replace) a named sweep."""
    SWEEP_PRESETS[preset.name] = preset
    return preset


def get_sweep_preset(name: str) -> SweepPreset:
    """The preset registered under *name* (raises ``ValueError``)."""
    try:
        return SWEEP_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown sweep preset {name!r}; available: "
            f"{', '.join(sorted(SWEEP_PRESETS)) or '(none registered)'}"
        ) from None


def run_preset(
    name: str,
    scale: Scale | str = Scale.DEFAULT,
    store: ResultStore | None = None,
    force: bool = False,
) -> ExperimentResult:
    """Run a named sweep: its figure-grade runner when it has one, the
    generic formatter otherwise."""
    preset = get_sweep_preset(name)
    if preset.runner is not None:
        return preset.runner(scale, store=store, force=force)
    return run_sweep(preset.spec, scale, store=store, force=force)


# The workload-axis showcase: latency tolerance (the paper's machine
# axis, Figs. 9-12) against pointer-chase depth (the workload trait the
# paper identifies as the SpecINT behaviour large windows cannot fix).
# Runs through the generic formatter and renders like any figure.
register_sweep_preset(
    SweepPreset(
        name="chase",
        spec=SweepSpec(
            name="chase",
            title="latency tolerance vs pointer-chase depth (synth workloads)",
            machines=("r10(rob=64)", "dkip(llib=2048)"),
            workloads=("synth",),
            workload_axes=(("chase", ("0", "4", "16")),),
        ),
        description="D-KIP vs OOO as serial miss chains deepen (workload axis)",
    )
)
