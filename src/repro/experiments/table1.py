"""Table 1: the six memory subsystems of the memory-wall characterization.

A configuration table rather than an experiment; the harness verifies each
configuration builds into a working hierarchy and reports its effective
latencies, which is what Figures 1 and 2 sweep over.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Scale, Stopwatch, scale_of
from repro.memory import MemoryHierarchy, TABLE1_CONFIGS
from repro.report.spec import Check, FigureSpec, row_count


def run(
    scale: Scale | str = Scale.DEFAULT, store=None, force=False
) -> ExperimentResult:
    # No simulation cells here — the store arguments exist so every
    # registry entry shares one call signature.
    del store, force
    scale = scale_of(scale)
    result = ExperimentResult(
        name="table1",
        title="Memory configurations for quantifying the memory wall",
        headers=[
            "config",
            "L1 time",
            "L1 size",
            "L2 time",
            "L2 size",
            "memory time",
        ],
        scale=scale,
    )
    with Stopwatch(result):
        for name, config in TABLE1_CONFIGS.items():
            hierarchy = MemoryHierarchy(config)  # validates the build
            result.rows.append(
                [
                    name,
                    config.l1_latency,
                    _size(config.l1_size),
                    config.l2_latency if config.l2_latency is not None else "-",
                    _size(config.l2_size) if config.l2_latency is not None else "-",
                    config.mem_latency if config.mem_latency is not None else "-",
                ]
            )
            result.notes.append(f"{name}: {hierarchy.describe()}")
    return result


def _size(size: int | None) -> str:
    if size is None:
        return "inf"
    return f"{size // 1024}KB"


#: Report spec: a configuration table (no chart); the structural check
#: pins the paper's six memory subsystems.
SPEC = FigureSpec(
    kind="table",
    caption="The six memory subsystems of the paper's memory-wall "
    "characterization, each validated by building a working hierarchy",
    checks=(
        Check(
            "memory configurations defined",
            6.0,
            row_count(),
            pass_rel=0.0,
            warn_rel=0.0,
            note="Table 1 lists six configurations, L1-2 through MEM-400",
        ),
    ),
)


if __name__ == "__main__":
    print(run().render())
