"""Figures 13 and 14 (and §4.5): LLIB instruction and register occupancy.

Runs the default D-KIP-2048 over every benchmark and reports the maximum
number of instructions and of LLRF registers simultaneously live in the
integer LLIB (Figure 13, SpecINT) and the floating-point LLIB (Figure 14,
SpecFP).

Paper findings: registers are always well below instructions (many LLIB
entries carry no READY operand); several SpecINT benchmarks fill the
2048-entry LLIB (load chains), while no SpecFP benchmark does; the paper
concludes an LLRF of ~1000 entries (average well under 500) suffices.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    INSTRUCTIONS,
    Scale,
    Stopwatch,
    WorkloadPool,
    run_core_cached,
    scale_of,
    suite_names,
)
from repro.report.spec import Check, FigureSpec, max_row_ratio, wide_rows_as_groups
from repro.sim.config import DKIP_2048
from repro.viz.ascii import bar_chart


def run(
    scale: Scale | str = Scale.DEFAULT, suite: str = "int", store=None, force=False
) -> ExperimentResult:
    scale = scale_of(scale)
    n = INSTRUCTIONS[scale]
    names = suite_names(suite, scale)
    pool = WorkloadPool()
    figure = "fig13" if suite == "int" else "fig14"
    llib = "integer" if suite == "int" else "floating-point"
    result = ExperimentResult(
        name=figure,
        title=f"Maximum number of registers and instructions in the "
        f"{llib} LLIB (Spec{suite.upper()})",
        headers=["benchmark", "max instructions", "max registers", "LLIB filled?"],
        scale=scale,
    )
    instr_chart: dict[str, float] = {}
    with Stopwatch(result):
        for bench in names:
            stats = run_core_cached(
                DKIP_2048, pool.get(bench), n, store=store, force=force
            )
            if suite == "int":
                max_instr = stats.llib_max_instructions_int
                max_regs = stats.llib_max_registers_int
            else:
                max_instr = stats.llib_max_instructions_fp
                max_regs = stats.llib_max_registers_fp
            filled = "yes" if max_instr >= DKIP_2048.llib_size else "no"
            result.rows.append([bench, max_instr, max_regs, filled])
            instr_chart[bench] = float(max_instr)
    result.charts.append(
        bar_chart(instr_chart, title=f"max {llib} LLIB instructions per benchmark")
    )
    regs = [row[2] for row in result.rows]
    instrs = [row[1] for row in result.rows]
    result.notes.append(
        f"register peak {max(regs)} vs instruction peak {max(instrs)} "
        "(paper: registers always below instructions; INT pressure > FP)"
    )
    return result


def _occupancy_spec(suite: str) -> FigureSpec:
    llib = "integer" if suite == "int" else "floating-point"
    return FigureSpec(
        kind="bars",
        caption=f"Peak instructions and LLRF registers simultaneously "
        f"live in the {llib} LLIB, per Spec{suite.upper()} benchmark",
        x_label="benchmark",
        y_label="peak LLIB entries",
        groups=wide_rows_as_groups(
            0, {"max instructions": 1, "max registers": 2}
        ),
        checks=(
            Check(
                "per-benchmark peak registers / peak instructions",
                1.0,
                max_row_ratio("max registers", "max instructions"),
                mode="at_most",
                warn_rel=0.05,
                note="paper: many LLIB entries carry no READY operand, so "
                "live registers always stay below live instructions",
            ),
        ),
    )


#: Report specs (Figure 13 = integer LLIB, Figure 14 = FP LLIB).
SPECS = {"fig13": _occupancy_spec("int"), "fig14": _occupancy_spec("fp")}


if __name__ == "__main__":
    print(run(suite="int").render())
    print()
    print(run(suite="fp").render())
