"""Shared experiment machinery: scales, suite runners, result records."""

from __future__ import annotations

import csv
import enum
import os
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.memory import DEFAULT_MEMORY, MemoryConfig
from repro.sim.runner import MachineConfig, run_core
from repro.sim.stats import SimStats
from repro.viz.ascii import table
from repro.workloads import get_workload, SPECFP_NAMES, SPECINT_NAMES


class Scale(str, enum.Enum):
    """Experiment size presets."""

    QUICK = "quick"      # seconds; benchmark-harness and CI default
    DEFAULT = "default"  # the EXPERIMENTS.md record
    FULL = "full"        # longer traces, complete sweeps


#: Committed instructions simulated per benchmark at each scale.
INSTRUCTIONS = {
    Scale.QUICK: 4_000,
    Scale.DEFAULT: 10_000,
    Scale.FULL: 40_000,
}

#: Benchmark subsets used at quick scale (chosen to span the behaviour
#: space: cache-friendly, streaming, chasing, branchy).
QUICK_SUBSET = {
    "int": ("eon", "gcc", "mcf", "twolf", "vpr"),
    "fp": ("swim", "art", "apsi", "galgel", "wupwise"),
}


def scale_of(value: "Scale | str") -> Scale:
    return Scale(value)


def suite_names(which: str, scale: Scale) -> tuple[str, ...]:
    """Benchmark names of a suite at the given scale."""
    if scale == Scale.QUICK:
        return QUICK_SUBSET[which]
    return SPECINT_NAMES if which == "int" else SPECFP_NAMES


class WorkloadPool:
    """Caches workload instances so traces are generated once per run."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._cache: dict[str, object] = {}

    def get(self, name: str):
        workload = self._cache.get(name)
        if workload is None:
            workload = get_workload(name, seed=self.seed)
            self._cache[name] = workload
        return workload


def run_suite(
    config: MachineConfig,
    names: Sequence[str],
    num_instructions: int,
    pool: WorkloadPool,
    memory: MemoryConfig = DEFAULT_MEMORY,
) -> list[SimStats]:
    """Simulate every named benchmark on *config*; returns per-run stats."""
    return [
        run_core(config, pool.get(name), num_instructions, memory=memory)
        for name in names
    ]


def mean_ipc(stats: Sequence[SimStats]) -> float:
    """Arithmetic-mean IPC, the aggregation the paper's figures use."""
    if not stats:
        return 0.0
    return sum(s.ipc for s in stats) / len(stats)


@dataclass
class ExperimentResult:
    """Everything one harness produces."""

    name: str
    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    charts: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    scale: Scale = Scale.DEFAULT

    def render(self) -> str:
        parts = [
            table(self.headers, self.rows, title=f"{self.name}: {self.title} "
                  f"[scale={self.scale.value}, {self.elapsed_seconds:.1f}s]")
        ]
        parts.extend(self.charts)
        if self.notes:
            parts.append("notes:")
            parts.extend(f"  - {note}" for note in self.notes)
        return "\n\n".join(parts)

    def write_csv(self, directory: str) -> str:
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.name}.csv")
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.headers)
            writer.writerows(self.rows)
        return path


class Stopwatch:
    """Context manager stamping ``elapsed_seconds`` onto a result."""

    def __init__(self, result: ExperimentResult) -> None:
        self.result = result

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.result.elapsed_seconds = time.perf_counter() - self._start
