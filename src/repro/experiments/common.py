"""Shared experiment machinery: scales, suite runners, result records.

Three pieces keep the figure sweeps fast:

* :func:`run_suite` / :func:`run_many` fan simulations out over a process
  pool — one worker task per (machine config, workload) pair — sized by
  the ``REPRO_JOBS`` environment variable (default: the machine's CPU
  count).  Results always come back in input order, so harness tables are
  bit-identical to the serial path.
* :class:`WarmupCache` runs the functional cache warm-up once per
  (memory config, workload) and hands out snapshot-restored hierarchies,
  instead of re-streaming the working set for every swept parameter.
* A :class:`repro.store.ResultStore` (the ``store=`` argument) is
  consulted before any cell is dispatched and written back as each cell
  completes, so repeated sweeps cost only the delta and an interrupted
  sweep resumes from the cells already on disk.
"""

from __future__ import annotations

import csv
import enum
import functools
import itertools
import json
import os
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.memory import DEFAULT_MEMORY, MemoryConfig, MemoryHierarchy, warm_caches
from repro.resilience import (
    RETRYABLE,
    CellExecutionError,
    CellFailure,
    ExecutionPolicy,
    FailureReport,
    ResilientExecutor,
    active_policy,
    active_report,
    cell_label,
    classify_exception,
    plan_from_env,
    run_attempts,
)
from repro.sim.batch import BatchRunner
from repro.sim.runner import MachineConfig, run_core, simulate
from repro.sim.stats import SimStats
from repro.store import CellKey, ResultStore, cell_key, from_jsonable
from repro.viz.ascii import table
from repro.workloads import get_workload, SPECFP_NAMES, SPECINT_NAMES


class Scale(str, enum.Enum):
    """Experiment size presets."""

    QUICK = "quick"      # seconds; benchmark-harness and CI default
    DEFAULT = "default"  # the EXPERIMENTS.md record
    FULL = "full"        # longer traces, complete sweeps


#: Committed instructions simulated per benchmark at each scale.
INSTRUCTIONS = {
    Scale.QUICK: 4_000,
    Scale.DEFAULT: 10_000,
    Scale.FULL: 40_000,
}

#: Benchmark subsets used at quick scale (chosen to span the behaviour
#: space: cache-friendly, streaming, chasing, branchy).
QUICK_SUBSET = {
    "int": ("eon", "gcc", "mcf", "twolf", "vpr"),
    "fp": ("swim", "art", "apsi", "galgel", "wupwise"),
}


def scale_of(value: "Scale | str") -> Scale:
    """Coerce a CLI string or :class:`Scale` member to a :class:`Scale`."""
    return Scale(value)


def suite_names(which: str, scale: Scale) -> tuple[str, ...]:
    """Benchmark names of a suite at the given scale."""
    if scale == Scale.QUICK:
        return QUICK_SUBSET[which]
    return SPECINT_NAMES if which == "int" else SPECFP_NAMES


class WorkloadPool:
    """Caches workload instances so traces are generated once per run."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._cache: dict[str, object] = {}

    def get(self, name: str):
        """Return the cached workload named *name*, materializing it once."""
        workload = self._cache.get(name)
        if workload is None:
            workload = get_workload(name, seed=self.seed)
            self._cache[name] = workload
        return workload


class WarmupCache:
    """Caches warmed-hierarchy snapshots keyed by (memory config, workload).

    The functional warm-up streams a workload's whole data region through
    the hierarchy; sweeps re-run it for every swept parameter even though
    the resulting cache state only depends on the memory configuration and
    the workload.  This cache warms once and restores a snapshot for every
    later request.  Only useful on the serial path — pool workers live in
    other processes and warm for themselves.
    """

    def __init__(self, passes: int = 1) -> None:
        self.passes = passes
        self._snapshots: dict[tuple, dict] = {}
        self.hits = 0
        self.misses = 0

    def hierarchy_for(self, memory: MemoryConfig, workload) -> MemoryHierarchy:
        """A hierarchy warmed for *workload*, restored from cache if seen."""
        hierarchy = MemoryHierarchy(memory)
        hierarchy.restore(self.snapshot_for(memory, workload))
        return hierarchy

    def snapshot_for(self, memory: MemoryConfig, workload) -> dict:
        """The warmed snapshot for (memory, workload), warming on first use.

        Also used directly by the process-pool path: snapshots are
        picklable, so the parent warms once and ships the state to workers
        in the task tuple instead of every worker re-streaming the working
        set.
        """
        key = (memory, workload.name, workload.seed)
        snapshot = self._snapshots.get(key)
        if snapshot is None:
            self.misses += 1
            hierarchy = MemoryHierarchy(memory)
            if workload.regions:
                warm_caches(hierarchy, workload.regions, passes=self.passes)
            snapshot = hierarchy.snapshot()
            self._snapshots[key] = snapshot
        else:
            self.hits += 1
        return snapshot


# ----------------------------------------------------------------------
# Suite runners (serial or process-pool)
# ----------------------------------------------------------------------


def resolve_jobs(jobs: int | None, num_tasks: int) -> int:
    """Worker-count policy: explicit argument > ``REPRO_JOBS`` > CPU count,
    never more workers than tasks."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer worker count, got {env!r}"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    return max(1, min(jobs, num_tasks))


def resolve_batch(batch: int | None) -> int:
    """Batch-size policy: explicit argument > ``REPRO_BATCH`` > 1 (off).

    A batch of N makes N cells one unit of dispatch: one worker steps
    them round-robin through :class:`repro.sim.batch.BatchRunner`,
    amortizing process dispatch, trace decode and warm-up across the
    batch.  Cells still persist and retry individually by fingerprint.
    """
    if batch is None:
        env = os.environ.get("REPRO_BATCH", "").strip()
        if env:
            try:
                batch = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_BATCH must be an integer batch size, got {env!r}"
                ) from None
        else:
            batch = 1
    return max(1, batch)


@functools.lru_cache(maxsize=None)
def _worker_workload(name: str, seed: int):
    """Per-process workload memo: pool processes persist across map items,
    so each worker materializes a given (name, seed) workload — and hence
    its deterministic trace — once, no matter how many configs reuse it."""
    return get_workload(name, seed=seed)


def _run_pair(task) -> SimStats:
    """Pool worker: simulate one (config, workload, memory) cell.

    Module-level (picklable) and self-contained: the workload is rebuilt
    from its name and seed inside the worker, so only small config objects
    (plus, optionally, a pre-warmed cache snapshot) cross the process
    boundary.
    """
    config, name, num_instructions, memory, seed, snapshot, max_cycles = task
    workload = _worker_workload(name, seed)
    if snapshot is None:
        return run_core(
            config, workload, num_instructions, memory=memory, max_cycles=max_cycles
        )
    hierarchy = MemoryHierarchy(memory)
    hierarchy.restore(snapshot)
    stats = simulate(
        config,
        workload.trace(num_instructions),
        memory=memory,
        hierarchy=hierarchy,
        max_cycles=max_cycles,
    )
    stats.workload = workload.name
    return stats


#: Worker-process warm-up cache shared by every batch the worker runs.
#: Parent-side snapshots (shipped in the task tuple) take priority; this
#: covers the no-store-snapshot path so a batch warms each (memory,
#: workload) pair once instead of once per cell.
_WORKER_WARM: WarmupCache | None = None


def _batch_hierarchy(memory: MemoryConfig, workload, snapshot) -> MemoryHierarchy:
    """A warmed hierarchy for one batch cell, preferring the shipped
    snapshot and falling back to the worker-local warm-up cache."""
    global _WORKER_WARM
    if snapshot is None:
        if _WORKER_WARM is None:
            _WORKER_WARM = WarmupCache()
        snapshot = _WORKER_WARM.snapshot_for(memory, workload)
    hierarchy = MemoryHierarchy(memory)
    hierarchy.restore(snapshot)
    return hierarchy


def _run_batch(payload, attempt: int = 0):
    """Pool worker: run a batch of cells, streaming one partial per cell.

    *payload* is a list of ``(position, label, task)`` entries (task as
    in :func:`_run_pair`); the returned generator yields
    ``(position, ("ok", stats, None))`` or
    ``(position, ("error", None, failure_info))`` as each cell resolves,
    which :func:`repro.resilience.executor._worker_main` forwards as
    ``"partial"`` messages.  Per-cell fault injection happens at each
    cell's *completion* point with the cell's own label and the batch's
    dispatch attempt: ``transient``/``fail`` clauses take down only that
    cell, while a ``kill`` clause takes the worker — and the driver then
    requeues only the positions that have not streamed yet.
    """
    from repro.resilience.executor import _failure_info

    plan = plan_from_env()
    runner = BatchRunner()
    errors: list[tuple[int, dict]] = []
    labels = {}
    for position, label, task in payload:
        labels[position] = label
        config, name, num_instructions, memory, seed, snapshot, max_cycles = task
        try:
            workload = _worker_workload(name, seed)
            runner.add_simulation(
                position,
                config,
                workload.trace(num_instructions),
                hierarchy=_batch_hierarchy(memory, workload, snapshot),
                max_cycles=max_cycles,
                workload_name=workload.name,
            )
        except Exception as error:  # noqa: BLE001 - isolated per cell
            errors.append((position, _failure_info(error)))
    for position, info in errors:
        yield position, ("error", None, info)
    for position, outcome, value in runner.stream():
        if outcome == "ok" and plan is not None:
            try:
                plan.inject_cell(labels[position], attempt)
            except Exception as error:  # noqa: BLE001 - isolated per cell
                yield position, ("error", None, _failure_info(error))
                continue
        if outcome == "ok":
            yield position, ("ok", value, None)
        else:
            yield position, ("error", None, _failure_info(value))


#: The executor calls batch bodies with the dispatch attempt so injected
#: faults key to ``<cell label>#<attempt>`` exactly like single cells.
_run_batch.wants_attempt = True


def _prune_batch(payload, done: set):
    """Drop the batch entries whose positions already streamed a partial
    (the executor calls this when requeueing after a worker death)."""
    return [entry for entry in payload if entry[0] not in done]


def _make_task(
    config: MachineConfig,
    name: str,
    num_instructions: int,
    pool: WorkloadPool,
    memory: MemoryConfig,
    warm_cache: WarmupCache | None,
    max_cycles: int | None,
) -> tuple:
    """One pool-worker task tuple, warming the shared snapshot up front."""
    return (
        config,
        name,
        num_instructions,
        memory,
        pool.seed,
        None if warm_cache is None else warm_cache.snapshot_for(memory, pool.get(name)),
        max_cycles,
    )


def _handle_cell_error(
    index: int,
    label: str,
    kind: str,
    error: str,
    message: str,
    trace: str,
    policy: ExecutionPolicy,
    report: FailureReport,
    retry: list[int],
) -> None:
    """One batch cell failed: queue a retry or record the final failure.

    Mirrors :func:`repro.resilience.run_attempts`'s classification for
    cells that already ran once inside a batch — retryable failures go
    to *retry* for individual re-dispatch, permanent ones become a
    :class:`CellFailure` and count against the policy's failure budget.
    """
    if kind == RETRYABLE and policy.retries > 0:
        report.retries += 1
        retry.append(index)
        return
    failure = CellFailure(
        index=index, cell=label, kind=kind, error=error,
        message=message, traceback=trace, attempts=1, duration=0.0,
    )
    report.record(failure)
    budget = policy.max_failures
    if budget is not None and len(report.failures) > budget:
        raise CellExecutionError(failure, report)


def _run_cells_batched(
    cells,
    num_instructions: int,
    pool: WorkloadPool,
    jobs: int,
    warm_cache: WarmupCache | None,
    store: ResultStore | None,
    max_cycles: int | None,
    policy: ExecutionPolicy,
    report: FailureReport,
    labels: dict[int, str],
    results: list,
    keys: list,
    pending: list[int],
    batch_size: int,
) -> None:
    """Run *pending* cells in batches of *batch_size* (the tentpole path).

    Each batch is one unit of dispatch: in-process when no pool or
    deadline is needed, else one :class:`ResilientExecutor` task whose
    worker streams a partial message per finished cell.  Cells persist
    to *store* individually as their partials arrive — a killed worker
    requeues only the batch's unfinished fingerprints — and a cell that
    fails inside a healthy batch fails alone: retryable errors re-run
    individually after the batch round, permanent ones (``DeadlockError``)
    become per-cell failure records while the siblings' results stand.
    In pool mode the report's ``cells``/``completed`` counters count
    dispatch units (batches); failure records are always per cell.
    """
    chunks = [
        pending[start : start + batch_size]
        for start in range(0, len(pending), batch_size)
    ]
    retry: list[int] = []

    def complete(index: int, stats: SimStats) -> None:
        if store is not None:
            store.put(keys[index], stats)
        results[index] = stats

    if jobs <= 1 and policy.cell_timeout is None:
        # In-process: one BatchRunner per chunk, one shared WarmupCache
        # across every chunk (callers without a warm_cache still get the
        # per-(memory, workload) warm-up amortized batch-wide).
        shared_warm = warm_cache if warm_cache is not None else WarmupCache()
        for chunk in chunks:
            runner = BatchRunner()
            broken: list[tuple[int, Exception]] = []
            for index in chunk:
                report.cells += 1
                config, name, memory = cells[index]
                try:
                    workload = pool.get(name)
                    runner.add_simulation(
                        index,
                        config,
                        workload.trace(num_instructions),
                        hierarchy=shared_warm.hierarchy_for(memory, workload),
                        max_cycles=max_cycles,
                        workload_name=workload.name,
                    )
                except Exception as error:  # noqa: BLE001 - per-cell isolation
                    broken.append((index, error))
            outcomes = [(i, "error", err) for i, err in broken]
            for index, outcome, value in itertools.chain(
                outcomes, runner.stream()
            ):
                if outcome == "ok":
                    report.completed += 1
                    complete(index, value)
                else:
                    _handle_cell_error(
                        index, labels[index], classify_exception(value),
                        type(value).__name__, str(value), "", policy, report,
                        retry,
                    )
        for index in retry:
            config, name, memory = cells[index]

            def compute(config=config, name=name, memory=memory) -> SimStats:
                return run_core(
                    config,
                    pool.get(name),
                    num_instructions,
                    memory=memory,
                    warm_cache=shared_warm,
                    max_cycles=max_cycles,
                )

            stats = run_attempts(
                index, labels[index], compute, policy, report, count_cell=False
            )
            if stats is not None:
                complete(index, stats)
        return

    # Pool path: one executor task per chunk.  Batch labels carry only
    # positions so ``$REPRO_FAULT`` match clauses aimed at cells fire at
    # the per-cell injection points inside the worker, not per batch.
    tasks = []
    for batch_index, chunk in enumerate(chunks):
        payload = [
            (
                index,
                labels[index],
                _make_task(
                    cells[index][0], cells[index][1], num_instructions,
                    pool, cells[index][2], warm_cache, max_cycles,
                ),
            )
            for index in chunk
        ]
        tasks.append((batch_index, f"batch:{batch_index}(n={len(chunk)})", payload))

    def on_partial(_batch_index: int, position: int, value) -> None:
        status, stats, info = value
        if status == "ok":
            complete(position, stats)
        else:
            _handle_cell_error(
                position, labels[position], info["kind"], info["error"],
                info["message"], info.get("traceback", ""), policy, report,
                retry,
            )

    executor = ResilientExecutor(
        _run_batch, min(jobs, len(tasks)), policy, report, prune=_prune_batch
    )
    executor.run(tasks, on_partial=on_partial)
    if retry:
        retry_tasks = [
            (
                index,
                labels[index],
                _make_task(
                    cells[index][0], cells[index][1], num_instructions,
                    pool, cells[index][2], warm_cache, max_cycles,
                ),
            )
            for index in retry
        ]
        singles = ResilientExecutor(
            _run_pair, min(jobs, len(retry_tasks)), policy, report
        )
        singles.run(retry_tasks, complete)


def run_cells(
    cells: Sequence[tuple[MachineConfig, str, MemoryConfig]],
    num_instructions: int,
    pool: WorkloadPool,
    jobs: int | None = None,
    warm_cache: WarmupCache | None = None,
    store: ResultStore | None = None,
    force: bool = False,
    max_cycles: int | None = None,
    policy: ExecutionPolicy | None = None,
    report: FailureReport | None = None,
    batch: int | None = None,
) -> list[SimStats | None]:
    """Run every (config, benchmark, memory) cell, store-first, in order.

    The fully general grid runner — machines of any registered kind
    (including the limit core) and a different memory system per cell.
    Cached cells never dispatch; missing cells run serially or on the
    supervised pool (:class:`repro.resilience.ResilientExecutor`) and
    persist to *store* as each one completes — that per-cell write-back
    is what makes a killed sweep resumable, and what makes retried
    cells idempotent (the fingerprint is the ledger).

    *policy* and *report* default to the ambient resilience context
    (:func:`repro.resilience.resilience_context`); without one, the
    strict policy applies — supervision on, but the first permanent
    failure raises :class:`repro.resilience.CellExecutionError` naming
    the offending cell.  Under a tolerant policy, failed cells come
    back as ``None`` and their typed failure records land in *report*.

    *batch* (default: ``$REPRO_BATCH``, else 1) groups that many cells
    into one dispatch unit stepped round-robin by a
    :class:`repro.sim.batch.BatchRunner`; per-cell results are
    bit-identical to unbatched runs and still store/retry individually.
    """
    results: list[SimStats | None] = [None] * len(cells)
    keys: list[CellKey | None] = [None] * len(cells)
    if store is not None:
        for i, (config, name, memory) in enumerate(cells):
            keys[i] = cell_key(config, pool.get(name), num_instructions, memory)
            if not force:
                results[i] = store.get(keys[i])
    pending = [i for i, cached in enumerate(results) if cached is None]
    if not pending:
        return results
    if policy is None:
        policy = active_policy()
    if report is None:
        report = active_report()
        if report is None:
            report = FailureReport()
    labels = {i: cell_label(*cells[i]) for i in pending}
    jobs = resolve_jobs(jobs, len(pending))
    batch_size = resolve_batch(batch)
    if batch_size > 1:
        # Batched dispatch (REPRO_BATCH or the ``batch`` argument): N
        # cells per worker turn through one BatchRunner sweep; results
        # still stream back — and persist — one fingerprint at a time.
        _run_cells_batched(
            cells, num_instructions, pool, jobs, warm_cache, store,
            max_cycles, policy, report, labels, results, keys, pending,
            batch_size,
        )
        return results
    if jobs <= 1 and policy.cell_timeout is None:
        for i in pending:
            config, name, memory = cells[i]

            def compute(config=config, name=name, memory=memory) -> SimStats:
                return run_core(
                    config,
                    pool.get(name),
                    num_instructions,
                    memory=memory,
                    warm_cache=warm_cache,
                    max_cycles=max_cycles,
                )

            stats = run_attempts(i, labels[i], compute, policy, report)
            if stats is not None:
                if store is not None:
                    store.put(keys[i], stats)
                results[i] = stats
        return results
    # Parallel path: warm once in the parent and ship snapshots to the
    # workers so the warm-up hoisting survives the fan-out.  The
    # supervised executor enforces deadlines, retries retryable
    # failures, and respawns dead workers, requeueing only their cells.
    tasks = [
        (
            i,
            labels[i],
            _make_task(
                cells[i][0],
                cells[i][1],
                num_instructions,
                pool,
                cells[i][2],
                warm_cache,
                max_cycles,
            ),
        )
        for i in pending
    ]

    def on_result(i: int, stats: SimStats) -> None:
        if store is not None:
            store.put(keys[i], stats)
        results[i] = stats

    executor = ResilientExecutor(_run_pair, jobs, policy, report)
    executor.run(tasks, on_result)
    return results


def run_suite(
    config: MachineConfig,
    names: Sequence[str],
    num_instructions: int,
    pool: WorkloadPool,
    memory: MemoryConfig = DEFAULT_MEMORY,
    jobs: int | None = None,
    warm_cache: WarmupCache | None = None,
    store: ResultStore | None = None,
    force: bool = False,
    max_cycles: int | None = None,
) -> list[SimStats]:
    """Simulate every named benchmark on *config*; returns per-run stats
    in the order of *names* regardless of worker scheduling."""
    cells = [(config, name, memory) for name in names]
    return run_cells(
        cells, num_instructions, pool, jobs, warm_cache, store, force, max_cycles
    )


def run_many(
    configs: Sequence[MachineConfig],
    names: Sequence[str],
    num_instructions: int,
    pool: WorkloadPool,
    memory: MemoryConfig = DEFAULT_MEMORY,
    jobs: int | None = None,
    warm_cache: WarmupCache | None = None,
    store: ResultStore | None = None,
    force: bool = False,
    max_cycles: int | None = None,
) -> list[list[SimStats]]:
    """Fan the full (config x workload) grid out over one process pool.

    Returns one list of per-workload stats per config, in input order —
    the same shape as calling :func:`run_suite` once per config, but with
    every pair in flight at once.
    """
    cells = [(config, name, memory) for config in configs for name in names]
    flat = run_cells(
        cells, num_instructions, pool, jobs, warm_cache, store, force, max_cycles
    )
    stride = len(names)
    return [flat[i * stride : (i + 1) * stride] for i in range(len(configs))]


def _cached_cell(store, force, key, compute) -> SimStats:
    """The store-first pattern every single-cell runner shares: consult
    *store* under *key* unless forced, else *compute* and write back."""
    if store is None:
        return compute()
    if not force:
        cached = store.get(key)
        if cached is not None:
            return cached
    stats = compute()
    store.put(key, stats)
    return stats


def run_core_cached(
    config: MachineConfig,
    workload,
    num_instructions: int,
    memory: MemoryConfig = DEFAULT_MEMORY,
    predictor_name: str | None = None,
    warm_cache: WarmupCache | None = None,
    store: ResultStore | None = None,
    force: bool = False,
) -> SimStats:
    """Store-aware :func:`repro.sim.runner.run_core` for single cells."""
    key = None
    if store is not None:
        key = cell_key(
            config, workload, num_instructions, memory, predictor=predictor_name
        )
    return _cached_cell(
        store,
        force,
        key,
        lambda: run_core(
            config,
            workload,
            num_instructions,
            memory=memory,
            predictor_name=predictor_name,
            warm_cache=warm_cache,
        ),
    )


def run_snapshot_cell(
    machine: MachineConfig,
    workload,
    num_instructions: int,
    memory: MemoryConfig = DEFAULT_MEMORY,
    snapshot_factory=None,
    store: ResultStore | None = None,
    force: bool = False,
) -> SimStats:
    """One store-aware cell with an externally shared warm-up snapshot.

    Works for any registered machine kind (Figures 1-3 use it for the
    limit core).  *snapshot_factory*, when given, supplies a
    warmed-hierarchy snapshot (typically shared across a window sweep);
    it is only invoked on a store miss, so fully cached benchmarks skip
    warm-up entirely.
    """
    def compute() -> SimStats:
        trace = workload.trace(num_instructions)
        hierarchy = MemoryHierarchy(memory)
        if snapshot_factory is not None:
            hierarchy.restore(snapshot_factory())
        else:
            warm_caches(hierarchy, workload.regions)
        stats = simulate(machine, trace, memory=memory, hierarchy=hierarchy)
        stats.workload = workload.name
        return stats

    key = None
    if store is not None:
        key = cell_key(machine, workload, num_instructions, memory)
    return _cached_cell(store, force, key, compute)


def compute_cell(payload: dict, max_cycles: int | None = None) -> SimStats:
    """Re-run one cell from its stored key payload (``cache verify``).

    Rebuilds the machine and memory configurations from their serialized
    form, re-materializes the workload, and replays the exact execution
    path the sweeps use, so the result must match the stored stats bit
    for bit unless simulator behaviour drifted under the fingerprint.
    Machine construction goes through the kind registry, so limit cells
    and cycle-level cells replay through one path.  *max_cycles* is the
    deadlock-guard bound (not part of the key — it cannot change a
    completed run's stats); service workers forward their job's bound.
    """
    machine = from_jsonable(payload["machine"])
    memory = from_jsonable(payload["memory"])
    spec = payload["workload"]
    workload = get_workload(spec["name"], seed=spec["seed"])
    if workload.fingerprint() != spec["fingerprint"]:
        raise ValueError(
            f"workload {spec['name']!r} fingerprint changed since this "
            "cell was stored (trace generator updated?)"
        )
    num_instructions = payload["instructions"]
    return run_core(
        machine,
        workload,
        num_instructions,
        memory=memory,
        predictor_name=payload.get("predictor"),
        max_cycles=max_cycles,
    )


def mean_ipc(stats: Sequence[SimStats | None]) -> float:
    """Arithmetic-mean IPC, the aggregation the paper's figures use.

    ``None`` entries — cells that failed under a tolerant execution
    policy — are skipped, so a partial grid still aggregates over its
    surviving cells instead of crashing.
    """
    present = [s for s in stats if s is not None]
    if not present:
        return 0.0
    return sum(s.ipc for s in present) / len(present)


def weighted_mean_ipc(
    stats: Sequence[SimStats | None], weights: Sequence[float]
) -> float:
    """Weighted-mean IPC — the SimPoint whole-program estimator.

    *weights* align positionally with *stats* (one per phase, summing to
    1 for a full selection).  ``None`` entries — cells that failed under
    a tolerant execution policy — are skipped and the surviving weights
    renormalized, mirroring :func:`mean_ipc`'s partial-grid behaviour.
    """
    present = [
        (weight, s) for weight, s in zip(weights, stats) if s is not None
    ]
    total = sum(weight for weight, _ in present)
    if not total:
        return 0.0
    return sum(weight * s.ipc for weight, s in present) / total


@dataclass
class ExperimentResult:
    """Everything one harness produces.

    The single currency between the experiment harnesses and every
    consumer: the CLI renders it as ASCII (:meth:`render`), the CSV/JSON
    exporters serialize it, and the reproduction report extracts chart
    series and verdict metrics from ``headers``/``rows`` through each
    experiment's :class:`repro.report.spec.FigureSpec`.
    """

    name: str
    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    charts: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    scale: Scale = Scale.DEFAULT

    def render(self) -> str:
        """Return the terminal rendering: table, ASCII charts, notes."""
        parts = [
            table(self.headers, self.rows, title=f"{self.name}: {self.title} "
                  f"[scale={self.scale.value}, {self.elapsed_seconds:.1f}s]")
        ]
        parts.extend(self.charts)
        if self.notes:
            parts.append("notes:")
            parts.extend(f"  - {note}" for note in self.notes)
        return "\n\n".join(parts)

    def write_csv(self, directory: str) -> str:
        """Write headers + rows as ``<directory>/<name>.csv``; return the path."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.name}.csv")
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.headers)
            writer.writerows(self.rows)
        return path

    def to_dict(self) -> dict:
        """JSON-serializable rendering; :meth:`from_dict` round-trips it."""
        return {
            "name": self.name,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
            "charts": list(self.charts),
            "elapsed_seconds": self.elapsed_seconds,
            "scale": self.scale.value,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output (JSON round-trip)."""
        return cls(
            name=data["name"],
            title=data["title"],
            headers=list(data["headers"]),
            rows=[list(row) for row in data["rows"]],
            notes=list(data.get("notes", [])),
            charts=list(data.get("charts", [])),
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
            scale=Scale(data.get("scale", Scale.DEFAULT.value)),
        )

    def write_json(self, directory: str) -> str:
        """Machine-readable export alongside :meth:`write_csv`."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.name}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")
        return path


class Stopwatch:
    """Context manager stamping ``elapsed_seconds`` onto a result."""

    def __init__(self, result: ExperimentResult) -> None:
        self.result = result

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.result.elapsed_seconds = time.perf_counter() - self._start
