"""Shared experiment machinery: scales, suite runners, result records.

Two pieces keep the figure sweeps fast:

* :func:`run_suite` / :func:`run_many` fan simulations out over a process
  pool — one worker task per (machine config, workload) pair — sized by
  the ``REPRO_JOBS`` environment variable (default: the machine's CPU
  count).  Results always come back in input order, so harness tables are
  bit-identical to the serial path.
* :class:`WarmupCache` runs the functional cache warm-up once per
  (memory config, workload) and hands out snapshot-restored hierarchies,
  instead of re-streaming the working set for every swept parameter.
"""

from __future__ import annotations

import csv
import enum
import functools
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.memory import DEFAULT_MEMORY, MemoryConfig, MemoryHierarchy, warm_caches
from repro.sim.runner import MachineConfig, run_core, simulate
from repro.sim.stats import SimStats
from repro.viz.ascii import table
from repro.workloads import get_workload, SPECFP_NAMES, SPECINT_NAMES


class Scale(str, enum.Enum):
    """Experiment size presets."""

    QUICK = "quick"      # seconds; benchmark-harness and CI default
    DEFAULT = "default"  # the EXPERIMENTS.md record
    FULL = "full"        # longer traces, complete sweeps


#: Committed instructions simulated per benchmark at each scale.
INSTRUCTIONS = {
    Scale.QUICK: 4_000,
    Scale.DEFAULT: 10_000,
    Scale.FULL: 40_000,
}

#: Benchmark subsets used at quick scale (chosen to span the behaviour
#: space: cache-friendly, streaming, chasing, branchy).
QUICK_SUBSET = {
    "int": ("eon", "gcc", "mcf", "twolf", "vpr"),
    "fp": ("swim", "art", "apsi", "galgel", "wupwise"),
}


def scale_of(value: "Scale | str") -> Scale:
    return Scale(value)


def suite_names(which: str, scale: Scale) -> tuple[str, ...]:
    """Benchmark names of a suite at the given scale."""
    if scale == Scale.QUICK:
        return QUICK_SUBSET[which]
    return SPECINT_NAMES if which == "int" else SPECFP_NAMES


class WorkloadPool:
    """Caches workload instances so traces are generated once per run."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._cache: dict[str, object] = {}

    def get(self, name: str):
        workload = self._cache.get(name)
        if workload is None:
            workload = get_workload(name, seed=self.seed)
            self._cache[name] = workload
        return workload


class WarmupCache:
    """Caches warmed-hierarchy snapshots keyed by (memory config, workload).

    The functional warm-up streams a workload's whole data region through
    the hierarchy; sweeps re-run it for every swept parameter even though
    the resulting cache state only depends on the memory configuration and
    the workload.  This cache warms once and restores a snapshot for every
    later request.  Only useful on the serial path — pool workers live in
    other processes and warm for themselves.
    """

    def __init__(self, passes: int = 1) -> None:
        self.passes = passes
        self._snapshots: dict[tuple, dict] = {}
        self.hits = 0
        self.misses = 0

    def hierarchy_for(self, memory: MemoryConfig, workload) -> MemoryHierarchy:
        """A hierarchy warmed for *workload*, restored from cache if seen."""
        hierarchy = MemoryHierarchy(memory)
        hierarchy.restore(self.snapshot_for(memory, workload))
        return hierarchy

    def snapshot_for(self, memory: MemoryConfig, workload) -> dict:
        """The warmed snapshot for (memory, workload), warming on first use.

        Also used directly by the process-pool path: snapshots are
        picklable, so the parent warms once and ships the state to workers
        in the task tuple instead of every worker re-streaming the working
        set.
        """
        key = (memory, workload.name, workload.seed)
        snapshot = self._snapshots.get(key)
        if snapshot is None:
            self.misses += 1
            hierarchy = MemoryHierarchy(memory)
            if workload.regions:
                warm_caches(hierarchy, workload.regions, passes=self.passes)
            snapshot = hierarchy.snapshot()
            self._snapshots[key] = snapshot
        else:
            self.hits += 1
        return snapshot


# ----------------------------------------------------------------------
# Suite runners (serial or process-pool)
# ----------------------------------------------------------------------


def resolve_jobs(jobs: int | None, num_tasks: int) -> int:
    """Worker-count policy: explicit argument > ``REPRO_JOBS`` > CPU count,
    never more workers than tasks."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer worker count, got {env!r}"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    return max(1, min(jobs, num_tasks))


@functools.lru_cache(maxsize=None)
def _worker_workload(name: str, seed: int):
    """Per-process workload memo: pool processes persist across map items,
    so each worker materializes a given (name, seed) workload — and hence
    its deterministic trace — once, no matter how many configs reuse it."""
    return get_workload(name, seed=seed)


def _run_pair(task) -> SimStats:
    """Pool worker: simulate one (config, workload) pair.

    Module-level (picklable) and self-contained: the workload is rebuilt
    from its name and seed inside the worker, so only small config objects
    (plus, optionally, a pre-warmed cache snapshot) cross the process
    boundary.
    """
    config, name, num_instructions, memory, seed, snapshot = task
    workload = _worker_workload(name, seed)
    if snapshot is None:
        return run_core(config, workload, num_instructions, memory=memory)
    hierarchy = MemoryHierarchy(memory)
    hierarchy.restore(snapshot)
    stats = simulate(
        config, workload.trace(num_instructions), memory=memory, hierarchy=hierarchy
    )
    stats.workload = workload.name
    return stats


def _make_tasks(
    config: MachineConfig,
    names: Sequence[str],
    num_instructions: int,
    pool: WorkloadPool,
    memory: MemoryConfig,
    warm_cache: WarmupCache | None,
) -> list[tuple]:
    """Build pool-worker task tuples, warming shared snapshots up front."""
    return [
        (
            config,
            name,
            num_instructions,
            memory,
            pool.seed,
            None
            if warm_cache is None
            else warm_cache.snapshot_for(memory, pool.get(name)),
        )
        for name in names
    ]


def run_suite(
    config: MachineConfig,
    names: Sequence[str],
    num_instructions: int,
    pool: WorkloadPool,
    memory: MemoryConfig = DEFAULT_MEMORY,
    jobs: int | None = None,
    warm_cache: WarmupCache | None = None,
) -> list[SimStats]:
    """Simulate every named benchmark on *config*; returns per-run stats
    in the order of *names* regardless of worker scheduling."""
    jobs = resolve_jobs(jobs, len(names))
    if jobs <= 1:
        return [
            run_core(
                config,
                pool.get(name),
                num_instructions,
                memory=memory,
                warm_cache=warm_cache,
            )
            for name in names
        ]
    # Parallel path: warm once in the parent and ship snapshots to the
    # workers so the warm-up hoisting survives the fan-out.
    tasks = _make_tasks(config, names, num_instructions, pool, memory, warm_cache)
    with multiprocessing.Pool(processes=jobs) as workers:
        return workers.map(_run_pair, tasks)


def run_many(
    configs: Sequence[MachineConfig],
    names: Sequence[str],
    num_instructions: int,
    pool: WorkloadPool,
    memory: MemoryConfig = DEFAULT_MEMORY,
    jobs: int | None = None,
    warm_cache: WarmupCache | None = None,
) -> list[list[SimStats]]:
    """Fan the full (config x workload) grid out over one process pool.

    Returns one list of per-workload stats per config, in input order —
    the same shape as calling :func:`run_suite` once per config, but with
    every pair in flight at once.
    """
    jobs = resolve_jobs(jobs, len(configs) * len(names))
    if jobs <= 1:
        return [
            run_suite(
                config,
                names,
                num_instructions,
                pool,
                memory=memory,
                jobs=1,
                warm_cache=warm_cache,
            )
            for config in configs
        ]
    tasks = [
        task
        for config in configs
        for task in _make_tasks(
            config, names, num_instructions, pool, memory, warm_cache
        )
    ]
    with multiprocessing.Pool(processes=jobs) as workers:
        results = workers.map(_run_pair, tasks)
    stride = len(names)
    return [results[i * stride : (i + 1) * stride] for i in range(len(configs))]


def mean_ipc(stats: Sequence[SimStats]) -> float:
    """Arithmetic-mean IPC, the aggregation the paper's figures use."""
    if not stats:
        return 0.0
    return sum(s.ipc for s in stats) / len(stats)


@dataclass
class ExperimentResult:
    """Everything one harness produces."""

    name: str
    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    charts: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    scale: Scale = Scale.DEFAULT

    def render(self) -> str:
        parts = [
            table(self.headers, self.rows, title=f"{self.name}: {self.title} "
                  f"[scale={self.scale.value}, {self.elapsed_seconds:.1f}s]")
        ]
        parts.extend(self.charts)
        if self.notes:
            parts.append("notes:")
            parts.extend(f"  - {note}" for note in self.notes)
        return "\n\n".join(parts)

    def write_csv(self, directory: str) -> str:
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.name}.csv")
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.headers)
            writer.writerows(self.rows)
        return path


class Stopwatch:
    """Context manager stamping ``elapsed_seconds`` onto a result."""

    def __init__(self, result: ExperimentResult) -> None:
        self.result = result

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.result.elapsed_seconds = time.perf_counter() - self._start
