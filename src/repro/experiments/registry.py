"""Experiment registry: the CLI, report builder and benchmarks look up here.

Each entry is an :class:`Experiment` record binding a name to its runner,
a one-line description, the paper table/figure it reproduces, and the
:class:`~repro.report.spec.FigureSpec` the reproduction report renders it
with.  ``EXPERIMENTS`` (name → runner) and :func:`get_experiment` keep
the original callable-based surface for callers that only run things.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments import (
    ablations,
    contention,
    fig01_02_window,
    fig03_locality,
    fig09_comparison,
    fig10_scheduling,
    fig11_12_cache,
    fig13_14_occupancy,
    simpoint_sampling,
    table1,
)
from repro.experiments.common import ExperimentResult, Scale
from repro.report.spec import FigureSpec


@dataclass(frozen=True)
class Experiment:
    """One registered table/figure/ablation regeneration."""

    name: str
    run: Callable[..., ExperimentResult]
    description: str
    paper: str  #: the paper table/figure this reproduces, or a study label
    spec: FigureSpec | None = None


def _fig1(scale=Scale.DEFAULT, **kw):
    return fig01_02_window.run(scale, suite="int", **kw)


def _fig2(scale=Scale.DEFAULT, **kw):
    return fig01_02_window.run(scale, suite="fp", **kw)


def _fig10(scale=Scale.DEFAULT, **kw):
    return fig10_scheduling.run(scale, suite="fp", **kw)


def _fig10int(scale=Scale.DEFAULT, **kw):
    return fig10_scheduling.run(scale, suite="int", **kw)


def _fig11(scale=Scale.DEFAULT, **kw):
    return fig11_12_cache.run(scale, suite="int", **kw)


def _fig12(scale=Scale.DEFAULT, **kw):
    return fig11_12_cache.run(scale, suite="fp", **kw)


def _fig13(scale=Scale.DEFAULT, **kw):
    return fig13_14_occupancy.run(scale, suite="int", **kw)


def _fig14(scale=Scale.DEFAULT, **kw):
    return fig13_14_occupancy.run(scale, suite="fp", **kw)


#: name -> full experiment record, in report/document order.
REGISTRY: dict[str, Experiment] = {
    e.name: e
    for e in (
        Experiment(
            "table1",
            table1.run,
            "The six memory subsystems of the memory-wall characterization",
            "Table 1",
            table1.SPEC,
        ),
        Experiment(
            "fig1",
            _fig1,
            "SpecINT IPC vs instruction-window size under six memory systems",
            "Figure 1",
            fig01_02_window.SPECS["fig1"],
        ),
        Experiment(
            "fig2",
            _fig2,
            "SpecFP IPC vs instruction-window size under six memory systems",
            "Figure 2",
            fig01_02_window.SPECS["fig2"],
        ),
        Experiment(
            "fig3",
            fig03_locality.run,
            "Decode→issue distance distribution — execution locality",
            "Figure 3",
            fig03_locality.SPEC,
        ),
        Experiment(
            "fig9",
            fig09_comparison.run,
            "Headline IPC comparison: R10-64/256, KILO-1024, D-KIP-2048",
            "Figure 9",
            fig09_comparison.SPEC,
        ),
        Experiment(
            "fig10",
            _fig10,
            "CP/MP scheduler policy and queue-size sweep on SpecFP",
            "Figure 10",
            fig10_scheduling.SPECS["fig10"],
        ),
        Experiment(
            "fig10int",
            _fig10int,
            "CP/MP scheduler policy and queue-size sweep on SpecINT",
            "§4.3 (text)",
            fig10_scheduling.SPECS["fig10int"],
        ),
        Experiment(
            "fig11",
            _fig11,
            "L2 cache-size sweep on SpecINT",
            "Figure 11",
            fig11_12_cache.SPECS["fig11"],
        ),
        Experiment(
            "fig12",
            _fig12,
            "L2 cache-size sweep on SpecFP",
            "Figure 12",
            fig11_12_cache.SPECS["fig12"],
        ),
        Experiment(
            "fig13",
            _fig13,
            "Integer LLIB instruction and register occupancy",
            "Figure 13",
            fig13_14_occupancy.SPECS["fig13"],
        ),
        Experiment(
            "fig14",
            _fig14,
            "Floating-point LLIB instruction and register occupancy",
            "Figure 14",
            fig13_14_occupancy.SPECS["fig14"],
        ),
        Experiment(
            "sampling",
            simpoint_sampling.run,
            "SimPoint weighted-phase estimate vs full-trace IPC",
            "methodology (§5: SimPoint samples)",
            simpoint_sampling.SPEC,
        ),
        Experiment(
            "contention",
            contention.run,
            "Shared-L2 contention: co-runner x predictor axes (dual kind)",
            "extension (Figs. 11/12 methodology)",
            contention.SPEC,
        ),
        # Ablations (not paper figures; design-choice studies).
        Experiment(
            "ablation-timer",
            ablations.run_timer,
            "Aging-ROB timer sweep (the paper picks 16 cycles)",
            "design study",
            ablations.SPECS["ablation-timer"],
        ),
        Experiment(
            "ablation-llib",
            ablations.run_llib_size,
            "LLIB capacity sweep — when do fill-up stalls vanish?",
            "design study",
            ablations.SPECS["ablation-llib"],
        ),
        Experiment(
            "ablation-predictor",
            ablations.run_predictor,
            "Branch predictor ablation (Table 2 uses the perceptron)",
            "design study",
            ablations.SPECS["ablation-predictor"],
        ),
        Experiment(
            "ablation-runahead",
            ablations.run_runahead,
            "Runahead execution vs the KILO-class machines",
            "design study",
            ablations.SPECS["ablation-runahead"],
        ),
    )
}

#: name -> callable(scale, store=..., force=...) — the original runner
#: surface; extra keyword arguments pass through to the harness.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    name: experiment.run for name, experiment in REGISTRY.items()
}


def get_experiment(name: str) -> Callable[..., ExperimentResult]:
    """The runner registered under *name* (raises ``ValueError`` if absent)."""
    return get_info(name).run


def get_info(name: str) -> Experiment:
    """The full :class:`Experiment` record registered under *name*."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; available: {', '.join(REGISTRY)}"
        ) from None
