"""Experiment registry: the CLI and the benchmark harness look up here."""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    ablations,
    fig01_02_window,
    fig03_locality,
    fig09_comparison,
    fig10_scheduling,
    fig11_12_cache,
    fig13_14_occupancy,
    table1,
)
from repro.experiments.common import ExperimentResult, Scale

#: name -> callable(scale, store=..., force=...) regenerating that
#: table/figure; extra keyword arguments pass through to the harness.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "fig1": lambda scale=Scale.DEFAULT, **kw: fig01_02_window.run(scale, suite="int", **kw),
    "fig2": lambda scale=Scale.DEFAULT, **kw: fig01_02_window.run(scale, suite="fp", **kw),
    "fig3": fig03_locality.run,
    "fig9": fig09_comparison.run,
    "fig10": lambda scale=Scale.DEFAULT, **kw: fig10_scheduling.run(scale, suite="fp", **kw),
    "fig10int": lambda scale=Scale.DEFAULT, **kw: fig10_scheduling.run(scale, suite="int", **kw),
    "fig11": lambda scale=Scale.DEFAULT, **kw: fig11_12_cache.run(scale, suite="int", **kw),
    "fig12": lambda scale=Scale.DEFAULT, **kw: fig11_12_cache.run(scale, suite="fp", **kw),
    "fig13": lambda scale=Scale.DEFAULT, **kw: fig13_14_occupancy.run(scale, suite="int", **kw),
    "fig14": lambda scale=Scale.DEFAULT, **kw: fig13_14_occupancy.run(scale, suite="fp", **kw),
    # Ablations (not paper figures; design-choice studies from DESIGN.md).
    "ablation-timer": ablations.run_timer,
    "ablation-llib": ablations.run_llib_size,
    "ablation-predictor": ablations.run_predictor,
    "ablation-runahead": ablations.run_runahead,
}


def get_experiment(name: str) -> Callable[..., ExperimentResult]:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; available: {', '.join(EXPERIMENTS)}"
        ) from None
