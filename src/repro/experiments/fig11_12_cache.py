"""Figures 11 and 12 (and §4.4): impact of the L2 cache size.

Sweeps the L2 from 64 KB to 4 MB for the R10-256 baseline and four D-KIP
configurations (INO/INO, OOO-20/INO, OOO-80/INO, OOO-80/OOO-40) on
SpecINT (Figure 11) and SpecFP (Figure 12).

Paper findings: SpecINT IPC climbs steadily with every doubling on every
machine; SpecFP on the D-KIP is remarkably cache-insensitive (≤ ~15-24%
across the whole sweep, vs 1.55x for R10-256), because the D-KIP
processes correct-path long-latency instructions without stalling.  §4.4
also reports the CP executes 67% → 77% of committed instructions as the
L2 grows from 64 KB to 4 MB; the harness reports the same split.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    INSTRUCTIONS,
    Scale,
    Stopwatch,
    WarmupCache,
    WorkloadPool,
    mean_ipc,
    run_suite,
    scale_of,
    suite_names,
)
from repro.machines import parse_machine
from repro.memory.configs import KB, MB, memory_config_for_l2_size
from repro.report.spec import Check, FigureSpec, cell, rows_as_series
from repro.viz.ascii import line_chart

SIZES_FULL = (64 * KB, 128 * KB, 256 * KB, 512 * KB, 1 * MB, 2 * MB, 4 * MB)
SIZES_DEFAULT = (64 * KB, 256 * KB, 512 * KB, 1 * MB, 4 * MB)
SIZES_QUICK = (64 * KB, 512 * KB, 4 * MB)

DKIP_CONFIGS = (("INO", "INO"), ("OOO-20", "INO"), ("OOO-80", "INO"), ("OOO-80", "OOO-40"))


def _machines(scale: Scale):
    machines = [("R10-256", parse_machine("R10-256"))]
    configs = DKIP_CONFIGS if scale != Scale.QUICK else (DKIP_CONFIGS[0], DKIP_CONFIGS[-1])
    for cp, mp in configs:
        machines.append((f"{cp}/{mp}", parse_machine(f"dkip(cp={cp},mp={mp})")))
    return machines


def run(
    scale: Scale | str = Scale.DEFAULT, suite: str = "fp", store=None, force=False
) -> ExperimentResult:
    scale = scale_of(scale)
    n = INSTRUCTIONS[scale]
    if scale == Scale.QUICK:
        sizes = SIZES_QUICK
    elif scale == Scale.FULL:
        sizes = SIZES_FULL
    else:
        sizes = SIZES_DEFAULT
    names = suite_names(suite, scale)
    pool = WorkloadPool()
    figure = "fig11" if suite == "int" else "fig12"
    result = ExperimentResult(
        name=figure,
        title=f"Impact of L2 cache size on Spec{suite.upper()}",
        headers=["machine", *[_size_label(s) for s in sizes], "sweep gain", "CP% 64K→4M"],
        scale=scale,
    )
    series: dict[str, list[tuple[float, float]]] = {}
    # Every machine re-runs the same (L2 size, workload) warm-up; warm once
    # per pair and restore snapshots for the other machines.
    warm_cache = WarmupCache()
    with Stopwatch(result):
        for label, machine in _machines(scale):
            row: list[object] = [label]
            first = last = None
            cp_fractions = []
            for size in sizes:
                memory = memory_config_for_l2_size(size)
                stats = run_suite(
                    machine, names, n, pool, memory=memory, warm_cache=warm_cache,
                    store=store, force=force,
                )
                ipc = mean_ipc(stats)
                fractions = [s.cp_fraction for s in stats if s.committed_mp or s.committed_cp]
                cp_fractions.append(sum(fractions) / len(fractions) if fractions else 1.0)
                if first is None:
                    first = ipc
                last = ipc
                row.append(round(ipc, 3))
                series.setdefault(label, []).append((size // KB, ipc))
            row.append(f"{last / first:.2f}x" if first else "-")
            if label == "R10-256":
                row.append("-")
            else:
                row.append(f"{cp_fractions[0] * 100:.0f}%→{cp_fractions[-1] * 100:.0f}%")
            result.rows.append(row)
    result.charts.append(
        line_chart(series, title=f"IPC vs L2 size (KB, log2) — Spec{suite.upper()}", logx=True)
    )
    if suite == "fp":
        result.notes.append(
            "Paper: R10-256 speeds up 1.55x across the sweep while the most "
            "aggressive D-KIP sees only 1.18x; CP share grows 67%→77%."
        )
    else:
        result.notes.append(
            "Paper: near-linear IPC growth per L2 doubling for every machine "
            "on SpecINT, D-KIP behaving like the conventional core."
        )
    return result


def _size_label(size: int) -> str:
    return f"{size // MB}MB" if size >= MB else f"{size // KB}KB"


def _cache_spec(suite: str, checks: tuple[Check, ...]) -> FigureSpec:
    return FigureSpec(
        kind="line",
        caption=f"Mean Spec{suite.upper()} IPC vs L2 capacity for the "
        "R10-256 baseline and the D-KIP CP/MP configurations",
        x_label="L2 size (KB)",
        y_label="mean IPC",
        logx=True,
        series=rows_as_series(),
        checks=checks,
    )


#: Report specs.  Figure 12 (SpecFP) carries the paper's stated numbers:
#: cache sensitivity of the baseline vs near-insensitivity of the D-KIP,
#: plus the §4.4 CP-share growth.  Figure 11 (SpecINT) is qualitative —
#: every machine should climb with each L2 doubling.
SPECS = {
    "fig11": _cache_spec(
        "int",
        (
            Check(
                "R10-256 IPC gain across the L2 sweep",
                1.15,
                cell("sweep gain", machine="R10-256"),
                mode="at_least",
                note="paper: SpecINT IPC climbs steadily with every "
                "doubling on every machine (no absolute number stated)",
            ),
            Check(
                "aggressive D-KIP (OOO-80/OOO-40) gain across the sweep",
                1.10,
                cell("sweep gain", machine="OOO-80/OOO-40"),
                mode="at_least",
                note="paper: on SpecINT the D-KIP behaves like the "
                "conventional core",
            ),
        ),
    ),
    "fig12": _cache_spec(
        "fp",
        (
            Check(
                "R10-256 IPC gain across the L2 sweep",
                1.55,
                cell("sweep gain", machine="R10-256"),
                pass_rel=0.20,
                warn_rel=0.45,
                note="paper: the conventional core is strongly cache-"
                "sensitive on SpecFP",
            ),
            Check(
                "aggressive D-KIP (OOO-80/OOO-40) gain across the sweep",
                1.18,
                cell("sweep gain", machine="OOO-80/OOO-40"),
                pass_rel=0.20,
                warn_rel=0.45,
                note="paper: the D-KIP is remarkably cache-insensitive — "
                "long-latency instructions never stall the CP",
            ),
            Check(
                "CP share of committed instructions at 4MB",
                0.77,
                cell("CP% 64K→4M", pick="last", machine="OOO-80/OOO-40"),
                note="paper §4.4: the CP executes 67%→77% of commits as "
                "the L2 grows from 64KB to 4MB",
            ),
        ),
    ),
}


if __name__ == "__main__":
    print(run(suite="int").render())
    print()
    print(run(suite="fp").render())
