"""Shared-L2 contention study on the ``dual`` machine kind.

An extension of the Figure 11/12 methodology: instead of shrinking the
L2 or stretching memory latency (Table 1), memory pressure is generated
*endogenously* by a pointer-chasing co-runner on the second core of a
``dual(...)`` machine.  The grid crosses the co-runner axis (solo vs
contended) with the branch-predictor axis (perceptron vs gshare-14) over
one cache-sensitive SpecINT stand-in (``mcf``) and one streaming SpecFP
stand-in (``swim``) — 2 × 2 machines × 2 workloads.

Reported per cell: mean IPC, the slowdown against the solo machine with
the same predictor (the contention cost proper), the L2 port-conflict
share, and the co-runner's own achieved IPC (the interference was real).
The paper states no numbers for this configuration; the checks are
qualitative — contention must not speed the primary up, and must
actually exercise the arbiter.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Scale,
    Stopwatch,
    WarmupCache,
    scale_of,
)
from repro.experiments.sweep import (
    SweepPreset,
    SweepSpec,
    register_sweep_preset,
    sweep_grid,
)
from repro.report.spec import Check, FigureSpec, cell, long_rows_as_groups

#: The contended co-runner: a high-MLP streaming sweep over 8 MB — six
#: independent miss streams that keep L2 ports busy and evict the
#: primary's lines.  (A serial pointer chaser is a *gentler* neighbour:
#: one outstanding miss at a time barely queues, and on overlapping
#: address ranges it even prefetches for the primary.)
CO_RUNNER = "synth(chase=0,mlp=6,footprint=8M)"

CONTENTION_SWEEP = SweepSpec(
    name="contention",
    title="shared-L2 contention: co-runner x predictor on the dual kind",
    # l2busy=2 on the shared machine makes port occupancy visible; it
    # applies to the solo baselines too, so the comparison stays fair.
    machines=("dual(rob=64,l2busy=2)",),
    workloads=("mcf", "swim"),
    axes=(
        ("co", ("none", CO_RUNNER)),
        ("bp", ("perceptron", "gshare-14")),
    ),
)


def _config_label(co: str, bp: str) -> str:
    return f"{'contended' if co != 'none' else 'solo'}/{bp}"


def run(
    scale: Scale | str = Scale.DEFAULT, store=None, force=False
) -> ExperimentResult:
    scale = scale_of(scale)
    result = ExperimentResult(
        name="contention",
        title="Shared-L2 contention (dual-core) across the predictor axis",
        headers=[
            "workload", "config", "co-runner", "bp", "mean IPC",
            "slowdown vs solo", "arb conflict share", "co IPC",
        ],
        scale=scale,
    )
    with Stopwatch(result):
        grid = sweep_grid(
            CONTENTION_SWEEP,
            scale,
            store=store,
            force=force,
            warm_cache=WarmupCache(),
        )
        # Solo IPC per (bp, workload token): the slowdown baselines.
        solo: dict[tuple[str, str], float] = {}
        for mi, machine in enumerate(grid.machines):
            axes = dict(machine.axes)
            if axes.get("co") == "none":
                for token in grid.workloads:
                    solo[(axes["bp"], token)] = grid.mean_ipc(mi, 0, token)
        for mi, machine in enumerate(grid.machines):
            axes = dict(machine.axes)
            co, bp = axes["co"], axes["bp"]
            for token in grid.workloads:
                stats = [s for s in grid.suite_stats(mi, 0, token) if s is not None]
                if not stats:
                    result.rows.append(
                        [token, _config_label(co, bp), co, bp, "n/a", "-", "-", "-"]
                    )
                    continue
                ipc = grid.mean_ipc(mi, 0, token)
                baseline = solo.get((bp, token))
                slowdown = (
                    f"{baseline / ipc:.3f}x" if baseline and ipc else "-"
                )
                accesses = sum(s.l2_arb_accesses for s in stats)
                conflicts = sum(s.l2_arb_conflicts for s in stats)
                share = f"{conflicts / accesses:.1%}" if accesses else "0.0%"
                co_ipc = (
                    sum(s.co_committed for s in stats)
                    / sum(s.cycles for s in stats)
                )
                result.rows.append(
                    [
                        token,
                        _config_label(co, bp),
                        co,
                        bp,
                        round(ipc, 3),
                        slowdown,
                        share,
                        round(co_ipc, 3),
                    ]
                )
    result.notes.append(
        "slowdown vs solo = (solo IPC / contended IPC) at the same "
        "predictor; the solo rows are their own 1.000x baseline"
    )
    result.notes.append(
        f"co-runner: {CO_RUNNER} on the second core, private L1, shared "
        "arbitrated L2 (see repro.memory.shared)"
    )
    return result


#: Report spec.  The paper has no dual-core numbers; the checks pin the
#: qualitative contract: a co-runner never speeds the primary up, and the
#: contended cells genuinely fight over the L2 ports.
SPEC = FigureSpec(
    kind="bars",
    caption="Mean IPC per workload under shared-L2 contention — solo vs "
    "pointer-chasing co-runner, perceptron vs gshare-14 front end "
    "(extension of the Figure 11/12 memory-pressure methodology)",
    y_label="mean IPC",
    groups=long_rows_as_groups(0, 1, 4),
    checks=(
        Check(
            "mcf slowdown under a streaming co-runner (perceptron)",
            1.0,
            cell("slowdown vs solo", workload="mcf", config="contended/perceptron"),
            mode="at_least",
            warn_rel=0.02,
            note="contention may only slow the measured core down",
        ),
        Check(
            "swim slowdown under a streaming co-runner (perceptron)",
            1.0,
            cell("slowdown vs solo", workload="swim", config="contended/perceptron"),
            mode="at_least",
            warn_rel=0.02,
            note="streaming code also queues on the shared L2 ports",
        ),
        Check(
            "contended mcf exercises the L2 arbiter (gshare-14)",
            0.001,
            cell("arb conflict share", workload="mcf", config="contended/gshare-14"),
            mode="at_least",
            note="port conflicts must actually occur under contention",
        ),
    ),
)

register_sweep_preset(
    SweepPreset(
        name="contention",
        spec=CONTENTION_SWEEP,
        description="dual-core shared-L2 contention: co-runner x predictor axes",
        runner=run,
    )
)


if __name__ == "__main__":
    print(run().render())
