"""Ablation studies of the D-KIP's design choices.

Not paper figures — these quantify the decisions Section 5 argues for and
the alternatives Section 6 cites:

* **rob-timer** — the Aging-ROB delay: long enough to know L2 hit/miss,
  short enough not to hold the window hostage;
* **llib-size** — how big the FIFO must be before fill-up stalls vanish
  (the paper's Figures 13/14 argument);
* **llrf-banks** — the banked register file vs a smaller/larger layout;
* **checkpoints** — checkpoint-stack capacity and interval;
* **predictor** — the perceptron against gshare/bimodal (Table 2's choice);
* **runahead** — the related-work alternative (reference [24]): how much
  of the KILO-class benefit prefetch-by-pre-execution captures without a
  large effective window.
"""

from __future__ import annotations

import dataclasses

from repro.experiments.common import (
    ExperimentResult,
    INSTRUCTIONS,
    Scale,
    Stopwatch,
    WorkloadPool,
    mean_ipc,
    run_core_cached,
    run_suite,
    scale_of,
    suite_names,
)
from repro.report.spec import (
    Check,
    FigureSpec,
    cell,
    cell_ratio,
    single_series,
    wide_rows_as_groups,
)
from repro.sim.config import DKIP_2048, KILO_1024, R10_64, RunaheadConfig


def run_timer(
    scale: Scale | str = Scale.DEFAULT, store=None, force=False
) -> ExperimentResult:
    """Aging-ROB timer sweep (capacity follows: timer x decode width)."""
    scale = scale_of(scale)
    n = INSTRUCTIONS[scale]
    names = suite_names("fp", scale)
    pool = WorkloadPool()
    result = ExperimentResult(
        name="ablation-timer",
        title="Aging-ROB timer sweep (SpecFP mean IPC)",
        headers=["timer (cycles)", "ROB entries", "mean IPC"],
        scale=scale,
    )
    with Stopwatch(result):
        for timer in (4, 8, 16, 32, 64):
            cp = dataclasses.replace(
                DKIP_2048.cache_processor, rob_size=timer * 4
            )
            config = dataclasses.replace(
                DKIP_2048, name=f"timer-{timer}", rob_timer=timer, cache_processor=cp
            )
            ipc = mean_ipc(run_suite(config, names, n, pool, store=store, force=force))
            result.rows.append([timer, timer * 4, round(ipc, 3)])
    result.notes.append(
        "The paper picks 16 cycles: enough for the L2 tag probe; much "
        "larger timers re-grow the very window the D-KIP avoids."
    )
    return result


def run_llib_size(
    scale: Scale | str = Scale.DEFAULT, store=None, force=False
) -> ExperimentResult:
    """LLIB capacity sweep (the FIFO is cheap, so how much is needed?)."""
    scale = scale_of(scale)
    n = INSTRUCTIONS[scale]
    names = suite_names("fp", scale) + suite_names("int", scale)
    pool = WorkloadPool()
    result = ExperimentResult(
        name="ablation-llib",
        title="LLIB capacity sweep (all benchmarks, mean IPC)",
        headers=["LLIB entries", "mean IPC", "fill-up stall cycles"],
        scale=scale,
    )
    with Stopwatch(result):
        for size in (64, 256, 1024, 2048, 4096):
            config = dataclasses.replace(DKIP_2048, name=f"llib-{size}", llib_size=size)
            stats = run_suite(config, names, n, pool, store=store, force=force)
            stalls = sum(s.llib_full_stall_cycles for s in stats)
            result.rows.append([size, round(mean_ipc(stats), 3), stalls])
    return result


def run_predictor(
    scale: Scale | str = Scale.DEFAULT, store=None, force=False
) -> ExperimentResult:
    """Branch predictor ablation on the D-KIP (Table 2 uses the perceptron)."""
    scale = scale_of(scale)
    n = INSTRUCTIONS[scale]
    names = suite_names("int", scale)
    pool = WorkloadPool()
    result = ExperimentResult(
        name="ablation-predictor",
        title="Branch predictor ablation (SpecINT, D-KIP)",
        headers=["predictor", "mean IPC"],
        scale=scale,
    )
    with Stopwatch(result):
        for predictor in ("perceptron", "gshare", "bimodal", "always-taken"):
            ipcs = [
                run_core_cached(
                    DKIP_2048, pool.get(b), n, predictor_name=predictor,
                    store=store, force=force,
                ).ipc
                for b in names
            ]
            result.rows.append([predictor, round(sum(ipcs) / len(ipcs), 3)])
    return result


def run_runahead(
    scale: Scale | str = Scale.DEFAULT, store=None, force=False
) -> ExperimentResult:
    """Runahead execution vs the window-based machines (SpecFP)."""
    scale = scale_of(scale)
    n = INSTRUCTIONS[scale]
    names = suite_names("fp", scale)
    pool = WorkloadPool()
    result = ExperimentResult(
        name="ablation-runahead",
        title="Runahead execution vs KILO-class machines (SpecFP mean IPC)",
        headers=["machine", "mean IPC"],
        scale=scale,
    )
    machines = (R10_64, RunaheadConfig(), KILO_1024, DKIP_2048)
    with Stopwatch(result):
        for machine in machines:
            ipc = mean_ipc(run_suite(machine, names, n, pool, store=store, force=force))
            result.rows.append([machine.name, round(ipc, 3)])
    result.notes.append(
        "Expected shape: runahead lands between R10-64 and the true "
        "large-window machines — prefetching overlaps misses but every "
        "episode re-executes its instructions, and serial chains gain "
        "nothing."
    )
    return result


#: Report specs for the design studies.  These are not paper figures, so
#: most are shape-only; the runahead study encodes the related-work
#: claim (reference [24]) that prefetch-by-pre-execution lands between
#: the small-window baseline and the true large-window machines.
SPECS = {
    "ablation-timer": FigureSpec(
        kind="line",
        caption="SpecFP mean IPC vs the Aging-ROB timer (ROB capacity "
        "follows as timer x decode width); the paper picks 16 cycles",
        x_label="Aging-ROB timer (cycles)",
        y_label="mean IPC",
        series=single_series("SpecFP mean IPC", x_col=0, y_col=2),
    ),
    "ablation-llib": FigureSpec(
        kind="line",
        caption="Mean IPC over all benchmarks vs LLIB capacity — how big "
        "the FIFO must be before fill-up stalls vanish",
        x_label="LLIB entries",
        y_label="mean IPC",
        logx=True,
        series=single_series("mean IPC", x_col=0, y_col=1),
    ),
    "ablation-predictor": FigureSpec(
        kind="bars",
        caption="SpecINT mean IPC on the D-KIP by branch predictor "
        "(Table 2 uses the perceptron)",
        x_label="predictor",
        y_label="mean IPC",
        groups=wide_rows_as_groups(0, {"mean IPC": 1}),
        checks=(
            Check(
                "perceptron vs gshare",
                1.0,
                cell_ratio(
                    cell("mean IPC", predictor="perceptron"),
                    cell("mean IPC", predictor="gshare"),
                ),
                mode="at_least",
                warn_rel=0.05,
                note="Table 2 picks the perceptron; it should not lose "
                "to the cheaper history predictors",
            ),
        ),
    ),
    "ablation-runahead": FigureSpec(
        kind="bars",
        caption="SpecFP mean IPC: runahead execution against the "
        "small-window baseline and the KILO-class machines",
        x_label="machine",
        y_label="mean IPC",
        groups=wide_rows_as_groups(0, {"mean IPC": 1}),
        checks=(
            Check(
                "runahead vs R10-64",
                1.0,
                cell_ratio(
                    cell("mean IPC", machine="runahead-64"),
                    cell("mean IPC", machine="R10-64"),
                ),
                mode="at_least",
                warn_rel=0.10,
                note="prefetch-by-pre-execution should beat the plain "
                "small-window core on SpecFP",
            ),
            Check(
                "runahead vs D-KIP-2048",
                1.0,
                cell_ratio(
                    cell("mean IPC", machine="runahead-64"),
                    cell("mean IPC", machine="D-KIP-2048"),
                ),
                mode="at_most",
                warn_rel=0.10,
                note="every runahead episode re-executes its "
                "instructions, so it cannot reach the true "
                "large-window machines",
            ),
        ),
    ),
}
