"""Figures 1 and 2: IPC vs instruction-window size under six memory systems.

The paper's Section-2 characterization: 4-way out-of-order cores whose
only structural limit is the ROB, swept from 32 to 4096 entries against
the Table-1 memory configurations, averaged over SpecINT (Figure 1) and
SpecFP (Figure 2).

Expected shape (paper): with slow memory, SpecFP recovers almost all IPC
by 4K entries (misses leave the critical path once enough independent work
is in flight), while SpecINT barely improves (pointer chasing and
miss-dependent mispredictions stay on the critical path).
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    INSTRUCTIONS,
    Scale,
    Stopwatch,
    WorkloadPool,
    run_snapshot_cell,
    scale_of,
    suite_names,
)
from repro.memory import MemoryHierarchy, TABLE1_CONFIGS, warm_caches
from repro.report.spec import Check, FigureSpec, row_span_ratio, rows_as_series
from repro.sim.config import LimitMachine
from repro.viz.ascii import line_chart

#: ROB sizes on the paper's x axis.
FULL_WINDOWS = (32, 48, 64, 128, 256, 512, 1024, 2048, 4096)
QUICK_WINDOWS = (32, 128, 1024, 4096)


def run(
    scale: Scale | str = Scale.DEFAULT, suite: str = "fp", store=None, force=False
) -> ExperimentResult:
    """Regenerate Figure 1 (suite="int") or Figure 2 (suite="fp")."""
    scale = scale_of(scale)
    windows = QUICK_WINDOWS if scale == Scale.QUICK else FULL_WINDOWS
    mem_names = (
        ("L1-2", "MEM-100", "MEM-400")
        if scale == Scale.QUICK
        else tuple(TABLE1_CONFIGS)
    )
    n = INSTRUCTIONS[scale]
    names = suite_names(suite, scale)
    pool = WorkloadPool()
    figure = "fig1" if suite == "int" else "fig2"
    result = ExperimentResult(
        name=figure,
        title=f"Effects of memory subsystem on Spec{suite.upper()} "
        f"(idealized core, stalls only from ROB)",
        headers=["memory", *[f"rob-{w}" for w in windows]],
        scale=scale,
    )
    series: dict[str, list[tuple[float, float]]] = {}
    with Stopwatch(result):
        for mem_name in mem_names:
            mem_config = TABLE1_CONFIGS[mem_name]
            # Warm-up depends only on (memory config, workload): warm once
            # per benchmark, snapshot, and restore for every ROB size
            # instead of re-streaming the working set per window.
            ipcs_by_window: dict[int, list[float]] = {w: [] for w in windows}
            for bench in names:
                workload = pool.get(bench)
                # The warmed snapshot is shared by every window and built
                # lazily: a benchmark whose cells all hit the store never
                # streams its working set at all.
                snapshot = None

                def snapshot_factory():
                    nonlocal snapshot
                    if snapshot is None:
                        warmed = MemoryHierarchy(mem_config)
                        warm_caches(warmed, workload.regions)
                        snapshot = warmed.snapshot()
                    return snapshot

                for window in windows:
                    machine = LimitMachine(rob_size=window, record_histogram=False)
                    stats = run_snapshot_cell(
                        machine,
                        workload,
                        n,
                        memory=mem_config,
                        snapshot_factory=snapshot_factory,
                        store=store,
                        force=force,
                    )
                    ipcs_by_window[window].append(stats.ipc)
            row: list[object] = [mem_name]
            for window in windows:
                ipcs = ipcs_by_window[window]
                mean = sum(ipcs) / len(ipcs)
                row.append(round(mean, 3))
                series.setdefault(mem_name, []).append((window, mean))
            result.rows.append(row)
    result.charts.append(
        line_chart(
            series,
            title=f"Average IPC vs window size (Spec{suite.upper()})",
            logx=True,
        )
    )
    slow = series.get("MEM-400") or next(iter(series.values()))
    gain = slow[-1][1] / slow[0][1] if slow[0][1] else float("inf")
    result.notes.append(
        f"MEM-400 IPC gain from {windows[0]} to {windows[-1]} entries: {gain:.2f}x "
        f"(paper: large for SpecFP, small for SpecINT)"
    )
    return result


#: Report specs (Figure 1 = SpecINT, Figure 2 = SpecFP).  The paper
#: states no absolute IPC for these sweeps, so the checks encode its
#: qualitative claim: slow memory caps SpecINT almost regardless of
#: window size, while SpecFP recovers most of the lost IPC by 4K entries.
SPECS = {
    "fig1": FigureSpec(
        kind="line",
        caption="Mean SpecINT IPC vs instruction-window size under the "
        "Table-1 memory systems (idealized core, stalls only from the ROB)",
        x_label="instruction window (ROB entries)",
        y_label="mean IPC",
        logx=True,
        series=rows_as_series(),
        checks=(
            Check(
                "MEM-400 IPC gain, smallest→largest window",
                1.6,
                row_span_ratio("MEM-400"),
                mode="at_most",
                note="paper: SpecINT barely improves — pointer chasing and "
                "miss-dependent mispredictions stay on the critical path",
            ),
        ),
    ),
    "fig2": FigureSpec(
        kind="line",
        caption="Mean SpecFP IPC vs instruction-window size under the "
        "Table-1 memory systems (idealized core, stalls only from the ROB)",
        x_label="instruction window (ROB entries)",
        y_label="mean IPC",
        logx=True,
        series=rows_as_series(),
        checks=(
            Check(
                "MEM-400 IPC gain, smallest→largest window",
                2.0,
                row_span_ratio("MEM-400"),
                mode="at_least",
                note="paper: with enough in-flight work SpecFP recovers "
                "almost all IPC lost to slow memory",
            ),
        ),
    ),
}


if __name__ == "__main__":
    print(run(suite="int").render())
    print()
    print(run(suite="fp").render())
