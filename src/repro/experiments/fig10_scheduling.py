"""Figure 10 (and §4.3): scheduler policy and queue sizes in the D-KIP.

Sweeps the Cache Processor configuration (in-order, or out-of-order with
20/40/60/80-entry queues) against the Memory Processor configuration
(in-order, OOO-20, OOO-40) on SpecFP, plus the SpecINT summary the text
reports.

Paper findings: out-of-order vs in-order in the CP is worth ≈ +32% on
SpecFP (+29% SpecINT); the MP configuration matters little (an OOO-40 MP
buys ~1% under an in-order CP, ~6.3% under an OOO-80 CP); an OOO-20 MP is
almost as good as OOO-40.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    INSTRUCTIONS,
    Scale,
    Stopwatch,
    WorkloadPool,
    mean_ipc,
    run_suite,
    scale_of,
    suite_names,
)
from repro.report.spec import Check, FigureSpec, cell, cell_ratio, columns_as_series
from repro.sim.config import DKIP_2048
from repro.viz.ascii import line_chart

CP_CONFIGS_FULL = ("INO", "OOO-20", "OOO-40", "OOO-60", "OOO-80")
CP_CONFIGS_QUICK = ("INO", "OOO-20", "OOO-80")
MP_CONFIGS_FULL = ("INO", "OOO-20", "OOO-40")
MP_CONFIGS_QUICK = ("INO", "OOO-40")


def run(
    scale: Scale | str = Scale.DEFAULT, suite: str = "fp", store=None, force=False
) -> ExperimentResult:
    scale = scale_of(scale)
    n = INSTRUCTIONS[scale]
    cp_configs = CP_CONFIGS_QUICK if scale == Scale.QUICK else CP_CONFIGS_FULL
    mp_configs = MP_CONFIGS_QUICK if scale == Scale.QUICK else MP_CONFIGS_FULL
    names = suite_names(suite, scale)
    pool = WorkloadPool()
    result = ExperimentResult(
        name="fig10" if suite == "fp" else "fig10int",
        title=f"Impact of scheduling policy and queue sizes (Spec{suite.upper()})",
        headers=["CP config", *[f"MP {mp}" for mp in mp_configs]],
        scale=scale,
    )
    series: dict[str, list[tuple[float, float]]] = {}
    grid: dict[tuple[str, str], float] = {}
    with Stopwatch(result):
        for cp in cp_configs:
            row: list[object] = [cp]
            for mp in mp_configs:
                config = DKIP_2048.with_cp(cp).with_mp(mp)
                ipc = mean_ipc(
                    run_suite(config, names, n, pool, store=store, force=force)
                )
                grid[(cp, mp)] = ipc
                row.append(round(ipc, 3))
                x = 0 if cp == "INO" else int(cp.split("-")[1])
                series.setdefault(f"MP {mp}", []).append((max(x, 1), ipc))
            result.rows.append(row)
    result.charts.append(
        line_chart(series, title="IPC vs CP queue size (x=1 means in-order CP)")
    )
    first_mp = mp_configs[0]
    if ("OOO-20", first_mp) in grid and ("INO", first_mp) in grid and grid[("INO", first_mp)]:
        ooo_gain = grid[("OOO-20", first_mp)] / grid[("INO", first_mp)] - 1.0
        result.notes.append(
            f"CP out-of-order (20) vs in-order: {ooo_gain * 100:+.1f}% "
            f"(paper: ~+32% SpecFP, ~+29% SpecINT)"
        )
    biggest_cp = cp_configs[-1]
    if (biggest_cp, "OOO-40") in grid and (biggest_cp, "INO") in grid:
        mp_gain = grid[(biggest_cp, "OOO-40")] / grid[(biggest_cp, "INO")] - 1.0
        result.notes.append(
            f"MP OOO-40 vs in-order under CP {biggest_cp}: {mp_gain * 100:+.1f}% "
            f"(paper: +6.3% with OOO-80 CP, +1% with in-order CP)"
        )
    return result


def _cp_ooo_gain():
    """Metric: OOO-20 CP over in-order CP, both under an in-order MP."""
    return cell_ratio(
        cell("MP INO", **{"CP config": "OOO-20"}),
        cell("MP INO", **{"CP config": "INO"}),
    )


def _spec(suite: str, paper_gain: float) -> FigureSpec:
    checks = [
        Check(
            "out-of-order CP (20 entries) vs in-order CP",
            paper_gain,
            _cp_ooo_gain(),
            note=f"paper: +{(paper_gain - 1) * 100:.0f}% on Spec{suite.upper()}",
        ),
    ]
    if suite == "fp":
        checks.append(
            Check(
                "OOO-40 MP vs in-order MP under the largest CP",
                1.063,
                cell_ratio(
                    cell("MP OOO-40", **{"CP config": "OOO-80"}),
                    cell("MP INO", **{"CP config": "OOO-80"}),
                ),
                pass_rel=0.10,
                warn_rel=0.25,
                note="paper: the MP configuration matters little (+6.3% "
                "under an OOO-80 CP, +1% under an in-order CP)",
            )
        )
    return FigureSpec(
        kind="line",
        caption=f"Mean Spec{suite.upper()} IPC vs Cache-Processor queue "
        "size (x=1 is an in-order CP), one line per Memory-Processor "
        "configuration",
        x_label="CP queue entries (1 = in-order)",
        y_label="mean IPC",
        series=columns_as_series(),
        checks=tuple(checks),
    )


#: Report specs: fig10 is the paper's SpecFP figure; fig10int the
#: SpecINT summary §4.3 reports in the text.
SPECS = {"fig10": _spec("fp", 1.32), "fig10int": _spec("int", 1.29)}


if __name__ == "__main__":
    print(run(suite="fp").render())
    print()
    print(run(suite="int").render())
