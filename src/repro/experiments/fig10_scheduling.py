"""Figure 10 (and §4.3): scheduler policy and queue sizes in the D-KIP.

Sweeps the Cache Processor configuration (in-order, or out-of-order with
20/40/60/80-entry queues) against the Memory Processor configuration
(in-order, OOO-20, OOO-40) on SpecFP, plus the SpecINT summary the text
reports.

The grid is a two-axis :class:`~repro.experiments.sweep.SweepSpec` over
the bare ``dkip`` kind — the sweep engine crosses the ``cp`` and ``mp``
axes into the machine spec and runs every resulting configuration; only
the CP-rows x MP-columns table layout is figure-specific.

Paper findings: out-of-order vs in-order in the CP is worth ≈ +32% on
SpecFP (+29% SpecINT); the MP configuration matters little (an OOO-40 MP
buys ~1% under an in-order CP, ~6.3% under an OOO-80 CP); an OOO-20 MP is
almost as good as OOO-40.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Scale,
    Stopwatch,
    scale_of,
)
from repro.experiments.sweep import (
    SweepPreset,
    SweepSpec,
    register_sweep_preset,
    sweep_grid,
)
from repro.report.spec import Check, FigureSpec, cell, cell_ratio, columns_as_series
from repro.viz.ascii import line_chart

CP_CONFIGS_FULL = ("INO", "OOO-20", "OOO-40", "OOO-60", "OOO-80")
CP_CONFIGS_QUICK = ("INO", "OOO-20", "OOO-80")
MP_CONFIGS_FULL = ("INO", "OOO-20", "OOO-40")
MP_CONFIGS_QUICK = ("INO", "OOO-40")


def sweep_for(scale: Scale, suite: str) -> SweepSpec:
    """The declarative (cp x mp) grid at *scale* for *suite*."""
    cp_configs = CP_CONFIGS_QUICK if scale == Scale.QUICK else CP_CONFIGS_FULL
    mp_configs = MP_CONFIGS_QUICK if scale == Scale.QUICK else MP_CONFIGS_FULL
    return SweepSpec(
        name="fig10" if suite == "fp" else "fig10int",
        title=f"Impact of scheduling policy and queue sizes (Spec{suite.upper()})",
        machines=("dkip",),
        axes=(("cp", cp_configs), ("mp", mp_configs)),
        workloads=(suite,),
    )


def run(
    scale: Scale | str = Scale.DEFAULT, suite: str = "fp", store=None, force=False
) -> ExperimentResult:
    scale = scale_of(scale)
    spec = sweep_for(scale, suite)
    cp_configs = spec.axes[0][1]
    mp_configs = spec.axes[1][1]
    result = ExperimentResult(
        name=spec.name,
        title=spec.title,
        headers=["CP config", *[f"MP {mp}" for mp in mp_configs]],
        scale=scale,
    )
    series: dict[str, list[tuple[float, float]]] = {}
    grid_ipc: dict[tuple[str, str], float] = {}
    with Stopwatch(result):
        grid = sweep_grid(spec, scale, store=store, force=force)
        # Machines expand in axes-product order: cp varies slowest.
        for ci, cp in enumerate(cp_configs):
            row: list[object] = [cp]
            for mi, mp in enumerate(mp_configs):
                index = ci * len(mp_configs) + mi
                ipc = grid.mean_ipc(index, 0, suite)
                grid_ipc[(cp, mp)] = ipc
                row.append(round(ipc, 3))
                x = 0 if cp == "INO" else int(cp.split("-")[1])
                series.setdefault(f"MP {mp}", []).append((max(x, 1), ipc))
            result.rows.append(row)
    result.charts.append(
        line_chart(series, title="IPC vs CP queue size (x=1 means in-order CP)")
    )
    first_mp = mp_configs[0]
    if (
        ("OOO-20", first_mp) in grid_ipc
        and ("INO", first_mp) in grid_ipc
        and grid_ipc[("INO", first_mp)]
    ):
        ooo_gain = grid_ipc[("OOO-20", first_mp)] / grid_ipc[("INO", first_mp)] - 1.0
        result.notes.append(
            f"CP out-of-order (20) vs in-order: {ooo_gain * 100:+.1f}% "
            f"(paper: ~+32% SpecFP, ~+29% SpecINT)"
        )
    biggest_cp = cp_configs[-1]
    if (biggest_cp, "OOO-40") in grid_ipc and (biggest_cp, "INO") in grid_ipc:
        mp_gain = grid_ipc[(biggest_cp, "OOO-40")] / grid_ipc[(biggest_cp, "INO")] - 1.0
        result.notes.append(
            f"MP OOO-40 vs in-order under CP {biggest_cp}: {mp_gain * 100:+.1f}% "
            f"(paper: +6.3% with OOO-80 CP, +1% with in-order CP)"
        )
    return result


def _run_fp(scale: Scale | str = Scale.DEFAULT, store=None, force=False):
    return run(scale, suite="fp", store=store, force=force)


def _run_int(scale: Scale | str = Scale.DEFAULT, store=None, force=False):
    return run(scale, suite="int", store=store, force=force)


register_sweep_preset(
    SweepPreset(
        "fig10",
        sweep_for(Scale.FULL, "fp"),
        description="Figure 10: dkip crossed over cp x mp axes on SpecFP",
        runner=_run_fp,
    )
)
register_sweep_preset(
    SweepPreset(
        "fig10int",
        sweep_for(Scale.FULL, "int"),
        description="§4.3: the same cp x mp grid on SpecINT",
        runner=_run_int,
    )
)


def _cp_ooo_gain():
    """Metric: OOO-20 CP over in-order CP, both under an in-order MP."""
    return cell_ratio(
        cell("MP INO", **{"CP config": "OOO-20"}),
        cell("MP INO", **{"CP config": "INO"}),
    )


def _spec(suite: str, paper_gain: float) -> FigureSpec:
    checks = [
        Check(
            "out-of-order CP (20 entries) vs in-order CP",
            paper_gain,
            _cp_ooo_gain(),
            note=f"paper: +{(paper_gain - 1) * 100:.0f}% on Spec{suite.upper()}",
        ),
    ]
    if suite == "fp":
        checks.append(
            Check(
                "OOO-40 MP vs in-order MP under the largest CP",
                1.063,
                cell_ratio(
                    cell("MP OOO-40", **{"CP config": "OOO-80"}),
                    cell("MP INO", **{"CP config": "OOO-80"}),
                ),
                pass_rel=0.10,
                warn_rel=0.25,
                note="paper: the MP configuration matters little (+6.3% "
                "under an OOO-80 CP, +1% under an in-order CP)",
            )
        )
    return FigureSpec(
        kind="line",
        caption=f"Mean Spec{suite.upper()} IPC vs Cache-Processor queue "
        "size (x=1 is an in-order CP), one line per Memory-Processor "
        "configuration",
        x_label="CP queue entries (1 = in-order)",
        y_label="mean IPC",
        series=columns_as_series(),
        checks=tuple(checks),
    )


#: Report specs: fig10 is the paper's SpecFP figure; fig10int the
#: SpecINT summary §4.3 reports in the text.
SPECS = {"fig10": _spec("fp", 1.32), "fig10int": _spec("int", 1.29)}


if __name__ == "__main__":
    print(run(suite="fp").render())
    print()
    print(run(suite="int").render())
