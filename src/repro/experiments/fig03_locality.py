"""Figure 3: decode→issue distance distribution — *execution locality*.

The measurement that motivates the whole paper: on an unlimited-window
processor with 400-cycle memory running SpecFP, the number of cycles each
correct-path instruction waits between decode and issue clusters into a
few groups — most instructions issue quickly, a peak waits ≈ one memory
latency (consumers of one miss), and a small peak waits ≈ two (chains of
two misses).

Paper numbers: ~70% below 300 cycles, 11-12% around 400, ~4% around 800.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    INSTRUCTIONS,
    Scale,
    Stopwatch,
    WorkloadPool,
    run_snapshot_cell,
    scale_of,
    suite_names,
)
from repro.memory import DEFAULT_MEMORY
from repro.report.spec import Check, FigureSpec, cell, wide_rows_as_groups
from repro.sim.config import LimitMachine
from repro.sim.stats import Histogram
from repro.viz.ascii import histogram_chart


def run(
    scale: Scale | str = Scale.DEFAULT, suite: str = "fp", store=None, force=False
) -> ExperimentResult:
    scale = scale_of(scale)
    n = INSTRUCTIONS[scale]
    names = suite_names(suite, scale)
    pool = WorkloadPool()
    result = ExperimentResult(
        name="fig3",
        title="Average distance between decode and issue "
        f"(Spec{suite.upper()}, unlimited window, 400-cycle memory)",
        headers=["range (cycles)", "fraction", "paper"],
        scale=scale,
    )
    aggregate = Histogram(bin_width=25, max_value=4000)
    with Stopwatch(result):
        machine = LimitMachine(rob_size=None, record_histogram=True)
        for bench in names:
            workload = pool.get(bench)
            stats = run_snapshot_cell(
                machine, workload, n, memory=DEFAULT_MEMORY, store=store, force=force
            )
            for start, count in stats.issue_distance.bins():
                aggregate.add(start, count)
    below_300 = aggregate.fraction_below(300)
    single_miss = aggregate.fraction_in(300, 500)
    double_miss = aggregate.fraction_in(700, 900)
    result.rows.append(["< 300", round(below_300, 3), "~0.70"])
    result.rows.append(["300-500 (~1x memory)", round(single_miss, 3), "~0.11-0.12"])
    result.rows.append(["700-900 (~2x memory)", round(double_miss, 3), "~0.04"])
    other = max(0.0, 1.0 - below_300 - single_miss - double_miss)
    result.rows.append(["other", round(other, 3), "~0.15"])
    result.charts.append(
        histogram_chart(
            aggregate.bins(),
            aggregate.bin_width,
            aggregate.count,
            title="decode→issue distance histogram",
        )
    )
    result.notes.append(
        "Trimodal shape: high-locality mass below the memory latency, a"
        " consumer peak at ~1x and a small chain peak at ~2x; the 2x peak"
        " is smaller than the paper's 4% because the synthetic SpecFP"
        " carries fewer dependent-miss chains than the originals."
    )
    return result


#: Report spec: the execution-locality distribution with the paper's
#: stated fractions as reference marks and graded checks.
SPEC = FigureSpec(
    kind="bars",
    caption="Fraction of correct-path instructions by decode→issue "
    "distance (unlimited window, 400-cycle memory): high-locality mass, "
    "a consumer peak at ~1x memory latency, a chain peak at ~2x",
    x_label="decode→issue distance (cycles)",
    y_label="fraction of instructions",
    groups=wide_rows_as_groups(0, {"fraction": 1}),
    reference_points={
        ("< 300", "fraction"): 0.70,
        ("300-500 (~1x memory)", "fraction"): 0.115,
        ("700-900 (~2x memory)", "fraction"): 0.04,
        ("other", "fraction"): 0.145,
    },
    checks=(
        Check(
            "high-locality mass below 300 cycles",
            0.70,
            cell("fraction", **{"range (cycles)": "< 300"}),
            note="paper: ~70% of instructions issue quickly",
        ),
        Check(
            "consumer peak around one memory latency",
            0.115,
            cell("fraction", **{"range (cycles)": "300-500 (~1x memory)"}),
            pass_rel=0.25,
            warn_rel=0.60,
            note="paper: 11-12% wait for exactly one miss",
        ),
        Check(
            "chain peak around two memory latencies",
            0.04,
            cell("fraction", **{"range (cycles)": "700-900 (~2x memory)"}),
            pass_rel=0.50,
            warn_rel=1.00,
            note="paper: ~4%; the synthetic SpecFP carries fewer "
            "dependent-miss chains, so this peak runs small",
        ),
    ),
)


if __name__ == "__main__":
    print(run().render())
