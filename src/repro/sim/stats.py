"""Statistics collected by the simulators.

:class:`SimStats` is the single record every core fills in; experiments
aggregate these into the rows of the paper's tables and figures.  The
fields cover the quantities the paper reports: IPC, the CP/MP execution
split (§4.4), Analyze-stage stalls (§3.2, "averaging 0.7% IPC loss"),
LLIB/LLRF high-water marks (Figures 13/14) and the decode→issue distance
distribution (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

#: Version of the serialized-stats schema below.  Part of every result
#: store fingerprint: bumping it (whenever fields are added, removed or
#: change meaning) invalidates all cached cells at once instead of
#: silently returning records the new code misreads.
STATS_SCHEMA_VERSION = 2


class Histogram:
    """Fixed-bin-width histogram over non-negative integer samples."""

    __slots__ = ("bin_width", "max_value", "_bins", "count", "total")

    def __init__(self, bin_width: int = 25, max_value: int | None = None) -> None:
        if bin_width <= 0:
            raise ValueError("bin width must be positive")
        self.bin_width = bin_width
        self.max_value = max_value
        self._bins: dict[int, int] = {}
        self.count = 0
        self.total = 0

    def add(self, value: int, weight: int = 1) -> None:
        if value < 0:
            raise ValueError(f"histogram values must be non-negative: {value}")
        if self.max_value is not None and value > self.max_value:
            value = self.max_value
        index = value // self.bin_width
        self._bins[index] = self._bins.get(index, 0) + weight
        self.count += weight
        self.total += value * weight

    def bins(self) -> list[tuple[int, int]]:
        """Sorted ``(bin_start, count)`` pairs."""
        return [(i * self.bin_width, c) for i, c in sorted(self._bins.items())]

    def fraction_below(self, threshold: int) -> float:
        """Fraction of samples strictly below *threshold* cycles."""
        if not self.count:
            return 0.0
        covered = sum(
            c for i, c in self._bins.items() if (i + 1) * self.bin_width <= threshold
        )
        return covered / self.count

    def fraction_in(self, lo: int, hi: int) -> float:
        """Fraction of samples in bins fully inside ``[lo, hi)``."""
        if not self.count:
            return 0.0
        covered = sum(
            c
            for i, c in self._bins.items()
            if i * self.bin_width >= lo and (i + 1) * self.bin_width <= hi
        )
        return covered / self.count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self.bin_width == other.bin_width
            and self.max_value == other.max_value
            and self.count == other.count
            and self.total == other.total
            and self._bins == other._bins
        )

    def to_dict(self) -> dict:
        """Exact JSON-serializable rendering (lossless round trip)."""
        return {
            "bin_width": self.bin_width,
            "max_value": self.max_value,
            # Lists, not tuples, so equality survives a JSON round trip.
            "bins": [[index, count] for index, count in sorted(self._bins.items())],
            "count": self.count,
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        histogram = cls(bin_width=data["bin_width"], max_value=data["max_value"])
        histogram._bins = {int(index): count for index, count in data["bins"]}
        histogram.count = data["count"]
        histogram.total = data["total"]
        return histogram


@dataclass(slots=True)
class SimStats:
    """Everything one simulation run produces.

    ``slots=True`` because the per-cycle stall counters are incremented in
    the hottest simulator loops.
    """

    workload: str = ""
    config: str = ""
    committed: int = 0
    cycles: int = 0

    # Front end
    fetched: int = 0
    fetch_stall_cycles: int = 0
    #: The misprediction-caused subset of ``fetch_stall_cycles``: cycles
    #: fetch was idle waiting on an unresolved mispredicted branch or
    #: sitting out the redirect penalty after it resolved.
    mispredict_stall_cycles: int = 0
    branch_predictions: int = 0
    branch_mispredictions: int = 0
    long_latency_branch_mispredictions: int = 0

    # Memory system (copied from the hierarchy at the end of a run)
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    memory_accesses: int = 0

    # Shared-L2 arbitration (dual-core machines; zero elsewhere)
    l2_arb_accesses: int = 0
    l2_arb_conflicts: int = 0
    l2_arb_delay_cycles: int = 0
    #: Instructions the co-runner core committed while the primary ran.
    co_committed: int = 0

    # Execution-locality split (D-KIP; §4.4 of the paper)
    committed_cp: int = 0
    committed_mp: int = 0
    analyze_stall_cycles: int = 0

    # LLIB / LLRF occupancy (Figures 13 and 14)
    llib_insertions: int = 0
    llib_max_instructions_int: int = 0
    llib_max_instructions_fp: int = 0
    llib_max_registers_int: int = 0
    llib_max_registers_fp: int = 0
    llib_full_stall_cycles: int = 0

    # Checkpointing machinery
    checkpoints_taken: int = 0
    checkpoint_recoveries: int = 0

    # Optional distributions
    issue_distance: Histogram | None = None

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def branch_accuracy(self) -> float:
        if not self.branch_predictions:
            return 1.0
        return 1.0 - self.branch_mispredictions / self.branch_predictions

    @property
    def l2_miss_rate(self) -> float:
        accesses = self.l2_hits + self.l2_misses
        return self.l2_misses / accesses if accesses else 0.0

    @property
    def cp_fraction(self) -> float:
        """Fraction of committed instructions executed by the CP (§4.4)."""
        split = self.committed_cp + self.committed_mp
        return self.committed_cp / split if split else 1.0

    def as_dict(self) -> dict:
        """Flat dictionary for CSV/JSON emission (histograms omitted)."""
        out = {
            "workload": self.workload,
            "config": self.config,
            "committed": self.committed,
            "cycles": self.cycles,
            "ipc": round(self.ipc, 4),
            "branch_accuracy": round(self.branch_accuracy, 4),
            "l2_miss_rate": round(self.l2_miss_rate, 4),
            "cp_fraction": round(self.cp_fraction, 4),
            "committed_cp": self.committed_cp,
            "committed_mp": self.committed_mp,
            "analyze_stall_cycles": self.analyze_stall_cycles,
            "llib_max_instructions_int": self.llib_max_instructions_int,
            "llib_max_instructions_fp": self.llib_max_instructions_fp,
            "llib_max_registers_int": self.llib_max_registers_int,
            "llib_max_registers_fp": self.llib_max_registers_fp,
            "checkpoints_taken": self.checkpoints_taken,
            "checkpoint_recoveries": self.checkpoint_recoveries,
        }
        return out

    def to_dict(self) -> dict:
        """Lossless JSON-serializable rendering of every field.

        Unlike :meth:`as_dict` (a rounded flat view for CSV emission),
        this is the result-store format: :meth:`from_dict` reconstructs a
        record that compares equal to the original, histogram included.
        """
        out = {"schema": STATS_SCHEMA_VERSION}
        for field in fields(self):
            value = getattr(self, field.name)
            if field.name == "issue_distance":
                value = value.to_dict() if value is not None else None
            out[field.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SimStats":
        """Rebuild a record written by :meth:`to_dict`.

        Raises ``KeyError``/``ValueError`` on schema mismatch or missing
        fields — callers (the result store) treat that as a cache miss.
        """
        schema = data.get("schema")
        if schema != STATS_SCHEMA_VERSION:
            raise ValueError(
                f"stats schema mismatch: stored {schema!r}, "
                f"current {STATS_SCHEMA_VERSION!r}"
            )
        kwargs = {}
        for field in fields(cls):
            value = data[field.name]
            if field.name == "issue_distance" and value is not None:
                value = Histogram.from_dict(value)
            kwargs[field.name] = value
        return cls(**kwargs)


def arithmetic_mean_ipc(stats: list[SimStats]) -> float:
    """Average IPC the way the paper's figures do (arithmetic mean)."""
    if not stats:
        return 0.0
    return sum(s.ipc for s in stats) / len(stats)
