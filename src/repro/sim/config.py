"""Machine configurations: Tables 2 and 3 of the paper, plus the named
processor models compared in Figure 9 (R10-64, R10-256, KILO-1024,
D-KIP-2048).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.fingerprint import Fingerprintable


class SchedulerPolicy(str, enum.Enum):
    """Issue-queue scheduling discipline (Figure 10's INO/OOO axis)."""

    IN_ORDER = "ino"
    OUT_OF_ORDER = "ooo"


@dataclass(frozen=True)
class FuConfig(Fingerprintable):
    """Functional-unit counts (Table 2)."""

    int_alu: int = 4
    int_mul: int = 1
    fp_add: int = 4
    fp_mul: int = 1
    mem_ports: int = 2


@dataclass(frozen=True)
class CoreConfig(Fingerprintable):
    """Parameters of one R10000-style out-of-order core.

    Also used for the D-KIP's Cache Processor (with ``rob_size`` acting as
    the Aging-ROB capacity) and, with small queue sizes, for the Memory
    Processors.
    """

    name: str = "core"
    fetch_width: int = 4
    decode_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    rob_size: int = 64
    iq_int: int = 40
    iq_fp: int = 40
    scheduler: SchedulerPolicy = SchedulerPolicy.OUT_OF_ORDER
    lsq_size: int = 512
    fetch_buffer: int = 16
    mispredict_redirect: int = 5
    fus: FuConfig = field(default_factory=FuConfig)
    predictor: str = "perceptron"

    def with_queues(self, size: int, scheduler: SchedulerPolicy) -> "CoreConfig":
        """Clone with both issue queues resized (Figure 10 sweep)."""
        label = (
            "INO" if scheduler == SchedulerPolicy.IN_ORDER else f"OOO-{size}"
        )
        return replace(
            self, name=label, iq_int=size, iq_fp=size, scheduler=scheduler
        )


@dataclass(frozen=True)
class KiloConfig(Fingerprintable):
    """The KILO-1024 comparator: pseudo-ROB + Slow Lane Instruction Queue.

    Models reference [9] of the paper (Cristal et al., "Out-of-order commit
    processors"): a 64-entry pseudo-ROB whose head streams long-latency
    instructions into a 1024-entry out-of-order SLIQ; issue queues of 72.
    """

    name: str = "KILO-1024"
    core: CoreConfig = field(
        default_factory=lambda: CoreConfig(name="kilo-fe", iq_int=72, iq_fp=72)
    )
    pseudo_rob: int = 64
    rob_timer: int = 16
    sliq_size: int = 1024
    recovery_penalty: int = 16
    #: Cycles between SLIQ insertion and issue eligibility: the slow lane
    #: re-dispatches instructions into the issue queues through extra
    #: pipeline stages (Cristal et al.).  Irrelevant for 400-cycle slices.
    sliq_reissue_delay: int = 4
    #: SLIQ re-insertions per cycle, shared with front-end dispatch: woken
    #: slow-lane instructions re-enter the issue queues through the same
    #: 4-wide rename/dispatch ports as newly fetched instructions, so heavy
    #: slice traffic steals front-end bandwidth.  This is the implementation
    #: cost that keeps the single-queue KILO below the D-KIP on SpecFP in
    #: the paper while leaving SpecINT (few slices) untouched.
    sliq_reissue_width: int = 4


@dataclass(frozen=True)
class MemoryProcessorConfig(Fingerprintable):
    """One Memory Processor (Future File architecture, Table 2)."""

    decode_width: int = 4
    queue_size: int = 20
    scheduler: SchedulerPolicy = SchedulerPolicy.IN_ORDER
    fus: FuConfig = field(default_factory=lambda: FuConfig(mem_ports=1))


@dataclass(frozen=True)
class DkipConfig(Fingerprintable):
    """The full Decoupled KILO-Instruction Processor (Tables 2 and 3).

    Defaults reproduce the paper's baseline D-KIP-2048: an out-of-order
    Cache Processor with 40-entry queues and a 64-entry Aging-ROB (16-cycle
    timer x 4-wide), two 2048-entry LLIBs, an 8-bank LLRF, and two in-order
    Future-File Memory Processors with 20-entry queues.
    """

    name: str = "D-KIP-2048"
    cache_processor: CoreConfig = field(
        default_factory=lambda: CoreConfig(name="cp", rob_size=64, iq_int=40, iq_fp=40)
    )
    rob_timer: int = 16
    memory_processor: MemoryProcessorConfig = field(
        default_factory=MemoryProcessorConfig
    )
    llib_size: int = 2048
    llrf_banks: int = 8
    llrf_bank_size: int = 256
    checkpoint_stack: int = 8
    checkpoint_interval: int = 256
    recovery_penalty: int = 16

    def with_cp(self, size_or_policy: str) -> "DkipConfig":
        """Clone with the CP queue configuration named like the paper
        ("INO", "OOO-20" ... "OOO-80")."""
        policy, size = _parse_queue_config(size_or_policy)
        cp = self.cache_processor.with_queues(size, policy)
        return replace(self, name=f"CP-{size_or_policy}", cache_processor=cp)

    def with_mp(self, size_or_policy: str) -> "DkipConfig":
        """Clone with the MP configuration ("INO", "OOO-20", "OOO-40")."""
        policy, size = _parse_queue_config(size_or_policy)
        mp = replace(self.memory_processor, queue_size=size, scheduler=policy)
        return replace(self, name=f"{self.name}/MP-{size_or_policy}", memory_processor=mp)


def _parse_queue_config(spec: str) -> tuple[SchedulerPolicy, int]:
    """Parse the paper's queue-config notation: "INO" or "OOO-<size>".

    The size must be a strictly positive decimal integer — ``OOO-0``,
    negative sizes and non-numeric tails are rejected with the allowed
    grammar in the message.
    """
    text = spec.upper()
    if text == "INO":
        return SchedulerPolicy.IN_ORDER, 20
    if text.startswith("OOO-"):
        tail = text[len("OOO-"):]
        if not tail.isdigit() or int(tail) <= 0:
            raise ValueError(
                f"bad queue size in {spec!r}; expected OOO-<positive "
                "integer> (e.g. OOO-40) or INO"
            )
        return SchedulerPolicy.OUT_OF_ORDER, int(tail)
    raise ValueError(
        f"bad queue configuration {spec!r}; expected INO or OOO-<positive "
        "integer> (e.g. OOO-40)"
    )


@dataclass(frozen=True)
class RunaheadConfig(Fingerprintable):
    """Runahead-execution comparator (Mutlu et al. — reference [24]).

    Not a paper figure: used by the ablation harness to quantify how much
    of the KILO-class benefit plain prefetch-by-pre-execution captures.
    """

    name: str = "runahead-64"
    core: CoreConfig = field(default_factory=lambda: CoreConfig(name="runahead-fe"))
    exit_penalty: int = 8


@dataclass(frozen=True)
class LimitMachine(Fingerprintable):
    """Descriptor of one idealized ROB-only run (Figures 1-3).

    :func:`repro.baselines.limit.simulate_limit` takes loose arguments
    rather than a config object; this dataclass captures them so limit
    cells fingerprint and replay through the result store exactly like
    the cycle-level machines.
    """

    rob_size: int | None = None
    predictor: str = "perceptron"
    width: int = 4
    redirect_penalty: int = 5
    record_histogram: bool = True

    @property
    def name(self) -> str:
        rob = "inf" if self.rob_size is None else self.rob_size
        return f"limit-rob-{rob}"


# ----------------------------------------------------------------------
# The named machines of Figure 9
# ----------------------------------------------------------------------

#: MIPS R10000-like baseline: 64-entry ROB, 40-entry queues (identical to
#: the default Cache Processor).
R10_64 = CoreConfig(name="R10-64", rob_size=64, iq_int=40, iq_fp=40)

#: "Futuristic" R10000: 256-entry ROB, 160-entry queues.
R10_256 = CoreConfig(name="R10-256", rob_size=256, iq_int=160, iq_fp=160)

#: KILO-1024 (pseudo-ROB 64 + out-of-order 1024-entry SLIQ, 72-entry IQs).
KILO_1024 = KiloConfig()

#: The paper's baseline D-KIP with two 2048-entry LLIBs.
DKIP_2048 = DkipConfig()
