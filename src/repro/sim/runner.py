"""Run orchestration: build a machine, warm its caches, simulate a trace.

The experiment harnesses (and the examples) go through these helpers so
that every run follows the same methodology: deterministic workload trace,
functional cache warm-up over the workload's data regions, fresh predictor
state, one simulator instance per run.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from repro.branch import make_predictor
from repro.isa import Instruction
from repro.memory import DEFAULT_MEMORY, MemoryConfig, MemoryHierarchy, warm_caches
from repro.sim.config import CoreConfig, DkipConfig, KiloConfig, RunaheadConfig
from repro.sim.stats import SimStats

MachineConfig = Union[CoreConfig, KiloConfig, DkipConfig, RunaheadConfig]


def build_core(
    config: MachineConfig,
    trace: Iterable[Instruction],
    hierarchy: MemoryHierarchy,
    predictor,
    stats: SimStats | None = None,
):
    """Instantiate the simulator matching *config*'s type."""
    # Imports are local to avoid a cycle: the cores import sim.config.
    from repro.baselines.kilo import KiloCore
    from repro.baselines.ooo import R10Core
    from repro.baselines.runahead import RunaheadCore
    from repro.core.dkip import DkipProcessor

    if isinstance(config, DkipConfig):
        return DkipProcessor(trace, config, hierarchy, predictor, stats)
    if isinstance(config, KiloConfig):
        return KiloCore(trace, config, hierarchy, predictor, stats)
    if isinstance(config, RunaheadConfig):
        return RunaheadCore(
            trace, config.core, hierarchy, predictor, stats,
            exit_penalty=config.exit_penalty,
        )
    if isinstance(config, CoreConfig):
        return R10Core(trace, config, hierarchy, predictor, stats)
    raise TypeError(f"unknown machine configuration type: {type(config)!r}")


def simulate(
    config: MachineConfig,
    trace: Sequence[Instruction],
    memory: MemoryConfig = DEFAULT_MEMORY,
    regions: Sequence[tuple[int, int]] | None = None,
    predictor_name: str | None = None,
    warmup_passes: int = 1,
    max_cycles: int | None = None,
) -> SimStats:
    """Simulate a materialized *trace* on the machine described by *config*.

    Args:
        regions: Workload data regions for functional cache warm-up
            (skipped when None or when the hierarchy has no finite cache).
        predictor_name: Override the config's branch predictor.
    """
    hierarchy = MemoryHierarchy(memory)
    if regions:
        warm_caches(hierarchy, regions, passes=warmup_passes)
    if predictor_name is None:
        predictor_name = getattr(config, "predictor", None) or "perceptron"
    predictor = make_predictor(predictor_name)
    stats = SimStats(config=getattr(config, "name", str(config)))
    core = build_core(config, iter(trace), hierarchy, predictor, stats)
    result = core.run(len(trace), max_cycles=max_cycles)
    result.branch_predictions = predictor.predictions
    result.branch_mispredictions = predictor.mispredictions
    return result


def run_core(
    config: MachineConfig,
    workload,
    num_instructions: int,
    memory: MemoryConfig = DEFAULT_MEMORY,
    warmup: bool = True,
    predictor_name: str | None = None,
) -> SimStats:
    """Convenience wrapper: materialize a workload trace and simulate it."""
    trace = workload.trace(num_instructions)
    regions = workload.regions if warmup else None
    stats = simulate(
        config,
        trace,
        memory=memory,
        regions=regions,
        predictor_name=predictor_name,
    )
    stats.workload = workload.name
    return stats
