"""Run orchestration: build a machine, warm its caches, simulate a trace.

The experiment harnesses (and the examples) go through these helpers so
that every run follows the same methodology: deterministic workload trace,
functional cache warm-up over the workload's data regions, fresh predictor
state, one simulator instance per run.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.branch import make_predictor
from repro.isa import Instruction
from repro.machines.registry import MachineDescription, build_machine
from repro.memory import DEFAULT_MEMORY, MemoryConfig, MemoryHierarchy, warm_caches
from repro.sim.stats import SimStats

#: Any machine configuration whose kind is registered with
#: :mod:`repro.machines` — the open-ended replacement for the old closed
#: Union of the four paper models.
MachineConfig = MachineDescription


def build_core(
    config: MachineConfig,
    trace: Iterable[Instruction],
    hierarchy: MemoryHierarchy,
    predictor,
    stats: SimStats | None = None,
):
    """Instantiate the simulator for *config* via the machine-kind
    registry (raises ``TypeError`` for unregistered config types)."""
    return build_machine(config, trace, hierarchy, predictor, stats)


def simulate(
    config: MachineConfig,
    trace: Sequence[Instruction],
    memory: MemoryConfig = DEFAULT_MEMORY,
    regions: Sequence[tuple[int, int]] | None = None,
    predictor_name: str | None = None,
    warmup_passes: int = 1,
    max_cycles: int | None = None,
    hierarchy: MemoryHierarchy | None = None,
    fast_forward: bool | None = None,
) -> SimStats:
    """Simulate a materialized *trace* on the machine described by *config*.

    Args:
        regions: Workload data regions for functional cache warm-up
            (skipped when None or when the hierarchy has no finite cache).
        predictor_name: Override the config's branch predictor.
        hierarchy: Pre-built (typically pre-warmed) memory hierarchy; when
            given, *memory*/*regions*/*warmup_passes* are ignored and the
            hierarchy is consumed by this run.
        fast_forward: Override the engine's cycle-skipping default
            (``False`` forces the tick-every-cycle reference mode).
    """
    if hierarchy is None:
        hierarchy = MemoryHierarchy(memory)
        if regions:
            warm_caches(hierarchy, regions, passes=warmup_passes)
    if predictor_name is None:
        predictor_name = getattr(config, "predictor", None) or "perceptron"
    predictor = make_predictor(predictor_name)
    stats = SimStats(config=getattr(config, "name", str(config)))
    core = build_core(config, iter(trace), hierarchy, predictor, stats)
    result = core.run(len(trace), max_cycles=max_cycles, fast_forward=fast_forward)
    result.branch_predictions = predictor.predictions
    result.branch_mispredictions = predictor.mispredictions
    return result


def run_core(
    config: MachineConfig,
    workload,
    num_instructions: int,
    memory: MemoryConfig = DEFAULT_MEMORY,
    warmup: bool = True,
    predictor_name: str | None = None,
    warm_cache=None,
    max_cycles: int | None = None,
) -> SimStats:
    """Convenience wrapper: materialize a workload trace and simulate it.

    Args:
        warm_cache: Optional :class:`repro.experiments.common.WarmupCache`;
            when given (and *warmup* is on), the functional cache warm-up
            for (memory, workload) runs once and later runs restore the
            snapshot instead of re-streaming the working set.
        max_cycles: Upper bound on simulated time (deadlock guard);
            forwarded to the engine so long-latency sweeps can tighten
            the default bound.
    """
    trace = workload.trace(num_instructions)
    hierarchy = None
    regions = workload.regions if warmup else None
    if warmup and warm_cache is not None:
        hierarchy = warm_cache.hierarchy_for(memory, workload)
        regions = None
    stats = simulate(
        config,
        trace,
        memory=memory,
        regions=regions,
        predictor_name=predictor_name,
        hierarchy=hierarchy,
        max_cycles=max_cycles,
    )
    stats.workload = workload.name
    return stats
