"""Simulation kernel: configurations, statistics and run orchestration."""

from repro.sim.stats import Histogram, SimStats
from repro.sim.config import (
    CoreConfig,
    DkipConfig,
    KiloConfig,
    SchedulerPolicy,
    R10_64,
    R10_256,
    KILO_1024,
    DKIP_2048,
)
from repro.sim.runner import run_core, simulate

__all__ = [
    "Histogram",
    "SimStats",
    "CoreConfig",
    "DkipConfig",
    "KiloConfig",
    "SchedulerPolicy",
    "R10_64",
    "R10_256",
    "KILO_1024",
    "DKIP_2048",
    "run_core",
    "simulate",
]
