"""In-process cell batching: N independent simulations, one sweep loop.

Wide sweep grids pay a fixed Python cost per cell — process dispatch,
trace decode, cache warm-up — that dwarfs the simulation itself at quick
scale.  :class:`BatchRunner` amortizes it: the caller registers N
independent (machine, memory, workload) cells and the runner steps them
round-robin inside one process, always resuming the cell whose local
clock is furthest behind (a min-heap over ``core.now``), so the batch
advances as one event-clock sweep.

Each cell runs through :meth:`repro.pipeline.core.CycleCore.drive`, the
cooperative generator twin of ``run()``: the cells never share simulator
state (each has its own hierarchy, predictor and trace), so any
interleaving produces per-cell :class:`SimStats` records bit-identical
to serial execution — ``tests/sim/test_batch.py`` asserts exactly that
for every registered machine kind.  What they *do* share is the process:
one warm-up cache, one import cost, one dispatch from the sweep layer.

Failure isolation is per cell: a cell that raises (``DeadlockError``,
a broken trace) is reported as its own ``("error", exception)`` outcome
while its batch siblings run to completion.
"""

from __future__ import annotations

import heapq
from typing import Iterator, Sequence

from repro.branch import make_predictor
from repro.isa import Instruction
from repro.memory import DEFAULT_MEMORY, MemoryConfig, MemoryHierarchy, warm_caches
from repro.sim.runner import MachineConfig, build_core
from repro.sim.stats import SimStats

#: Consecutive busy cycles one cell may tick before yielding its turn.
#: Large enough that generator suspension cost is noise (<0.1% of the
#: per-cycle work), small enough that a busy cell cannot starve the rest
#: of the batch for more than a few milliseconds.
DEFAULT_ROUND_BUDGET = 4096


def _one_shot(core, target: int, max_cycles: int | None, fast_forward: bool | None):
    """Degenerate driver for cores without :meth:`drive`: one full run."""
    return core.run(target, max_cycles=max_cycles, fast_forward=fast_forward)
    yield  # pragma: no cover - unreachable; marks this as a generator


class _BatchCell:
    """One registered simulation: its core, driver and finalization."""

    __slots__ = ("tag", "core", "driver", "predictor", "workload_name")

    def __init__(self, tag, core, driver, predictor, workload_name) -> None:
        self.tag = tag
        self.core = core
        self.driver = driver
        self.predictor = predictor
        self.workload_name = workload_name

    def finalize(self, stats: SimStats) -> SimStats:
        """Mirror of :func:`repro.sim.runner.simulate`'s post-run fixup."""
        stats.branch_predictions = self.predictor.predictions
        stats.branch_mispredictions = self.predictor.mispredictions
        if self.workload_name is not None:
            stats.workload = self.workload_name
        return stats


class BatchRunner:
    """Step registered cells round-robin until every one finishes.

    Usage::

        runner = BatchRunner()
        for tag, config, trace in cells:
            runner.add_simulation(tag, config, trace, ...)
        for tag, outcome, value in runner.stream():
            ...  # ("ok", SimStats) or ("error", the exception)

    Outcomes arrive in completion order (earliest-finishing local clock
    first), one per registered cell.  :meth:`run` is the collect-all
    convenience wrapper.
    """

    def __init__(self, round_budget: int = DEFAULT_ROUND_BUDGET) -> None:
        self.round_budget = round_budget
        self._cells: list[_BatchCell] = []

    def __len__(self) -> int:
        return len(self._cells)

    def add_simulation(
        self,
        tag,
        config: MachineConfig,
        trace: Sequence[Instruction],
        memory: MemoryConfig = DEFAULT_MEMORY,
        regions: Sequence[tuple[int, int]] | None = None,
        predictor_name: str | None = None,
        warmup_passes: int = 1,
        max_cycles: int | None = None,
        hierarchy: MemoryHierarchy | None = None,
        fast_forward: bool | None = None,
        workload_name: str | None = None,
    ) -> None:
        """Register one cell; arguments mirror :func:`repro.sim.runner.simulate`.

        Construction happens here (trace must be materialized, hierarchy
        warmed or restored), so a construction-time error raises to the
        caller rather than surfacing mid-stream.
        """
        if hierarchy is None:
            hierarchy = MemoryHierarchy(memory)
            if regions:
                warm_caches(hierarchy, regions, passes=warmup_passes)
        if predictor_name is None:
            predictor_name = getattr(config, "predictor", None) or "perceptron"
        predictor = make_predictor(predictor_name)
        stats = SimStats(config=getattr(config, "name", str(config)))
        core = build_core(config, iter(trace), hierarchy, predictor, stats)
        if hasattr(core, "drive"):
            driver = core.drive(
                len(trace),
                max_cycles=max_cycles,
                fast_forward=fast_forward,
                round_budget=self.round_budget,
            )
        else:
            # Non-cycle-level adapters (the limit core's one-pass study)
            # have no cooperative driver; run them whole on their turn.
            driver = _one_shot(core, len(trace), max_cycles, fast_forward)
        self._cells.append(_BatchCell(tag, core, driver, predictor, workload_name))

    def stream(self) -> Iterator[tuple[object, str, object]]:
        """Run the batch, yielding ``(tag, outcome, value)`` per cell.

        ``outcome`` is ``"ok"`` (value: the finalized :class:`SimStats`)
        or ``"error"`` (value: the exception the cell raised).  The heap
        keys on each cell's local clock, so the sweep always advances the
        cell furthest behind in simulated time; registration order breaks
        ties, keeping the schedule deterministic.
        """
        heap: list[tuple[int, int, _BatchCell]] = [
            (getattr(cell.core, "now", 0), index, cell)
            for index, cell in enumerate(self._cells)
        ]
        heapq.heapify(heap)
        while heap:
            _now, index, cell = heapq.heappop(heap)
            try:
                resumed_at = next(cell.driver)
            except StopIteration as stop:
                yield cell.tag, "ok", cell.finalize(stop.value)
            except Exception as error:  # noqa: BLE001 - isolated per cell
                yield cell.tag, "error", error
            else:
                heapq.heappush(heap, (resumed_at, index, cell))

    def run(self) -> dict:
        """Collect :meth:`stream` into ``{tag: (outcome, value)}``."""
        return {tag: (outcome, value) for tag, outcome, value in self.stream()}
