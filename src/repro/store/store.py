"""The on-disk content-addressed store itself.

Layout::

    <root>/objects/<digest[:2]>/<digest>.json

One JSON object per cell::

    {"format": 1, "digest": ..., "key": {<full key payload>}, "stats": {...}}

Writes are atomic (temp file + ``os.replace``) so a sweep killed
mid-write never leaves a half-entry behind; reads treat *any* defect —
truncated JSON, digest mismatch, schema drift — as a miss and recompute
rather than crash.
"""

from __future__ import annotations

import itertools
import json
import os
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.fingerprint import CANON_VERSION, canonical, digest
from repro.resilience.faults import plan_from_env
from repro.sim.stats import STATS_SCHEMA_VERSION, SimStats

#: On-disk entry envelope version (distinct from the stats schema).
ENTRY_FORMAT = 1

#: Monotonic per-process suffix component for temp files; combined with
#: the pid and fresh entropy so two threads in one process — or two
#: hosts sharing a store over a network filesystem — never collide on
#: the same in-flight temp name.
_TMP_COUNTER = itertools.count()


@dataclass(frozen=True)
class CellKey:
    """Full description of one simulation cell plus its content digest."""

    payload: dict = field(hash=False)
    digest: str = ""

    def __hash__(self) -> int:  # payload is a dict; the digest covers it
        return hash(self.digest)


def cell_key(
    machine: Any,
    workload: Any,
    num_instructions: int,
    memory: Any,
    *,
    predictor: str | None = None,
    warmup_passes: int = 1,
) -> CellKey:
    """Build the key of one (machine, workload, scale) cell.

    *machine* and *memory* are config dataclasses (serialized in full so
    the cell can be re-run from the stored key); *workload* is a
    :class:`repro.workloads.Workload` instance.  The stats-schema version
    is folded in so a schema bump invalidates every cached cell at once.
    """
    payload = {
        "canon": CANON_VERSION,
        "schema": STATS_SCHEMA_VERSION,
        "machine": canonical(machine),
        "memory": canonical(memory),
        "workload": {
            "name": workload.name,
            "seed": workload.seed,
            "fingerprint": workload.fingerprint(),
        },
        "instructions": num_instructions,
        "predictor": predictor,
        "warmup_passes": warmup_passes,
    }
    return CellKey(payload=payload, digest=digest(payload))


class ResultStore:
    """Content-addressed store of :class:`SimStats`, one file per cell."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.writes = 0

    # ------------------------------------------------------------------
    # Core get/put
    # ------------------------------------------------------------------

    def path_for(self, key: CellKey) -> Path:
        """Return the object path *key*'s stats live at (existing or not)."""
        return self.root / "objects" / key.digest[:2] / f"{key.digest}.json"

    def contains(self, key: CellKey) -> bool:
        """Return whether an entry *file* exists for *key* — no validation.

        A zero-length or corrupt entry still reports present, so this is
        only a cheap existence probe (counters, tests, diagnostics).
        Skip decisions — "is this cell already done?" in a sweep or the
        service scheduler — must go through :meth:`get`, which validates
        the envelope and stats digest and reads any defect as a miss.
        """
        return self.path_for(key).exists()

    def get(self, key: CellKey) -> SimStats | None:
        """Return the stored stats for *key*, or ``None`` on a miss.

        Absent, unreadable, tampered-with and schema-stale entries all
        read as misses — the caller recomputes rather than crashes.
        """
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry["format"] != ENTRY_FORMAT or entry["digest"] != key.digest:
                raise ValueError("entry/key mismatch")
            # The key digest covers inputs only; the stats body carries
            # its own content hash so in-place corruption that is still
            # valid JSON reads as a miss, not a hit.
            if entry["stats_digest"] != digest(entry["stats"]):
                raise ValueError("stats digest mismatch")
            stats = SimStats.from_dict(entry["stats"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Truncated/corrupt/stale entries recompute instead of crash.
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return stats

    def put(self, key: CellKey, stats: SimStats) -> Path:
        """Atomically and durably persist *stats* under *key* (overwrites).

        The temp file is fsynced before ``os.replace`` and the object
        directory after it, so a host crash right after ``put`` returns
        cannot leave a zero-length or half-written entry behind — the
        rename is only published once the bytes are on disk.  A
        ``store:corrupt`` fault clause (``$REPRO_FAULT``, chaos tests
        only) truncates the serialized entry on its way to disk, keyed
        by ``<digest>#<write counter>`` so a clean follow-up run
        self-heals the damaged cell.

        The temp name is unique per call (pid + counter + entropy), not
        per process: concurrent writers of the same cell — service
        workers racing after a lease expiry, or two hosts on a shared
        filesystem — each publish their own complete temp file, and the
        ``finally`` unlinks it when a raised write/fsync aborts before
        the rename, so failures never orphan ``.tmp.*`` litter.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        stats_dict = stats.to_dict()
        entry = {
            "format": ENTRY_FORMAT,
            "digest": key.digest,
            "key": key.payload,
            "stats": stats_dict,
            "stats_digest": digest(stats_dict),
        }
        text = json.dumps(entry, sort_keys=True)
        plan = plan_from_env()
        if plan is not None:
            text = plan.corrupt_store_text(f"{key.digest}#{self.writes}", text)
        tmp = path.with_suffix(
            f".tmp.{os.getpid()}.{next(_TMP_COUNTER)}.{os.urandom(4).hex()}"
        )
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        finally:
            # On success the rename consumed the temp file; on any raise
            # above, this removes it (missing_ok covers both).
            tmp.unlink(missing_ok=True)
        self._fsync_dir(path.parent)
        self.writes += 1
        return path

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        """Flush a directory entry so a completed rename survives a crash."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-specific
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-specific
            pass
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # Maintenance: stats / prune / verify
    # ------------------------------------------------------------------

    def iter_entries(self) -> Iterator[tuple[Path, dict | None]]:
        """Every ``(path, entry)`` in the store; ``None`` entry = corrupt.

        The store is a shared, concurrently-written substrate: another
        process may ``put`` or ``prune`` while we iterate.  A file that
        vanishes between the directory listing and its open is simply
        skipped — it is gone, not corrupt — so maintenance over a live
        store never crashes or misreports phantom corruption.
        """
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        for path in sorted(objects.glob("*/*.json")):
            try:
                with open(path, encoding="utf-8") as handle:
                    entry = json.load(handle)
                # Same envelope validation as get(): anything a lookup
                # would reject, maintenance treats as corrupt too.
                if entry["format"] != ENTRY_FORMAT or entry["digest"] != path.stem:
                    raise ValueError("envelope mismatch")
                if not isinstance(entry["key"], dict):
                    raise ValueError("incomplete entry")
                if entry["stats_digest"] != digest(entry["stats"]):
                    raise ValueError("stats digest mismatch")
            except FileNotFoundError:
                continue
            except (OSError, ValueError, KeyError, TypeError):
                yield path, None
                continue
            yield path, entry

    def summary(self) -> dict:
        """Aggregate statistics for ``dkip-experiments cache stats``."""
        entries = 0
        corrupt = 0
        stale = 0
        total_bytes = 0
        machines: dict[str, int] = {}
        workloads: dict[str, int] = {}
        for path, entry in self.iter_entries():
            try:
                total_bytes += path.stat().st_size
            except FileNotFoundError:
                # Pruned (or re-put) under us between read and stat;
                # count the entry, skip its vanished size.
                pass
            if entry is None:
                corrupt += 1
                continue
            entries += 1
            key = entry.get("key", {})
            if key.get("schema") != STATS_SCHEMA_VERSION:
                stale += 1
            kind = key.get("machine", {}).get("__kind__", "?")
            machines[kind] = machines.get(kind, 0) + 1
            name = key.get("workload", {}).get("name", "?")
            workloads[name] = workloads.get(name, 0) + 1
        return {
            "root": str(self.root),
            "entries": entries,
            "corrupt": corrupt,
            "stale_schema": stale,
            "bytes": total_bytes,
            "machines": dict(sorted(machines.items())),
            "workloads": dict(sorted(workloads.items())),
        }

    def prune(self, everything: bool = False) -> int:
        """Delete corrupt and schema-stale entries; return the count removed.

        With *everything* set, delete every entry.  Temp files orphaned
        by writes that were killed mid-flight are swept either way.
        """
        removed = 0
        for path, entry in self.iter_entries():
            stale = (
                entry is None
                or entry.get("key", {}).get("schema") != STATS_SCHEMA_VERSION
            )
            if everything or stale:
                path.unlink(missing_ok=True)
                removed += 1
        objects = self.root / "objects"
        if objects.is_dir():
            for orphan in objects.glob("*/*.tmp.*"):
                orphan.unlink(missing_ok=True)
                removed += 1
        return removed

    def quarantine_entry(self, path: Path) -> Path:
        """Move one entry file to ``<root>/.quarantine/`` and return it.

        Quarantined entries are out of the lookup path (``get`` never
        sees them) but preserved byte-for-byte for post-mortems, unlike
        ``prune`` which deletes the evidence.
        """
        dest_dir = self.root / ".quarantine"
        dest_dir.mkdir(parents=True, exist_ok=True)
        dest = dest_dir / path.name
        os.replace(path, dest)
        return dest

    def validated(self, key: CellKey) -> bool:
        """Return whether *key* has a fully valid stored entry.

        The skip-decision predicate (:meth:`contains` is existence-only):
        reads and validates the entry without touching the hit/miss
        counters, so schedulers can probe without skewing run stats.
        """
        hits, misses, corrupt = self.hits, self.misses, self.corrupt
        found = self.get(key) is not None
        self.hits, self.misses, self.corrupt = hits, misses, corrupt
        return found

    def verify(
        self,
        compute: Callable[[dict], SimStats],
        sample: int | None = None,
        rng_seed: int | None = 0,
        quarantine: bool = False,
    ) -> list[dict]:
        """Re-run stored cells and diff against their cached stats.

        *compute* maps a key payload back to a freshly simulated
        :class:`SimStats` (see ``repro.experiments.common.compute_cell``).
        A mismatch means the cache is stale relative to the current code —
        i.e. something changed behaviour without changing a fingerprint.
        Returns one report dict per checked cell.  Entries written under
        a different stats schema are skipped: get() already never serves
        them (prune removes them), so re-simulating could only produce a
        false alarm.

        With *quarantine* set, corrupt and schema-stale entries are
        moved to ``<root>/.quarantine/`` (via :meth:`quarantine_entry`)
        instead of being silently skipped, and reported with status
        ``quarantined``.
        """
        checked: list[tuple[Path, dict]] = []
        quarantined: list[dict] = []
        for p, e in self.iter_entries():
            healthy = (
                e is not None
                and e.get("key", {}).get("schema") == STATS_SCHEMA_VERSION
            )
            if healthy:
                checked.append((p, e))
            elif quarantine:
                reason = "corrupt entry" if e is None else "stale stats schema"
                try:
                    dest = self.quarantine_entry(p)
                except FileNotFoundError:
                    continue  # concurrently pruned/overwritten: nothing to keep
                quarantined.append(
                    {"digest": p.stem, "cell": "?", "status": "quarantined",
                     "detail": f"{reason}; moved to {dest}"}
                )
        if sample is not None and sample < len(checked):
            # rng_seed=None draws fresh entropy, so repeated sampled
            # verifies cover different cells over time.
            rng = random.Random(rng_seed)
            checked = rng.sample(checked, sample)
        reports = quarantined
        for path, entry in checked:
            key = entry["key"]
            label = "{}/{}/n={}".format(
                key.get("machine", {}).get("name")
                or key.get("machine", {}).get("__kind__", "?"),
                key.get("workload", {}).get("name", "?"),
                key.get("instructions", "?"),
            )
            try:
                fresh = compute(key)
            except Exception as error:  # noqa: BLE001 - report, don't die
                reports.append(
                    {"digest": entry["digest"], "cell": label,
                     "status": "error", "detail": str(error)}
                )
                continue
            stored = entry["stats"]
            current = fresh.to_dict()
            if stored == current:
                reports.append(
                    {"digest": entry["digest"], "cell": label, "status": "ok"}
                )
            else:
                diffs = [
                    f"{name}: stored {stored.get(name)!r} != fresh {value!r}"
                    for name, value in current.items()
                    if stored.get(name) != value
                ]
                reports.append(
                    {"digest": entry["digest"], "cell": label,
                     "status": "stale", "detail": "; ".join(diffs[:4])}
                )
        return reports
