"""Round-trip (de)serialization of machine and memory configurations.

The store keeps each cell's full key payload — not just its digest — so
``cache verify`` can rebuild the original configuration objects and
re-run the simulation from nothing but the stored entry.  The tagged
canonical form of :func:`repro.fingerprint.canonical` doubles as the
wire format: every dataclass serializes to ``{"__kind__": <class>,
<field>: <value>, ...}`` and :func:`from_jsonable` inverts it through
the kind registry below.
"""

from __future__ import annotations

import dataclasses
import enum
import typing
from typing import Any

from repro.fingerprint import canonical
from repro.memory.configs import MemoryConfig
from repro.sim.config import (
    CoreConfig,
    DkipConfig,
    FuConfig,
    KiloConfig,
    LimitMachine,
    MemoryProcessorConfig,
    RunaheadConfig,
)

#: Dataclass kinds the store can reconstruct, keyed by class name.
KINDS: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        FuConfig,
        CoreConfig,
        KiloConfig,
        MemoryProcessorConfig,
        DkipConfig,
        RunaheadConfig,
        LimitMachine,
        MemoryConfig,
    )
}


def to_jsonable(obj: Any) -> Any:
    """Serialize a configuration (or any canonicalizable value)."""
    return canonical(obj)


def from_jsonable(data: Any) -> Any:
    """Rebuild the value serialized by :func:`to_jsonable`.

    Tagged dicts become instances of the registered dataclass, with enum
    fields coerced back to their enum type; unknown kinds raise
    ``ValueError`` (the store treats that as corruption).
    """
    if isinstance(data, dict) and "__kind__" in data:
        kind = data["__kind__"]
        cls = KINDS.get(kind)
        if cls is None:
            # Machine kinds registered outside the built-in set (via
            # repro.machines) round-trip through the registry's config
            # classes; the lazy import keeps the store importable first.
            from repro.machines.registry import config_class_named

            cls = config_class_named(kind)
        if cls is None:
            raise ValueError(f"unknown configuration kind {kind!r}")
        hints = typing.get_type_hints(cls)
        kwargs = {}
        for field in dataclasses.fields(cls):
            value = from_jsonable(data[field.name])
            hint = hints.get(field.name)
            if isinstance(hint, type) and issubclass(hint, enum.Enum):
                value = hint(value)
            kwargs[field.name] = value
        return cls(**kwargs)
    if isinstance(data, dict):
        return {key: from_jsonable(value) for key, value in data.items()}
    if isinstance(data, list):
        return [from_jsonable(item) for item in data]
    return data
