"""Content-addressed result store for simulation sweeps.

Every (machine config, memory config, workload+seed, instruction budget,
stats-schema version) cell fingerprints to a stable digest
(:mod:`repro.fingerprint`); the store keeps one JSON object per digest
under ``<root>/objects/<d[:2]>/<digest>.json``.  Sweeps consult the store
before simulating and write each cell back as it completes, so an
interrupted sweep resumes where it stopped and a re-run with one changed
parameter recomputes only the changed cells.
"""

from repro.store.serialize import from_jsonable, to_jsonable
from repro.store.store import CellKey, ResultStore, cell_key

__all__ = [
    "CellKey",
    "ResultStore",
    "cell_key",
    "from_jsonable",
    "to_jsonable",
]
