"""Deterministic content fingerprints for configurations and results.

The result store (:mod:`repro.store`) addresses every simulation cell by
a digest of *what produced it*: machine configuration, memory
configuration, workload identity, instruction budget and stats-schema
version.  Python's builtin ``hash`` is salted per process, so the digest
here is built from a canonical JSON rendering hashed with SHA-256 —
stable across processes, interpreter versions and machines.

This module deliberately imports nothing from the rest of the package so
that any layer (sim, memory, workloads, store) can use it without
creating an import cycle.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

#: Bump when the canonicalization rules themselves change incompatibly.
CANON_VERSION = 1


def canonical(obj: Any) -> Any:
    """Recursively convert *obj* into a canonical JSON-compatible value.

    Handles dataclasses (tagged with their class name so two config types
    with identical fields never collide), enums, mappings and sequences.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out: dict[str, Any] = {"__kind__": type(obj).__name__}
        for field in dataclasses.fields(obj):
            out[field.name] = canonical(getattr(obj, field.name))
        return out
    if isinstance(obj, enum.Enum):
        return canonical(obj.value)
    if isinstance(obj, dict):
        return {str(key): canonical(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    if isinstance(obj, float):
        # repr() round-trips floats exactly; integral floats normalize so
        # 4.0 and 4 fingerprint identically regardless of the source type.
        return int(obj) if obj.is_integer() else obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__!r} for fingerprinting")


def canonical_json(obj: Any) -> str:
    """Canonical JSON text: sorted keys, no whitespace, UTF-8-safe."""
    return json.dumps(canonical(obj), sort_keys=True, separators=(",", ":"))


def digest(obj: Any) -> str:
    """Hex SHA-256 of the canonical JSON rendering of *obj*."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


class Fingerprintable:
    """Mixin giving (frozen dataclass) configurations a content digest.

    Two instances fingerprint identically iff every field — including
    nested dataclasses and enums — is equal; the class name is mixed in,
    so structurally identical configs of different types stay distinct.
    """

    def fingerprint(self) -> str:
        return digest(self)
