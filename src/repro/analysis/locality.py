"""Machine-independent execution-locality analysis.

These functions replay a trace *functionally* against a cache model — no
timing, no pipeline — and propagate long-latency taint through registers,
which is exactly the classification the D-KIP's Analyze stage performs in
hardware with its LLBV.  They answer the sizing questions of the paper:

* how much of the dynamic instruction stream is low locality (the D-KIP's
  §4.4 CP/MP split is the timed version of this number);
* how long the contiguous low-locality slices are (LLIB capacity);
* how many independent misses land inside a window (the MLP a large
  effective window can expose).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.isa import Instruction
from repro.isa.registers import NUM_REGS
from repro.memory.cache import AccessLevel
from repro.memory.hierarchy import MemoryHierarchy


@dataclass
class LocalityReport:
    """Outcome of :func:`classify_locality`."""

    total: int = 0
    low_locality: int = 0
    long_latency_loads: int = 0
    #: op-class name -> low-locality count (who populates the LLIB).
    low_by_op: Counter = field(default_factory=Counter)
    #: per-instruction classification, aligned with the input trace.
    flags: list[bool] = field(default_factory=list)

    @property
    def high_locality(self) -> int:
        return self.total - self.low_locality

    @property
    def low_fraction(self) -> float:
        return self.low_locality / self.total if self.total else 0.0


def classify_locality(
    trace: Iterable[Instruction], hierarchy: MemoryHierarchy
) -> LocalityReport:
    """Split a trace into high/low execution locality.

    Taint rules mirror the Analyze stage: a load missing to memory marks
    its destination long latency; any instruction reading a long-latency
    register is low locality and taints its own destination; a
    short-latency definition clears the taint.  (Checkpoint-recovery
    clearing does not apply — this is the un-speculated dataflow view.)
    """
    report = LocalityReport()
    tainted = [False] * NUM_REGS
    # Nominal one-instruction-per-cycle clock so outstanding line fills
    # elapse the way they would in steady-state execution.
    now = 0
    for instr in trace:
        now += 1
        report.total += 1
        low = any(tainted[src] for src in instr.live_srcs())
        if instr.is_load and not low:
            # The load itself executes promptly; does its value come from
            # off chip?
            _, level = hierarchy.access(instr.addr, write=False, now=now)
            if level == AccessLevel.MEMORY:
                report.long_latency_loads += 1
                if instr.dest is not None:
                    tainted[instr.dest] = True
            elif instr.dest is not None:
                tainted[instr.dest] = False
        else:
            if instr.is_mem:
                hierarchy.access(instr.addr, write=instr.is_store, now=now)
            if instr.dest is not None:
                tainted[instr.dest] = low
        if low:
            report.low_locality += 1
            report.low_by_op[instr.op.short_name] += 1
        report.flags.append(low)
    return report


@dataclass
class SliceReport:
    """Contiguous low-locality slice statistics (LLIB sizing)."""

    slices: int = 0
    longest: int = 0
    total_instructions: int = 0
    histogram: Counter = field(default_factory=Counter)

    @property
    def mean_length(self) -> float:
        return self.total_instructions / self.slices if self.slices else 0.0


def slice_profile(report: LocalityReport, gap: int = 4) -> SliceReport:
    """Group low-locality instructions into slices.

    Two low-locality instructions belong to the same slice when fewer than
    *gap* high-locality instructions separate them (the LLIB drains
    between slices, so small gaps don't reset its occupancy).
    """
    out = SliceReport()
    run = 0
    misses_since = 0
    for low in report.flags:
        if low:
            if run == 0:
                out.slices += 1
            run += 1
            misses_since = 0
        else:
            misses_since += 1
            if run and misses_since >= gap:
                out.histogram[_bucket(run)] += 1
                out.longest = max(out.longest, run)
                out.total_instructions += run
                run = 0
    if run:
        out.histogram[_bucket(run)] += 1
        out.longest = max(out.longest, run)
        out.total_instructions += run
    return out


def _bucket(length: int) -> int:
    """Power-of-two histogram bucket (1, 2, 4, 8, ...)."""
    bucket = 1
    while bucket < length:
        bucket *= 2
    return bucket


@dataclass
class MlpReport:
    """Miss-level-parallelism profile (what a window can overlap)."""

    window: int = 0
    total_misses: int = 0
    #: mean number of *independent* misses per window that contains >= 1.
    mean_overlap: float = 0.0
    max_overlap: int = 0


def mlp_profile(
    trace: Iterable[Instruction],
    hierarchy: MemoryHierarchy,
    window: int = 256,
) -> MlpReport:
    """Count independent memory misses per *window* dynamic instructions.

    A miss whose base register is tainted by an earlier in-window miss is
    *dependent* (serialized — mcf's chains); the rest could overlap in a
    window of this size.  The contrast between SpecFP (high overlap) and
    pointer chasers (overlap ~1) is the paper's Figure 4 in numbers.
    """
    report = MlpReport(window=window)
    tainted = [False] * NUM_REGS
    overlaps: list[int] = []
    independent_in_window = 0
    position = 0
    now = 0
    for instr in trace:
        now += 1
        if position == window:
            if independent_in_window:
                overlaps.append(independent_in_window)
            independent_in_window = 0
            position = 0
            tainted = [False] * NUM_REGS
        position += 1
        if not instr.is_mem:
            if instr.dest is not None:
                tainted[instr.dest] = any(
                    tainted[s] for s in instr.live_srcs()
                )
            continue
        _, level = hierarchy.access(instr.addr, write=instr.is_store, now=now)
        if level != AccessLevel.MEMORY or instr.is_store:
            if instr.dest is not None:
                tainted[instr.dest] = False
            continue
        report.total_misses += 1
        dependent = any(tainted[s] for s in instr.live_srcs())
        if not dependent:
            independent_in_window += 1
        if instr.dest is not None:
            tainted[instr.dest] = True
    if independent_in_window:
        overlaps.append(independent_in_window)
    if overlaps:
        report.mean_overlap = sum(overlaps) / len(overlaps)
        report.max_overlap = max(overlaps)
    return report
