"""Program-analysis utilities around *execution locality*.

The paper's Section 2 is an analysis methodology as much as a design: it
classifies instructions by their dependence on off-chip accesses and
reasons about slice sizes and miss-level parallelism before proposing any
hardware.  This package provides that methodology as a library, machine-
independently (pure dataflow over a trace + cache model, no pipeline):

* :func:`classify_locality` — per-instruction high/low locality split and
  the register-poisoning dataflow behind it;
* :func:`slice_profile` — sizes of low-locality slices (what the LLIB must
  buffer contiguously);
* :func:`mlp_profile` — how many independent misses a window of the given
  size could overlap (why "Karkhanis' observation" makes KILO processors
  work).
"""

from repro.analysis.locality import (
    LocalityReport,
    MlpReport,
    SliceReport,
    classify_locality,
    mlp_profile,
    slice_profile,
)

__all__ = [
    "LocalityReport",
    "MlpReport",
    "SliceReport",
    "classify_locality",
    "mlp_profile",
    "slice_profile",
]
