"""Execution latencies per operation class.

Memory operations are *not* covered here: their latency is produced by the
cache hierarchy (:mod:`repro.memory`) at access time.  The values below
mirror the classic SimpleScalar/R10000-era latencies implied by the paper's
functional-unit mix (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import OpClass


@dataclass(frozen=True)
class LatencyTable:
    """Fixed execution latency (cycles) per non-memory operation class.

    Attributes:
        int_alu: Simple integer ops (1 cycle).
        int_mul: Integer multiply.
        fp_add: FP add/sub/compare/convert.
        fp_mul: FP multiply.
        fp_div: FP divide (unpipelined in the FU model).
        branch: Condition evaluation.
        agen: Address-generation component added to every memory access.
    """

    int_alu: int = 1
    int_mul: int = 3
    fp_add: int = 2
    fp_mul: int = 4
    fp_div: int = 12
    branch: int = 1
    agen: int = 1

    def latency_of(self, op: OpClass) -> int:
        """Return the fixed latency of *op*.

        For loads/stores this is only the address-generation part; callers
        add the memory-system latency on top.
        """
        table = {
            OpClass.INT_ALU: self.int_alu,
            OpClass.INT_MUL: self.int_mul,
            OpClass.FP_ADD: self.fp_add,
            OpClass.FP_MUL: self.fp_mul,
            OpClass.FP_DIV: self.fp_div,
            OpClass.BRANCH: self.branch,
            OpClass.JUMP: self.branch,
            OpClass.NOP: 1,
            OpClass.LOAD: self.agen,
            OpClass.STORE: self.agen,
            OpClass.FP_LOAD: self.agen,
            OpClass.FP_STORE: self.agen,
        }
        return table[op]


#: Default latencies used across the evaluation.
DEFAULT_LATENCIES = LatencyTable()
