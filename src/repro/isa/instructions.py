"""The dynamic instruction record flowing through every simulator.

An :class:`Instruction` is one *dynamic* instruction of a trace: it carries
its sequence number, program counter, operation class, architectural
registers, and — because our simulators are trace driven — the resolved
memory address and branch outcome.  Timing models never mutate instructions;
all per-core state lives in the cores' own in-flight records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import BRANCH_OPS, FP_OPS, LOAD_OPS, MEM_OPS, OpClass, STORE_OPS
from repro.isa.registers import (
    NUM_REGS,
    RegisterName,
    is_fp_reg,
    is_zero_reg,
    reg_name,
)


@dataclass(slots=True, frozen=True)
class Instruction:
    """One dynamic instruction.

    Attributes:
        seq: Position in the dynamic instruction stream (0-based).
        pc: Program counter of the static instruction (byte address).
        op: Operation class (decides functional unit and latency).
        dest: Destination register id, or ``None`` when the instruction does
            not produce a register value (stores, branches, nops).
        srcs: Source register ids (0, 1 or 2 entries; zero registers are
            allowed and treated as always ready).
        addr: Effective memory address for loads/stores, else ``None``.
        size: Memory access size in bytes (loads/stores only).
        taken: Branch outcome for control-flow instructions, else ``None``.
        target: Branch/jump target pc, else ``None``.
    """

    seq: int
    pc: int
    op: OpClass
    dest: RegisterName | None = None
    srcs: tuple[RegisterName, ...] = ()
    addr: int | None = None
    size: int = 8
    taken: bool | None = None
    target: int | None = None

    # -- classification flags (hot paths read these constantly) -----------
    # Precomputed once at construction; excluded from comparison/hash/repr
    # so equality semantics match the nine architectural fields above.
    is_load: bool = field(init=False, compare=False, repr=False)
    is_store: bool = field(init=False, compare=False, repr=False)
    is_mem: bool = field(init=False, compare=False, repr=False)
    is_branch: bool = field(init=False, compare=False, repr=False)
    is_cond_branch: bool = field(init=False, compare=False, repr=False)
    #: True when the instruction executes on the FP cluster.  The D-KIP
    #: routes instructions to the integer or floating-point LLIB based on
    #: this flag (Section 3.2: "There is one LLIB for floating point and
    #: another LLIB for integer instructions").
    is_fp: bool = field(init=False, compare=False, repr=False)
    _live_srcs: tuple[RegisterName, ...] = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.dest is not None and not 0 <= self.dest < NUM_REGS:
            raise ValueError(f"dest register out of range: {self.dest}")
        if len(self.srcs) > 2:
            raise ValueError("Alpha-like ISA allows at most 2 source registers")
        for src in self.srcs:
            if not 0 <= src < NUM_REGS:
                raise ValueError(f"source register out of range: {src}")
        op = self.op
        if op in MEM_OPS and self.addr is None:
            raise ValueError(f"memory instruction without address: {self}")
        if op in BRANCH_OPS and self.taken is None:
            raise ValueError(f"branch instruction without outcome: {self}")
        setattr = object.__setattr__
        setattr(self, "is_load", op in LOAD_OPS)
        setattr(self, "is_store", op in STORE_OPS)
        setattr(self, "is_mem", op in MEM_OPS)
        setattr(self, "is_branch", op in BRANCH_OPS)
        setattr(self, "is_cond_branch", op == OpClass.BRANCH)
        setattr(
            self,
            "is_fp",
            (self.dest is not None and is_fp_reg(self.dest)) or op in FP_OPS,
        )
        setattr(
            self, "_live_srcs", tuple(s for s in self.srcs if not is_zero_reg(s))
        )

    def live_srcs(self) -> tuple[RegisterName, ...]:
        """Source registers excluding the hardwired zero registers."""
        return self._live_srcs

    def disassemble(self) -> str:
        """Render a human-readable one-line disassembly."""
        parts = [f"{self.seq:>8d}", f"0x{self.pc:08x}", f"{self.op.short_name:<5s}"]
        operands = []
        if self.dest is not None:
            operands.append(reg_name(self.dest))
        operands.extend(reg_name(s) for s in self.srcs)
        parts.append(", ".join(operands))
        if self.addr is not None:
            parts.append(f"[0x{self.addr:x}]")
        if self.taken is not None:
            parts.append("T" if self.taken else "NT")
        return " ".join(p for p in parts if p)


class InstructionBuilder:
    """Incremental builder assigning sequence numbers and pcs.

    Convenience for tests and small hand-written traces; the workload DSL in
    :mod:`repro.trace.kernel` builds on richer machinery.
    """

    def __init__(self, start_pc: int = 0x1000) -> None:
        self._seq = 0
        self._pc = start_pc

    @property
    def next_seq(self) -> int:
        return self._seq

    def emit(
        self,
        op: OpClass,
        dest: RegisterName | None = None,
        srcs: tuple[RegisterName, ...] = (),
        addr: int | None = None,
        size: int = 8,
        taken: bool | None = None,
        target: int | None = None,
        pc: int | None = None,
    ) -> Instruction:
        """Create the next instruction in sequence."""
        if pc is None:
            pc = self._pc
        instr = Instruction(
            seq=self._seq,
            pc=pc,
            op=op,
            dest=dest,
            srcs=srcs,
            addr=addr,
            size=size,
            taken=taken,
            target=target,
        )
        self._seq += 1
        self._pc = pc + 4
        return instr

    def alu(self, dest: RegisterName, *srcs: RegisterName) -> Instruction:
        return self.emit(OpClass.INT_ALU, dest=dest, srcs=tuple(srcs))

    def load(self, dest: RegisterName, base: RegisterName, addr: int) -> Instruction:
        return self.emit(OpClass.LOAD, dest=dest, srcs=(base,), addr=addr)

    def store(self, src: RegisterName, base: RegisterName, addr: int) -> Instruction:
        return self.emit(OpClass.STORE, srcs=(src, base), addr=addr)

    def branch(self, src: RegisterName, taken: bool, target: int = 0) -> Instruction:
        return self.emit(OpClass.BRANCH, srcs=(src,), taken=taken, target=target)
