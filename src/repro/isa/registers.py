"""Register model: 32 integer + 32 floating-point architectural registers.

Registers are identified by small integers: ``0..31`` are the integer
registers ``r0..r31`` and ``32..63`` are the floating-point registers
``f0..f31``.  Following the Alpha convention, ``r31`` and ``f31`` read as
zero and writes to them are discarded; the simulators treat them as always
READY and never allocate storage for them.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_REGS = NUM_INT_REGS + NUM_FP_REGS

#: First identifier of the floating-point register file.
FP_BASE = NUM_INT_REGS

#: The architectural zero registers.
INT_ZERO = NUM_INT_REGS - 1          # r31
FP_ZERO = FP_BASE + NUM_FP_REGS - 1  # f31

#: Alias used in type annotations for readability.
RegisterName = int


def int_reg(index: int) -> RegisterName:
    """Return the register id of integer register ``r<index>``."""
    if not 0 <= index < NUM_INT_REGS:
        raise ValueError(f"integer register index out of range: {index}")
    return index


def fp_reg(index: int) -> RegisterName:
    """Return the register id of floating-point register ``f<index>``."""
    if not 0 <= index < NUM_FP_REGS:
        raise ValueError(f"fp register index out of range: {index}")
    return FP_BASE + index


def is_fp_reg(reg: RegisterName) -> bool:
    """Return True when *reg* belongs to the floating-point file."""
    return reg >= FP_BASE


def is_zero_reg(reg: RegisterName) -> bool:
    """Return True for the hardwired zero registers (r31 / f31)."""
    return reg == INT_ZERO or reg == FP_ZERO


def reg_name(reg: RegisterName) -> str:
    """Human-readable register name (``r5``, ``f12``)."""
    if not 0 <= reg < NUM_REGS:
        raise ValueError(f"register id out of range: {reg}")
    if reg >= FP_BASE:
        return f"f{reg - FP_BASE}"
    return f"r{reg}"
