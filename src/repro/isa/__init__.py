"""Alpha-like instruction set model used by every simulator in this package.

The paper simulates Alpha binaries through SimpleScalar.  We reproduce the
properties of that ISA which the D-KIP design depends on:

* at most two source registers per instruction (so an instruction entering
  the LLIB never has more than one READY operand — Section 3.2 of the paper);
* separate integer and floating-point register files (32 + 32, with the
  conventional zero registers ``r31`` and ``f31``);
* a small set of operation classes with fixed execution latencies, with
  memory operations deriving their latency from the cache hierarchy.
"""

from repro.isa.opcodes import (
    OpClass,
    BRANCH_OPS,
    FP_OPS,
    INT_OPS,
    MEM_OPS,
    is_branch_op,
    is_load_op,
    is_mem_op,
    is_store_op,
)
from repro.isa.registers import (
    FP_BASE,
    FP_ZERO,
    INT_ZERO,
    NUM_FP_REGS,
    NUM_INT_REGS,
    NUM_REGS,
    RegisterName,
    fp_reg,
    int_reg,
    is_fp_reg,
    is_zero_reg,
    reg_name,
)
from repro.isa.instructions import Instruction, InstructionBuilder
from repro.isa.latencies import LatencyTable, DEFAULT_LATENCIES

__all__ = [
    "OpClass",
    "BRANCH_OPS",
    "FP_OPS",
    "INT_OPS",
    "MEM_OPS",
    "is_branch_op",
    "is_load_op",
    "is_mem_op",
    "is_store_op",
    "FP_BASE",
    "FP_ZERO",
    "INT_ZERO",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "NUM_REGS",
    "RegisterName",
    "fp_reg",
    "int_reg",
    "is_fp_reg",
    "is_zero_reg",
    "reg_name",
    "Instruction",
    "InstructionBuilder",
    "LatencyTable",
    "DEFAULT_LATENCIES",
]
