"""Operation classes of the Alpha-like ISA.

Rather than modelling every Alpha mnemonic, the simulators work with
operation *classes*, mirroring how SimpleScalar's timing model groups
opcodes by functional unit and latency.  The classes below cover all the
functional units listed in Table 2 of the paper (ALUs, integer multiplier,
FP adders, FP multiplier/divider, memory ports, branch unit).
"""

from __future__ import annotations

import enum


class OpClass(enum.IntEnum):
    """Operation class, the unit of timing in all simulators."""

    INT_ALU = 0       # add/sub/logic/shift/compare
    INT_MUL = 1       # integer multiply
    FP_ADD = 2        # FP add/sub/convert
    FP_MUL = 3        # FP multiply
    FP_DIV = 4        # FP divide / sqrt
    LOAD = 5          # integer load
    STORE = 6         # integer store
    FP_LOAD = 7       # floating-point load
    FP_STORE = 8      # floating-point store
    BRANCH = 9        # conditional branch
    JUMP = 10         # unconditional jump / call / return
    NOP = 11          # no-operation (trace padding)

    @property
    def short_name(self) -> str:
        return _SHORT_NAMES[self]


_SHORT_NAMES = {
    OpClass.INT_ALU: "alu",
    OpClass.INT_MUL: "mul",
    OpClass.FP_ADD: "fadd",
    OpClass.FP_MUL: "fmul",
    OpClass.FP_DIV: "fdiv",
    OpClass.LOAD: "ld",
    OpClass.STORE: "st",
    OpClass.FP_LOAD: "fld",
    OpClass.FP_STORE: "fst",
    OpClass.BRANCH: "br",
    OpClass.JUMP: "jmp",
    OpClass.NOP: "nop",
}

#: Classes that read memory.
LOAD_OPS = frozenset({OpClass.LOAD, OpClass.FP_LOAD})

#: Classes that write memory.
STORE_OPS = frozenset({OpClass.STORE, OpClass.FP_STORE})

#: All memory operation classes.
MEM_OPS = LOAD_OPS | STORE_OPS

#: Control-flow classes.
BRANCH_OPS = frozenset({OpClass.BRANCH, OpClass.JUMP})

#: Classes executed on the floating-point cluster.
FP_OPS = frozenset(
    {OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV, OpClass.FP_LOAD, OpClass.FP_STORE}
)

#: Classes executed on the integer cluster.
INT_OPS = frozenset(
    {
        OpClass.INT_ALU,
        OpClass.INT_MUL,
        OpClass.LOAD,
        OpClass.STORE,
        OpClass.BRANCH,
        OpClass.JUMP,
        OpClass.NOP,
    }
)


def is_load_op(op: OpClass) -> bool:
    """Return True when *op* reads memory."""
    return op in LOAD_OPS


def is_store_op(op: OpClass) -> bool:
    """Return True when *op* writes memory."""
    return op in STORE_OPS


def is_mem_op(op: OpClass) -> bool:
    """Return True when *op* accesses memory."""
    return op in MEM_OPS


def is_branch_op(op: OpClass) -> bool:
    """Return True when *op* is control flow."""
    return op in BRANCH_OPS
