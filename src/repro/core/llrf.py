"""Low-Locality Register File: 8 single-ported banks with free lists.

Section 3.2 of the paper: when an instruction entering the LLIB has a
READY operand (at most one in the Alpha ISA), the value is captured into
the LLRF so the Memory Processor can read it at extraction time without
touching the Cache Processor's register file.  The LLRF is "a banked
register file with 8 banks", each bank single ported, insertion and
extraction each owning a disjoint group of four banks per cycle; "each
bank has a free list that works independently of the other banks".

The paper computes the data array to be 6.6x smaller than an equivalent
centralized 4R/4W register file and uses Figures 13/14 to argue that far
fewer than 2048 registers are ever live — this model tracks the occupancy
high-water mark that those figures plot.
"""

from __future__ import annotations


class BankedRegisterFile:
    """Banked storage with per-bank free lists and occupancy tracking."""

    def __init__(self, banks: int = 8, bank_size: int = 256) -> None:
        if banks <= 0 or bank_size <= 0:
            raise ValueError("banks and bank_size must be positive")
        self.banks = banks
        self.bank_size = bank_size
        self._free = [bank_size] * banks
        self._next_bank = 0
        self.occupancy = 0
        self.max_occupancy = 0
        self.allocations = 0
        self.failed_allocations = 0

    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self.banks * self.bank_size

    @property
    def has_space(self) -> bool:
        return self.occupancy < self.capacity

    def allocate(self) -> int | None:
        """Allocate one register; returns the bank index or None when full.

        Allocation rotates across banks (the serial FIFO nature of the LLIB
        spreads consecutive inserts over the write group), falling back to
        any bank with a free entry so capacity is never stranded.
        """
        banks = self.banks
        start = self._next_bank
        for i in range(banks):
            bank = (start + i) % banks
            if self._free[bank] > 0:
                self._free[bank] -= 1
                self._next_bank = (bank + 1) % banks
                self.occupancy += 1
                if self.occupancy > self.max_occupancy:
                    self.max_occupancy = self.occupancy
                self.allocations += 1
                return bank
        self.failed_allocations += 1
        return None

    def release(self, bank: int) -> None:
        """Free the register in *bank* (extraction read the operand)."""
        if not 0 <= bank < self.banks:
            raise ValueError(f"bank index out of range: {bank}")
        if self._free[bank] >= self.bank_size:
            raise RuntimeError(f"double free in LLRF bank {bank}")
        self._free[bank] += 1
        self.occupancy -= 1

    def free_in_bank(self, bank: int) -> int:
        return self._free[bank]
