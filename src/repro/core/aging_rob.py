"""The Aging-ROB of the Cache Processor.

From Section 3.2 of the paper: the Aging-ROB is "a ROB structure in which
instructions progress at a constant pace", i.e. a circular FIFO whose head
pointer follows decode with a constant delay (the *ROB timer*).  When an
instruction reaches the head after that delay, the *Analyze* stage decides
whether it is short latency (retire), a long-latency load (hand to the
Address Processor) or part of a low-locality slice (insert into the LLIB).

The capacity is the timer times the decode width (16 cycles x 4 = 64
entries in the paper's configuration); this class enforces both the
capacity and the maturity delay, leaving the classification itself to
:class:`repro.core.dkip.DkipProcessor`.
"""

from __future__ import annotations

from collections import deque

from repro.pipeline.entry import InFlight


class AgingRob:
    """Bounded FIFO whose head only becomes visible after a fixed age."""

    def __init__(self, capacity: int, timer: int) -> None:
        if capacity <= 0:
            raise ValueError("Aging-ROB capacity must be positive")
        if timer < 0:
            raise ValueError("ROB timer cannot be negative")
        self.capacity = capacity
        self.timer = timer
        self._entries: deque[InFlight] = deque()

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def has_space(self) -> bool:
        return len(self._entries) < self.capacity

    def push(self, entry: InFlight) -> None:
        """Insert at the tail (dispatch order)."""
        if len(self._entries) >= self.capacity:
            raise RuntimeError("Aging-ROB overflow")
        self._entries.append(entry)

    def head(self) -> InFlight | None:
        return self._entries[0] if self._entries else None

    def head_mature(self, now: int) -> InFlight | None:
        """The head entry if its aging delay has elapsed, else None.

        The Analyze stage may only inspect instructions this many cycles
        after dispatch — by then a load has accessed the L2 tag array, so
        its hit/miss status is known (the paper sizes the timer exactly for
        this).
        """
        if not self._entries:
            return None
        head = self._entries[0]
        if now - head.dispatch_cycle < self.timer:
            return None
        return head

    def head_maturity_cycle(self) -> int | None:
        """Cycle at which the current head becomes (or became) mature.

        The quiescence protocol uses this as a wake-up time: an immature
        head is the one purely *time*-driven condition in the D-KIP's
        Analyze stage, so cycle-skipping must never jump past it.
        Returns ``None`` when the Aging-ROB is empty.
        """
        if not self._entries:
            return None
        return self._entries[0].dispatch_cycle + self.timer

    def pop_head(self) -> InFlight:
        return self._entries.popleft()
