"""Low-Locality Instruction Buffer: the FIFO at the heart of the D-KIP.

The LLIB replaces the large CAM window of conventional KILO-instruction
proposals with a plain FIFO ("Large Storage is Important but a Large CAM
is Not").  Instructions classified low-locality by Analyze are inserted at
the tail together with their single READY operand (captured in the LLRF);
extraction removes up to four per cycle from the head into the Memory
Processor.

The head may only leave once the long-latency *load value* it depends on
is available in the Address Processor's value FIFO ("insertion into the
Memory Processor happens when the oldest instruction in the LLIB depends
on a long-latency load that has completed; for other instructions
insertion is performed without additional checks").  Dependences on other
LLIB instructions need no check — FIFO order guarantees the producer was
extracted earlier and the Memory Processor's reservation stations will
supply the value.

There is one LLIB per cluster (integer and floating point); the paper's
Figures 13/14 plot the per-benchmark occupancy high-water marks this class
records.
"""

from __future__ import annotations

from collections import deque

from repro.core.llrf import BankedRegisterFile
from repro.pipeline.entry import InFlight


class LowLocalityInstructionBuffer:
    """One FIFO instruction buffer plus its associated LLRF."""

    def __init__(self, name: str, capacity: int, llrf: BankedRegisterFile) -> None:
        self.name = name
        self.capacity = capacity
        self.llrf = llrf
        self._entries: deque[InFlight] = deque()
        self.insertions = 0
        self.extractions = 0
        self.max_occupancy = 0
        self.full_stalls = 0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def has_space(self) -> bool:
        return len(self._entries) < self.capacity

    # ------------------------------------------------------------------

    def insert(self, entry: InFlight, has_ready_operand: bool) -> bool:
        """Insert at the tail; captures the READY operand into the LLRF.

        Returns False — and leaves all state untouched — when either the
        FIFO or (if an operand must be captured) the LLRF is out of space;
        the Analyze stage then stalls, which is the LLIB fill-up stall the
        paper observes on four SpecINT benchmarks.
        """
        if len(self._entries) >= self.capacity:
            self.full_stalls += 1
            return False
        bank = -1
        if has_ready_operand:
            allocated = self.llrf.allocate()
            if allocated is None:
                self.full_stalls += 1
                return False
            bank = allocated
        entry.ready_operand_bank = bank
        entry.where = "llib"
        entry.owner = self
        self._entries.append(entry)
        self.insertions += 1
        if len(self._entries) > self.max_occupancy:
            self.max_occupancy = len(self._entries)
        return True

    def wake(self, entry: InFlight) -> None:
        """Wakeup sink: the LLIB is polled at the head, nothing to do."""

    # ------------------------------------------------------------------

    def head(self) -> InFlight | None:
        return self._entries[0] if self._entries else None

    def head_extractable(self) -> bool:
        """May the head move to the Memory Processor this cycle?

        Blocked while a long-latency *load* the head sources has not yet
        delivered its value to the Address Processor's FIFO — regardless of
        whether that load was issued from the Cache Processor or had its
        address computed in the Memory Processor, because all memory
        accesses execute in the AP ("when the depending instructions arrive
        at the head of the LLIB and the load value is available, both the
        instruction and the value are inserted into the Memory Processor").

        Non-load producers need no check: FIFO order guarantees they were
        extracted earlier, and being short-latency ALU/FP operations they
        resolve within a few cycles in the MP's reservation stations.
        This is the property that keeps the in-order MP free of
        head-of-line blocking on memory latency.

        Quiescence note: extractability only ever changes when a producer
        *completes* (an event) or when the head itself changes (extraction —
        which is progress), so a blocked LLIB head never needs a timed
        wake-up; the cycle-skipping engine polls it at every event cycle.
        """
        if not self._entries:
            return False
        head = self._entries[0]
        for producer in head.sources:
            if not producer.executed and producer.instr.is_load:
                return False
        return True

    def head_blocking_load(self) -> InFlight | None:
        """The unfinished load the head is waiting on (deadlock diagnostics)."""
        if not self._entries:
            return None
        for producer in self._entries[0].sources:
            if not producer.executed and producer.instr.is_load:
                return producer
        return None

    def extract(self) -> InFlight:
        """Remove the head (caller verified :meth:`head_extractable`) and
        release its LLRF operand register."""
        entry = self._entries.popleft()
        if entry.ready_operand_bank >= 0:
            self.llrf.release(entry.ready_operand_bank)
            entry.ready_operand_bank = -1
        self.extractions += 1
        return entry

    def drain_younger_than(self, seq: int) -> list[InFlight]:
        """Checkpoint recovery: remove every entry younger than *seq*."""
        kept: deque[InFlight] = deque()
        dropped: list[InFlight] = []
        for entry in self._entries:
            if entry.seq > seq:
                if entry.ready_operand_bank >= 0:
                    self.llrf.release(entry.ready_operand_bank)
                    entry.ready_operand_bank = -1
                dropped.append(entry)
            else:
                kept.append(entry)
        self._entries = kept
        return dropped
