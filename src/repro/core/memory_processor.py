"""Memory Processor: the simple Future-File core executing low-locality code.

Section 3.2 of the paper models the MP after the Future File architecture
of Smith & Pleszkun (reference [8]): a logical register file in the front
end plus a small set of reservation stations.  Because low-locality code
is a small fraction of the instruction stream and tolerates latency, the
MP "does not require much execution bandwidth" — the default configuration
is in-order with 20 reservation stations, and Figure 10 shows an
out-of-order MP with 40 entries buys at most ~6% on SpecFP.

There are two Memory Processors, one per LLIB (integer and floating
point), each with its own functional units (Table 2); memory operations go
through the shared Address-Processor ports.

In this model the *future file* itself is implicit: operand values arrive
through three channels that are all represented by the generic wakeup
machinery — LLRF captures (ready at extraction), earlier MP results
(producer entries complete and wake their waiters) and Address-Processor
load values (checked at LLIB extraction).  What the class owns is the
reservation-station queue, the MP's functional units and the completion
accounting against the checkpoint stack.
"""

from __future__ import annotations

from repro.pipeline.fu import FuPool
from repro.pipeline.queues import IssueQueue
from repro.sim.config import MemoryProcessorConfig


class MemoryProcessor:
    """One Future-File Memory Processor (reservation stations + FUs)."""

    def __init__(self, name: str, config: MemoryProcessorConfig) -> None:
        self.name = name
        self.config = config
        self.queue = IssueQueue(f"{name}-rs", config.queue_size, config.scheduler)
        self.fus = FuPool(config.fus)
        self.dispatched = 0
        self.completed = 0

    # ------------------------------------------------------------------

    @property
    def has_space(self) -> bool:
        return self.queue.has_space

    def has_issuable(self, now: int) -> bool:
        """Does a reservation station hold a ready instruction?

        Quiescence hook: MP functional units and the shared AP ports reset
        every cycle, so the only condition that can hold an otherwise-ready
        instruction across a quiescent cycle is operand wakeup — which is
        event-driven.  A ready head therefore means "work possible now".
        """
        return self.queue.next_issuable(now) is not None

    def dispatch(self, entry) -> None:
        """Accept an instruction extracted from the LLIB."""
        entry.where = "mp"
        self.queue.add(entry)
        self.dispatched += 1

    def on_complete(self, entry) -> None:
        self.completed += 1
