"""Low-Locality Bit Vector (LLBV) and Architectural Writers Log (AWL).

The LLBV is the register-granularity classification state of the D-KIP
(Section 3.2): bit *r* is set when the current value of architectural
register *r* is produced by a long-latency slice.  The Analyze stage reads
it to classify instructions and writes it when it discovers long-latency
loads or inserts producers into the LLIB.

The paper's clearing rules are deliberately conservative and we follow
them exactly:

* a *short-latency* instruction redefining the register clears the bit
  ("Short-latency operations ... will redefine registers that were marked
  as long-latency.  After completion, the corresponding bit in the LLBV
  will be cleared");
* checkpoint recovery clears the whole vector ("Checkpoint recovery
  restores the full state to the cache processor.  This operation clears
  the LLBV completely");
* nothing else does — in particular, a Memory-Processor writeback does
  *not* clear the bit, because the MP's results live in the checkpoint
  stack, not the CP's register file (back-communication happens only via
  MP → checkpoint → CP).

The AWL is the small RAM the paper keeps next to the LLBV: for every set
bit it records who produces the value (an LLIB position or a checkpoint to
copy from), which checkpoint creation consults.
"""

from __future__ import annotations

from repro.isa.registers import NUM_REGS
from repro.pipeline.entry import InFlight


class LowLocalityBitVector:
    """Per-register long-latency marking with its writers log."""

    def __init__(self) -> None:
        self._producers: list[InFlight | None] = [None] * NUM_REGS
        self._set_bits = 0
        self.marks = 0
        self.short_clears = 0
        self.recovery_clears = 0

    # ------------------------------------------------------------------

    def is_long(self, reg: int) -> bool:
        return self._producers[reg] is not None

    def producer(self, reg: int) -> InFlight | None:
        """AWL lookup: the entry that will produce register *reg*."""
        return self._producers[reg]

    def any_long_source(self, entry: InFlight) -> bool:
        """Analyze-stage test: does *entry* read a long-latency register?"""
        producers = self._producers
        for src in entry.instr.live_srcs():
            if producers[src] is not None:
                return True
        return False

    @property
    def set_count(self) -> int:
        return self._set_bits

    # ------------------------------------------------------------------

    def mark(self, reg: int, producer: InFlight) -> None:
        """Set bit *reg*; the AWL records *producer* as the writer."""
        if self._producers[reg] is None:
            self._set_bits += 1
        self._producers[reg] = producer
        self.marks += 1

    def clear_short_definition(self, reg: int) -> None:
        """A retired short-latency instruction redefined *reg*."""
        if self._producers[reg] is not None:
            self._producers[reg] = None
            self._set_bits -= 1
            self.short_clears += 1

    def clear_all(self) -> None:
        """Checkpoint recovery: restore the ARF, clear every bit."""
        if self._set_bits:
            producers = self._producers
            for i in range(NUM_REGS):
                producers[i] = None
            self._set_bits = 0
        self.recovery_clears += 1
