"""The Decoupled KILO-Instruction Processor (D-KIP) — the paper's contribution.

The D-KIP splits execution by *execution locality* (Section 2 of the
paper): instructions whose operands arrive quickly execute on a small
out-of-order **Cache Processor**; instructions that depend on off-chip
memory drain through FIFO **Low-Locality Instruction Buffers** into simple
in-order **Memory Processors**, while an **Address Processor** owns the
load/store queues.  The pieces map one-to-one onto the paper's Figures 5-8:

===============================  =======================================
Paper structure                   Module
===============================  =======================================
Cache Processor (R10000-like)     :mod:`repro.core.dkip` (front half)
Aging-ROB + Analyze stage         :mod:`repro.core.aging_rob`
Low-Locality Bit Vector + AWL     :mod:`repro.core.llbv`
LLIB (FIFO, one per cluster)      :mod:`repro.core.llib`
LLRF (8 single-ported banks)      :mod:`repro.core.llrf`
Memory Processor (Future File)    :mod:`repro.core.memory_processor`
Address Processor + value FIFOs   :mod:`repro.core.address_processor`
Checkpoint stack + recovery       :mod:`repro.core.checkpoint`
Full decoupled machine            :class:`repro.core.dkip.DkipProcessor`
===============================  =======================================
"""

from repro.core.aging_rob import AgingRob
from repro.core.llbv import LowLocalityBitVector
from repro.core.llrf import BankedRegisterFile
from repro.core.llib import LowLocalityInstructionBuffer
from repro.core.memory_processor import MemoryProcessor
from repro.core.address_processor import AddressProcessor
from repro.core.checkpoint import Checkpoint, CheckpointStack
from repro.core.dkip import DkipProcessor

__all__ = [
    "AgingRob",
    "LowLocalityBitVector",
    "BankedRegisterFile",
    "LowLocalityInstructionBuffer",
    "MemoryProcessor",
    "AddressProcessor",
    "Checkpoint",
    "CheckpointStack",
    "DkipProcessor",
]
