"""Checkpoint stack and Architectural-Writers-Log based recovery.

The Cache Processor recovers branches with its ROB/rename stack; events in
the low-locality stream are covered by *selective checkpointing* (Section
3.2, Figure 7 of the paper): at chosen points of the Analyze stage the
READY architectural registers are copied into a free entry of the
checkpoint stack, and every in-flight producer of a long-latency register
(found through the AWL) is told to also write its result into that entry.
MP → checkpoint → CP is the only backward communication path in the
machine.

The model takes a checkpoint when a low-locality slice begins (first LLIB
insertion with no live checkpoint) and then every ``interval`` insertions,
guaranteeing the paper's invariant of "at least one checkpoint in flight
in the LLIB before wakeup".  A checkpoint is released once every
instruction assigned to it has written back.  Recovery — triggered by a
mispredicted low-locality branch — squashes younger checkpoints and clears
the LLBV; the timing cost is the ``recovery_penalty`` the processor adds
to the fetch redirect.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Checkpoint:
    """One entry of the checkpointing stack."""

    ident: int
    taken_at_seq: int
    taken_at_cycle: int
    #: Long-latency registers whose producers must write into this entry
    #: (the AWL contents at take time).
    tracked_registers: tuple[int, ...] = ()
    pending: int = 0
    completed: int = 0

    @property
    def drained(self) -> bool:
        return self.completed >= self.pending


class CheckpointStack:
    """Bounded stack of selective checkpoints."""

    def __init__(self, capacity: int = 8, interval: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("checkpoint stack capacity must be positive")
        self.capacity = capacity
        self.interval = interval
        self._entries: list[Checkpoint] = []
        self._next_ident = 0
        self._since_last = 0
        self.taken = 0
        self.released = 0
        self.recoveries = 0
        self.overflow_skips = 0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def live(self) -> bool:
        return bool(self._entries)

    def should_take(self) -> bool:
        """Policy: checkpoint at slice start and every ``interval`` inserts."""
        return not self._entries or self._since_last >= self.interval

    def take(self, seq: int, now: int, tracked_registers: tuple[int, ...] = ()) -> Checkpoint | None:
        """Copy architectural state into a new stack entry.

        Returns None when the stack is full; the caller keeps assigning
        work to the newest existing checkpoint (coarser recovery, never
        incorrect, matching the stack's infrequent-access design).
        """
        if len(self._entries) >= self.capacity:
            self.overflow_skips += 1
            return None
        checkpoint = Checkpoint(
            ident=self._next_ident,
            taken_at_seq=seq,
            taken_at_cycle=now,
            tracked_registers=tracked_registers,
        )
        self._next_ident += 1
        self._entries.append(checkpoint)
        self._since_last = 0
        self.taken += 1
        return checkpoint

    def assign(self) -> Checkpoint | None:
        """Charge one LLIB insertion to the newest live checkpoint."""
        self._since_last += 1
        if not self._entries:
            return None
        checkpoint = self._entries[-1]
        checkpoint.pending += 1
        return checkpoint

    def writeback(self, checkpoint: Checkpoint | None) -> None:
        """An assigned instruction wrote its result into *checkpoint*."""
        if checkpoint is not None:
            checkpoint.completed += 1
        self._release_drained()

    def _release_drained(self) -> None:
        while self._entries and self._entries[0].drained and self._entries[0].pending:
            self._entries.pop(0)
            self.released += 1

    # ------------------------------------------------------------------

    def recover(self, seq: int) -> int:
        """Roll back to the newest checkpoint at or before *seq*.

        Returns the number of squashed (younger) checkpoints.
        """
        squashed = 0
        while self._entries and self._entries[-1].taken_at_seq > seq:
            self._entries.pop()
            squashed += 1
        self.recoveries += 1
        return squashed
