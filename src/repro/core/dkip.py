"""The full Decoupled KILO-Instruction Processor.

The machine chains three pipelines (Figure 8 of the paper):

* the **Cache Processor** — an R10000-style out-of-order core whose ROB is
  the Aging-ROB: its head is inspected by the *Analyze* stage a fixed
  number of cycles after dispatch;
* the **LLIBs** — one FIFO per cluster buffering low-locality slices
  together with their captured READY operands (LLRF);
* the **Memory Processors** — simple Future-File cores executing the
  low-locality code, with the **Address Processor** serving all memory
  operations through two global ports.

Execution model (Section 3.2): instructions are fetched and dispatched by
the CP and execute there if they issue before analysis.  At Analyze they
are classified:

* executed               → retire (short latency; LLBV bit of the
                           destination cleared);
* load known to miss L2  → long-latency load: dest marked in the LLBV,
                           the access continues in the Address Processor;
* reads an LLBV register → low-locality: inserted in its cluster's LLIB
                           (with its READY operand captured in the LLRF);
* otherwise              → short latency but still in flight: Analyze
                           stalls until its writeback (keeps checkpoints
                           consistent; the paper measures ~0.7% IPC loss).

Branch mispredictions resolve either in the CP (cheap: ROB/rename-stack
recovery plus fetch redirect) or — when the branch is part of a
low-locality slice — in the MP, where recovery restores a checkpoint,
clears the LLBV and pays ``recovery_penalty`` extra cycles.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable

from repro.branch.base import BranchPredictor
from repro.isa import Instruction
from repro.machines.params import parse_count, reject_unknown
from repro.machines.registry import MachineKind, register_machine
from repro.memory.cache import AccessLevel
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.entry import InFlight
from repro.pipeline.fu import FuKind, fu_kind_of
from repro.pipeline.queues import IssueQueue
from repro.sim.config import DkipConfig, SchedulerPolicy
from repro.sim.stats import SimStats
from repro.baselines.ooo import R10Core
from repro.core.aging_rob import AgingRob
from repro.core.address_processor import AddressProcessor
from repro.core.checkpoint import CheckpointStack
from repro.core.llbv import LowLocalityBitVector
from repro.core.llib import LowLocalityInstructionBuffer
from repro.core.llrf import BankedRegisterFile
from repro.core.memory_processor import MemoryProcessor


class DkipProcessor(R10Core):
    """Cache Processor + LLIBs + Memory Processors + Address Processor."""

    def __init__(
        self,
        trace: Iterable[Instruction],
        config: DkipConfig,
        hierarchy: MemoryHierarchy,
        predictor: BranchPredictor,
        stats: SimStats | None = None,
    ) -> None:
        stats = stats or SimStats(config=config.name)
        cp = config.cache_processor
        super().__init__(trace, cp, hierarchy, predictor, stats)
        self.name = config.name
        self.dkip_config = config

        # The CP's ROB is the Aging-ROB; keep `self.rob` (a deque) for the
        # inherited dispatch/capacity logic and wrap it.
        self.aging_rob = AgingRob(cp.rob_size, config.rob_timer)
        self.rob = self.aging_rob._entries  # shared storage, single owner

        self.llbv = LowLocalityBitVector()
        self.ap = AddressProcessor(lsq_size=cp.lsq_size, mem_ports=cp.fus.mem_ports)
        self.lsq = self.ap.lsq  # the AP owns the LSQ (Section 3.3)

        self.llib_int = LowLocalityInstructionBuffer(
            "llib-int",
            config.llib_size,
            BankedRegisterFile(config.llrf_banks, config.llrf_bank_size),
        )
        self.llib_fp = LowLocalityInstructionBuffer(
            "llib-fp",
            config.llib_size,
            BankedRegisterFile(config.llrf_banks, config.llrf_bank_size),
        )
        self.mp_int = MemoryProcessor("mp-int", config.memory_processor)
        self.mp_fp = MemoryProcessor("mp-fp", config.memory_processor)
        self.checkpoints = CheckpointStack(
            config.checkpoint_stack, config.checkpoint_interval
        )

    # ------------------------------------------------------------------
    # Per-cycle pipeline
    # ------------------------------------------------------------------

    def step(self) -> None:
        self.process_completions()
        self._analyze()
        self._extract()
        self.ap.new_cycle()
        self._issue()       # CP issue (inherited loop, AP ports for memory)
        self._issue_mps()   # MP issue
        self._dispatch()    # inherited: into Aging-ROB + CP queues + LSQ
        self.fetch.cycle(self.now)

    def _try_take_fu(self, kind: FuKind) -> bool:
        """CP functional units, except memory which uses the AP's ports."""
        if kind == FuKind.MEM:
            return self.ap.try_take_port()
        return self.fus.try_take(kind)

    # ------------------------------------------------------------------
    # Analyze stage
    # ------------------------------------------------------------------

    def _analyze(self) -> None:
        width = self.config.commit_width
        analyzed = 0
        while analyzed < width:
            entry = self.aging_rob.head_mature(self.now)
            if entry is None:
                break
            instr = entry.instr
            if entry.executed:
                # Short latency: retire from the CP.
                self.aging_rob.pop_head()
                if instr.is_mem:
                    if instr.is_store:
                        self.hierarchy.access(instr.addr, write=True, now=self.now)
                        self.lsq.store_committed(entry)
                    self.lsq.release()
                if instr.dest is not None:
                    self.llbv.clear_short_definition(instr.dest)
                self.committed += 1
                self.stats.committed_cp += 1
                analyzed += 1
                continue
            if (
                entry.issued
                and instr.is_load
                and entry.mem_level == AccessLevel.MEMORY
            ):
                # Long-latency load: the access continues in the AP; the
                # destination register is marked in the LLBV.
                self.aging_rob.pop_head()
                entry.long_latency = True
                self.ap.track_long_latency_load(entry)
                if instr.dest is not None:
                    self.llbv.mark(instr.dest, entry)
                analyzed += 1
                continue
            if not entry.issued and self.llbv.any_long_source(entry):
                # Low-locality slice member: insert into its LLIB.
                if not self._insert_into_llib(entry):
                    self.stats.analyze_stall_cycles += 1
                    self.stats.llib_full_stall_cycles += 1
                    break
                analyzed += 1
                continue
            # Short latency but still in flight: stall until writeback so
            # checkpointed state only ever contains architected values.
            self.stats.analyze_stall_cycles += 1
            break

    def _insert_into_llib(self, entry: InFlight) -> bool:
        """Move the Aging-ROB head into the right LLIB; False on stall."""
        instr = entry.instr
        llib = self.llib_fp if instr.is_fp else self.llib_int
        mp = self.mp_fp if instr.is_fp else self.mp_int
        if not llib.has_space:
            llib.full_stalls += 1
            return False
        has_ready_operand = self._has_ready_operand(entry)
        # Detach from the CP structures before handing over.
        old_owner = entry.owner
        if not llib.insert(entry, has_ready_operand):
            return False
        self.aging_rob.pop_head()
        if isinstance(old_owner, IssueQueue):
            old_owner.remove(entry)
            entry.owner = llib
        entry.long_latency = True
        if instr.dest is not None:
            self.llbv.mark(instr.dest, entry)
        # Checkpointing: slices carry at least one checkpoint, then one
        # every `interval` insertions.
        if self.checkpoints.should_take():
            tracked = tuple(
                reg
                for reg in instr.live_srcs()
                if self.llbv.is_long(reg)
            )
            taken = self.checkpoints.take(entry.seq, self.now, tracked)
            if taken is not None:
                self.stats.checkpoints_taken += 1
        entry.checkpoint = self.checkpoints.assign()
        self.stats.llib_insertions += 1
        self._update_llib_stats()
        return True

    def _has_ready_operand(self, entry: InFlight) -> bool:
        """Does the instruction carry a READY operand into the LLRF?

        An operand is READY when its register is not marked long latency
        and its producer (if any is still in flight) has written back.  The
        Alpha ISA guarantees at most one such operand per LLIB instruction.
        """
        unready_regs = {
            p.instr.dest for p in entry.sources if not p.executed
        }
        for src in entry.instr.live_srcs():
            if self.llbv.is_long(src):
                continue
            if src in unready_regs:
                continue
            return True
        return False

    def _update_llib_stats(self) -> None:
        s = self.stats
        if len(self.llib_int) > s.llib_max_instructions_int:
            s.llib_max_instructions_int = len(self.llib_int)
        if len(self.llib_fp) > s.llib_max_instructions_fp:
            s.llib_max_instructions_fp = len(self.llib_fp)
        if self.llib_int.llrf.max_occupancy > s.llib_max_registers_int:
            s.llib_max_registers_int = self.llib_int.llrf.max_occupancy
        if self.llib_fp.llrf.max_occupancy > s.llib_max_registers_fp:
            s.llib_max_registers_fp = self.llib_fp.llrf.max_occupancy

    # ------------------------------------------------------------------
    # LLIB → MP extraction
    # ------------------------------------------------------------------

    def _extract(self) -> None:
        for llib, mp in ((self.llib_int, self.mp_int), (self.llib_fp, self.mp_fp)):
            extracted = 0
            # Table 2: insertion/extraction rate of 4 per cycle per LLIB.
            while extracted < 4 and mp.has_space and llib.head_extractable():
                entry = llib.extract()
                mp.dispatch(entry)
                extracted += 1

    # ------------------------------------------------------------------
    # MP issue
    # ------------------------------------------------------------------

    def _issue_mps(self) -> None:
        for mp in (self.mp_int, self.mp_fp):
            if not mp.queue.occupancy:
                # Nothing dispatched to this MP: skip the per-cycle FU
                # reset and the issue loop (state-identical — ``try_take``
                # is only consulted from the loop below).
                continue
            mp.fus.new_cycle()
            budget = mp.config.decode_width
            deferred: list[InFlight] = []
            in_order = mp.config.scheduler == SchedulerPolicy.IN_ORDER
            while budget > 0:
                entry = mp.queue.next_issuable(self.now)
                if entry is None:
                    break
                kind = fu_kind_of(entry.instr.op)
                if kind == FuKind.MEM:
                    granted = self.ap.try_take_port()
                else:
                    granted = mp.fus.try_take(kind)
                if not granted:
                    if in_order:
                        break
                    mp.queue.defer(entry)
                    deferred.append(entry)
                    continue
                mp.queue.take(entry)
                self._execute(entry)
                budget -= 1
            for entry in deferred:
                mp.queue.wake(entry)

    # ------------------------------------------------------------------
    # Quiescence protocol
    # ------------------------------------------------------------------

    def next_work_cycle(self) -> int | None:
        now = self.now
        head = self.aging_rob.head_mature(now)
        if head is not None and self._analyze_progress_possible(head):
            return now
        if self._extract_possible():
            return now
        if (
            self.iq_int.next_issuable(now) is not None
            or self.iq_fp.next_issuable(now) is not None
            or self.mp_int.has_issuable(now)
            or self.mp_fp.has_issuable(now)
        ):
            return now
        if self._dispatch_possible():
            return now
        wake = self.fetch.next_fetch_cycle(now)
        if head is None:
            # An occupied Aging-ROB with an immature head is the one purely
            # time-driven Analyze condition; never jump past its maturity.
            maturity = self.aging_rob.head_maturity_cycle()
            if maturity is not None and maturity > now:
                wake = maturity if wake is None else min(wake, maturity)
        return wake

    def _analyze_progress_possible(self, entry: InFlight) -> bool:
        """Mirror of the first iteration of :meth:`_analyze`'s loop."""
        if entry.executed:
            return True
        instr = entry.instr
        if entry.issued and instr.is_load and entry.mem_level == AccessLevel.MEMORY:
            return True
        if not entry.issued and self.llbv.any_long_source(entry):
            return self._llib_insert_possible(entry)
        # Short latency still in flight: Analyze stalls until writeback.
        return False

    def _llib_insert_possible(self, entry: InFlight) -> bool:
        llib = self.llib_fp if entry.instr.is_fp else self.llib_int
        if not llib.has_space:
            return False
        if self._has_ready_operand(entry) and not llib.llrf.has_space:
            return False
        return True

    def _extract_possible(self) -> bool:
        for llib, mp in ((self.llib_int, self.mp_int), (self.llib_fp, self.mp_fp)):
            if mp.has_space and llib.head_extractable():
                return True
        return False

    def on_cycles_skipped(self, start: int, end: int) -> None:
        self.fetch.account_skipped(start, end)
        entry = self.aging_rob.head_mature(start)
        if entry is None:
            return  # empty or immature throughout the skipped range
        skipped = end - start
        if not entry.issued and self.llbv.any_long_source(entry):
            # Every skipped cycle would have attempted (and failed) an LLIB
            # insertion: replay the per-attempt stall accounting.
            self.stats.analyze_stall_cycles += skipped
            self.stats.llib_full_stall_cycles += skipped
            llib = self.llib_fp if entry.instr.is_fp else self.llib_int
            llib.full_stalls += skipped
            if llib.has_space:
                # The FIFO had room, so the LLRF allocation was what failed.
                llib.llrf.failed_allocations += skipped
        else:
            # Short latency still in flight: per-cycle Analyze stall.
            self.stats.analyze_stall_cycles += skipped

    def describe_stall(self) -> str:
        blockers = []
        for llib in (self.llib_int, self.llib_fp):
            load = llib.head_blocking_load()
            if load is not None:
                blockers.append(f"{llib.name} head waits on load seq={load.seq}")
        blocked = ("; " + ", ".join(blockers)) if blockers else ""
        return (
            f"aging_rob={len(self.aging_rob)}, llib_int={len(self.llib_int)}, "
            f"llib_fp={len(self.llib_fp)}, mp_int={self.mp_int.queue.occupancy}, "
            f"mp_fp={self.mp_fp.queue.occupancy}, {self.ap.describe_pending()}"
            f"{blocked}, {super().describe_stall()}"
        )

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def on_complete(self, entry: InFlight) -> None:
        instr = entry.instr
        where = entry.where
        if where == "ap":
            # Long-latency load: value parked in the AP's FIFO; commits now.
            self.ap.deliver_value(entry)
            self.lsq.release()
            self.committed += 1
            self.stats.committed_cp += 1
        elif where == "mp":
            mp = self.mp_fp if instr.is_fp else self.mp_int
            mp.on_complete(entry)
            if instr.is_mem:
                if instr.is_store:
                    self.hierarchy.access(instr.addr, write=True, now=self.now)
                    self.lsq.store_committed(entry)
                self.lsq.release()
            # Results of low-locality code write into the checkpoint stack
            # (the only back-communication path: MP → CHPT → CP).
            self.checkpoints.writeback(entry.checkpoint)
            self.committed += 1
            self.stats.committed_mp += 1
        if instr.is_branch:
            penalty = 0
            if entry.mispredicted and entry.long_latency:
                # Low-locality misprediction: recover from a checkpoint.
                penalty = self.dkip_config.recovery_penalty
                self.checkpoints.recover(entry.seq)
                self.llbv.clear_all()
                self.stats.checkpoint_recoveries += 1
                if self.now - entry.dispatch_cycle > 64:
                    self.stats.long_latency_branch_mispredictions += 1
            self.fetch.on_branch_resolved(entry.seq, self.now + penalty)


# ----------------------------------------------------------------------
# Machine-kind registration (spec grammar lives in repro.machines)
# ----------------------------------------------------------------------

DKIP_GRAMMAR = (
    "dkip(llib=N, cp=INO|OOO-n, mp=INO|OOO-n, rob=N, iq=N, timer=N, banks=N, "
    "bank_size=N, checkpoints=N, interval=N, recovery=N, name=STR)"
)
_DKIP_KEYS = frozenset(
    {
        "llib", "cp", "mp", "rob", "iq", "timer", "banks", "bank_size",
        "checkpoints", "interval", "recovery", "name",
    }
)


def _parse_dkip(params: dict[str, str]) -> DkipConfig:
    """Spec params -> DkipConfig; bare ``dkip`` is exactly D-KIP-2048.

    Scalar parameters apply first (``llib`` also renames to
    ``D-KIP-<llib>``), then ``cp``/``mp`` reuse :meth:`DkipConfig.with_cp`
    / :meth:`~DkipConfig.with_mp` — including their renaming — so a spec
    and its method-chain twin fingerprint identically; an explicit
    ``name=`` wins over everything.
    """
    reject_unknown("dkip", params, _DKIP_KEYS, DKIP_GRAMMAR)
    config = DkipConfig()
    if "llib" in params:
        llib = parse_count("dkip", "llib", params["llib"])
        config = replace(config, llib_size=llib, name=f"D-KIP-{llib}")
    if "timer" in params:
        config = replace(
            config, rob_timer=parse_count("dkip", "timer", params["timer"])
        )
    if "banks" in params:
        config = replace(
            config, llrf_banks=parse_count("dkip", "banks", params["banks"])
        )
    if "bank_size" in params:
        config = replace(
            config,
            llrf_bank_size=parse_count("dkip", "bank_size", params["bank_size"]),
        )
    if "checkpoints" in params:
        config = replace(
            config,
            checkpoint_stack=parse_count("dkip", "checkpoints", params["checkpoints"]),
        )
    if "interval" in params:
        config = replace(
            config,
            checkpoint_interval=parse_count("dkip", "interval", params["interval"]),
        )
    if "recovery" in params:
        config = replace(
            config, recovery_penalty=parse_count("dkip", "recovery", params["recovery"])
        )
    cp = config.cache_processor
    if "rob" in params:
        cp = replace(cp, rob_size=parse_count("dkip", "rob", params["rob"]))
    if "iq" in params:
        iq = parse_count("dkip", "iq", params["iq"])
        cp = replace(cp, iq_int=iq, iq_fp=iq)
    if cp is not config.cache_processor:
        config = replace(config, cache_processor=cp)
    if "cp" in params:
        config = config.with_cp(params["cp"].strip().upper())
    if "mp" in params:
        config = config.with_mp(params["mp"].strip().upper())
    if "name" in params:
        config = replace(config, name=params["name"])
    return config


register_machine(
    MachineKind(
        name="dkip",
        config_cls=DkipConfig,
        build=lambda config, trace, hierarchy, predictor, stats=None: DkipProcessor(
            trace, config, hierarchy, predictor, stats
        ),
        parse=_parse_dkip,
        description="Decoupled KILO-Instruction Processor (CP + LLIBs + MPs)",
        grammar=DKIP_GRAMMAR,
    )
)
