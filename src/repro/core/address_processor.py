"""Address Processor: the decoupled memory-access engine of the D-KIP.

Section 3.3 of the paper decouples all memory operations into an Address
Processor in the spirit of Smith's Decoupled Access-Execute architectures:
it owns the (hierarchical, 512-entry) load/store queue, the two global
R/W memory ports shared asymmetrically by the Cache Processor and the
Memory Processors, and — one per LLIB — the FIFO buffers where values of
completed long-latency loads wait until their first dependent instruction
reaches the Memory Processor.
"""

from __future__ import annotations

from collections import deque

from repro.pipeline.entry import InFlight
from repro.pipeline.fu import FuKind, FuPool
from repro.pipeline.lsq import LoadStoreQueue
from repro.sim.config import FuConfig


class AddressProcessor:
    """LSQ + global memory ports + per-LLIB load-value FIFOs."""

    def __init__(self, lsq_size: int = 512, mem_ports: int = 2) -> None:
        self.lsq = LoadStoreQueue(lsq_size)
        self.ports = FuPool(FuConfig(mem_ports=mem_ports))
        # Completed long-latency load values, one FIFO per LLIB cluster.
        self.value_fifo_int: deque[InFlight] = deque()
        self.value_fifo_fp: deque[InFlight] = deque()
        self.long_latency_loads = 0

    # ------------------------------------------------------------------

    def new_cycle(self) -> None:
        """Reset the per-cycle port slots.

        The ports carry no state across cycles, which is what makes them
        safe under cycle-skipping: a port conflict can only defer an
        instruction that is *ready*, and a ready instruction already marks
        the machine non-quiescent, so every contended cycle is simulated.
        """
        self.ports.new_cycle()

    def try_take_port(self) -> bool:
        """Claim one of the global R/W memory ports for this cycle."""
        return self.ports.try_take(FuKind.MEM)

    def describe_pending(self) -> str:
        """Summary of AP-resident state for deadlock diagnostics."""
        return (
            f"ap[lsq={self.lsq.occupancy}, "
            f"values_int={len(self.value_fifo_int)}, "
            f"values_fp={len(self.value_fifo_fp)}, "
            f"ports={self.ports.describe()}]"
        )

    # ------------------------------------------------------------------

    def track_long_latency_load(self, entry: InFlight) -> None:
        """A load classified long latency at Analyze now belongs to the AP."""
        entry.where = "ap"
        self.long_latency_loads += 1

    def deliver_value(self, entry: InFlight) -> None:
        """A long-latency load completed: park its value in the FIFO.

        The value stays buffered until every dependent instruction has been
        extracted; in this timing model the buffered value is represented
        by the executed load entry itself, and the FIFO is trimmed as
        dependents drain (bounded bookkeeping, no timing effect — the paper
        likewise treats the FIFO as amply sized).
        """
        fifo = self.value_fifo_fp if entry.instr.is_fp else self.value_fifo_int
        fifo.append(entry)
        # Keep the bookkeeping bounded: drop values older than a generous
        # window (every dependent of an older load has long since drained).
        while len(fifo) > 4096:
            fifo.popleft()

    def pending_values(self, fp: bool) -> int:
        fifo = self.value_fifo_fp if fp else self.value_fifo_int
        return len(fifo)
