"""Static predictors: lower bounds and test fixtures."""

from __future__ import annotations

from repro.branch.base import BranchPredictor


class AlwaysTakenPredictor(BranchPredictor):
    """Predicts taken unconditionally."""

    def _predict(self, pc: int) -> bool:
        return True

    def _train(self, pc: int, taken: bool, predicted: bool) -> None:
        pass


class NeverTakenPredictor(BranchPredictor):
    """Predicts not-taken unconditionally."""

    def _predict(self, pc: int) -> bool:
        return False

    def _train(self, pc: int, taken: bool, predicted: bool) -> None:
        pass


class OraclePredictor(BranchPredictor):
    """Perfect direction prediction — the upper bound.

    In the trace-driven cores the correct outcome is known at fetch, so
    the oracle simply reports every prediction correct: fetch never
    stalls on a branch and the misprediction counters stay at zero.
    ``predict()`` (unused by the fetch path, which only calls
    :meth:`update`) answers taken.
    """

    def update(self, pc: int, taken: bool) -> bool:
        self.predictions += 1
        return True

    def _predict(self, pc: int) -> bool:
        return True

    def _train(self, pc: int, taken: bool, predicted: bool) -> None:
        pass
