"""Static predictors: lower bounds and test fixtures."""

from __future__ import annotations

from repro.branch.base import BranchPredictor


class AlwaysTakenPredictor(BranchPredictor):
    """Predicts taken unconditionally."""

    def _predict(self, pc: int) -> bool:
        return True

    def _train(self, pc: int, taken: bool, predicted: bool) -> None:
        pass


class NeverTakenPredictor(BranchPredictor):
    """Predicts not-taken unconditionally."""

    def _predict(self, pc: int) -> bool:
        return False

    def _train(self, pc: int, taken: bool, predicted: bool) -> None:
        pass
