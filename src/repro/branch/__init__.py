"""Branch predictors.

The paper's Cache Processor uses the perceptron predictor of Jiménez & Lin
(HPCA 2001, reference [18] of the paper); we implement it faithfully along
with the classic gshare and bimodal predictors for ablation studies, and a
static always-taken predictor as a lower bound.

All predictors share the two-method interface of
:class:`~repro.branch.base.BranchPredictor`: ``predict(pc) -> bool`` and
``update(pc, taken)``.  Unconditional jumps are never passed to predictors.
"""

from repro.branch.base import BranchPredictor
from repro.branch.perceptron import PerceptronPredictor
from repro.branch.gshare import GSharePredictor
from repro.branch.bimodal import BimodalPredictor
from repro.branch.static import (
    AlwaysTakenPredictor,
    NeverTakenPredictor,
    OraclePredictor,
)

_PREDICTORS = {
    "perceptron": PerceptronPredictor,
    "gshare": GSharePredictor,
    "bimodal": BimodalPredictor,
    "oracle": OraclePredictor,
    "always-taken": AlwaysTakenPredictor,
    "never-taken": NeverTakenPredictor,
}


def make_predictor(name: str, **kwargs) -> BranchPredictor:
    """Instantiate a predictor by name (used by configs and the CLI).

    Accepts both the plain family names above (with optional constructor
    keyword arguments) and the parameterized spellings of the predictor
    spec grammar — ``"gshare-14"``, ``"perceptron-64-16"``, ``"static"``
    — which the ``ooo-bp``/``dual`` machine kinds store in their
    ``predictor`` field (see :mod:`repro.branch.spec`).
    """
    cls = _PREDICTORS.get(name)
    if cls is not None:
        return cls(**kwargs)
    if kwargs:
        raise ValueError(
            f"unknown predictor {name!r}; available: {sorted(_PREDICTORS)} "
            "(keyword arguments require a plain family name)"
        )
    from repro.branch.spec import parse_predictor

    return parse_predictor(name)


__all__ = [
    "BranchPredictor",
    "PerceptronPredictor",
    "GSharePredictor",
    "BimodalPredictor",
    "AlwaysTakenPredictor",
    "NeverTakenPredictor",
    "OraclePredictor",
    "make_predictor",
]
