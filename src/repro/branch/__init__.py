"""Branch predictors.

The paper's Cache Processor uses the perceptron predictor of Jiménez & Lin
(HPCA 2001, reference [18] of the paper); we implement it faithfully along
with the classic gshare and bimodal predictors for ablation studies, and a
static always-taken predictor as a lower bound.

All predictors share the two-method interface of
:class:`~repro.branch.base.BranchPredictor`: ``predict(pc) -> bool`` and
``update(pc, taken)``.  Unconditional jumps are never passed to predictors.
"""

from repro.branch.base import BranchPredictor
from repro.branch.perceptron import PerceptronPredictor
from repro.branch.gshare import GSharePredictor
from repro.branch.bimodal import BimodalPredictor
from repro.branch.static import AlwaysTakenPredictor, NeverTakenPredictor

_PREDICTORS = {
    "perceptron": PerceptronPredictor,
    "gshare": GSharePredictor,
    "bimodal": BimodalPredictor,
    "always-taken": AlwaysTakenPredictor,
    "never-taken": NeverTakenPredictor,
}


def make_predictor(name: str, **kwargs) -> BranchPredictor:
    """Instantiate a predictor by name (used by configs and the CLI)."""
    try:
        cls = _PREDICTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown predictor {name!r}; available: {sorted(_PREDICTORS)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "BranchPredictor",
    "PerceptronPredictor",
    "GSharePredictor",
    "BimodalPredictor",
    "AlwaysTakenPredictor",
    "NeverTakenPredictor",
    "make_predictor",
]
