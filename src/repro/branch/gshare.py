"""Gshare predictor (McFarling): global history XOR pc indexing 2-bit counters."""

from __future__ import annotations

from repro.branch.base import BranchPredictor


class GSharePredictor(BranchPredictor):
    """Classic gshare with 2-bit saturating counters.

    Args:
        table_bits: log2 of the pattern-history-table size.
        history_length: Global history bits folded into the index.
    """

    def __init__(self, table_bits: int = 12, history_length: int = 12) -> None:
        super().__init__()
        if history_length > table_bits:
            raise ValueError("history_length cannot exceed table_bits")
        self.table_bits = table_bits
        self.history_length = history_length
        self._mask = (1 << table_bits) - 1
        self._history = 0
        self._history_mask = (1 << history_length) - 1
        self._counters = [2] * (1 << table_bits)  # weakly taken

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def _predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)] >= 2

    def _train(self, pc: int, taken: bool, predicted: bool) -> None:
        idx = self._index(pc)
        counter = self._counters[idx]
        if taken:
            self._counters[idx] = min(3, counter + 1)
        else:
            self._counters[idx] = max(0, counter - 1)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
