"""The branch-predictor spec grammar.

Machine kinds that expose the predictor as a configuration axis
(``ooo-bp``, ``dual``) carry it as one compact string::

    perceptron[-ENTRIES[-HISTORY]] | gshare[-BITS[-HISTORY]]
    | bimodal[-BITS] | oracle | static | always-taken | never-taken

``gshare-14`` is a 2^14-entry gshare with 14 history bits,
``perceptron-64-16`` a 64-row perceptron over 16 history bits,
``oracle`` the perfect upper bound and ``static`` (an alias of
``always-taken``) the lower bound.  :func:`canonical_predictor`
validates a spelling and returns its canonical form — what the config
dataclasses store and fingerprint — and :func:`parse_predictor` builds
the predictor instance.  Malformed spellings raise
:class:`~repro.grammar.SpecError` naming this grammar, matching the
machine-spec error convention.
"""

from __future__ import annotations

from repro.branch.base import BranchPredictor
from repro.branch.bimodal import BimodalPredictor
from repro.branch.gshare import GSharePredictor
from repro.branch.perceptron import PerceptronPredictor
from repro.branch.static import (
    AlwaysTakenPredictor,
    NeverTakenPredictor,
    OraclePredictor,
)
from repro.grammar import SpecError

PREDICTOR_GRAMMAR = (
    "perceptron[-ENTRIES[-HISTORY]] | gshare[-BITS[-HISTORY]] | "
    "bimodal[-BITS] | oracle | static | always-taken | never-taken"
)

#: Spellings that take no numeric parameters, mapped to their canonical
#: form (``static`` is the traditional name for the always-taken bound).
_FIXED = {
    "oracle": "oracle",
    "static": "always-taken",
    "always-taken": "always-taken",
    "never-taken": "never-taken",
}

#: Parameterizable families and how many numeric parameters they accept.
_FAMILIES = {"perceptron": 2, "gshare": 2, "bimodal": 1}


def _bad(spec: str, why: str) -> SpecError:
    return SpecError(
        f"bad predictor spec {spec!r}: {why}; grammar: {PREDICTOR_GRAMMAR}"
    )


def _split(spec: str) -> tuple[str, list[int]]:
    """Split a predictor spec into (family, numeric parameters)."""
    text = spec.strip().lower()
    if not text:
        raise _bad(spec, "empty spec")
    if text in _FIXED:
        return _FIXED[text], []
    parts = text.split("-")
    family = parts[0]
    if family not in _FAMILIES:
        known = sorted(set(_FIXED) | set(_FAMILIES))
        raise _bad(spec, f"unknown predictor {family!r}; known: {', '.join(known)}")
    if len(parts) - 1 > _FAMILIES[family]:
        raise _bad(
            spec,
            f"{family} takes at most {_FAMILIES[family]} numeric parameter(s)",
        )
    numbers = []
    for token in parts[1:]:
        if not token.isdigit() or int(token) <= 0:
            raise _bad(spec, f"{token!r} is not a positive integer")
        numbers.append(int(token))
    return family, numbers


def canonical_predictor(spec: str) -> str:
    """Validate *spec* and return its canonical spelling.

    The canonical form is what the machine configs store (and therefore
    what the result store fingerprints), so equivalent spellings —
    ``Static`` and ``always-taken``, ``gshare`` with padded whitespace —
    share one cell.  Raises :class:`SpecError` for malformed specs,
    including parameter combinations the predictor constructors reject
    (e.g. a perceptron row count that is not a power of two).
    """
    family, numbers = _split(spec)
    parse_predictor(spec)  # constructor-level validation
    if not numbers:
        return family
    return "-".join([family, *map(str, numbers)])


def parse_predictor(spec: str) -> BranchPredictor:
    """Build the predictor instance a spec describes."""
    family, numbers = _split(spec)
    try:
        if family == "perceptron":
            kwargs = {}
            if numbers:
                kwargs["num_perceptrons"] = numbers[0]
            if len(numbers) > 1:
                kwargs["history_length"] = numbers[1]
            return PerceptronPredictor(**kwargs)
        if family == "gshare":
            kwargs = {}
            if numbers:
                # One number sets both: a 2^N table with N history bits.
                kwargs["table_bits"] = numbers[0]
                kwargs["history_length"] = numbers[0]
            if len(numbers) > 1:
                kwargs["history_length"] = numbers[1]
            return GSharePredictor(**kwargs)
        if family == "bimodal":
            if numbers:
                return BimodalPredictor(table_bits=numbers[0])
            return BimodalPredictor()
    except ValueError as error:
        raise _bad(spec, str(error)) from None
    return {
        "oracle": OraclePredictor,
        "always-taken": AlwaysTakenPredictor,
        "never-taken": NeverTakenPredictor,
    }[family]()
