"""Bimodal predictor: per-pc 2-bit saturating counters, no history."""

from __future__ import annotations

from repro.branch.base import BranchPredictor


class BimodalPredictor(BranchPredictor):
    """Smith-style bimodal table of 2-bit counters indexed by pc."""

    def __init__(self, table_bits: int = 12) -> None:
        super().__init__()
        self.table_bits = table_bits
        self._mask = (1 << table_bits) - 1
        self._counters = [2] * (1 << table_bits)  # weakly taken

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def _predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)] >= 2

    def _train(self, pc: int, taken: bool, predicted: bool) -> None:
        idx = self._index(pc)
        counter = self._counters[idx]
        if taken:
            self._counters[idx] = min(3, counter + 1)
        else:
            self._counters[idx] = max(0, counter - 1)
