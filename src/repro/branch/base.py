"""Common branch-predictor interface and accuracy bookkeeping."""

from __future__ import annotations

import abc


class BranchPredictor(abc.ABC):
    """Direction predictor for conditional branches.

    Subclasses implement :meth:`_predict` and :meth:`_train`; the public
    methods add accuracy statistics.  Predictors are updated speculatively
    at prediction time in our trace-driven cores (the trace is the correct
    path, so the final outcome is already known at fetch); this matches the
    usual trace-driven methodology.
    """

    def __init__(self) -> None:
        self.predictions = 0
        self.mispredictions = 0

    # ------------------------------------------------------------------

    def predict(self, pc: int) -> bool:
        """Predict the direction of the conditional branch at *pc*."""
        return self._predict(pc)

    def update(self, pc: int, taken: bool) -> bool:
        """Record the outcome; returns True when the prediction was correct.

        Call once per dynamic branch, after :meth:`predict`.
        """
        predicted = self._predict(pc)
        correct = predicted == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        self._train(pc, taken, predicted)
        return correct

    # ------------------------------------------------------------------

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions

    def reset_stats(self) -> None:
        self.predictions = 0
        self.mispredictions = 0

    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _predict(self, pc: int) -> bool:
        """Direction prediction without statistics side effects."""

    @abc.abstractmethod
    def _train(self, pc: int, taken: bool, predicted: bool) -> None:
        """Update predictor state with the resolved outcome."""
