"""The perceptron branch predictor of Jiménez & Lin (HPCA 2001).

This is the predictor the paper's Cache Processor uses (Table 2).  Each
static branch hashes to a weight vector; the prediction is the sign of the
dot product of the weights with the global history (plus a bias term).
Training adjusts weights by ±1 when the prediction was wrong or the output
magnitude is below the threshold θ = ⌊1.93·h + 14⌋, the value derived in
the original paper.
"""

from __future__ import annotations

from repro.branch.base import BranchPredictor


class PerceptronPredictor(BranchPredictor):
    """Global-history perceptron predictor.

    Args:
        num_perceptrons: Size of the weight table (power of two).
        history_length: Global history bits (h).
        weight_bits: Saturation width of each weight (8 bits in the paper's
            hardware budget).
    """

    def __init__(
        self,
        num_perceptrons: int = 256,
        history_length: int = 24,
        weight_bits: int = 8,
    ) -> None:
        super().__init__()
        if num_perceptrons <= 0 or num_perceptrons & (num_perceptrons - 1):
            raise ValueError("num_perceptrons must be a power of two")
        if history_length <= 0:
            raise ValueError("history_length must be positive")
        self.num_perceptrons = num_perceptrons
        self.history_length = history_length
        self.threshold = int(1.93 * history_length + 14)
        self._weight_max = (1 << (weight_bits - 1)) - 1
        self._weight_min = -(1 << (weight_bits - 1))
        # weights[i] = [bias, w_1 .. w_h]; history[j] in {-1, +1}
        self._weights = [[0] * (history_length + 1) for _ in range(num_perceptrons)]
        self._history = [1] * history_length

    # ------------------------------------------------------------------

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.num_perceptrons - 1)

    def _output(self, pc: int) -> int:
        w = self._weights[self._index(pc)]
        y = w[0]
        hist = self._history
        for i in range(self.history_length):
            y += w[i + 1] * hist[i]
        return y

    def _predict(self, pc: int) -> bool:
        return self._output(pc) >= 0

    def _train(self, pc: int, taken: bool, predicted: bool) -> None:
        y = self._output(pc)
        t = 1 if taken else -1
        if predicted != taken or abs(y) <= self.threshold:
            w = self._weights[self._index(pc)]
            w[0] = self._saturate(w[0] + t)
            hist = self._history
            for i in range(self.history_length):
                w[i + 1] = self._saturate(w[i + 1] + t * hist[i])
        # Shift the outcome into global history (newest at index 0).
        self._history.insert(0, t)
        self._history.pop()

    def _saturate(self, value: int) -> int:
        if value > self._weight_max:
            return self._weight_max
        if value < self._weight_min:
            return self._weight_min
        return value
