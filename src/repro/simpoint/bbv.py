"""Basic Block Vector profiling.

A *basic block* boundary is any control-flow instruction; the "block id"
of an instruction is the pc of the last control-flow target before it.
For each fixed-size interval of the dynamic trace we count how many
instructions executed under each block id, then L1-normalize — the
standard BBV of Sherwood et al.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.isa import Instruction


@dataclass
class BasicBlockVectors:
    """BBV profile of a trace: one normalized row per interval."""

    interval_size: int
    #: (num_intervals, num_blocks) float array, rows L1-normalized.
    matrix: np.ndarray
    #: block id (pc) per matrix column.
    block_ids: list[int]

    @property
    def num_intervals(self) -> int:
        """Number of profiled intervals (matrix rows)."""
        return self.matrix.shape[0]

    @property
    def num_blocks(self) -> int:
        """Number of distinct basic blocks seen (matrix columns)."""
        return self.matrix.shape[1]


def collect_bbvs(
    trace: Iterable[Instruction], interval_size: int = 1024
) -> BasicBlockVectors:
    """Profile *trace* into basic-block vectors of ``interval_size``."""
    if interval_size <= 0:
        raise ValueError("interval size must be positive")
    block_index: dict[int, int] = {}
    interval_rows: list[dict[int, int]] = []
    current: dict[int, int] = {}
    count = 0
    block = 0  # current basic block id (entry pc)
    for instr in trace:
        column = block_index.setdefault(block, len(block_index))
        current[column] = current.get(column, 0) + 1
        count += 1
        if instr.is_branch and instr.taken:
            block = instr.target if instr.target else instr.pc + 4
        elif instr.is_branch:
            block = instr.pc + 4
        if count == interval_size:
            interval_rows.append(current)
            current = {}
            count = 0
    if count:
        interval_rows.append(current)
    num_blocks = len(block_index)
    matrix = np.zeros((len(interval_rows), max(num_blocks, 1)), dtype=np.float64)
    for row, counts in enumerate(interval_rows):
        for column, value in counts.items():
            matrix[row, column] = value
        total = matrix[row].sum()
        if total:
            matrix[row] /= total
    ids = [0] * max(num_blocks, 1)
    for pc, column in block_index.items():
        ids[column] = pc
    return BasicBlockVectors(
        interval_size=interval_size, matrix=matrix, block_ids=ids
    )
