"""k-means clustering with k-means++ seeding, implemented from scratch.

SimPoint clusters interval BBVs with k-means; scikit-learn is not among
this project's dependencies, so the algorithm is implemented here on
numpy.  Deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class KMeansResult:
    """Clustering outcome."""

    centroids: np.ndarray          # (k, dims)
    labels: np.ndarray             # (n,) cluster index per point
    inertia: float                 # sum of squared distances to centroids
    iterations: int

    @property
    def k(self) -> int:
        """Number of clusters (centroid rows)."""
        return self.centroids.shape[0]

    def cluster_sizes(self) -> np.ndarray:
        """Population of each cluster, indexed by cluster label."""
        return np.bincount(self.labels, minlength=self.k)


def _seed_centroids(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids proportionally to D^2."""
    n = points.shape[0]
    centroids = np.empty((k, points.shape[1]), dtype=points.dtype)
    first = rng.integers(n)
    centroids[0] = points[first]
    distances = np.sum((points - centroids[0]) ** 2, axis=1)
    for i in range(1, k):
        total = distances.sum()
        if total <= 0:
            # All points coincide with chosen centroids; reuse any point.
            centroids[i:] = points[rng.integers(n, size=k - i)]
            break
        probabilities = distances / total
        choice = rng.choice(n, p=probabilities)
        centroids[i] = points[choice]
        distances = np.minimum(
            distances, np.sum((points - centroids[i]) ** 2, axis=1)
        )
    return centroids


def kmeans(
    points: np.ndarray,
    k: int,
    seed: int = 0,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
) -> KMeansResult:
    """Cluster *points* into *k* groups (Lloyd's algorithm, k-means++ init)."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array")
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    rng = np.random.default_rng(seed)
    centroids = _seed_centroids(points, k, rng)
    labels = np.zeros(n, dtype=np.int64)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        # Assign: nearest centroid per point.
        distances = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        labels = distances.argmin(axis=1)
        # Update: mean of each cluster; empty clusters grab the farthest point.
        new_centroids = centroids.copy()
        for cluster in range(k):
            members = points[labels == cluster]
            if len(members):
                new_centroids[cluster] = members.mean(axis=0)
            else:
                farthest = distances.min(axis=1).argmax()
                new_centroids[cluster] = points[farthest]
        shift = float(((new_centroids - centroids) ** 2).sum())
        centroids = new_centroids
        if shift <= tolerance:
            break
    distances = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    labels = distances.argmin(axis=1)
    inertia = float(distances[np.arange(n), labels].sum())
    return KMeansResult(
        centroids=centroids, labels=labels, inertia=inertia, iterations=iterations
    )
