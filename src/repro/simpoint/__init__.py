"""SimPoint methodology: pick representative intervals of a long trace.

The paper simulates "200 million committed instructions selected using the
SimPoint methodology" (Sherwood et al., ASPLOS 2002, reference [17]).  We
implement that methodology at reduced scale so the same workflow —
profile basic-block vectors, cluster them, simulate one interval per
cluster, weight the results — can be exercised and tested:

* :mod:`repro.simpoint.bbv` — split a trace into fixed-size intervals and
  build each interval's Basic Block Vector (execution-frequency profile);
* :mod:`repro.simpoint.kmeans` — a from-scratch k-means with the k-means++
  seeding SimPoint uses (deterministic given a seed);
* :mod:`repro.simpoint.select` — choose the interval closest to each
  cluster centroid and produce (interval, weight) simulation points.
"""

from repro.simpoint.bbv import BasicBlockVectors, collect_bbvs
from repro.simpoint.kmeans import KMeansResult, kmeans
from repro.simpoint.select import SimPoint, choose_simpoints, weighted_ipc

__all__ = [
    "BasicBlockVectors",
    "collect_bbvs",
    "KMeansResult",
    "kmeans",
    "SimPoint",
    "choose_simpoints",
    "weighted_ipc",
]
