"""SimPoint methodology: pick representative intervals of a long trace.

The paper simulates "200 million committed instructions selected using the
SimPoint methodology" (Sherwood et al., ASPLOS 2002, reference [17]).  We
implement that methodology at reduced scale so the same workflow —
profile basic-block vectors, cluster them, simulate one interval per
cluster, weight the results — runs end to end against the repository's
own sweeps:

* :mod:`repro.simpoint.bbv` — split a trace into fixed-size intervals and
  build each interval's Basic Block Vector (execution-frequency profile);
* :mod:`repro.simpoint.kmeans` — a from-scratch k-means with the k-means++
  seeding SimPoint uses (deterministic given a seed);
* :mod:`repro.simpoint.select` — choose the interval closest to each
  cluster centroid and produce (interval, weight) simulation points;
* :mod:`repro.simpoint.phases` — the pipeline over a captured trace
  file: one streaming pass to a :class:`~repro.simpoint.phases.PhaseSet`.

The selection feeds the rest of the stack through the ``phases(...)``
workload kind (:mod:`repro.workloads.phases`): each selected interval
replays as an ordinary store-cached sweep cell, and the sweep engine
aggregates the per-phase IPCs with the set's weights into the SimPoint
whole-program estimate (see ``docs/METHODOLOGY.md``).
"""

from repro.simpoint.bbv import BasicBlockVectors, collect_bbvs
from repro.simpoint.kmeans import KMeansResult, kmeans
from repro.simpoint.phases import PhaseAnalysisError, PhaseSet, analyze_trace
from repro.simpoint.select import SimPoint, choose_simpoints, weighted_ipc

__all__ = [
    "BasicBlockVectors",
    "collect_bbvs",
    "KMeansResult",
    "kmeans",
    "PhaseAnalysisError",
    "PhaseSet",
    "analyze_trace",
    "SimPoint",
    "choose_simpoints",
    "weighted_ipc",
]
