"""Phase analysis of captured traces: the front half of SimPoint sampling.

:func:`analyze_trace` runs the whole selection pipeline over one trace
file in a single streaming pass — slice into fixed-size intervals,
profile each interval's basic-block vector (:mod:`repro.simpoint.bbv`),
cluster with k-means (:mod:`repro.simpoint.kmeans`), and choose one
representative interval per cluster with its population weight
(:mod:`repro.simpoint.select`).  The resulting :class:`PhaseSet` is the
contract the workload layer consumes: ``repro.workloads.phases`` turns
each selected interval into a replayable ``phases(...)`` workload and
the sweep engine combines the per-phase IPCs with the set's weights.

Only *complete* intervals are profiled; a partial tail (a capture whose
length is not a multiple of the interval) is dropped from clustering so
every selectable phase can actually supply ``interval`` instructions at
replay time.  Analyses are memoized per (file identity, parameters), so
expanding the same phase-set token in several sweeps re-reads nothing.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterator

from repro.grammar import render_spec
from repro.isa import Instruction
from repro.simpoint.bbv import BasicBlockVectors, collect_bbvs
from repro.simpoint.select import SimPoint, choose_simpoints
from repro.trace.io import load_trace


class PhaseAnalysisError(ValueError):
    """A trace cannot be phase-analyzed (empty, or shorter than one interval)."""


@dataclass(frozen=True)
class PhaseSet:
    """The SimPoint selection for one captured trace.

    *points* hold the representative interval indices and their cluster
    weights (summing to 1 over the selected phases); *num_intervals*
    counts the complete intervals profiled, and *total_instructions* the
    capture's full length including any unprofiled partial tail.
    """

    path: str
    interval: int
    k: int  #: requested cluster count (the selection may be smaller)
    seed: int
    num_intervals: int
    total_instructions: int
    points: tuple[SimPoint, ...]

    @property
    def weights(self) -> tuple[float, ...]:
        """Per-phase weights, in :attr:`points` order (sum to 1)."""
        return tuple(point.weight for point in self.points)

    @property
    def coverage(self) -> float:
        """Fraction of the capture the selected phases actually simulate."""
        if not self.total_instructions:
            return 0.0
        return len(self.points) * self.interval / self.total_instructions

    def member_specs(self) -> tuple[str, ...]:
        """Canonical single-phase workload specs, one per selected point.

        These are exactly the names :class:`repro.workloads.phases
        .PhaseWorkload` gives itself, so the sweep engine's cells, the
        result store's keys, and this analysis all agree on identity.
        """
        return tuple(
            render_spec(
                "phases",
                {"file": self.path, "interval": self.interval, "index": p.interval},
            )
            for p in self.points
        )

    def token(self) -> str:
        """The canonical phase-*set* spec (the sweep-level token)."""
        return render_spec(
            "phases",
            {
                "file": self.path,
                "interval": self.interval,
                "k": self.k,
                "seed": self.seed,
            },
        )

    def table_rows(self) -> list[list[object]]:
        """Rows for human-facing phase tables (the ``simpoint`` subcommand).

        Each row is ``[phase, interval, instruction range, weight, spec]``.
        """
        rows: list[list[object]] = []
        for number, (point, spec) in enumerate(zip(self.points, self.member_specs())):
            start, end = point.instruction_range(self.interval)
            rows.append(
                [number, point.interval, f"[{start}, {end})",
                 round(point.weight, 4), spec]
            )
        return rows


#: Memoized analyses keyed by (absolute path, mtime, size, parameters).
_CACHE: dict[tuple, PhaseSet] = {}


def _file_identity(path: str) -> tuple | None:
    try:
        stat = os.stat(path)
    except OSError:
        return None  # let load_trace produce the friendly error
    return (os.path.abspath(path), stat.st_mtime_ns, stat.st_size)


def analyze_trace(
    path: str, interval: int = 1024, k: int = 4, seed: int = 0
) -> PhaseSet:
    """Select weighted simulation phases for the capture at *path*.

    One streaming pass: profile BBVs per *interval* instructions, drop
    the partial tail, cluster into at most *k* groups (clamped to the
    interval count), and pick one representative per cluster.  Raises
    :class:`PhaseAnalysisError` when the capture holds no complete
    interval, and :class:`~repro.trace.io.TraceFormatError` for a
    missing or corrupt file.
    """
    if interval <= 0:
        raise PhaseAnalysisError(f"interval must be positive, got {interval}")
    if k <= 0:
        raise PhaseAnalysisError(f"k must be positive, got {k}")
    identity = _file_identity(path)
    key = identity + (interval, k, seed) if identity is not None else None
    if key is not None and key in _CACHE:
        return _CACHE[key]
    total = 0

    def counted() -> Iterator[Instruction]:
        """Pass the trace through while counting its total length."""
        nonlocal total
        for instruction in load_trace(path):
            total += 1
            yield instruction

    bbvs = collect_bbvs(counted(), interval_size=interval)
    complete = total // interval
    if complete == 0:
        raise PhaseAnalysisError(
            f"{path}: capture holds {total} instruction(s), fewer than one "
            f"complete interval of {interval}; shrink the interval or "
            "capture a longer trace"
        )
    if total % interval:
        bbvs = BasicBlockVectors(
            interval_size=interval,
            matrix=bbvs.matrix[:complete],
            block_ids=bbvs.block_ids,
        )
    points = tuple(choose_simpoints(bbvs, k=k, seed=seed))
    phase_set = PhaseSet(
        path=path,
        interval=interval,
        k=k,
        seed=seed,
        num_intervals=complete,
        total_instructions=total,
        points=points,
    )
    if key is not None:
        _CACHE[key] = phase_set
    return phase_set
