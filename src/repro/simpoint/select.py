"""Simulation-point selection: one representative interval per cluster."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simpoint.bbv import BasicBlockVectors
from repro.simpoint.kmeans import kmeans


@dataclass(frozen=True)
class SimPoint:
    """One chosen simulation point."""

    interval: int    # interval index in the profiled trace
    weight: float    # fraction of intervals its cluster covers

    def instruction_range(self, interval_size: int) -> tuple[int, int]:
        """Half-open ``(start, end)`` instruction span of this interval."""
        start = self.interval * interval_size
        return start, start + interval_size


def choose_simpoints(
    bbvs: BasicBlockVectors, k: int = 4, seed: int = 0
) -> list[SimPoint]:
    """Cluster the BBVs and pick the interval nearest each centroid.

    Weights are cluster populations normalized to 1, exactly how SimPoint
    weights per-point IPC into a whole-program estimate.
    """
    matrix = bbvs.matrix
    k = min(k, matrix.shape[0])
    result = kmeans(matrix, k, seed=seed)
    points: list[SimPoint] = []
    n = matrix.shape[0]
    for cluster in range(result.k):
        members = np.flatnonzero(result.labels == cluster)
        if len(members) == 0:
            continue
        centroid = result.centroids[cluster]
        distances = ((matrix[members] - centroid) ** 2).sum(axis=1)
        representative = int(members[distances.argmin()])
        points.append(SimPoint(interval=representative, weight=len(members) / n))
    points.sort(key=lambda p: p.interval)
    return points


def weighted_ipc(points: list[SimPoint], ipcs: dict[int, float]) -> float:
    """Combine per-point IPC measurements into the program estimate."""
    total_weight = sum(p.weight for p in points)
    if not total_weight:
        return 0.0
    acc = 0.0
    for point in points:
        try:
            acc += point.weight * ipcs[point.interval]
        except KeyError:
            raise KeyError(
                f"no IPC measurement for simulation point {point.interval}"
            ) from None
    return acc / total_weight
