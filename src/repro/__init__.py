"""repro — reproduction of "A Decoupled KILO-Instruction Processor" (HPCA 2006).

A trace-driven microarchitecture simulation library built around the
paper's contribution, the D-KIP: a decoupled Cache-Processor /
Memory-Processor machine exploiting *execution locality*.

Quickstart::

    from repro import DKIP_2048, R10_64, get_workload, run_core

    workload = get_workload("swim")
    base = run_core(R10_64, workload, 20_000)
    dkip = run_core(DKIP_2048, workload, 20_000)
    print(f"R10-64 IPC {base.ipc:.2f}  vs  D-KIP IPC {dkip.ipc:.2f}")

See ``ARCHITECTURE.md`` for the module map and ``REPRODUCTION.md``
(regenerate with ``make reproduce``) for the per-figure reproduction
record with verdicts against the paper.
"""

from repro.sim import (
    DKIP_2048,
    KILO_1024,
    R10_64,
    R10_256,
    CoreConfig,
    DkipConfig,
    KiloConfig,
    SchedulerPolicy,
    SimStats,
    run_core,
    simulate,
)
from repro.memory import DEFAULT_MEMORY, MemoryConfig, TABLE1_CONFIGS
from repro.workloads import SPECFP_NAMES, SPECINT_NAMES, get_workload, suite

__version__ = "1.0.0"

__all__ = [
    "DKIP_2048",
    "KILO_1024",
    "R10_64",
    "R10_256",
    "CoreConfig",
    "DkipConfig",
    "KiloConfig",
    "SchedulerPolicy",
    "SimStats",
    "run_core",
    "simulate",
    "DEFAULT_MEMORY",
    "MemoryConfig",
    "TABLE1_CONFIGS",
    "SPECINT_NAMES",
    "SPECFP_NAMES",
    "get_workload",
    "suite",
    "__version__",
]
