"""Baseline processors the paper compares the D-KIP against.

* :class:`~repro.baselines.ooo.R10Core` — an R10000-style out-of-order
  core; with a 64-entry ROB and 40-entry queues it is the paper's R10-64
  (identical to the default Cache Processor), with 256/160 it is R10-256.
* :class:`~repro.baselines.kilo.KiloCore` — the KILO-1024 comparator:
  a 64-entry pseudo-ROB whose head streams long-latency slices into an
  out-of-order 1024-entry Slow Lane Instruction Queue (Cristal et al.,
  reference [9] of the paper).
* :mod:`repro.baselines.limit` — the idealized ROB-only processor used for
  the Section-2 characterization (Figures 1-3): stalls can only come from
  ROB shortage, branch mispredictions and data dependences.
"""

from repro.baselines.ooo import R10Core
from repro.baselines.kilo import KiloCore
from repro.baselines.limit import LimitResult, issue_distance_histogram, simulate_limit
from repro.baselines.runahead import RunaheadCore

__all__ = [
    "R10Core",
    "KiloCore",
    "LimitResult",
    "issue_distance_histogram",
    "simulate_limit",
    "RunaheadCore",
]
