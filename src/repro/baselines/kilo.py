"""KILO-1024: pseudo-ROB + out-of-order Slow Lane Instruction Queue.

Models the traditional KILO-instruction processor of Cristal et al.
(reference [9] of the paper, "out-of-order commit processors") that
Figure 9 compares the D-KIP against:

* a small (64-entry) *pseudo-ROB* whose head is inspected after a fixed
  aging delay, like the D-KIP's Analyze stage;
* instructions that reach the head *without having executed* move to the
  *SLIQ*, a large (1024-entry) secondary window with full out-of-order
  wakeup and select — the costly CAM structure the D-KIP's FIFO LLIB
  replaces;
* commit is out of order under multicheckpointing, so the pseudo-ROB never
  stalls waiting for a long-latency instruction (this is what
  distinguishes it from a simple small-ROB machine on compute-bound code).

Because the SLIQ wakes any ready instruction regardless of position,
serial pointer-chasing slices re-issue the moment their operands arrive;
this is why the paper finds KILO-1024 ahead of the D-KIP on SpecINT
(Section 4.2) — at the cost of a 1024-entry CAM and "a very complex
mechanism for register storage" (ephemeral registers, reference [19]).
"""

from __future__ import annotations

from typing import Iterable

from repro.branch.base import BranchPredictor
from repro.isa import Instruction
from repro.isa.registers import NUM_REGS
from repro.machines.params import parse_count, reject_unknown
from repro.machines.registry import MachineKind, register_machine
from repro.memory.cache import AccessLevel
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.entry import InFlight
from repro.pipeline.queues import IssueQueue
from repro.sim.config import CoreConfig, KiloConfig, SchedulerPolicy
from repro.sim.stats import SimStats
from repro.baselines.ooo import R10Core


class KiloCore(R10Core):
    """Two-level KILO-instruction processor (pseudo-ROB + SLIQ)."""

    def __init__(
        self,
        trace: Iterable[Instruction],
        config: KiloConfig,
        hierarchy: MemoryHierarchy,
        predictor: BranchPredictor,
        stats: SimStats | None = None,
    ) -> None:
        stats = stats or SimStats(config=config.name)
        super().__init__(trace, config.core, hierarchy, predictor, stats)
        self.name = config.name
        self.kilo_config = config
        self.sliq = IssueQueue("sliq", config.sliq_size, SchedulerPolicy.OUT_OF_ORDER)
        # llbv[r] is the in-flight long-latency producer of register r.
        self.llbv: list[InFlight | None] = [None] * NUM_REGS
        # Re-dispatch pipeline: entries inserted ready (or woken) become
        # issue-eligible only after the slow lane's re-issue delay, and
        # re-insertions share the dispatch ports with the front end.
        self._reissue_wheel: dict[int, list[InFlight]] = {}
        self._reissue_backlog: list[InFlight] = []
        self._reissued_this_cycle = 0
        # The SLIQ participates as the oldest scheduling window.
        self._kilo_queues_even = (self.sliq, self.iq_int, self.iq_fp)
        self._kilo_queues_odd = (self.sliq, self.iq_fp, self.iq_int)

    # ------------------------------------------------------------------

    def step(self) -> None:
        self.process_completions()
        self._release_reissued()
        self._analyze()
        self._issue()
        self._dispatch()
        self.fetch.cycle(self.now)

    def _release_reissued(self) -> None:
        """Re-insert slow-lane entries whose re-dispatch delay elapsed.

        At most ``sliq_reissue_width`` entries per cycle re-enter the issue
        queues, and each consumes one of the shared dispatch slots (see
        :meth:`_dispatch`); the remainder queue up in the backlog.
        """
        due = self._reissue_wheel.pop(self.now, None)
        if due:
            self._reissue_backlog.extend(due)
        width = self.kilo_config.sliq_reissue_width
        released = 0
        while self._reissue_backlog and released < width:
            entry = self._reissue_backlog.pop(0)
            entry.unready -= 1
            released += 1
            if entry.unready == 0 and entry.owner is self.sliq:
                self.sliq.wake(entry)
        self._reissued_this_cycle = released

    def _dispatch(self) -> None:
        """Front-end dispatch, throttled by slow-lane re-insertions."""
        stolen = self._reissued_this_cycle
        if stolen >= self.config.decode_width:
            return
        original = self.config.decode_width
        # Temporarily narrow dispatch by the slots the slow lane consumed.
        width = original - stolen
        for _ in range(width):
            instr = self.fetch.peek()
            if instr is None:
                return
            if len(self.rob) >= self.config.rob_size:
                return
            queue = self.iq_fp if instr.is_fp else self.iq_int
            if not queue.has_space:
                return
            if instr.is_mem and not self.lsq.has_space:
                return
            self.fetch.pop()
            entry = InFlight(instr, fetch_cycle=self.now)
            entry.dispatch_cycle = self.now
            if instr.seq == self.fetch.waiting_seq:
                entry.mispredicted = True
            self.regs.link_sources(entry)
            self.regs.define(entry)
            self.rob.append(entry)
            queue.add(entry)
            if instr.is_mem:
                self.lsq.allocate()

    # ------------------------------------------------------------------
    # Analyze stage (replaces in-order commit)
    # ------------------------------------------------------------------

    def _analyze(self) -> None:
        """Pseudo-ROB head processing: out-of-order commit + SLIQ routing.

        Multicheckpointing lets instructions leave the pseudo-ROB before
        executing; those that depend on a long-latency register (LLBV) are
        moved from their issue queue into the SLIQ to free IQ entries, the
        rest simply stay in their issue queue and commit at completion.
        """
        rob = self.rob
        width = self.config.commit_width
        timer = self.kilo_config.rob_timer
        analyzed = 0
        while analyzed < width and rob:
            entry = rob[0]
            if self.now - entry.dispatch_cycle < timer:
                break
            instr = entry.instr
            if entry.executed:
                # Executed in time: retire in order from the pseudo-ROB.
                rob.popleft()
                if instr.is_mem:
                    if instr.is_store:
                        self.hierarchy.access(instr.addr, write=True, now=self.now)
                        self.lsq.store_committed(entry)
                    self.lsq.release()
                if instr.dest is not None and self.llbv[instr.dest] is not entry:
                    self.llbv[instr.dest] = None  # short redefinition clears
                self.committed += 1
                self.stats.committed_cp += 1
                analyzed += 1
                continue
            if entry.issued:
                # Executing (typically a load waiting on memory): commits
                # out of order under a checkpoint when it completes.
                rob.popleft()
                entry.where = "ap"
                entry.long_latency = True
                if (
                    instr.is_load
                    and entry.mem_level == AccessLevel.MEMORY
                    and instr.dest is not None
                ):
                    self.llbv[instr.dest] = entry
                analyzed += 1
                continue
            if self._blocked_on_llbv(entry):
                # Miss-dependent: move from the issue queue to the SLIQ.
                if not self.sliq.has_space:
                    self.stats.analyze_stall_cycles += 1
                    self.stats.llib_full_stall_cycles += 1
                    break
                rob.popleft()
                owner = entry.owner
                if isinstance(owner, IssueQueue):
                    owner.remove(entry)
                entry.where = "sliq"
                entry.long_latency = True
                if instr.dest is not None:
                    self.llbv[instr.dest] = entry
                # Hold a re-dispatch token: the entry cannot issue until the
                # slow lane's re-issue pipeline delivers it back through the
                # shared dispatch ports.
                entry.unready += 1
                self.sliq.add(entry)
                # Release strictly in a later cycle: this cycle's wheel slot
                # has already been processed.
                release = self.now + max(1, self.kilo_config.sliq_reissue_delay)
                self._reissue_wheel.setdefault(release, []).append(entry)
                self.stats.llib_insertions += 1
                if self.sliq.occupancy > self.stats.llib_max_instructions_int:
                    self.stats.llib_max_instructions_int = self.sliq.occupancy
                analyzed += 1
                continue
            # Short latency, merely waiting in its issue queue: commit out
            # of order under the checkpoint; the entry keeps its IQ slot.
            rob.popleft()
            entry.where = "iq"
            analyzed += 1

    def _blocked_on_llbv(self, entry: InFlight) -> bool:
        """True when a source register is marked long latency (LLBV).

        Bits clear lazily: the KILO writes slow-lane results back into its
        merged register file, so an executed producer means the register
        holds an architected value again.
        """
        llbv = self.llbv
        for src in entry.instr.live_srcs():
            producer = llbv[src]
            if producer is not None:
                if producer.executed:
                    llbv[src] = None
                else:
                    return True
        return False

    # ------------------------------------------------------------------
    # Quiescence protocol
    # ------------------------------------------------------------------

    def next_work_cycle(self) -> int | None:
        now = self.now
        if self._reissue_backlog:
            return now  # slow-lane re-dispatch tokens release every cycle
        if self._analyze_progress_possible():
            return now
        if (
            self.sliq.next_issuable(now) is not None
            or self.iq_int.next_issuable(now) is not None
            or self.iq_fp.next_issuable(now) is not None
        ):
            return now
        if self._dispatch_possible():
            return now
        wake = self.fetch.next_fetch_cycle(now)
        if self._reissue_wheel:
            due = min(self._reissue_wheel)
            wake = due if wake is None else min(wake, due)
        rob = self.rob
        if rob:
            maturity = rob[0].dispatch_cycle + self.kilo_config.rob_timer
            if maturity > now:
                wake = maturity if wake is None else min(wake, maturity)
        return wake

    def _analyze_progress_possible(self) -> bool:
        """Mirror of the first iteration of :meth:`_analyze`'s loop."""
        rob = self.rob
        if not rob:
            return False
        entry = rob[0]
        if self.now - entry.dispatch_cycle < self.kilo_config.rob_timer:
            return False
        if entry.executed or entry.issued:
            return True
        if self._blocked_on_llbv(entry):
            return self.sliq.has_space
        return True

    def on_cycles_skipped(self, start: int, end: int) -> None:
        self.fetch.account_skipped(start, end)
        rob = self.rob
        if not rob:
            return
        entry = rob[0]
        if start - entry.dispatch_cycle < self.kilo_config.rob_timer:
            return  # head immature throughout the skipped range
        if (
            not entry.executed
            and not entry.issued
            and self._blocked_on_llbv(entry)
            and not self.sliq.has_space
        ):
            skipped = end - start
            self.stats.analyze_stall_cycles += skipped
            self.stats.llib_full_stall_cycles += skipped

    def describe_stall(self) -> str:
        return (
            f"sliq={self.sliq.occupancy}, backlog={len(self._reissue_backlog)}, "
            f"wheel={len(self._reissue_wheel)}, {super().describe_stall()}"
        )

    # ------------------------------------------------------------------
    # Issue: the SLIQ participates as the oldest scheduling window
    # ------------------------------------------------------------------

    def _issue_queues(self) -> tuple[IssueQueue, ...]:
        if self.now & 1 == 0:
            return self._kilo_queues_even
        return self._kilo_queues_odd

    # ------------------------------------------------------------------

    def on_complete(self, entry: InFlight) -> None:
        instr = entry.instr
        if entry.where in ("ap", "sliq", "iq"):
            # Retired out of order: account the commit at completion.
            if instr.is_mem:
                if instr.is_store:
                    self.hierarchy.access(instr.addr, write=True, now=self.now)
                    self.lsq.store_committed(entry)
                self.lsq.release()
            self.committed += 1
            if entry.where == "sliq":
                self.stats.committed_mp += 1
            else:
                self.stats.committed_cp += 1
        if instr.is_branch:
            penalty = 0
            if entry.mispredicted and entry.long_latency:
                # Resolved from the slow lane: checkpoint recovery.
                penalty = self.kilo_config.recovery_penalty
                self.stats.checkpoint_recoveries += 1
                if self.now - entry.dispatch_cycle > 64:
                    self.stats.long_latency_branch_mispredictions += 1
            self.fetch.on_branch_resolved(entry.seq, self.now + penalty)


# ----------------------------------------------------------------------
# Machine-kind registration (spec grammar lives in repro.machines)
# ----------------------------------------------------------------------

KILO_GRAMMAR = (
    "kilo(sliq=N, prob=N, timer=N, iq=N, delay=N, rwidth=N, recovery=N, name=STR)"
)
_KILO_KEYS = frozenset(
    {"sliq", "prob", "timer", "iq", "delay", "rwidth", "recovery", "name"}
)


def _parse_kilo(params: dict[str, str]) -> KiloConfig:
    """Spec params -> KiloConfig; bare ``kilo`` is exactly KILO-1024."""
    reject_unknown("kilo", params, _KILO_KEYS, KILO_GRAMMAR)
    sliq = parse_count("kilo", "sliq", params.get("sliq", "1024"))
    iq = parse_count("kilo", "iq", params.get("iq", "72"))
    return KiloConfig(
        name=params.get("name", f"KILO-{sliq}"),
        core=CoreConfig(name="kilo-fe", iq_int=iq, iq_fp=iq),
        pseudo_rob=parse_count("kilo", "prob", params.get("prob", "64")),
        rob_timer=parse_count("kilo", "timer", params.get("timer", "16")),
        sliq_size=sliq,
        recovery_penalty=parse_count("kilo", "recovery", params.get("recovery", "16")),
        sliq_reissue_delay=parse_count("kilo", "delay", params.get("delay", "4")),
        sliq_reissue_width=parse_count("kilo", "rwidth", params.get("rwidth", "4")),
    )


register_machine(
    MachineKind(
        name="kilo",
        config_cls=KiloConfig,
        build=lambda config, trace, hierarchy, predictor, stats=None: KiloCore(
            trace, config, hierarchy, predictor, stats
        ),
        parse=_parse_kilo,
        description="Traditional KILO processor: pseudo-ROB + out-of-order SLIQ",
        grammar=KILO_GRAMMAR,
    )
)
