"""R10000-style out-of-order core.

This is the conventional superscalar the paper uses both as its baseline
(R10-64, R10-256 in Figure 9) and as the starting point for the D-KIP's
Cache Processor: merged register file, ROB commit, bounded issue queues,
and a load/store queue, fetching four instructions per cycle behind a
perceptron branch predictor.

The per-cycle pipeline, in back-to-front order so a value produced this
cycle can be consumed this cycle but structural slots free up next cycle:

1. completions & wakeup (event wheel)
2. in-order commit from the ROB head
3. issue from the ready heaps / queue heads, limited by FUs and width
4. dispatch from the fetch buffer into ROB + issue queues + LSQ
5. fetch (stalls at mispredicted branches until they resolve)
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Iterable

from repro.branch.base import BranchPredictor
from repro.isa import Instruction
from repro.machines.params import SpecError, parse_count, reject_unknown
from repro.machines.registry import MachineKind, register_machine
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.core import CycleCore
from repro.pipeline.entry import InFlight
from repro.pipeline.fetch import FetchUnit
from repro.pipeline.fu import FuKind, FuPool, fu_kind_of
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.queues import IssueQueue
from repro.pipeline.regstate import RegisterTracker
from repro.sim.config import CoreConfig, SchedulerPolicy
from repro.sim.stats import SimStats

#: Resolve latencies above this count as long-latency mispredictions.
LONG_MISPREDICT_THRESHOLD = 64


class R10Core(CycleCore):
    """Conventional out-of-order processor parameterized by ``CoreConfig``."""

    def __init__(
        self,
        trace: Iterable[Instruction],
        config: CoreConfig,
        hierarchy: MemoryHierarchy,
        predictor: BranchPredictor,
        stats: SimStats | None = None,
    ) -> None:
        stats = stats or SimStats(config=config.name)
        super().__init__(config.name, hierarchy, stats)
        self.config = config
        self.fetch = FetchUnit(
            trace,
            config.fetch_width,
            config.fetch_buffer,
            predictor,
            config.mispredict_redirect,
            stats,
        )
        self.rob: deque[InFlight] = deque()
        self.iq_int = IssueQueue("iq-int", config.iq_int, config.scheduler)
        self.iq_fp = IssueQueue("iq-fp", config.iq_fp, config.scheduler)
        self.lsq = LoadStoreQueue(config.lsq_size)
        self.regs = RegisterTracker()
        self.fus = FuPool(config.fus)
        self._rob_size = config.rob_size
        self._cache_issue_queues()

    def _cache_issue_queues(self) -> None:
        """(Re)build the per-parity queue-order tuples ``_issue_queues``
        hands out.  Must be called again by any subclass that replaces
        ``iq_int``/``iq_fp`` mid-run (runahead's checkpoint restore)."""
        self._queues_even = (self.iq_int, self.iq_fp)
        self._queues_odd = (self.iq_fp, self.iq_int)

    # ------------------------------------------------------------------

    def step(self) -> None:
        self.process_completions()
        rob = self.rob
        if rob and rob[0].executed:
            self._commit()
        self._issue()
        # Guards mirror the first-iteration exits of the stage loops: a
        # skipped call is one that would have returned without touching
        # any state.
        fetch = self.fetch
        if fetch.buffer and len(rob) < self._rob_size:
            self._dispatch()
        fetch.cycle(self.now)

    def on_complete(self, entry: InFlight) -> None:
        instr = entry.instr
        if instr.is_branch:
            self.fetch.on_branch_resolved(entry.seq, self.now)
            if (
                entry.mispredicted
                and self.now - entry.dispatch_cycle > LONG_MISPREDICT_THRESHOLD
            ):
                self.stats.long_latency_branch_mispredictions += 1

    # ------------------------------------------------------------------
    # Quiescence protocol (see pipeline/core.py)
    # ------------------------------------------------------------------

    def next_work_cycle(self) -> int | None:
        now = self.now
        if self._commit_possible():
            return now
        if (
            self.iq_int.next_issuable(now) is not None
            or self.iq_fp.next_issuable(now) is not None
        ):
            return now
        if self._dispatch_possible():
            return now
        return self.fetch.next_fetch_cycle(now)

    def _commit_possible(self) -> bool:
        """Could the ROB head leave the machine next cycle?"""
        rob = self.rob
        return bool(rob) and rob[0].executed

    def _dispatch_possible(self) -> bool:
        """Mirror of the first iteration of :meth:`_dispatch`'s loop."""
        instr = self.fetch.peek()
        if instr is None or len(self.rob) >= self.config.rob_size:
            return False
        queue = self.iq_fp if instr.is_fp else self.iq_int
        if not queue.has_space:
            return False
        return not instr.is_mem or self.lsq.has_space

    def on_cycles_skipped(self, start: int, end: int) -> None:
        self.fetch.account_skipped(start, end)

    def describe_stall(self) -> str:
        return (
            f"rob={len(self.rob)}, fetch_buffer={len(self.fetch.buffer)}, "
            f"iq_int={self.iq_int.occupancy}, iq_fp={self.iq_fp.occupancy}, "
            f"lsq={self.lsq.occupancy}, {super().describe_stall()}"
        )

    # ------------------------------------------------------------------

    def _commit(self) -> None:
        rob = self.rob
        committed = 0
        width = self.config.commit_width
        now = self.now
        lsq = self.lsq
        while committed < width and rob and rob[0].executed:
            entry = rob.popleft()
            instr = entry.instr
            if instr.is_mem:
                if instr.is_store:
                    # Stores write the cache at commit; the latency is not
                    # on the critical path (retire from the store buffer).
                    self.hierarchy.access(instr.addr, write=True, now=now)
                    lsq.store_committed(entry)
                lsq.release()
            committed += 1
        self.committed += committed

    # ------------------------------------------------------------------

    def _issue_queues(self) -> tuple[IssueQueue, ...]:
        """Queue inspection order; alternates by parity so neither cluster
        can starve the other at full issue bandwidth."""
        return self._queues_even if self.now & 1 == 0 else self._queues_odd

    def _try_take_fu(self, kind: FuKind) -> bool:
        """Claim an issue slot; subclasses reroute memory ports here."""
        return self.fus.try_take(kind)

    def _issue(self) -> None:
        now = self.now
        queues = self._issue_queues()
        # Cheap idle guard: most stalled cycles have nothing issuable in
        # any window, so skip the per-cycle FU reset and the issue loop
        # entirely.  Container truthiness over-approximates issuability
        # (an unready in-order head or a stale heap entry passes), which
        # only means the loop below runs and finds nothing — the lazy
        # stale drops it performs then are state-identical either way.
        for queue in queues:
            if queue._ready_heap or queue._fifo:
                break
        else:
            return
        self.fus.new_cycle()
        budget = self.config.issue_width
        deferred: list[tuple[IssueQueue, InFlight]] = []
        take_fu = self._try_take_fu
        execute = self._execute
        for queue in queues:
            in_order = queue.policy == SchedulerPolicy.IN_ORDER
            while budget > 0:
                entry = queue.next_issuable(now)
                if entry is None:
                    break
                if not take_fu(fu_kind_of(entry.instr.op)):
                    if in_order:
                        break
                    queue.defer(entry)
                    deferred.append((queue, entry))
                    continue
                queue.take(entry)
                execute(entry)
                budget -= 1
        for queue, entry in deferred:
            queue.wake(entry)

    def _execute(self, entry: InFlight) -> None:
        """Compute *entry*'s latency and schedule its completion."""
        entry.issue_cycle = self.now
        instr = entry.instr
        if instr.is_load:
            latency = self.lsq.load_latency_if_forwarded(entry)
            if latency is None:
                mem_latency, level = self.hierarchy.access(
                    instr.addr, write=False, now=self.now
                )
                entry.mem_level = level
                latency = self.latencies.agen + mem_latency
        elif instr.is_store:
            # Address generation; data is written at commit.
            self.lsq.store_issued(entry)
            latency = self.latencies.agen
        else:
            latency = self.latencies.latency_of(instr.op)
        self.schedule_completion(entry, self.now + latency)

    # ------------------------------------------------------------------

    def _dispatch(self) -> None:
        fetch = self.fetch
        buffer = fetch.buffer
        if not buffer:
            return
        rob = self.rob
        rob_size = self._rob_size
        if len(rob) >= rob_size:
            return
        now = self.now
        regs = self.regs
        lsq = self.lsq
        waiting_seq = fetch.waiting_seq
        for _ in range(self.config.decode_width):
            if not buffer:
                return
            instr = buffer[0]
            if len(rob) >= rob_size:
                return
            queue = self.iq_fp if instr.is_fp else self.iq_int
            if not queue.has_space:
                return
            if instr.is_mem and not lsq.has_space:
                return
            buffer.popleft()
            entry = InFlight(instr, fetch_cycle=now)
            entry.dispatch_cycle = now
            if instr.seq == waiting_seq:
                entry.mispredicted = True
            regs.link_sources(entry)
            regs.define(entry)
            rob.append(entry)
            queue.add(entry)
            if instr.is_mem:
                lsq.allocate()


# ----------------------------------------------------------------------
# Machine-kind registration (spec grammar lives in repro.machines)
# ----------------------------------------------------------------------

R10_GRAMMAR = (
    "r10(rob=N, iq=N, lsq=N, width=N, sched=ino|ooo, predictor=NAME, name=STR)"
)
_R10_KEYS = frozenset({"rob", "iq", "lsq", "width", "sched", "predictor", "name"})


def _parse_r10(params: dict[str, str]) -> CoreConfig:
    """Spec params -> CoreConfig; bare ``r10`` is exactly R10-64."""
    reject_unknown("r10", params, _R10_KEYS, R10_GRAMMAR)
    rob = parse_count("r10", "rob", params.get("rob", "64"))
    iq = parse_count("r10", "iq", params.get("iq", "40"))
    config = CoreConfig(
        name=params.get("name", f"R10-{rob}"), rob_size=rob, iq_int=iq, iq_fp=iq
    )
    if "width" in params:
        width = parse_count("r10", "width", params["width"])
        config = replace(
            config,
            fetch_width=width,
            decode_width=width,
            issue_width=width,
            commit_width=width,
        )
    if "lsq" in params:
        config = replace(config, lsq_size=parse_count("r10", "lsq", params["lsq"]))
    if "sched" in params:
        sched = params["sched"].strip().lower()
        if sched not in ("ino", "ooo"):
            raise SpecError(f"r10: sched={params['sched']!r} must be ino or ooo")
        config = replace(config, scheduler=SchedulerPolicy(sched))
    if "predictor" in params:
        config = replace(config, predictor=params["predictor"])
    return config


register_machine(
    MachineKind(
        name="r10",
        config_cls=CoreConfig,
        build=lambda config, trace, hierarchy, predictor, stats=None: R10Core(
            trace, config, hierarchy, predictor, stats
        ),
        parse=_parse_r10,
        description="R10000-style out-of-order core (the Figure-9 baselines)",
        grammar=R10_GRAMMAR,
    )
)
