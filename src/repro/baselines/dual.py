"""Shared-L2 dual-core machine: the ``dual`` machine kind.

Figures 11/12 of the paper vary memory pressure *explicitly* by shrinking
the L2 and stretching memory latency.  This kind produces the same
pressure *endogenously*: a second R10-style core — the co-runner — runs
an arbitrary workload beside the measured (primary) core, with private
L1s but one shared L2 behind an arbitration point
(:mod:`repro.memory.shared`).  The co-runner axis (``co=...``) then sweeps
contention the way Table 1 sweeps latency: a cache-hostile neighbour both
dirties the shared L2 and queues on its ports, lengthening the primary
core's effective memory latency.

Only the primary core's committed instructions count toward the run
target; the co-runner fetches from an unbounded instruction stream so it
never drains early.  Statistics are the primary core's, plus the shared
``l2_*`` counters (both cores), the ``l2_arb_*`` arbitration counters and
``co_committed`` (co-runner progress — the throughput the neighbour
achieved while interfering).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.baselines.ooo import R10Core
from repro.branch import make_predictor
from repro.branch.spec import PREDICTOR_GRAMMAR, canonical_predictor
from repro.fingerprint import Fingerprintable
from repro.machines.params import (
    SpecError,
    parse_count,
    parse_nonneg,
    reject_unknown,
)
from repro.machines.presets import MachinePreset, register_preset
from repro.machines.registry import MachineKind, register_machine
from repro.memory.cache import Cache
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.shared import L2Arbiter, SharedL2View
from repro.pipeline.core import CycleCore
from repro.sim.config import CoreConfig, SchedulerPolicy
from repro.sim.stats import SimStats
from repro.workloads.spec import parse_workload


@dataclass(frozen=True)
class DualConfig(Fingerprintable):
    """Two R10-style cores sharing an L2.

    ``core`` parameterizes both cores identically (the co-runner differs
    only in the workload it executes); ``co`` is a workload spec for the
    co-runner or ``"none"`` for a solo run — the solo points anchor the
    contention sweep's slowdown baselines.
    """

    name: str = "DUAL-64"
    core: CoreConfig = field(default_factory=lambda: CoreConfig(name="core0"))
    #: Co-runner workload spec (``repro.workloads`` grammar), or "none".
    co: str = "none"
    co_seed: int = 1
    l2_ports: int = 1
    l2_busy: int = 1

    @property
    def predictor(self) -> str:
        """Both cores' branch predictor (the runner reads this attr)."""
        return self.core.predictor


class DualCore(CycleCore):
    """Two :class:`R10Core` pipelines stepped in lockstep over one L2.

    The dual machine is itself a :class:`CycleCore` so it plugs into the
    standard run loop; its own event queue stays empty and the quiescence
    hooks aggregate over the sub-cores — the machine may fast-forward
    only to the earliest cycle *either* core could make progress, so
    arbitration interleavings are identical with and without skipping.
    """

    def __init__(
        self,
        trace,
        config: DualConfig,
        hierarchy: MemoryHierarchy,
        predictor,
        stats: SimStats | None = None,
    ) -> None:
        stats = stats or SimStats(config=config.name)
        super().__init__(config.name, hierarchy, stats)
        self.config = config
        self.arbiter = L2Arbiter(config.l2_ports, config.l2_busy)
        # The primary core reuses the base hierarchy's L1 (so functional
        # warm-up applies to it), wrapped to arbitrate its L2 traffic.
        primary_view = SharedL2View(hierarchy, self.arbiter)
        self.primary = R10Core(trace, config.core, primary_view, predictor, stats)
        self._cores: list[R10Core] = [self.primary]
        self.co: R10Core | None = None
        if config.co != "none":
            workload = parse_workload(config.co, seed=config.co_seed)
            mem = hierarchy.config
            co_l1 = Cache(
                "L1-co", mem.l1_size, mem.l1_assoc, mem.line_size, mem.l1_latency
            )
            co_view = SharedL2View(hierarchy, self.arbiter, l1=co_l1)
            co_config = replace(config.core, name=config.core.name + "-co")
            self.co = R10Core(
                # Unbounded stream: the co-runner never exhausts its trace.
                workload.instructions(),
                co_config,
                co_view,
                make_predictor(config.core.predictor),
                SimStats(config=co_config.name),
            )
            self._cores.append(self.co)

    # ------------------------------------------------------------------

    def step(self) -> None:
        now = self.now
        # Fixed order (primary first) keeps arbitration deterministic.
        for core in self._cores:
            core.now = now
            core.step()
        self.committed = self.primary.committed

    # ------------------------------------------------------------------
    # Quiescence protocol: aggregate over both sub-cores
    # ------------------------------------------------------------------

    def next_work_cycle(self) -> int | None:
        now = self.now
        wake: int | None = None
        for core in self._cores:
            core.now = now
            w = core.next_work_cycle()
            if w is None:
                continue
            if w <= now:
                return now
            if wake is None or w < wake:
                wake = w
        return wake

    def next_event_cycle(self) -> int | None:
        cycles = [
            c for c in (core.next_event_cycle() for core in self._cores)
            if c is not None
        ]
        return min(cycles) if cycles else None

    def on_cycles_skipped(self, start: int, end: int) -> None:
        for core in self._cores:
            core.on_cycles_skipped(start, end)

    def describe_stall(self) -> str:
        parts = [f"{core.name}: {core.describe_stall()}" for core in self._cores]
        return "; ".join(parts)

    # ------------------------------------------------------------------

    def _copy_memory_stats(self) -> None:
        # L1 counters are the primary core's (it owns the base L1); the
        # L2/memory counters aggregate both cores by construction.
        super()._copy_memory_stats()
        self.stats.l2_arb_accesses = self.arbiter.accesses
        self.stats.l2_arb_conflicts = self.arbiter.conflicts
        self.stats.l2_arb_delay_cycles = self.arbiter.delay_cycles
        if self.co is not None:
            self.stats.co_committed = self.co.committed


# ----------------------------------------------------------------------
# Machine-kind registration
# ----------------------------------------------------------------------

DUAL_GRAMMAR = (
    "dual(co=WORKLOAD|none, coseed=N, bp=PRED, rob=N, iq=N, lsq=N, width=N, "
    "sched=ino|ooo, l2ports=N, l2busy=N, name=STR); PRED: " + PREDICTOR_GRAMMAR
)
_DUAL_KEYS = frozenset(
    {
        "co", "coseed", "bp", "rob", "iq", "lsq", "width", "sched",
        "l2ports", "l2busy", "name",
    }
)


def _parse_dual(params: dict[str, str]) -> DualConfig:
    """Spec params -> DualConfig; bare ``dual`` is a solo DUAL-64."""
    reject_unknown("dual", params, _DUAL_KEYS, DUAL_GRAMMAR)
    try:
        bp = canonical_predictor(params.get("bp", "perceptron"))
    except SpecError as error:
        raise SpecError(f"dual: {error}; grammar: {DUAL_GRAMMAR}") from None
    rob = parse_count("dual", "rob", params.get("rob", "64"))
    iq = parse_count("dual", "iq", params.get("iq", "40"))
    core = CoreConfig(
        name="core0", rob_size=rob, iq_int=iq, iq_fp=iq, predictor=bp
    )
    if "width" in params:
        width = parse_count("dual", "width", params["width"])
        core = replace(
            core,
            fetch_width=width,
            decode_width=width,
            issue_width=width,
            commit_width=width,
        )
    if "lsq" in params:
        core = replace(core, lsq_size=parse_count("dual", "lsq", params["lsq"]))
    if "sched" in params:
        sched = params["sched"].strip().lower()
        if sched not in ("ino", "ooo"):
            raise SpecError(
                f"dual: sched={params['sched']!r} must be ino or ooo; "
                f"grammar: {DUAL_GRAMMAR}"
            )
        core = replace(core, scheduler=SchedulerPolicy(sched))
    coseed = parse_nonneg("dual", "coseed", params.get("coseed", "1"))
    co = params.get("co", "none").strip()
    if co.lower() == "none":
        co = "none"
    else:
        try:
            parse_workload(co, seed=coseed)
        except (SpecError, ValueError) as error:
            raise SpecError(
                f"dual: bad co-runner co={co!r}: {error}; "
                f"grammar: {DUAL_GRAMMAR}"
            ) from None
    l2_ports = parse_count("dual", "l2ports", params.get("l2ports", "1"))
    l2_busy = parse_count("dual", "l2busy", params.get("l2busy", "1"))
    default_name = f"DUAL-{rob}" if co == "none" else f"DUAL-{rob}+{co}"
    return DualConfig(
        name=params.get("name", default_name),
        core=core,
        co=co,
        co_seed=coseed,
        l2_ports=l2_ports,
        l2_busy=l2_busy,
    )


register_machine(
    MachineKind(
        name="dual",
        config_cls=DualConfig,
        build=lambda config, trace, hierarchy, predictor, stats=None: DualCore(
            trace, config, hierarchy, predictor, stats
        ),
        parse=_parse_dual,
        description="two R10-style cores sharing an arbitrated L2 "
        "(co-runner contention axis)",
        grammar=DUAL_GRAMMAR,
    )
)

register_preset(
    MachinePreset(
        name="DUAL-64",
        config=_parse_dual({}),
        kind="dual",
        spec="dual()",
        provenance="contention study — solo R10-64 core on the shared-L2 "
        "substrate (the slowdown baseline)",
    )
)
register_preset(
    MachinePreset(
        name="DUAL-64-contended",
        config=_parse_dual({"co": "synth(chase=12,footprint=1M)"}),
        kind="dual",
        spec="dual(co=synth(chase=12,footprint=1M))",
        provenance="contention study — pointer-chasing co-runner keeping "
        "the shared L2 and its ports busy",
    )
)
