"""Runahead execution baseline (Mutlu et al., HPCA 2003 — reference [24]).

The paper's related-work section positions runahead execution as the main
*alternative* to large instruction windows: when an L2 miss blocks the ROB
head, the processor checkpoints, pseudo-retires the blocking load and
keeps executing *speculatively* — not to make forward progress, but to
turn the loads it encounters into prefetches.  When the miss returns, the
machine rolls back to the checkpoint and re-executes the same
instructions, now hitting in the warmed cache.

Implementing it here lets the harness answer the natural question the
paper leaves to its citations: how much of the KILO-class benefit can a
conventional core get *without* any window scaling?  The expected shape —
which `benchmarks/test_ablation_runahead.py` asserts — is that runahead
lands between R10-64 and the true large-window machines on SpecFP
(prefetching overlaps misses but every runahead episode re-executes its
instructions), and does almost nothing for serial pointer chasing.

Model notes (trace-driven):

* Entering runahead saves the trace position; every instruction consumed
  during the episode is kept in a replay buffer.
* Speculative execution proceeds through the normal pipeline (so memory
  accesses warm the caches and branch outcomes resolve), but
  pseudo-retired instructions do not count as committed.
* When the blocking load completes, the pipeline state (ROB, queues,
  register links, LSQ) is rebuilt from scratch and the replay buffer is
  re-fed in front of the trace — the re-execution cost runahead pays.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Iterable, Iterator

from repro.branch.base import BranchPredictor
from repro.isa import Instruction
from repro.machines.params import parse_count, reject_unknown
from repro.machines.registry import MachineKind, register_machine
from repro.memory.cache import AccessLevel
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.entry import InFlight
from repro.pipeline.fetch import FetchUnit
from repro.pipeline.fu import FuPool
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.queues import IssueQueue
from repro.pipeline.regstate import RegisterTracker
from repro.sim.config import CoreConfig, RunaheadConfig
from repro.sim.stats import SimStats
from repro.baselines.ooo import R10Core


class _ReplayingIterator:
    """Trace iterator with a rewindable tail for runahead episodes."""

    def __init__(self, trace: Iterable[Instruction]) -> None:
        self._trace = iter(trace)
        self._pending: deque[Instruction] = deque()
        self._recording: list[Instruction] | None = None

    def __iter__(self) -> Iterator[Instruction]:
        return self

    def __next__(self) -> Instruction:
        if self._pending:
            instr = self._pending.popleft()
        else:
            instr = next(self._trace)
        if self._recording is not None:
            self._recording.append(instr)
        return instr

    def start_recording(self) -> None:
        self._recording = []

    def rewind(self) -> int:
        """Push everything consumed since :meth:`start_recording` back."""
        recorded = self._recording or []
        self._recording = None
        for instr in reversed(recorded):
            self._pending.appendleft(instr)
        return len(recorded)


class RunaheadCore(R10Core):
    """R10000-style core with runahead execution on L2 misses."""

    def __init__(
        self,
        trace: Iterable[Instruction],
        config: CoreConfig,
        hierarchy: MemoryHierarchy,
        predictor: BranchPredictor,
        stats: SimStats | None = None,
        exit_penalty: int = 8,
    ) -> None:
        self._replay = _ReplayingIterator(trace)
        super().__init__(self._replay, config, hierarchy, predictor, stats)
        self.name = f"runahead-{config.rob_size}"
        self.exit_penalty = exit_penalty
        self.in_runahead = False
        self._blocking_load: InFlight | None = None
        self._last_episode_seq = -1
        #: Registers holding INV (poisoned) values during an episode.
        self._inv_regs: set[int] = set()
        self.runahead_episodes = 0
        self.runahead_pseudo_retired = 0

    # ------------------------------------------------------------------

    def step(self) -> None:
        self.process_completions()
        if self.in_runahead:
            self._maybe_exit_runahead()
        self._commit()
        self._issue()
        self._dispatch()
        self.fetch.cycle(self.now)

    # ------------------------------------------------------------------

    def _commit(self) -> None:
        rob = self.rob
        width = self.config.commit_width
        done = 0
        while done < width and rob:
            head = rob[0]
            if head.executed:
                rob.popleft()
                instr = head.instr
                if instr.is_mem:
                    if instr.is_store and not self.in_runahead:
                        self.hierarchy.access(instr.addr, write=True, now=self.now)
                        self.lsq.store_committed(head)
                    elif instr.is_store:
                        self.lsq.store_committed(head)
                    self.lsq.release()
                if self.in_runahead:
                    self.runahead_pseudo_retired += 1
                else:
                    self.committed += 1
                done += 1
                continue
            if self.in_runahead and head.issued and head.instr.is_load:
                # A load missing *during* runahead is the point of the
                # exercise: it has become a prefetch.  Pseudo-retire it
                # with an INV destination so its dependents drain too.
                rob.popleft()
                self.lsq.release()
                dest = head.instr.dest
                if dest is not None:
                    self._inv_regs.add(dest)
                for waiter in head.take_waiters():
                    waiter.unready -= 1
                    if waiter.unready == 0 and waiter.owner is not None:
                        waiter.owner.wake(waiter)
                self.runahead_pseudo_retired += 1
                done += 1
                continue
            if (
                not self.in_runahead
                and head.issued
                and head.instr.is_load
                and head.mem_level == AccessLevel.MEMORY
                and head.seq != self._last_episode_seq
            ):
                # The classic trigger: an L2 miss blocks the ROB head.
                self._enter_runahead(head)
                # Pseudo-retire the blocking load so the window moves on.
                rob.popleft()
                self.lsq.release()
                self.runahead_pseudo_retired += 1
                done += 1
                continue
            break

    # ------------------------------------------------------------------

    def _enter_runahead(self, blocking_load: InFlight) -> None:
        self.in_runahead = True
        self._blocking_load = blocking_load
        # Re-entering on the same load would livelock when speculative
        # traffic evicts its line (the hardware latches the returned value;
        # our guard models that).
        self._last_episode_seq = blocking_load.seq
        self.runahead_episodes += 1
        self._replay.start_recording()
        # Instructions younger than the blocking load are already inside
        # the pipeline (consumed before recording started); they execute
        # speculatively during the episode and must be re-fed on exit,
        # ahead of whatever the recorder captures.
        self._inflight_at_entry = [
            e.instr for e in self.rob if e.seq > blocking_load.seq
        ]
        self._inflight_at_entry += list(self.fetch.buffer)
        # INV poisoning: the blocking load's destination delivers a bogus
        # value *immediately*, so its dependence tree executes (fast and
        # meaninglessly) instead of clogging the window — the mechanism
        # that lets runahead reach the future loads worth prefetching.
        self._inv_regs = set()
        if blocking_load.instr.dest is not None:
            self._inv_regs.add(blocking_load.instr.dest)
        waiters = blocking_load.take_waiters()
        for waiter in waiters:
            waiter.unready -= 1
            if waiter.unready == 0 and waiter.owner is not None:
                waiter.owner.wake(waiter)

    def _maybe_exit_runahead(self) -> None:
        blocking = self._blocking_load
        if blocking is None or not blocking.executed:
            return
        # Miss returned: squash speculative state and re-execute.
        recorded = self._replay.rewind()
        for instr in reversed(self._inflight_at_entry):
            self._replay._pending.appendleft(instr)
        # The returned line is latched by the hardware; keep it resident so
        # dependents hit even if speculation evicted it.
        self.hierarchy.touch(blocking.instr.addr)
        # The blocking load's value has arrived: it commits architecturally
        # at the restore (everything younger re-executes, it does not).
        self.committed += 1
        self.in_runahead = False
        self._blocking_load = None
        # Rebuild the pipeline from scratch (checkpoint restore).
        config = self.config
        self.rob.clear()
        self.iq_int = IssueQueue("iq-int", config.iq_int, config.scheduler)
        self.iq_fp = IssueQueue("iq-fp", config.iq_fp, config.scheduler)
        self._cache_issue_queues()  # the inherited issue loop holds tuples
        self.lsq = LoadStoreQueue(config.lsq_size)
        self.regs = RegisterTracker()
        self.fus = FuPool(config.fus)
        self.fetch = FetchUnit(
            self._replay,
            config.fetch_width,
            config.fetch_buffer,
            self.fetch.predictor,
            config.mispredict_redirect,
            self.stats,
        )
        # Pipeline-refill penalty for the restore.
        self.fetch._resume_cycle = self.now + self.exit_penalty

    def _execute(self, entry: InFlight) -> None:
        if self.in_runahead:
            instr = entry.instr
            if any(src in self._inv_regs for src in instr.live_srcs()):
                # INV source: produce INV in one cycle; INV memory ops do
                # not access the cache (no pollution from bogus addresses).
                entry.issue_cycle = self.now
                if instr.dest is not None:
                    self._inv_regs.add(instr.dest)
                self.schedule_completion(entry, self.now + 1)
                return
            if instr.dest is not None:
                self._inv_regs.discard(instr.dest)
        super()._execute(entry)

    def on_complete(self, entry: InFlight) -> None:
        # Branches resolve normally in both modes.  A completion event from
        # a squashed speculative entry may still fire after a restore; its
        # sequence number no longer matches anything the new pipeline waits
        # on, so the notification is inert.
        super().on_complete(entry)

    # ------------------------------------------------------------------
    # Quiescence protocol
    # ------------------------------------------------------------------

    def next_work_cycle(self) -> int | None:
        if (
            self.in_runahead
            and self._blocking_load is not None
            and self._blocking_load.executed
        ):
            # Defensive: exit processing is pending (normally handled in
            # the same step that completed the blocking load).
            return self.now
        return super().next_work_cycle()

    def _commit_possible(self) -> bool:
        """Runahead pseudo-retirement extends the commit conditions."""
        rob = self.rob
        if not rob:
            return False
        head = rob[0]
        if head.executed:
            return True
        if not head.issued or not head.instr.is_load:
            return False
        if self.in_runahead:
            return True  # an in-episode miss pseudo-retires with INV
        return (
            head.mem_level == AccessLevel.MEMORY
            and head.seq != self._last_episode_seq
        )


# ----------------------------------------------------------------------
# Machine-kind registration (spec grammar lives in repro.machines)
# ----------------------------------------------------------------------

RUNAHEAD_GRAMMAR = "runahead(rob=N, iq=N, exit=N, predictor=NAME, name=STR)"
_RUNAHEAD_KEYS = frozenset({"rob", "iq", "exit", "predictor", "name"})


def _parse_runahead(params: dict[str, str]) -> RunaheadConfig:
    """Spec params -> RunaheadConfig; bare ``runahead`` is runahead-64."""
    reject_unknown("runahead", params, _RUNAHEAD_KEYS, RUNAHEAD_GRAMMAR)
    rob = parse_count("runahead", "rob", params.get("rob", "64"))
    core = CoreConfig(name="runahead-fe", rob_size=rob)
    if "iq" in params:
        iq = parse_count("runahead", "iq", params["iq"])
        core = dataclasses.replace(core, iq_int=iq, iq_fp=iq)
    if "predictor" in params:
        core = dataclasses.replace(core, predictor=params["predictor"])
    return RunaheadConfig(
        name=params.get("name", f"runahead-{rob}"),
        core=core,
        exit_penalty=parse_count("runahead", "exit", params.get("exit", "8")),
    )


register_machine(
    MachineKind(
        name="runahead",
        config_cls=RunaheadConfig,
        build=lambda config, trace, hierarchy, predictor, stats=None: RunaheadCore(
            trace,
            config.core,
            hierarchy,
            predictor,
            stats,
            exit_penalty=config.exit_penalty,
        ),
        parse=_parse_runahead,
        description="Runahead-execution comparator (reference [24] ablations)",
        grammar=RUNAHEAD_GRAMMAR,
    )
)
