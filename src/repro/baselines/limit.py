"""Idealized ROB-only processor for the Section-2 characterization.

The paper's memory-wall study (Figures 1 and 2) uses 4-way out-of-order
cores whose "resources are sized such that stalls can only occur due to
shortage of entries in the ROB": unlimited issue queues, registers and
functional units.  Such a machine needs no per-cycle structural
arbitration, so instead of the cycle-level models we compute each dynamic
instruction's timing directly in one O(n) pass:

* fetch advances 4 instructions per cycle, breaks at taken branches, and
  stalls at mispredicted branches until they resolve;
* dispatch waits for a ROB slot (instruction ``i - rob_size`` must have
  committed);
* issue waits for the source operands;
* commit is in-order, 4 wide.

The same pass records the decode→issue distance of every instruction,
which is Figure 3's histogram and the empirical basis of the paper's
*execution locality* concept.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable

from repro.branch.base import BranchPredictor
from repro.isa import DEFAULT_LATENCIES, Instruction, LatencyTable, OpClass
from repro.isa.registers import NUM_REGS
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.stats import Histogram, SimStats


@dataclass
class LimitResult:
    """Outcome of one limit-simulation run."""

    committed: int
    cycles: int
    stats: SimStats
    issue_distance: Histogram

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0


def simulate_limit(
    trace: Iterable[Instruction],
    hierarchy: MemoryHierarchy,
    rob_size: int | None,
    predictor: BranchPredictor,
    width: int = 4,
    redirect_penalty: int = 5,
    latencies: LatencyTable = DEFAULT_LATENCIES,
    histogram_bin: int = 25,
    record_histogram: bool = True,
) -> LimitResult:
    """Run the idealized core over *trace*.

    Args:
        rob_size: ROB capacity; ``None`` means unlimited (the configuration
            of the Figure-3 analysis).
        histogram_bin: Bin width (cycles) for the decode→issue histogram.
        record_histogram: Set False to skip the per-instruction histogram
            accounting; the window sweeps of Figures 1/2 only consume IPC,
            and the histogram is the hottest non-essential work in the
            pass.
    """
    stats = SimStats(config=f"limit-{rob_size or 'inf'}")
    histogram = Histogram(bin_width=histogram_bin, max_value=4000)
    histogram_add = histogram.add if record_histogram else None
    hierarchy_access = hierarchy.access
    predictor_update = predictor.update

    reg_time = [0] * NUM_REGS
    # Commit times of the ROB-resident window (for the capacity constraint)
    rob_commits: deque[int] = deque()
    # Commit times of the last `width` instructions (commit bandwidth)
    recent_commits: deque[int] = deque([0] * width, maxlen=width)
    last_commit = 0
    fetch_cycle = 0
    slots_left = width          # fetch slots remaining in the current cycle
    resume_cycle = 0            # earliest fetch cycle after a misprediction
    committed = 0
    agen = latencies.agen

    for instr in trace:
        # ---- fetch -----------------------------------------------------
        if slots_left == 0:
            fetch_cycle += 1
            slots_left = width
        if fetch_cycle < resume_cycle:
            fetch_cycle = resume_cycle
            slots_left = width
        slots_left -= 1
        stats.fetched += 1

        # ---- dispatch (ROB capacity) ------------------------------------
        dispatch = fetch_cycle
        if rob_size is not None and len(rob_commits) >= rob_size:
            oldest_commit = rob_commits.popleft()
            if oldest_commit + 1 > dispatch:
                dispatch = oldest_commit + 1
                # The back-pressure propagates to the front end.
                fetch_cycle = dispatch
                slots_left = width - 1

        # ---- issue -----------------------------------------------------
        ready = dispatch + 1
        for src in instr.live_srcs():
            t = reg_time[src]
            if t > ready:
                ready = t
        issue = ready
        if histogram_add is not None:
            histogram_add(issue - (dispatch + 1))

        # ---- execute ---------------------------------------------------
        op = instr.op
        if instr.is_load:
            mem_latency, _level = hierarchy_access(instr.addr, write=False, now=issue)
            latency = agen + mem_latency
        elif instr.is_store:
            hierarchy_access(instr.addr, write=True, now=issue)
            latency = agen
        else:
            latency = latencies.latency_of(op)
        complete = issue + latency
        dest = instr.dest
        if dest is not None:
            reg_time[dest] = complete

        # ---- control flow ----------------------------------------------
        if op == OpClass.BRANCH:
            stats.branch_predictions += 1
            if not predictor_update(instr.pc, bool(instr.taken)):
                stats.branch_mispredictions += 1
                resume_cycle = complete + redirect_penalty
                slots_left = 0
        elif instr.taken:
            # Taken jump ends the fetch group.
            slots_left = 0

        # ---- commit ----------------------------------------------------
        commit = complete
        if last_commit > commit:
            commit = last_commit
        if recent_commits[0] + 1 > commit:
            commit = recent_commits[0] + 1
        last_commit = commit
        recent_commits.append(commit)
        if rob_size is not None:
            rob_commits.append(commit)
        committed += 1

    cycles = last_commit if committed else 0
    stats.committed = committed
    stats.cycles = cycles
    stats.issue_distance = histogram
    stats.l1_hits = hierarchy.l1.hits
    stats.l1_misses = hierarchy.l1.misses
    if hierarchy.l2 is not None:
        stats.l2_hits = hierarchy.l2.hits
        stats.l2_misses = hierarchy.l2.misses
    if hierarchy.memory is not None:
        stats.memory_accesses = hierarchy.memory.accesses
    return LimitResult(
        committed=committed, cycles=cycles, stats=stats, issue_distance=histogram
    )


def issue_distance_histogram(
    trace: Iterable[Instruction],
    hierarchy: MemoryHierarchy,
    predictor: BranchPredictor,
    histogram_bin: int = 25,
) -> Histogram:
    """Figure-3 measurement: unlimited window, decode→issue distances."""
    result = simulate_limit(
        trace,
        hierarchy,
        rob_size=None,
        predictor=predictor,
        histogram_bin=histogram_bin,
    )
    return result.issue_distance
