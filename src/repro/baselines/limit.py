"""Idealized ROB-only processor for the Section-2 characterization.

The paper's memory-wall study (Figures 1 and 2) uses 4-way out-of-order
cores whose "resources are sized such that stalls can only occur due to
shortage of entries in the ROB": unlimited issue queues, registers and
functional units.  Such a machine needs no per-cycle structural
arbitration, so instead of the cycle-level models we compute each dynamic
instruction's timing directly in one O(n) pass:

* fetch advances 4 instructions per cycle, breaks at taken branches, and
  stalls at mispredicted branches until they resolve;
* dispatch waits for a ROB slot (instruction ``i - rob_size`` must have
  committed);
* issue waits for the source operands;
* commit is in-order, 4 wide.

The same pass records the decode→issue distance of every instruction,
which is Figure 3's histogram and the empirical basis of the paper's
*execution locality* concept.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable

from repro.branch.base import BranchPredictor
from repro.isa import DEFAULT_LATENCIES, Instruction, LatencyTable, OpClass
from repro.isa.registers import NUM_REGS
from repro.machines.params import (
    parse_count,
    parse_count_or_inf,
    parse_flag,
    reject_unknown,
)
from repro.machines.registry import MachineKind, register_machine
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.config import LimitMachine
from repro.sim.stats import Histogram, SimStats


@dataclass
class LimitResult:
    """Outcome of one limit-simulation run."""

    committed: int
    cycles: int
    stats: SimStats
    issue_distance: Histogram

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0


def simulate_limit(
    trace: Iterable[Instruction],
    hierarchy: MemoryHierarchy,
    rob_size: int | None,
    predictor: BranchPredictor,
    width: int = 4,
    redirect_penalty: int = 5,
    latencies: LatencyTable = DEFAULT_LATENCIES,
    histogram_bin: int = 25,
    record_histogram: bool = True,
    stats: SimStats | None = None,
) -> LimitResult:
    """Run the idealized core over *trace*.

    Args:
        rob_size: ROB capacity; ``None`` means unlimited (the configuration
            of the Figure-3 analysis).
        histogram_bin: Bin width (cycles) for the decode→issue histogram.
        record_histogram: Set False to skip the per-instruction histogram
            accounting; the window sweeps of Figures 1/2 only consume IPC,
            and the histogram is the hottest non-essential work in the
            pass.
        stats: Record into this (pre-named) stats object instead of a
            fresh one — how :class:`LimitCore` threads the runner-created
            stats through.
    """
    if stats is None:
        stats = SimStats(config=f"limit-{rob_size or 'inf'}")
    histogram = Histogram(bin_width=histogram_bin, max_value=4000)
    histogram_add = histogram.add if record_histogram else None
    hierarchy_access = hierarchy.access
    predictor_update = predictor.update

    reg_time = [0] * NUM_REGS
    # Commit times of the ROB-resident window (for the capacity constraint)
    rob_commits: deque[int] = deque()
    # Commit times of the last `width` instructions (commit bandwidth)
    recent_commits: deque[int] = deque([0] * width, maxlen=width)
    last_commit = 0
    fetch_cycle = 0
    slots_left = width          # fetch slots remaining in the current cycle
    resume_cycle = 0            # earliest fetch cycle after a misprediction
    committed = 0
    agen = latencies.agen

    for instr in trace:
        # ---- fetch -----------------------------------------------------
        if slots_left == 0:
            fetch_cycle += 1
            slots_left = width
        if fetch_cycle < resume_cycle:
            fetch_cycle = resume_cycle
            slots_left = width
        slots_left -= 1
        stats.fetched += 1

        # ---- dispatch (ROB capacity) ------------------------------------
        dispatch = fetch_cycle
        if rob_size is not None and len(rob_commits) >= rob_size:
            oldest_commit = rob_commits.popleft()
            if oldest_commit + 1 > dispatch:
                dispatch = oldest_commit + 1
                # The back-pressure propagates to the front end.
                fetch_cycle = dispatch
                slots_left = width - 1

        # ---- issue -----------------------------------------------------
        ready = dispatch + 1
        for src in instr.live_srcs():
            t = reg_time[src]
            if t > ready:
                ready = t
        issue = ready
        if histogram_add is not None:
            histogram_add(issue - (dispatch + 1))

        # ---- execute ---------------------------------------------------
        op = instr.op
        if instr.is_load:
            mem_latency, _level = hierarchy_access(instr.addr, write=False, now=issue)
            latency = agen + mem_latency
        elif instr.is_store:
            hierarchy_access(instr.addr, write=True, now=issue)
            latency = agen
        else:
            latency = latencies.latency_of(op)
        complete = issue + latency
        dest = instr.dest
        if dest is not None:
            reg_time[dest] = complete

        # ---- control flow ----------------------------------------------
        if op == OpClass.BRANCH:
            stats.branch_predictions += 1
            if not predictor_update(instr.pc, bool(instr.taken)):
                stats.branch_mispredictions += 1
                resume_cycle = complete + redirect_penalty
                slots_left = 0
        elif instr.taken:
            # Taken jump ends the fetch group.
            slots_left = 0

        # ---- commit ----------------------------------------------------
        commit = complete
        if last_commit > commit:
            commit = last_commit
        if recent_commits[0] + 1 > commit:
            commit = recent_commits[0] + 1
        last_commit = commit
        recent_commits.append(commit)
        if rob_size is not None:
            rob_commits.append(commit)
        committed += 1

    cycles = last_commit if committed else 0
    stats.committed = committed
    stats.cycles = cycles
    stats.issue_distance = histogram
    stats.l1_hits = hierarchy.l1.hits
    stats.l1_misses = hierarchy.l1.misses
    if hierarchy.l2 is not None:
        stats.l2_hits = hierarchy.l2.hits
        stats.l2_misses = hierarchy.l2.misses
    if hierarchy.memory is not None:
        stats.memory_accesses = hierarchy.memory.accesses
    return LimitResult(
        committed=committed, cycles=cycles, stats=stats, issue_distance=histogram
    )


def issue_distance_histogram(
    trace: Iterable[Instruction],
    hierarchy: MemoryHierarchy,
    predictor: BranchPredictor,
    histogram_bin: int = 25,
) -> Histogram:
    """Figure-3 measurement: unlimited window, decode→issue distances."""
    result = simulate_limit(
        trace,
        hierarchy,
        rob_size=None,
        predictor=predictor,
        histogram_bin=histogram_bin,
    )
    return result.issue_distance


class LimitCore:
    """Registry adapter giving the one-pass limit study the ``core.run()``
    surface of the cycle-level machines.

    The idealized machine computes every instruction's timing directly,
    so ``max_cycles`` and ``fast_forward`` are accepted for interface
    compatibility and ignored: the pass cannot deadlock and is already
    O(n).
    """

    def __init__(
        self,
        trace: Iterable[Instruction],
        config: LimitMachine,
        hierarchy: MemoryHierarchy,
        predictor: BranchPredictor,
        stats: SimStats | None = None,
    ) -> None:
        self.trace = trace
        self.config = config
        self.hierarchy = hierarchy
        self.predictor = predictor
        self.stats = stats if stats is not None else SimStats(config=config.name)

    def run(
        self,
        num_instructions: int,
        max_cycles: int | None = None,
        fast_forward: bool | None = None,
    ) -> SimStats:
        """Consume the trace through :func:`simulate_limit`."""
        result = simulate_limit(
            self.trace,
            self.hierarchy,
            rob_size=self.config.rob_size,
            predictor=self.predictor,
            width=self.config.width,
            redirect_penalty=self.config.redirect_penalty,
            record_histogram=self.config.record_histogram,
            stats=self.stats,
        )
        return result.stats


# ----------------------------------------------------------------------
# Machine-kind registration (spec grammar lives in repro.machines)
# ----------------------------------------------------------------------

LIMIT_GRAMMAR = (
    "limit(rob=N|inf, predictor=NAME, width=N, redirect=N, histogram=on|off)"
)
_LIMIT_KEYS = frozenset({"rob", "predictor", "width", "redirect", "histogram"})


def _parse_limit(params: dict[str, str]) -> LimitMachine:
    """Spec params -> LimitMachine; bare ``limit`` is the unlimited ROB."""
    reject_unknown("limit", params, _LIMIT_KEYS, LIMIT_GRAMMAR)
    return LimitMachine(
        rob_size=parse_count_or_inf("limit", "rob", params.get("rob", "inf")),
        predictor=params.get("predictor", "perceptron"),
        width=parse_count("limit", "width", params.get("width", "4")),
        redirect_penalty=parse_count("limit", "redirect", params.get("redirect", "5")),
        record_histogram=parse_flag("limit", "histogram", params.get("histogram", "on")),
    )


register_machine(
    MachineKind(
        name="limit",
        config_cls=LimitMachine,
        build=lambda config, trace, hierarchy, predictor, stats=None: LimitCore(
            trace, config, hierarchy, predictor, stats
        ),
        parse=_parse_limit,
        description="Idealized ROB-only limit core (Figures 1-3)",
        grammar=LIMIT_GRAMMAR,
    )
)
