"""Predictor-axis out-of-order core: the ``ooo-bp`` machine kind.

The paper fixes the front end to a perceptron predictor (Table 2) and
studies window mechanisms; this kind turns the predictor into the
first-class configuration axis instead.  ``ooo-bp(bp=gshare-14)`` is the
R10-64 pipeline behind a 2^14-entry gshare, ``bp=oracle`` the
perfect-prediction upper bound and ``bp=static`` the always-taken lower
bound — the bracketing pair that shows how much of the SpecINT gap of
Figure 9 is misprediction stall rather than window exhaustion.

The core itself is the unmodified :class:`~repro.baselines.ooo.R10Core`;
only the configuration type differs, so ``ooo-bp`` cells fingerprint
separately from ``r10`` cells even at identical parameters (the
canonical fingerprint tags the dataclass type).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.baselines.ooo import R10Core
from repro.branch.spec import PREDICTOR_GRAMMAR, canonical_predictor
from repro.machines.params import SpecError, parse_count, reject_unknown
from repro.machines.presets import MachinePreset, register_preset
from repro.machines.registry import MachineKind, register_machine
from repro.sim.config import CoreConfig, SchedulerPolicy


@dataclass(frozen=True)
class OooBpConfig(CoreConfig):
    """R10-style core whose ``predictor`` field is the swept axis.

    Structurally identical to :class:`CoreConfig`; a distinct type so the
    machine registry can attach the ``ooo-bp`` grammar and so the result
    store keys predictor-sweep cells apart from the ``r10`` baselines.
    """

    name: str = "OOO-BP-64"


class OooBpCore(R10Core):
    """The R10 pipeline under an :class:`OooBpConfig`."""


OOOBP_GRAMMAR = (
    "ooo-bp(bp=PRED, rob=N, iq=N, lsq=N, width=N, sched=ino|ooo, name=STR); "
    "PRED: " + PREDICTOR_GRAMMAR
)
_OOOBP_KEYS = frozenset({"bp", "rob", "iq", "lsq", "width", "sched", "name"})


def _parse_ooobp(params: dict[str, str]) -> OooBpConfig:
    """Spec params -> OooBpConfig; bare ``ooo-bp`` is R10-64 + perceptron."""
    reject_unknown("ooo-bp", params, _OOOBP_KEYS, OOOBP_GRAMMAR)
    try:
        bp = canonical_predictor(params.get("bp", "perceptron"))
    except SpecError as error:
        raise SpecError(f"ooo-bp: {error}; grammar: {OOOBP_GRAMMAR}") from None
    rob = parse_count("ooo-bp", "rob", params.get("rob", "64"))
    iq = parse_count("ooo-bp", "iq", params.get("iq", "40"))
    config = OooBpConfig(
        name=params.get("name", f"OOO-BP-{rob}-{bp}"),
        rob_size=rob,
        iq_int=iq,
        iq_fp=iq,
        predictor=bp,
    )
    if "width" in params:
        width = parse_count("ooo-bp", "width", params["width"])
        config = replace(
            config,
            fetch_width=width,
            decode_width=width,
            issue_width=width,
            commit_width=width,
        )
    if "lsq" in params:
        config = replace(
            config, lsq_size=parse_count("ooo-bp", "lsq", params["lsq"])
        )
    if "sched" in params:
        sched = params["sched"].strip().lower()
        if sched not in ("ino", "ooo"):
            raise SpecError(
                f"ooo-bp: sched={params['sched']!r} must be ino or ooo; "
                f"grammar: {OOOBP_GRAMMAR}"
            )
        config = replace(config, scheduler=SchedulerPolicy(sched))
    return config


register_machine(
    MachineKind(
        name="ooo-bp",
        config_cls=OooBpConfig,
        build=lambda config, trace, hierarchy, predictor, stats=None: OooBpCore(
            trace, config, hierarchy, predictor, stats
        ),
        parse=_parse_ooobp,
        description="R10-style core with the branch predictor as the swept axis",
        grammar=OOOBP_GRAMMAR,
    )
)

#: Named predictor-axis points for the CLI and the cookbook examples.
register_preset(
    MachinePreset(
        name="OOO-BP-64-gshare-14",
        config=_parse_ooobp({"bp": "gshare-14"}),
        kind="ooo-bp",
        spec="ooo-bp(bp=gshare-14)",
        provenance="predictor-axis baseline: R10-64 pipeline behind gshare-14",
    )
)
register_preset(
    MachinePreset(
        name="OOO-BP-64-oracle",
        config=_parse_ooobp({"bp": "oracle"}),
        kind="ooo-bp",
        spec="ooo-bp(bp=oracle)",
        provenance="perfect-prediction upper bound for the predictor axis",
    )
)
