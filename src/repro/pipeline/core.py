"""Cycle-driver base class shared by every core model.

The driver owns simulated time, the completion event wheel and the wakeup
protocol.  Subclasses implement :meth:`CycleCore.step` (one cycle of their
pipeline) and may override :meth:`CycleCore.on_complete` (called for every
instruction the cycle it produces its value).
"""

from __future__ import annotations

from repro.isa import DEFAULT_LATENCIES, LatencyTable
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.entry import InFlight
from repro.sim.stats import SimStats


class DeadlockError(RuntimeError):
    """The machine stopped making progress — a modelling bug, not a result."""


class CycleCore:
    """Base class: event wheel, wakeup, run loop, final stats."""

    def __init__(
        self,
        name: str,
        hierarchy: MemoryHierarchy,
        stats: SimStats,
        latencies: LatencyTable = DEFAULT_LATENCIES,
    ) -> None:
        self.name = name
        self.hierarchy = hierarchy
        self.stats = stats
        self.latencies = latencies
        self.now = 0
        self.committed = 0
        self._events: dict[int, list[InFlight]] = {}

    # ------------------------------------------------------------------
    # Event wheel
    # ------------------------------------------------------------------

    def schedule_completion(self, entry: InFlight, done_cycle: int) -> None:
        """Arrange for *entry* to complete (write back) at *done_cycle*."""
        entry.done_cycle = done_cycle
        self._events.setdefault(done_cycle, []).append(entry)

    def process_completions(self) -> None:
        """Retire this cycle's completion events and wake dependents."""
        entries = self._events.pop(self.now, None)
        if not entries:
            return
        for entry in entries:
            entry.executed = True
            self.on_complete(entry)
            waiters = entry.waiters
            if waiters:
                entry.waiters = None
                for waiter in waiters:
                    waiter.unready -= 1
                    if waiter.unready == 0 and waiter.owner is not None:
                        waiter.owner.wake(waiter)

    def on_complete(self, entry: InFlight) -> None:
        """Hook invoked when *entry* completes (default: nothing)."""

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Simulate one cycle.  Subclasses implement the pipeline here."""
        raise NotImplementedError

    def run(self, num_instructions: int, max_cycles: int | None = None) -> SimStats:
        """Simulate until *num_instructions* have committed."""
        if max_cycles is None:
            # Generous bound: even a fully serialized miss chain at
            # 1000-cycle memory stays well under this.
            max_cycles = 20_000 + num_instructions * 2_000
        target = num_instructions
        while self.committed < target:
            self.step()
            self.now += 1
            if self.now > max_cycles:
                raise DeadlockError(
                    f"{self.name}: no forward progress — committed "
                    f"{self.committed}/{target} after {self.now} cycles"
                )
        self.stats.committed = self.committed
        self.stats.cycles = self.now
        self._copy_memory_stats()
        return self.stats

    def _copy_memory_stats(self) -> None:
        h = self.hierarchy
        self.stats.l1_hits = h.l1.hits
        self.stats.l1_misses = h.l1.misses
        if h.l2 is not None:
            self.stats.l2_hits = h.l2.hits
            self.stats.l2_misses = h.l2.misses
        if h.memory is not None:
            self.stats.memory_accesses = h.memory.accesses
