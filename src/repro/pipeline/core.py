"""Cycle-driver base class shared by every core model.

The driver owns simulated time, the completion event queue and the wakeup
protocol.  Subclasses implement :meth:`CycleCore.step` (one cycle of their
pipeline) and may override :meth:`CycleCore.on_complete` (called for every
instruction the cycle it produces its value).

Fast-forwarding
---------------

Tolerating 100-1000-cycle memory latencies means most simulated cycles do
*nothing*: every in-flight instruction sits in the event queue waiting for
a distant completion.  Instead of ticking through those cycles one at a
time, the run loop implements a **quiescence protocol**: after each
simulated cycle the core is asked, via :meth:`CycleCore.next_work_cycle`,
for the earliest future cycle at which its pipeline could make progress
that is *not* driven by a completion event (fetch resuming, an aging timer
expiring, a ready issue-queue head, ...).  When no such cycle is earlier
than the next scheduled completion, ``run()`` jumps ``now`` straight to
the next interesting cycle.

The contract subclasses must uphold for the jump to be semantics
preserving (the differential suite in ``tests/pipeline/test_fastforward``
enforces it):

* ``next_work_cycle()`` must return ``self.now`` whenever ``step()`` at
  ``self.now`` could change any machine state other than lazily dropping
  stale bookkeeping — err on the side of returning ``now``; a false
  "work possible" only costs one ticked cycle, a false "quiescent" changes
  results;
* every *time*-dependent wake-up source (fetch redirect resume, Aging-ROB
  maturity, slow-lane re-dispatch wheels) must be reported as a future
  wake cycle so the jump never hops over it;
* per-cycle statistics that accumulate while stalled must be replayed for
  skipped cycles in :meth:`CycleCore.on_cycles_skipped`.

The base class implementation of ``next_work_cycle`` returns ``self.now``
(never quiescent), so subclasses that have not audited their ``step()``
run exactly as before.
"""

from __future__ import annotations

import heapq

from repro.isa import DEFAULT_LATENCIES, LatencyTable
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.entry import InFlight
from repro.sim.stats import SimStats


class DeadlockError(RuntimeError):
    """The machine stopped making progress — a modelling bug, not a result."""


class CycleCore:
    """Base class: event queue, wakeup, fast-forwarding run loop, stats."""

    #: Class-level default for the run loop; ``run(fast_forward=False)``
    #: (or setting this to False on an instance) selects the
    #: tick-every-cycle reference mode the differential tests compare
    #: against.
    fast_forward = True

    def __init__(
        self,
        name: str,
        hierarchy: MemoryHierarchy,
        stats: SimStats,
        latencies: LatencyTable = DEFAULT_LATENCIES,
    ) -> None:
        self.name = name
        self.hierarchy = hierarchy
        self.stats = stats
        self.latencies = latencies
        self.now = 0
        self.committed = 0
        #: Cycles the fast-forward loop skipped (observability only; the
        #: simulated ``stats.cycles`` always counts them as elapsed).
        self.cycles_fast_forwarded = 0
        self._events: dict[int, list[InFlight]] = {}
        # Lazy min-heap over the event dict's keys: pushed when a new
        # completion cycle appears, popped (and ignored) once its bucket
        # has been processed.
        self._event_heap: list[int] = []

    # ------------------------------------------------------------------
    # Event queue
    # ------------------------------------------------------------------

    def schedule_completion(self, entry: InFlight, done_cycle: int) -> None:
        """Arrange for *entry* to complete (write back) at *done_cycle*."""
        entry.done_cycle = done_cycle
        bucket = self._events.get(done_cycle)
        if bucket is None:
            self._events[done_cycle] = [entry]
            heapq.heappush(self._event_heap, done_cycle)
        else:
            bucket.append(entry)

    def next_event_cycle(self) -> int | None:
        """Earliest cycle with a scheduled completion, or None when idle."""
        heap = self._event_heap
        events = self._events
        while heap and heap[0] not in events:
            heapq.heappop(heap)
        return heap[0] if heap else None

    def process_completions(self) -> None:
        """Retire this cycle's completion events and wake dependents."""
        entries = self._events.pop(self.now, None)
        if not entries:
            return
        for entry in entries:
            entry.executed = True
            self.on_complete(entry)
            waiters = entry.waiters
            if waiters:
                entry.waiters = None
                for waiter in waiters:
                    waiter.unready -= 1
                    if waiter.unready == 0 and waiter.owner is not None:
                        waiter.owner.wake(waiter)

    def on_complete(self, entry: InFlight) -> None:
        """Hook invoked when *entry* completes (default: nothing)."""

    # ------------------------------------------------------------------
    # Quiescence protocol
    # ------------------------------------------------------------------

    def next_work_cycle(self) -> int | None:
        """Earliest cycle >= ``now`` at which ``step()`` could make
        progress that is not driven by a completion event.

        Returns ``self.now`` when the next cycle may do work (no skipping),
        a future cycle when progress becomes possible at a known time (a
        timer or redirect expiring), or ``None`` when only a completion
        event can unblock the machine.  The base implementation is the
        conservative "always busy" answer.
        """
        return self.now

    def on_cycles_skipped(self, start: int, end: int) -> None:
        """Replay per-cycle stall accounting for skipped cycles
        ``[start, end)``.  Default: nothing."""

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Simulate one cycle.  Subclasses implement the pipeline here."""
        raise NotImplementedError

    def run(
        self,
        num_instructions: int,
        max_cycles: int | None = None,
        fast_forward: bool | None = None,
    ) -> SimStats:
        """Simulate until *num_instructions* have committed.

        Args:
            max_cycles: Upper bound on simulated time (deadlock guard).
            fast_forward: Override the class default; ``False`` forces the
                tick-every-cycle reference mode.
        """
        if fast_forward is None:
            fast_forward = self.fast_forward
        if max_cycles is None:
            # Generous bound: even a fully serialized miss chain at
            # 1000-cycle memory stays well under this.
            max_cycles = 20_000 + num_instructions * 2_000
        target = num_instructions
        events = self._events
        step = self.step
        next_work_cycle = self.next_work_cycle
        next_event_cycle = self.next_event_cycle
        if not fast_forward:
            # Tick-every-cycle reference mode: no quiescence checks at all.
            while self.committed < target:
                step()
                self.now += 1
                if self.now > max_cycles:
                    raise DeadlockError(
                        f"{self.name}: no forward progress — committed "
                        f"{self.committed}/{target} after {self.now} cycles"
                    )
            self.stats.committed = self.committed
            self.stats.cycles = self.now
            self._copy_memory_stats()
            return self.stats
        while self.committed < target:
            step()
            self.now += 1
            if self.now > max_cycles:
                raise DeadlockError(
                    f"{self.name}: no forward progress — committed "
                    f"{self.committed}/{target} after {self.now} cycles"
                )
            if self.committed >= target:
                continue
            if self.now in events:
                continue  # completions due next cycle: must step through it
            wake = next_work_cycle()
            if wake is not None and wake <= self.now:
                continue  # pipeline work possible next cycle
            event = next_event_cycle()
            if event is None and wake is None:
                raise DeadlockError(
                    f"{self.name}: machine is quiescent with no pending "
                    f"events — committed {self.committed}/{target} at cycle "
                    f"{self.now}; {self.describe_stall()}"
                )
            jump = event if wake is None else (wake if event is None else min(wake, event))
            if jump > max_cycles:
                # The reference loop would have hit the bound while ticking
                # through these empty cycles; fail identically.
                raise DeadlockError(
                    f"{self.name}: no forward progress — committed "
                    f"{self.committed}/{target}; next activity at cycle "
                    f"{jump} exceeds the {max_cycles}-cycle bound"
                )
            if jump > self.now:
                self.on_cycles_skipped(self.now, jump)
                self.cycles_fast_forwarded += jump - self.now
                self.now = jump
        self.stats.committed = self.committed
        self.stats.cycles = self.now
        self._copy_memory_stats()
        return self.stats

    def drive(
        self,
        num_instructions: int,
        max_cycles: int | None = None,
        fast_forward: bool | None = None,
        round_budget: int = 4096,
    ):
        """Cooperative twin of :meth:`run` for interleaved execution.

        A generator that simulates exactly what ``run()`` with the same
        arguments would, but yields ``self.now`` at pause points — after
        every fast-forward jump, and after at most *round_budget*
        consecutively ticked cycles — so a :class:`repro.sim.batch.BatchRunner`
        can step several independent machines round-robin in one process.
        The final :class:`SimStats` record is the generator's return value
        (``StopIteration.value``).  The loop bodies mirror ``run()``
        statement for statement; ``tests/sim/test_batch.py`` asserts the
        whole stats record is bit-identical between the two drivers for
        every registered machine kind.
        """
        if fast_forward is None:
            fast_forward = self.fast_forward
        if max_cycles is None:
            max_cycles = 20_000 + num_instructions * 2_000
        target = num_instructions
        events = self._events
        step = self.step
        next_work_cycle = self.next_work_cycle
        next_event_cycle = self.next_event_cycle
        ticked = 0
        if not fast_forward:
            while self.committed < target:
                step()
                self.now += 1
                if self.now > max_cycles:
                    raise DeadlockError(
                        f"{self.name}: no forward progress — committed "
                        f"{self.committed}/{target} after {self.now} cycles"
                    )
                ticked += 1
                if ticked >= round_budget:
                    ticked = 0
                    yield self.now
            self.stats.committed = self.committed
            self.stats.cycles = self.now
            self._copy_memory_stats()
            return self.stats
        while self.committed < target:
            step()
            self.now += 1
            if self.now > max_cycles:
                raise DeadlockError(
                    f"{self.name}: no forward progress — committed "
                    f"{self.committed}/{target} after {self.now} cycles"
                )
            if self.committed >= target:
                continue
            ticked += 1
            if self.now in events or (
                (wake := next_work_cycle()) is not None and wake <= self.now
            ):
                # Busy next cycle (completions due or pipeline work
                # possible): keep ticking, pausing only on budget.
                if ticked >= round_budget:
                    ticked = 0
                    yield self.now
                continue
            event = next_event_cycle()
            if event is None and wake is None:
                raise DeadlockError(
                    f"{self.name}: machine is quiescent with no pending "
                    f"events — committed {self.committed}/{target} at cycle "
                    f"{self.now}; {self.describe_stall()}"
                )
            jump = event if wake is None else (wake if event is None else min(wake, event))
            if jump > max_cycles:
                raise DeadlockError(
                    f"{self.name}: no forward progress — committed "
                    f"{self.committed}/{target}; next activity at cycle "
                    f"{jump} exceeds the {max_cycles}-cycle bound"
                )
            if jump > self.now:
                self.on_cycles_skipped(self.now, jump)
                self.cycles_fast_forwarded += jump - self.now
                self.now = jump
            ticked = 0
            yield self.now
        self.stats.committed = self.committed
        self.stats.cycles = self.now
        self._copy_memory_stats()
        return self.stats

    def describe_stall(self) -> str:
        """One-line description of what the machine is waiting on, used in
        deadlock diagnostics.  Subclasses may extend."""
        return f"{len(self._events)} event cycle(s) pending"

    def _copy_memory_stats(self) -> None:
        h = self.hierarchy
        self.stats.l1_hits = h.l1.hits
        self.stats.l1_misses = h.l1.misses
        if h.l2 is not None:
            self.stats.l2_hits = h.l2.hits
            self.stats.l2_misses = h.l2.misses
        if h.memory is not None:
            self.stats.memory_accesses = h.memory.accesses
