"""Per-cycle functional-unit arbitration.

Functional units are modelled as per-cycle issue slots: an ``FuPool`` holds
the unit counts of Table 2 and hands out at most that many issues of each
kind per cycle.  Units are fully pipelined (a unit accepts a new operation
every cycle regardless of latency), matching the classic SimpleScalar
model for everything except FP divide, whose longer latency already
throttles throughput in practice.
"""

from __future__ import annotations

import enum

from repro.isa import OpClass
from repro.sim.config import FuConfig


class FuKind(enum.IntEnum):
    ALU = 0       # integer ALUs (also resolve branches)
    IMUL = 1      # integer multiplier
    FPADD = 2     # FP adders
    FPMUL = 3     # FP multiplier / divider
    MEM = 4       # memory ports (shared read/write)


_KIND_OF_OP = {
    OpClass.INT_ALU: FuKind.ALU,
    OpClass.BRANCH: FuKind.ALU,
    OpClass.JUMP: FuKind.ALU,
    OpClass.NOP: FuKind.ALU,
    OpClass.INT_MUL: FuKind.IMUL,
    OpClass.FP_ADD: FuKind.FPADD,
    OpClass.FP_MUL: FuKind.FPMUL,
    OpClass.FP_DIV: FuKind.FPMUL,
    OpClass.LOAD: FuKind.MEM,
    OpClass.STORE: FuKind.MEM,
    OpClass.FP_LOAD: FuKind.MEM,
    OpClass.FP_STORE: FuKind.MEM,
}


def fu_kind_of(op: OpClass) -> FuKind:
    """Functional-unit kind executing operation class *op*."""
    return _KIND_OF_OP[op]


_ZERO_USED = [0, 0, 0, 0, 0]


class FuPool:
    """Issue-slot pool for one cycle; call :meth:`new_cycle` every cycle."""

    __slots__ = ("_limits", "_used")

    def __init__(self, config: FuConfig) -> None:
        self._limits = [
            config.int_alu,
            config.int_mul,
            config.fp_add,
            config.fp_mul,
            config.mem_ports,
        ]
        self._used = [0, 0, 0, 0, 0]

    def new_cycle(self) -> None:
        self._used[:] = _ZERO_USED

    def describe(self) -> str:
        """Slot usage summary for deadlock diagnostics."""
        return "/".join(
            f"{kind.name}:{self._used[kind]}of{self._limits[kind]}"
            for kind in FuKind
        )

    def try_take(self, kind: FuKind) -> bool:
        """Claim an issue slot of *kind*; False when all are taken."""
        k = int(kind)
        if self._used[k] < self._limits[k]:
            self._used[k] += 1
            return True
        return False

    def available(self, kind: FuKind) -> int:
        k = int(kind)
        return self._limits[k] - self._used[k]
