"""The in-flight instruction record shared by all core models."""

from __future__ import annotations

from repro.isa import Instruction
from repro.memory.cache import AccessLevel


class InFlight:
    """One dynamic instruction inside a machine.

    The record carries the dependence-wakeup state (``unready`` counter and
    ``waiters`` list) plus the timing milestones each core fills in.  Cores
    attach themselves via the ``where`` tag so the D-KIP can tell which of
    its structures currently owns the instruction.
    """

    __slots__ = (
        "instr",
        "fetch_cycle",
        "dispatch_cycle",
        "issue_cycle",
        "done_cycle",
        "executed",
        "issued",
        "unready",
        "waiters",
        "sources",
        "where",
        "mem_level",
        "long_latency",
        "ready_operand_bank",
        "mispredicted",
        "owner",
        "checkpoint",
    )

    def __init__(self, instr: Instruction, fetch_cycle: int) -> None:
        self.instr = instr
        self.fetch_cycle = fetch_cycle
        self.dispatch_cycle = -1
        self.issue_cycle = -1
        self.done_cycle = -1
        self.executed = False          # value produced and visible
        self.issued = False            # sent to a functional unit
        self.unready = 0               # sources still outstanding
        self.waiters: list[InFlight] | None = None
        self.sources: tuple[InFlight, ...] = ()   # producers linked at dispatch
        self.where = ""                # owning structure tag ("cp", "llib", "mp", "sliq")
        self.mem_level: AccessLevel | None = None   # level that served a load
        self.long_latency = False      # D-KIP/KILO classification result
        self.ready_operand_bank = -1   # LLRF bank holding the READY operand
        self.mispredicted = False      # conditional branch whose prediction failed
        self.owner = None              # structure to notify when last source readies
        self.checkpoint = None         # D-KIP checkpoint this instruction writes to

    # ------------------------------------------------------------------

    @property
    def seq(self) -> int:
        return self.instr.seq

    def add_waiter(self, waiter: "InFlight") -> None:
        if self.waiters is None:
            self.waiters = [waiter]
        else:
            self.waiters.append(waiter)

    def take_waiters(self) -> list["InFlight"]:
        waiters = self.waiters or []
        self.waiters = None
        return waiters

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InFlight(seq={self.seq}, op={self.instr.op.short_name}, "
            f"where={self.where!r}, unready={self.unready}, "
            f"issued={self.issued}, executed={self.executed})"
        )
