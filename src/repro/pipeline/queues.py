"""Bounded issue queues: out-of-order (CAM-like) or in-order (FIFO).

The out-of-order flavour keeps a ready min-heap ordered by sequence number,
so issue selection is oldest-first among ready instructions — the usual
select policy.  Waiting instructions cost nothing until their wakeup.

The in-order flavour only ever inspects its head, which is how the paper's
INO configurations (Figure 10) and the Memory Processor's Future-File
reservation stations behave.
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.pipeline.entry import InFlight
from repro.sim.config import SchedulerPolicy


#: Detached entries tolerated in the internal containers before a compaction
#: pass rebuilds them (only reached when the stale entries also outnumber the
#: live ones; see :meth:`IssueQueue.remove`).
COMPACT_THRESHOLD = 32


class IssueQueue:
    """One scheduling window of bounded capacity."""

    def __init__(self, name: str, size: int, policy: SchedulerPolicy) -> None:
        self.name = name
        self.size = size
        self.policy = policy
        self.occupancy = 0
        self._in_order = policy == SchedulerPolicy.IN_ORDER
        self._fifo: deque[InFlight] = deque()
        self._ready_heap: list[tuple[int, InFlight]] = []
        # Entries detached via remove() stay in the containers until their
        # lazy drop at the head; this counts them so low-issue-rate runs
        # (where detached entries rarely reach the head) cannot accumulate
        # unbounded garbage.
        self._stale = 0
        self.compactions = 0

    # ------------------------------------------------------------------

    @property
    def has_space(self) -> bool:
        return self.occupancy < self.size

    def add(self, entry: InFlight) -> None:
        """Dispatch *entry* into the queue (caller checked ``has_space``)."""
        if self.occupancy >= self.size:
            raise RuntimeError(f"issue queue {self.name} overflow")
        self.occupancy += 1
        entry.owner = self
        if self._in_order:
            self._fifo.append(entry)
        elif entry.unready == 0:
            heapq.heappush(self._ready_heap, (entry.seq, entry))

    def remove(self, entry: InFlight) -> None:
        """Detach a waiting entry (Analyze moved it to the LLIB/SLIQ).

        The entry is dropped lazily from the internal containers; only the
        occupancy accounting is updated here.  The caller re-owns the entry.
        When stale entries come to dominate the containers (more than half,
        past a small floor), they are compacted away so long runs with low
        issue rates cannot accumulate unbounded garbage.
        """
        self.occupancy -= 1
        if entry.owner is self:
            entry.owner = None
        self._stale += 1
        if self._stale >= COMPACT_THRESHOLD and self._stale * 2 > (
            len(self._fifo) + len(self._ready_heap)
        ):
            # More removals than surviving container entries: most of the
            # counted removals were never lazily dropped.  (The counter may
            # overestimate — an OOO entry that was never ready lives in no
            # container — which only makes compaction a little eager.)
            self._compact()

    def _compact(self) -> None:
        """Rebuild the containers without issued/detached entries."""
        if self._in_order:
            self._fifo = deque(
                e for e in self._fifo if not e.issued and e.owner is self
            )
        else:
            live = [
                (seq, e)
                for seq, e in self._ready_heap
                if not e.issued and e.owner is self
            ]
            heapq.heapify(live)
            self._ready_heap = live
        self._stale = 0
        self.compactions += 1

    def wake(self, entry: InFlight) -> None:
        """Called when *entry*'s last outstanding source completed."""
        if not self._in_order and not entry.issued:
            heapq.heappush(self._ready_heap, (entry.seq, entry))

    # ------------------------------------------------------------------

    def next_issuable(self, now: int) -> InFlight | None:
        """Oldest instruction that could issue this cycle, or None.

        Does not remove the instruction; call :meth:`take` after the
        functional-unit check succeeds.
        """
        if self._in_order:
            # Lazily drop heads that issued or were detached (an entry the
            # D-KIP's Analyze stage moved to the LLIB changes owner).
            while self._fifo and (
                self._fifo[0].issued or self._fifo[0].owner is not self
            ):
                self._fifo.popleft()
                if self._stale:
                    self._stale -= 1
            if self._fifo and self._fifo[0].unready == 0:
                return self._fifo[0]
            return None
        while self._ready_heap:
            entry = self._ready_heap[0][1]
            if entry.issued or entry.owner is not self:
                heapq.heappop(self._ready_heap)
                if self._stale:
                    self._stale -= 1
                continue
            return entry
        return None

    def take(self, entry: InFlight) -> None:
        """Remove *entry* after it was issued (frees its slot)."""
        self.occupancy -= 1
        entry.issued = True
        if self._in_order:
            if self._fifo and self._fifo[0] is entry:
                self._fifo.popleft()
        else:
            if self._ready_heap and self._ready_heap[0][1] is entry:
                heapq.heappop(self._ready_heap)

    def defer(self, entry: InFlight) -> None:
        """Pop a ready entry blocked on a functional unit off the heap.

        The caller collects deferred entries and re-arms them with
        :meth:`wake` once its per-cycle issue loop finishes, so the loop can
        inspect the next-oldest candidate without livelocking.  In-order
        queues never defer (a blocked head blocks the queue).
        """
        if not self._in_order and self._ready_heap and self._ready_heap[0][1] is entry:
            heapq.heappop(self._ready_heap)

    def drain(self) -> list[InFlight]:
        """Remove and return all entries (checkpoint recovery)."""
        out = []
        if self._in_order:
            out.extend(e for e in self._fifo if not e.issued)
            self._fifo.clear()
        else:
            out.extend(e for _, e in self._ready_heap if not e.issued)
            self._ready_heap.clear()
        self.occupancy = 0
        self._stale = 0
        return out
