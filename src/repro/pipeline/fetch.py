"""Fetch unit with stall-until-resolve misprediction modelling.

Our simulators are correct-path trace driven, so wrong-path instructions
are never executed.  The standard approximation — used here — is that when
a conditional branch is fetched and the predictor disagrees with the
trace's outcome, fetch stops at that branch and resumes only when the
branch resolves in the backend, plus a front-end redirect penalty.

This is exactly the mechanism behind the paper's SpecINT observation: a
mispredicted branch whose inputs depend on an L2 miss cannot resolve for a
full memory round-trip, so fetch — and with it the whole machine — stalls
for hundreds of cycles, no matter how large the instruction window is.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

from repro.isa import Instruction
from repro.branch.base import BranchPredictor
from repro.sim.stats import SimStats


class FetchUnit:
    """4-wide fetch front end feeding a bounded fetch buffer."""

    def __init__(
        self,
        trace: Iterable[Instruction],
        width: int,
        buffer_size: int,
        predictor: BranchPredictor,
        redirect_penalty: int,
        stats: SimStats,
    ) -> None:
        self._trace: Iterator[Instruction] = iter(trace)
        self.width = width
        self.buffer_size = buffer_size
        self.predictor = predictor
        self.redirect_penalty = redirect_penalty
        self.stats = stats
        self.buffer: deque[Instruction] = deque()
        self.exhausted = False
        #: seq of the mispredicted branch fetch is waiting on, if any.
        self._waiting_seq: int | None = None
        #: first cycle fetch may run again after a resolved misprediction.
        self._resume_cycle = 0

    # ------------------------------------------------------------------

    @property
    def stalled(self) -> bool:
        return self._waiting_seq is not None

    @property
    def waiting_seq(self) -> int | None:
        return self._waiting_seq

    def cycle(self, now: int) -> None:
        """Run one fetch cycle: pull up to ``width`` instructions."""
        stats = self.stats
        if self._waiting_seq is not None or now < self._resume_cycle:
            if not self.exhausted:
                # Both stall sources — waiting on the unresolved branch
                # and waiting out the redirect penalty — are misprediction
                # consequences, so the dedicated counter tracks them too.
                stats.fetch_stall_cycles += 1
                stats.mispredict_stall_cycles += 1
            return
        fetched = 0
        width = self.width
        buffer = self.buffer
        buffer_size = self.buffer_size
        trace = self._trace
        while fetched < width and len(buffer) < buffer_size:
            instr = next(trace, None)
            if instr is None:
                self.exhausted = True
                return
            buffer.append(instr)
            stats.fetched += 1
            fetched += 1
            if instr.is_cond_branch:
                correct = self.predictor.update(instr.pc, bool(instr.taken))
                stats.branch_predictions += 1
                if not correct:
                    stats.branch_mispredictions += 1
                    self._waiting_seq = instr.seq
                    return  # stop fetching past the mispredicted branch
                if instr.taken:
                    # Correctly predicted taken: the fetch group still ends
                    # at the redirect (one group per taken branch).
                    return
            elif instr.taken:
                # Taken jump: target assumed BTB-hit, fetch continues next
                # cycle (one-cycle fetch-group break).
                return

    def next_fetch_cycle(self, now: int) -> int | None:
        """Earliest cycle >= *now* at which fetch could pull instructions.

        Part of the quiescence protocol: returns ``now`` when fetch can run
        immediately, the redirect resume cycle when fetch is merely waiting
        out a front-end penalty, or ``None`` when only a backend event (a
        branch resolving, dispatch freeing buffer space) can restart it.
        """
        if self.exhausted or self._waiting_seq is not None:
            return None
        if len(self.buffer) >= self.buffer_size:
            return None
        if now < self._resume_cycle:
            return self._resume_cycle
        return now

    def account_skipped(self, start: int, end: int) -> None:
        """Replay the stall accounting :meth:`cycle` would have done for
        the fast-forwarded cycles ``[start, end)``."""
        if self.exhausted:
            return
        if self._waiting_seq is not None:
            stalled = end - start
        elif start < self._resume_cycle:
            stalled = min(end, self._resume_cycle) - start
        else:
            return
        self.stats.fetch_stall_cycles += stalled
        self.stats.mispredict_stall_cycles += stalled

    def pop(self) -> Instruction | None:
        """Hand the oldest buffered instruction to dispatch."""
        if self.buffer:
            return self.buffer.popleft()
        return None

    def peek(self) -> Instruction | None:
        return self.buffer[0] if self.buffer else None

    # ------------------------------------------------------------------

    def on_branch_resolved(self, seq: int, resolve_cycle: int) -> None:
        """Notify that the branch with sequence number *seq* resolved.

        If fetch was waiting on it, fetch resumes after the redirect
        penalty (new fetch address, pipeline refill).
        """
        if self._waiting_seq == seq:
            self._waiting_seq = None
            self._resume_cycle = resolve_cycle + self.redirect_penalty
