"""Load/store queue: capacity tracking and store-to-load forwarding.

Section 3.3 of the paper treats the LSQ as a decoupled component
(integrating the hierarchical design of Akkary et al. [12]); what the
pipeline models need from it is (a) a capacity limit on in-flight memory
operations and (b) store-to-load forwarding so a load does not go to the
cache when an older in-flight store to the same address holds the value.

Disambiguation is idealized: the trace carries final addresses, so loads
never violate memory ordering (no replays).  Forwarding only happens from
stores that have issued (address known), which is the conservative side of
real designs.
"""

from __future__ import annotations

from repro.pipeline.entry import InFlight


#: Load-to-use latency when the value is forwarded from the store queue.
FORWARD_LATENCY = 2


class LoadStoreQueue:
    """Bounded queue of in-flight memory operations."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.occupancy = 0
        # addr -> ascending list of seqs of issued, uncommitted stores
        self._pending_stores: dict[int, list[int]] = {}
        self.forwarded_loads = 0

    # ------------------------------------------------------------------

    @property
    def has_space(self) -> bool:
        return self.occupancy < self.size

    def allocate(self) -> None:
        if self.occupancy >= self.size:
            raise RuntimeError("LSQ overflow")
        self.occupancy += 1

    def release(self) -> None:
        if self.occupancy <= 0:
            raise RuntimeError("LSQ underflow")
        self.occupancy -= 1

    # ------------------------------------------------------------------

    def store_issued(self, entry: InFlight) -> None:
        """Record that a store's address and data are known."""
        addr = entry.instr.addr
        self._pending_stores.setdefault(addr, []).append(entry.seq)

    def store_committed(self, entry: InFlight) -> None:
        """Remove a store from the forwarding window at commit."""
        addr = entry.instr.addr
        seqs = self._pending_stores.get(addr)
        if seqs:
            try:
                seqs.remove(entry.seq)
            except ValueError:
                pass
            if not seqs:
                del self._pending_stores[addr]

    def forwarding_store(self, load: InFlight) -> bool:
        """True when an older in-flight store can forward to *load*."""
        seqs = self._pending_stores.get(load.instr.addr)
        if not seqs:
            return False
        return any(seq < load.seq for seq in seqs)

    def load_latency_if_forwarded(self, load: InFlight) -> int | None:
        """Forwarding latency, or None when the load must access the cache."""
        if self.forwarding_store(load):
            self.forwarded_loads += 1
            return FORWARD_LATENCY
        return None
