"""Architectural-register → producer tracking (the rename-table analogue).

Because our simulators are trace driven there is no need for physical
registers: each definition simply supersedes the previous producer of the
architectural register.  A consumer links to whatever entry currently
produces each of its live sources; if that producer has not executed yet
the consumer registers itself as a waiter.
"""

from __future__ import annotations

from repro.isa.registers import NUM_REGS
from repro.pipeline.entry import InFlight


class RegisterTracker:
    """Tracks the in-flight producer of every architectural register."""

    __slots__ = ("_producers",)

    def __init__(self) -> None:
        self._producers: list[InFlight | None] = [None] * NUM_REGS

    def producer_of(self, reg: int) -> InFlight | None:
        """Current producer of *reg*, or None when the value is in the ARF."""
        producer = self._producers[reg]
        if producer is not None and producer.executed:
            # Value has been written back; treat as architecturally ready.
            return None
        return producer

    def raw_producer(self, reg: int) -> InFlight | None:
        """Producer entry even if already executed (LLBV bookkeeping)."""
        return self._producers[reg]

    def link_sources(self, entry: InFlight) -> None:
        """Wire *entry* to its producers, counting unready sources.

        Producers that have not yet executed are also recorded in
        ``entry.sources`` so the D-KIP's LLIB head check can tell which of
        them are Address-Processor loads (Section 3.2: extraction waits for
        the long-latency load value, not for ordinary MP producers).
        """
        sources: list[InFlight] | None = None
        producers = self._producers
        for src in entry.instr.live_srcs():
            producer = producers[src]
            if producer is not None and not producer.executed:
                entry.unready += 1
                producer.add_waiter(entry)
                if sources is None:
                    sources = [producer]
                else:
                    sources.append(producer)
        if sources:
            entry.sources = tuple(sources)

    def define(self, entry: InFlight) -> None:
        """Record *entry* as the new producer of its destination."""
        dest = entry.instr.dest
        if dest is not None:
            self._producers[dest] = entry

    def clear(self) -> None:
        """Forget all producers (checkpoint recovery restores the ARF)."""
        for i in range(NUM_REGS):
            self._producers[i] = None
