"""Shared out-of-order pipeline machinery.

Every core model in this package — the R10000-style baselines, the
KILO-1024 comparator and the D-KIP itself — is built from the same parts:

* :class:`~repro.pipeline.entry.InFlight` — the per-dynamic-instruction
  record carrying dependence ("waiter") lists for event-driven wakeup;
* :class:`~repro.pipeline.regstate.RegisterTracker` — maps architectural
  registers to their current producer (rename-table equivalent);
* :class:`~repro.pipeline.fu.FuPool` — per-cycle functional-unit arbitration;
* :class:`~repro.pipeline.fetch.FetchUnit` — 4-wide fetch with
  stall-until-resolve misprediction modelling;
* :class:`~repro.pipeline.queues.IssueQueue` — bounded in-order or
  out-of-order scheduling windows;
* :class:`~repro.pipeline.lsq.LoadStoreQueue` — capacity tracking and
  store-to-load forwarding;
* :class:`~repro.pipeline.core.CycleCore` — the per-cycle driver loop with
  the completion event wheel.

Wakeup is event driven: a waiting instruction holds a count of unready
sources, producers hold lists of waiters, and the event wheel releases
waiters at completion time.  Cost is O(dependence edges), which is what
makes the 1024-entry SLIQ and 2048-entry LLIBs affordable in pure Python.
"""

from repro.pipeline.entry import InFlight
from repro.pipeline.regstate import RegisterTracker
from repro.pipeline.fu import FuKind, FuPool, fu_kind_of
from repro.pipeline.fetch import FetchUnit
from repro.pipeline.queues import IssueQueue
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.core import CycleCore, DeadlockError

__all__ = [
    "InFlight",
    "RegisterTracker",
    "FuKind",
    "FuPool",
    "fu_kind_of",
    "FetchUnit",
    "IssueQueue",
    "LoadStoreQueue",
    "CycleCore",
    "DeadlockError",
]
