"""Fault-tolerant sweep execution.

The resilience layer sits between the sweep/experiment drivers and the
simulator processes: :class:`ResilientExecutor` supervises worker
processes (deadlines, retries with backoff, death detection and
respawn), :mod:`repro.resilience.report` types the failure taxonomy
(``ok`` / ``retryable`` / ``permanent`` / ``timeout``), and
:mod:`repro.resilience.faults` injects deterministic faults from the
``REPRO_FAULT`` environment variable for the chaos test battery.
"""

from repro.resilience.executor import (
    RETRYABLE_EXCEPTIONS,
    STRICT,
    ExecutionPolicy,
    ResilientExecutor,
    active_policy,
    active_report,
    classify_exception,
    resilience_context,
    run_attempts,
)
from repro.resilience.faults import (
    FaultClause,
    FaultPlan,
    FaultSpecError,
    InjectedFailure,
    TransientCellError,
    plan_from_env,
)
from repro.resilience.report import (
    OK,
    PERMANENT,
    RETRYABLE,
    TIMEOUT,
    CellExecutionError,
    CellFailure,
    FailureReport,
    cell_label,
)

__all__ = [
    "OK",
    "PERMANENT",
    "RETRYABLE",
    "RETRYABLE_EXCEPTIONS",
    "STRICT",
    "TIMEOUT",
    "CellExecutionError",
    "CellFailure",
    "ExecutionPolicy",
    "FailureReport",
    "FaultClause",
    "FaultPlan",
    "FaultSpecError",
    "InjectedFailure",
    "ResilientExecutor",
    "TransientCellError",
    "active_policy",
    "active_report",
    "cell_label",
    "classify_exception",
    "plan_from_env",
    "resilience_context",
    "run_attempts",
]
