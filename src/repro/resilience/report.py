"""Failure taxonomy and machine-readable failure reporting.

Every cell execution attempt resolves to one of four outcomes:

- ``ok`` — the cell simulated and its stats were persisted;
- ``retryable`` — a transient error or a dead worker; the cell is
  requeued while retry budget remains, and only becomes a final
  :class:`CellFailure` of kind ``retryable`` once the budget is spent;
- ``permanent`` — a deterministic error (:class:`DeadlockError
  <repro.pipeline.core.DeadlockError>`, a modelling bug, a corrupt trace
  file); retrying cannot help, the cell fails immediately;
- ``timeout`` — the wall-clock deadline expired; the worker is killed
  and the cell requeued while budget remains.

A :class:`FailureReport` aggregates the final failures plus supervision
counters for one CLI invocation (or one :func:`run_cells
<repro.experiments.common.run_cells>` call); ``--failures-json`` dumps
it via :meth:`FailureReport.to_dict`.  :class:`CellExecutionError` is
raised when the failure budget (``--max-failures``) is exhausted and
always names the offending cell spec.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

#: Final outcome kinds (``ok`` never appears in a failure record).
OK = "ok"
RETRYABLE = "retryable"
PERMANENT = "permanent"
TIMEOUT = "timeout"


def cell_label(config, bench, memory) -> str:
    """Human name of one grid cell: ``machine × workload × memory``."""
    machine = getattr(config, "name", None) or str(config)
    mem = getattr(memory, "name", None) or str(memory)
    return f"{machine} × {bench} × {mem}"


@dataclass
class CellFailure:
    """One cell that ran out of attempts (or never deserved any)."""

    #: Index of the cell in the submitted grid (input order).
    index: int
    #: Human cell spec (``machine × workload × memory``).
    cell: str
    #: Final outcome kind: ``retryable``, ``permanent`` or ``timeout``.
    kind: str
    #: Exception type name (``DeadlockError``, ``WorkerDeath`` …).
    error: str
    #: Exception message (or a supervision summary).
    message: str
    #: Formatted traceback from the failing worker, when one exists.
    traceback: str = ""
    #: Number of attempts spent, the failing one included.
    attempts: int = 1
    #: Wall-clock seconds from first dispatch to the final failure.
    duration: float = 0.0

    def describe(self) -> str:
        """One log line naming the cell, the kind and the cause."""
        return (
            f"{self.cell} — {self.kind} after {self.attempts} attempt(s) "
            f"[{self.duration:.1f}s]: {self.error}: {self.message}"
        )

    def to_dict(self) -> dict:
        """JSON-ready rendering for the ``--failures-json`` report."""
        return {
            "index": self.index,
            "cell": self.cell,
            "kind": self.kind,
            "error": self.error,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": self.attempts,
            "duration_s": round(self.duration, 3),
        }


#: Version of the ``--failures-json`` document shape.
REPORT_FORMAT = 1


@dataclass
class FailureReport:
    """Aggregated failures and supervision counters for one run."""

    failures: list[CellFailure] = field(default_factory=list)
    #: Cells submitted for execution (store hits never count).
    cells: int = 0
    #: Cells that completed with ``ok``.
    completed: int = 0
    #: Retry attempts dispatched (transient errors, deaths, timeouts).
    retries: int = 0
    #: Wall-clock deadline expiries (each kills one worker).
    timeouts: int = 0
    #: Worker processes that died and were respawned.
    worker_deaths: int = 0

    def record(self, failure: CellFailure) -> None:
        """Append one final failure."""
        self.failures.append(failure)

    def merge(self, other: "FailureReport") -> None:
        """Fold *other*'s failures and counters into this report."""
        if other is self:
            return
        self.failures.extend(other.failures)
        self.cells += other.cells
        self.completed += other.completed
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.worker_deaths += other.worker_deaths

    def to_dict(self, policy=None) -> dict:
        """JSON-ready rendering of the whole report."""
        data = {
            "format": REPORT_FORMAT,
            "cells": self.cells,
            "completed": self.completed,
            "failed": len(self.failures),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_deaths": self.worker_deaths,
            "failures": [failure.to_dict() for failure in self.failures],
        }
        if policy is not None:
            data["policy"] = {
                "cell_timeout": policy.cell_timeout,
                "retries": policy.retries,
                "max_failures": policy.max_failures,
            }
        return data

    def write_json(self, path: str | os.PathLike, policy=None) -> None:
        """Write :meth:`to_dict` to *path* (the ``--failures-json`` file)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(policy), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def summary(self) -> str:
        """One line: failure count by kind plus supervision counters."""
        kinds: dict[str, int] = {}
        for failure in self.failures:
            kinds[failure.kind] = kinds.get(failure.kind, 0) + 1
        detail = ", ".join(f"{count} {kind}" for kind, count in sorted(kinds.items()))
        return (
            f"{len(self.failures)} of {self.cells} cell(s) failed"
            + (f" ({detail})" if detail else "")
            + f"; {self.retries} retr{'y' if self.retries == 1 else 'ies'}, "
            f"{self.worker_deaths} worker death(s), {self.timeouts} timeout(s)"
        )


class CellExecutionError(RuntimeError):
    """The failure budget is exhausted; names the offending cell spec."""

    def __init__(self, failure: CellFailure, report: FailureReport) -> None:
        super().__init__(f"cell {failure.describe()}")
        #: The failure that blew the budget.
        self.failure = failure
        #: The full report up to (and including) that failure.
        self.report = report
