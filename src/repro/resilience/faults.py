"""Deterministic, environment-keyed fault injection for chaos testing.

The ``REPRO_FAULT`` environment variable describes a *fault plan* — a
comma-separated list of clauses, each naming an injection site, an
action, and an optional match filter, probability and parameter::

    REPRO_FAULT="cell:kill:0.1,seed=7"            # kill 10% of cell attempts
    REPRO_FAULT="cell:transient:0.3,cell:delay:0.2:0.05"
    REPRO_FAULT="cell:fail@mcf"                   # every cell naming 'mcf'
    REPRO_FAULT="store:corrupt@#0:1.0:0"          # truncate first store write

Clause grammar (see :meth:`FaultPlan.parse`)::

    SITE:ACTION[@MATCH][:PROBABILITY[:PARAM]]   or   seed=N

Every decision is a pure function of ``(seed, clause, token)`` — the
token names the specific attempt (``"<cell label>#<attempt>"`` for cell
faults, ``"<digest>#<write counter>"`` for store writes) — so a given
plan fires on exactly the same attempts every run.  Retries survive a
killed attempt because the next attempt hashes to a fresh decision.

Injection happens only at explicit call sites: the resilient executor's
*worker* processes call :meth:`FaultPlan.inject_cell` before running a
cell, and :meth:`repro.store.ResultStore.put` routes its serialized
entry through :meth:`FaultPlan.corrupt_store_text`.  The driver process
never injects cell faults, so a ``kill`` clause can only take down a
worker, never the sweep itself.
"""

from __future__ import annotations

import functools
import hashlib
import os
import time
from dataclasses import dataclass

#: Injection sites and the actions each one understands.
SITE_ACTIONS = {
    "cell": ("kill", "transient", "fail", "delay"),
    "store": ("corrupt",),
}


class FaultSpecError(ValueError):
    """A ``REPRO_FAULT`` clause that does not parse."""


class TransientCellError(RuntimeError):
    """An injected (or genuinely transient) failure worth retrying."""


class InjectedFailure(RuntimeError):
    """An injected permanent failure — retries cannot fix it."""


@dataclass(frozen=True)
class FaultClause:
    """One parsed fault clause: where, what, to whom, how often."""

    site: str
    action: str
    probability: float = 1.0
    match: str = ""
    param: float | None = None


@dataclass(frozen=True)
class FaultPlan:
    """A parsed ``REPRO_FAULT`` value: clauses plus the decision seed."""

    clauses: tuple[FaultClause, ...] = ()
    seed: int = 0

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULT`` string into a plan.

        Raises :class:`FaultSpecError` for unknown sites/actions, broken
        numbers, or probabilities outside ``[0, 1]``.
        """
        clauses: list[FaultClause] = []
        seed = 0
        for raw in text.split(","):
            part = raw.strip()
            if not part:
                continue
            if part.startswith("seed="):
                try:
                    seed = int(part[len("seed="):])
                except ValueError:
                    raise FaultSpecError(
                        f"fault seed must be an integer, got {part!r}"
                    ) from None
                continue
            fields = part.split(":")
            if len(fields) < 2 or len(fields) > 4:
                raise FaultSpecError(
                    f"malformed fault clause {part!r}; expected "
                    "SITE:ACTION[@MATCH][:PROBABILITY[:PARAM]]"
                )
            site = fields[0].strip().lower()
            action, _, match = fields[1].strip().partition("@")
            action = action.lower()
            if site not in SITE_ACTIONS:
                raise FaultSpecError(
                    f"unknown fault site {site!r}; expected one of "
                    f"{', '.join(SITE_ACTIONS)}"
                )
            if action not in SITE_ACTIONS[site]:
                raise FaultSpecError(
                    f"unknown {site} fault action {action!r}; expected one "
                    f"of {', '.join(SITE_ACTIONS[site])}"
                )
            probability = 1.0
            param: float | None = None
            try:
                if len(fields) >= 3:
                    probability = float(fields[2])
                if len(fields) == 4:
                    param = float(fields[3])
            except ValueError:
                raise FaultSpecError(
                    f"malformed number in fault clause {part!r}"
                ) from None
            if not 0.0 <= probability <= 1.0:
                raise FaultSpecError(
                    f"fault probability must be within [0, 1], got {probability}"
                )
            if param is not None and param < 0:
                raise FaultSpecError(
                    f"fault parameter must be non-negative, got {param}"
                )
            clauses.append(FaultClause(site, action, probability, match, param))
        return cls(clauses=tuple(clauses), seed=seed)

    def _fires(self, clause: FaultClause, token: str) -> bool:
        """Deterministic decision: does *clause* fire for *token*?"""
        if clause.match and clause.match not in token:
            return False
        if clause.probability >= 1.0:
            return True
        if clause.probability <= 0.0:
            return False
        data = "|".join(
            (str(self.seed), clause.site, clause.action, clause.match, token)
        ).encode()
        fraction = int.from_bytes(hashlib.sha256(data).digest()[:8], "big") / 2**64
        return fraction < clause.probability

    def inject_cell(self, label: str, attempt: int) -> None:
        """Fire the matching ``cell`` clauses for one execution attempt.

        Call this from a *worker* process only: ``kill`` exits the
        process immediately (exit code 137, mimicking an OOM kill),
        ``delay`` sleeps for the clause parameter (default 0.02 s),
        ``transient`` raises :class:`TransientCellError` and ``fail``
        raises :class:`InjectedFailure`.
        """
        token = f"{label}#{attempt}"
        for clause in self.clauses:
            if clause.site != "cell" or not self._fires(clause, token):
                continue
            if clause.action == "delay":
                time.sleep(clause.param if clause.param is not None else 0.02)
            elif clause.action == "transient":
                raise TransientCellError(
                    f"injected transient fault on {label} (attempt {attempt})"
                )
            elif clause.action == "fail":
                raise InjectedFailure(f"injected permanent fault on {label}")
            elif clause.action == "kill":
                os._exit(137)

    def corrupt_store_text(self, token: str, text: str) -> str:
        """Apply ``store:corrupt`` clauses to a serialized store entry.

        A firing clause truncates the entry to its parameter fraction
        (default 0.25; ``0`` emulates the zero-length file a host crash
        between write and fsync would leave), which any later read must
        treat as a miss.
        """
        for clause in self.clauses:
            if clause.site != "store" or clause.action != "corrupt":
                continue
            if self._fires(clause, token):
                keep = clause.param if clause.param is not None else 0.25
                return text[: int(len(text) * min(keep, 1.0))]
        return text


@functools.lru_cache(maxsize=8)
def _parse_cached(text: str) -> FaultPlan:
    """Memoized parse — workers consult the plan once per cell."""
    return FaultPlan.parse(text)


def plan_from_env(environ=None) -> FaultPlan | None:
    """The fault plan named by ``$REPRO_FAULT``, or ``None`` when unset."""
    text = (os.environ if environ is None else environ).get("REPRO_FAULT", "")
    text = text.strip()
    return _parse_cached(text) if text else None
