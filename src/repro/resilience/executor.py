"""Fault-tolerant cell execution: supervised workers, deadlines, retries.

:class:`ResilientExecutor` replaces the bare ``multiprocessing.Pool``
between the sweep drivers and the simulator.  Each worker is one
supervised process with a dedicated pipe; the driver dispatches one cell
at a time, so it always knows exactly which cell a worker holds.  That
makes the three supervision duties precise:

- **deadlines** — a cell running past ``policy.cell_timeout`` gets its
  worker killed and, while retry budget remains, is requeued;
- **worker death** — a worker that exits without reporting (OOM kill,
  injected ``cell:kill`` fault, segfault) is detected by pipe EOF /
  liveness checks, respawned, and its one in-flight cell requeued;
- **classification** — exceptions from the cell body come back as typed
  outcomes (:mod:`repro.resilience.report`): transient errors retry
  with exponential backoff and jitter, permanent ones fail the cell
  immediately, and the failure budget (``policy.max_failures``) bounds
  how many final failures a run absorbs before aborting with
  :class:`~repro.resilience.report.CellExecutionError`.

Completed results stream to the caller's ``on_result`` callback as they
arrive (the sweep layer persists each one to the content-addressed
store there), so even an aborted run resumes from everything that
finished — the store's fingerprints are the idempotency ledger, and a
retried cell dedupes to a bit-identical entry.

The module also provides the serial twin :func:`run_attempts` (used by
``run_cells`` when no pool or deadline is needed) and the policy
activation context (:func:`resilience_context`) the CLI uses to thread
one policy + report through every harness without touching their
signatures.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import multiprocessing.connection
import random
import time
import traceback as traceback_module
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.resilience.faults import TransientCellError, plan_from_env
from repro.resilience.report import (
    PERMANENT,
    RETRYABLE,
    TIMEOUT,
    CellExecutionError,
    CellFailure,
    FailureReport,
)

#: Exception types classified as retryable; everything else (including
#: ``DeadlockError`` — a modelling bug, deterministic by construction)
#: is permanent.  Extend via subclassing :class:`TransientCellError`.
RETRYABLE_EXCEPTIONS: tuple[type[BaseException], ...] = (
    TransientCellError,
    ConnectionError,
)


def classify_exception(error: BaseException) -> str:
    """Map an exception from a cell body to ``retryable``/``permanent``."""
    return RETRYABLE if isinstance(error, RETRYABLE_EXCEPTIONS) else PERMANENT


@dataclass(frozen=True)
class ExecutionPolicy:
    """How much failure one run tolerates, and at what pace it retries.

    ``max_failures`` is the number of *final* cell failures tolerated
    before the run aborts: ``0`` (the default) reproduces the classic
    fail-fast sweep, ``None`` never aborts.  ``retries`` bounds the
    re-dispatches of any single cell after retryable outcomes
    (transient errors, worker deaths, timeouts).  ``cell_timeout`` is
    the per-attempt wall-clock deadline in seconds (``None`` = no
    deadline).
    """

    cell_timeout: float | None = None
    retries: int = 2
    max_failures: int | None = 0
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    seed: int = 0

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Delay before *attempt* (1-based): exponential, capped, jittered."""
        if self.backoff_base <= 0:
            return 0.0
        delay = min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))
        return delay * (0.5 + 0.5 * rng.random())

    def jitter_rng(self, label: str, attempt: int) -> random.Random:
        """A jitter source keyed to one (cell, attempt) pair.

        Drawing jitter from a single shared RNG makes each retry's delay
        a function of how *other* cells happened to interleave, so chaos
        runs under ``$REPRO_FAULT`` never replay their timing.  Hashing
        (policy seed, cell label, attempt) instead gives every attempt
        its own deterministic stream: a given cell backs off identically
        no matter what else is in flight or in what order it retried.
        """
        data = f"{self.seed}|{label}|{attempt}".encode()
        seed = int.from_bytes(hashlib.sha256(data).digest()[:8], "big")
        return random.Random(seed)

    def backoff_for(self, label: str, attempt: int) -> float:
        """The deterministic delay before *attempt* of the cell *label*."""
        return self.backoff(attempt, self.jitter_rng(label, attempt))


#: The default policy: no deadline, supervised retries for transient
#: failures and worker deaths, abort on the first permanent failure —
#: the historical fail-fast sweep, plus supervision.
STRICT = ExecutionPolicy()

# ----------------------------------------------------------------------
# Policy activation (the CLI threads one policy/report through every
# harness without touching their signatures)
# ----------------------------------------------------------------------

_ACTIVE: list[tuple[ExecutionPolicy, FailureReport]] = []


@contextmanager
def resilience_context(
    policy: ExecutionPolicy, report: FailureReport | None = None
) -> Iterator[FailureReport]:
    """Make (*policy*, *report*) the ambient execution context.

    ``run_cells`` calls without an explicit policy/report pick these up,
    so one CLI invocation aggregates every harness's failures into one
    report.  Contexts nest; the innermost wins.
    """
    entry = (policy, report if report is not None else FailureReport())
    _ACTIVE.append(entry)
    try:
        yield entry[1]
    finally:
        _ACTIVE.remove(entry)


def active_policy() -> ExecutionPolicy:
    """The ambient policy (:data:`STRICT` when none is active)."""
    return _ACTIVE[-1][0] if _ACTIVE else STRICT


def active_report() -> FailureReport | None:
    """The ambient failure report, or ``None`` outside any context."""
    return _ACTIVE[-1][1] if _ACTIVE else None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _failure_info(error: BaseException) -> dict:
    """Serialize an exception for the supervision pipe."""
    return {
        "kind": classify_exception(error),
        "error": type(error).__name__,
        "message": str(error),
        "traceback": traceback_module.format_exc(),
    }


def _worker_main(conn, fn: Callable[[Any], Any]) -> None:
    """Worker loop: receive one task, run it, report, repeat.

    The fault plan (``$REPRO_FAULT``) injects here — before the cell
    body — so ``kill`` clauses take down this process, never the driver.

    Streaming tasks: when *fn* returns a generator, each yielded
    ``(position, value)`` pair is sent as its own ``"partial"`` message
    before the terminal ``"ok"``.  Batch bodies use this to report each
    cell inside the batch as it finishes, so the driver knows exactly
    which cells survive a mid-batch worker death.  A *fn* carrying a
    truthy ``wants_attempt`` attribute is called ``fn(payload, attempt)``
    so it can key per-cell fault injection to the dispatch attempt.
    """
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if item is None:
            return
        index, label, attempt, payload = item
        try:
            plan = plan_from_env()
            if plan is not None:
                plan.inject_cell(label, attempt)
            if getattr(fn, "wants_attempt", False):
                result = fn(payload, attempt)
            else:
                result = fn(payload)
            if hasattr(result, "__next__"):
                for position, value in result:
                    conn.send((index, attempt, "partial", (position, value), None))
                result = None
        except KeyboardInterrupt:
            return
        except BaseException as error:  # noqa: BLE001 - classified, not dropped
            message = (index, attempt, "error", None, _failure_info(error))
        else:
            message = (index, attempt, "ok", result, None)
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):
            return


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------


class _Task:
    """One dispatch unit's state (attempt counter, backoff deadline).

    ``done`` collects the positions reported by ``"partial"`` messages
    (streaming/batch tasks only); a requeue prunes the payload to the
    positions still outstanding.
    """

    __slots__ = (
        "index", "label", "payload", "attempt", "not_before", "first_start",
        "done",
    )

    def __init__(self, index: int, label: str, payload: Any) -> None:
        self.index = index
        self.label = label
        self.payload = payload
        self.attempt = 0
        self.not_before = 0.0
        self.first_start: float | None = None
        self.done: set = set()


class _Worker:
    """One supervised process plus its dedicated pipe and current task."""

    __slots__ = ("process", "conn", "task", "started")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.task: _Task | None = None
        self.started = 0.0


class ResilientExecutor:
    """Dispatch cells over supervised workers under an execution policy.

    *fn* is the module-level cell body (picklable); *jobs* the worker
    count.  Failures and counters accumulate into *report*;
    :meth:`run` raises :class:`~repro.resilience.report.CellExecutionError`
    when the policy's failure budget is exhausted (completed cells have
    already streamed to ``on_result`` by then).
    """

    #: Idle poll tick (seconds) when no deadline bounds the wait.
    TICK = 0.2

    def __init__(
        self,
        fn: Callable[[Any], Any],
        jobs: int,
        policy: ExecutionPolicy = STRICT,
        report: FailureReport | None = None,
        prune: Callable[[Any, set], Any] | None = None,
    ) -> None:
        self.fn = fn
        self.jobs = max(1, jobs)
        self.policy = policy
        self.report = report if report is not None else FailureReport()
        #: For streaming tasks: ``prune(payload, done_positions)`` returns
        #: the payload a *requeued* task should carry, dropping the work
        #: already reported via partial messages (batch cells that
        #: finished before a worker death are not recomputed).
        self.prune = prune
        self._workers: list[_Worker] = []

    # -- lifecycle ------------------------------------------------------

    def _spawn(self) -> _Worker:
        """Start one worker process and keep the driver end of its pipe."""
        parent_conn, child_conn = multiprocessing.Pipe()
        process = multiprocessing.Process(
            target=_worker_main, args=(child_conn, self.fn), daemon=True
        )
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    def _discard(self, worker: _Worker, kill: bool = False) -> None:
        """Drop *worker*: close its pipe, kill/join the process."""
        try:
            worker.conn.close()
        except OSError:
            pass
        if kill and worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=2.0)
        if worker.process.is_alive():  # pragma: no cover - last resort
            worker.process.terminate()
        self._workers.remove(worker)

    def _shutdown(self) -> None:
        """Stop every worker: sentinel to idle ones, kill busy ones."""
        for worker in list(self._workers):
            if worker.task is None and worker.process.is_alive():
                try:
                    worker.conn.send(None)
                except OSError:
                    pass
                self._discard(worker)
            else:
                self._discard(worker, kill=True)

    # -- supervision ----------------------------------------------------

    def _requeue(
        self, task: _Task, now: float, pending: deque, delayed: list
    ) -> None:
        """Schedule *task*'s next attempt after its backoff delay."""
        task.attempt += 1
        self.report.retries += 1
        if self.prune is not None and task.done:
            task.payload = self.prune(task.payload, task.done)
        delay = self.policy.backoff_for(task.label, task.attempt)
        if delay <= 0:
            pending.append(task)
        else:
            task.not_before = now + delay
            delayed.append(task)

    def _fail(self, task: _Task, kind: str, error: str, message: str,
              trace: str, now: float) -> None:
        """Record a final failure; abort when the budget is exhausted."""
        start = task.first_start if task.first_start is not None else now
        failure = CellFailure(
            index=task.index,
            cell=task.label,
            kind=kind,
            error=error,
            message=message,
            traceback=trace,
            attempts=task.attempt + 1,
            duration=now - start,
        )
        self.report.record(failure)
        budget = self.policy.max_failures
        if budget is not None and len(self.report.failures) > budget:
            raise CellExecutionError(failure, self.report)

    def _retryable(self, task: _Task) -> bool:
        return task.attempt < self.policy.retries

    # -- the run loop ---------------------------------------------------

    def run(
        self,
        tasks: Sequence[tuple[int, str, Any]],
        on_result: Callable[[int, Any], None] | None = None,
        on_partial: Callable[[int, Any, Any], None] | None = None,
    ) -> dict[int, Any]:
        """Execute every ``(index, label, payload)`` task; return results.

        The mapping holds one entry per *completed* cell; cells that
        failed past their budget are absent (their
        :class:`~repro.resilience.report.CellFailure` records live in
        ``self.report``).  ``on_result(index, result)`` fires in the
        driver as each cell completes, in completion order.

        ``on_partial(index, position, value)`` fires for every streamed
        partial a task reports before completing (batch bodies stream one
        per inner cell).  A partial also resets the task's deadline clock,
        so ``policy.cell_timeout`` bounds the gap *between* partials — a
        per-cell deadline — rather than the whole batch.
        """
        results: dict[int, Any] = {}
        self.report.cells += len(tasks)
        pending: deque[_Task] = deque(
            _Task(index, label, payload) for index, label, payload in tasks
        )
        delayed: list[_Task] = []
        remaining = len(pending)
        for _ in range(min(self.jobs, remaining)):
            self._workers.append(self._spawn())
        try:
            while remaining > 0:
                now = time.monotonic()
                for task in [t for t in delayed if t.not_before <= now]:
                    delayed.remove(task)
                    pending.append(task)
                self._dispatch(pending, now)
                busy = [w for w in self._workers if w.task is not None]
                if not busy:
                    if pending:
                        continue
                    if delayed:
                        time.sleep(
                            max(0.0, min(t.not_before for t in delayed) - now)
                            + 0.001
                        )
                        continue
                    break  # pragma: no cover - defensive; remaining>0 implies work
                ready = multiprocessing.connection.wait(
                    [w.conn for w in busy], self._wait_timeout(busy, delayed, now)
                )
                now = time.monotonic()
                by_conn = {id(w.conn): w for w in busy}
                for conn in ready:
                    worker = by_conn[id(conn)]
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        remaining -= self._on_death(worker, now, pending, delayed)
                        continue
                    remaining -= self._on_message(
                        worker, message, now, results, on_result, on_partial,
                        pending, delayed,
                    )
                if self.policy.cell_timeout is not None:
                    for worker in [w for w in self._workers if w.task is not None]:
                        if now - worker.started >= self.policy.cell_timeout:
                            remaining -= self._on_timeout(
                                worker, now, pending, delayed
                            )
        finally:
            self._shutdown()
        return results

    def _dispatch(self, pending: deque, now: float) -> None:
        """Hand ready tasks to idle workers (respawning dead ones)."""
        for worker in list(self._workers):
            if worker.task is not None or not pending:
                continue
            if not worker.process.is_alive():
                self.report.worker_deaths += 1
                self._discard(worker)
                self._workers.append(self._spawn())
                worker = self._workers[-1]
            task = pending.popleft()
            if task.first_start is None:
                task.first_start = now
            try:
                worker.conn.send((task.index, task.label, task.attempt, task.payload))
            except (BrokenPipeError, OSError):
                pending.appendleft(task)
                self.report.worker_deaths += 1
                self._discard(worker, kill=True)
                self._workers.append(self._spawn())
                continue
            worker.task = task
            worker.started = now

    def _wait_timeout(self, busy: list, delayed: list, now: float) -> float:
        """How long the supervision wait may block before the next duty."""
        timeout = self.TICK
        if self.policy.cell_timeout is not None:
            deadlines = [
                w.started + self.policy.cell_timeout - now for w in busy
            ]
            timeout = min(timeout, *deadlines)
        if delayed:
            timeout = min(timeout, *[t.not_before - now for t in delayed])
        return max(0.01, timeout)

    def _on_message(
        self, worker: _Worker, message, now: float, results: dict, on_result,
        on_partial, pending: deque, delayed: list,
    ) -> int:
        """Handle one worker report; return 1 when its cell is resolved."""
        task = worker.task
        index, _attempt, status, result, info = message
        if status == "partial":
            # The worker is still on this task: record the finished
            # position (a requeue prunes it) and restart the deadline
            # clock so cell_timeout is a per-cell bound, not per-batch.
            position, value = result
            task.done.add(position)
            worker.started = now
            if on_partial is not None:
                on_partial(index, position, value)
            return 0
        worker.task = None
        if status == "ok":
            results[index] = result
            self.report.completed += 1
            if on_result is not None:
                on_result(index, result)
            return 1
        if info["kind"] == RETRYABLE and self._retryable(task):
            self._requeue(task, now, pending, delayed)
            return 0
        self._fail(
            task, info["kind"], info["error"], info["message"],
            info.get("traceback", ""), now,
        )
        return 1

    def _on_death(
        self, worker: _Worker, now: float, pending: deque, delayed: list
    ) -> int:
        """A worker died mid-cell: respawn, requeue or fail its cell."""
        task = worker.task
        self.report.worker_deaths += 1
        self._discard(worker, kill=True)
        self._workers.append(self._spawn())
        if task is None:  # pragma: no cover - deaths surface while busy
            return 0
        exitcode = worker.process.exitcode
        if self._retryable(task):
            self._requeue(task, now, pending, delayed)
            return 0
        self._fail(
            task, RETRYABLE, "WorkerDeath",
            f"worker exited with code {exitcode} while running this cell "
            f"(attempt {task.attempt + 1})", "", now,
        )
        return 1

    def _on_timeout(
        self, worker: _Worker, now: float, pending: deque, delayed: list
    ) -> int:
        """A cell ran past its deadline: kill the worker, requeue or fail."""
        task = worker.task
        self.report.timeouts += 1
        self._discard(worker, kill=True)
        self._workers.append(self._spawn())
        if self._retryable(task):
            self._requeue(task, now, pending, delayed)
            return 0
        self._fail(
            task, TIMEOUT, "CellTimeout",
            f"exceeded the {self.policy.cell_timeout:g}s per-cell deadline "
            f"(attempt {task.attempt + 1})", "", now,
        )
        return 1


# ----------------------------------------------------------------------
# The serial twin (in-process: classification + retries, no deadlines)
# ----------------------------------------------------------------------


def run_attempts(
    index: int,
    label: str,
    compute: Callable[[], Any],
    policy: ExecutionPolicy,
    report: FailureReport,
    sleep: Callable[[float], None] = time.sleep,
    count_cell: bool = True,
):
    """Run one cell in-process under *policy*; ``None`` marks a failure.

    The serial counterpart of one executor slot: transient exceptions
    retry with backoff, permanent ones fail the cell immediately, final
    failures are recorded into *report*, and an exhausted failure budget
    raises :class:`~repro.resilience.report.CellExecutionError`.  No
    deadline enforcement — callers that need ``cell_timeout`` must use
    :class:`ResilientExecutor` (a process can only be killed from
    outside).  Fault injection stays off here for the same reason: a
    ``kill`` clause would take down the driver.

    *count_cell* is False when the caller already counted this cell in
    ``report.cells`` (the batched path re-dispatching a failed cell).
    """
    if count_cell:
        report.cells += 1
    start = time.monotonic()
    attempt = 0
    while True:
        try:
            result = compute()
        except Exception as error:  # noqa: BLE001 - classified, not dropped
            kind = classify_exception(error)
            if kind == RETRYABLE and attempt < policy.retries:
                attempt += 1
                report.retries += 1
                sleep(policy.backoff_for(label, attempt))
                continue
            failure = CellFailure(
                index=index,
                cell=label,
                kind=kind,
                error=type(error).__name__,
                message=str(error),
                traceback=traceback_module.format_exc(),
                attempts=attempt + 1,
                duration=time.monotonic() - start,
            )
            report.record(failure)
            budget = policy.max_failures
            if budget is not None and len(report.failures) > budget:
                raise CellExecutionError(failure, report) from error
            return None
        report.completed += 1
        return result
