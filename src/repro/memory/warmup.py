"""Functional cache warm-up.

The paper simulates 200M-instruction SimPoint samples, long enough for the
caches to reach steady state.  Our timed runs are orders of magnitude
shorter, so without preparation every run would be dominated by cold
misses and the L2-capacity sweeps of Figures 11/12 would show nothing.

The fix is the standard sampling-simulator technique: before timing starts,
the workload's data regions are streamed through the hierarchy functionally
(no timing, no pipeline).  Afterwards the caches hold the most recently
touched fraction of the working set, exactly as they would in steady state,
so a 4 MB L2 retains working sets a 64 KB L2 cannot.

Warm-up used to dominate short timed runs (profiles showed ~half of every
benchmark cell spent streaming the working set), so :func:`warm_caches`
now has two layers of speedup, both state-identical to the reference
stream:

* **Closed-form LRU tail.**  A single read pass over all-distinct lines
  through a pristine hierarchy misses every L1 probe, so the final state
  of each cache level is simply the last ``assoc`` lines mapped to each
  set, in stream order — installable directly (:meth:`Cache.warm_tail`)
  without simulating the evictions.
* **Snapshot memoization.**  The post-warm-up state only depends on the
  cache geometry, the regions, and the pass count; a module-level memo
  restores it for repeat warm-ups of pristine hierarchies in the same
  process (restoring is the same proven machinery sweeps already use via
  ``MemoryHierarchy.snapshot``/``restore``).

Plans with duplicate lines, multiple passes, or a non-pristine hierarchy
fall back to an exact (but still tightened) replay of the reference
stream.  ``tests/memory/test_warmup.py`` asserts snapshot equality of the
fast paths against the reference loop.
"""

from __future__ import annotations

from typing import Iterable

from repro.memory.hierarchy import MemoryHierarchy
from repro.trace.layout import strided_touch_plan

#: Entries kept in the module-level memo tables; oldest entries are evicted
#: first.  Warm-up state is per (geometry, regions, passes), so real runs
#: only ever hold a handful of entries.
_MEMO_LIMIT = 16

#: (regions, line_size) -> (line list, has duplicate lines)
_PLAN_MEMO: dict[tuple, tuple[list[int], bool]] = {}

#: (geometry, regions, passes) -> (hierarchy snapshot, touched count)
_WARM_MEMO: dict[tuple, tuple[dict, int]] = {}


def clear_warmup_memo() -> None:
    """Drop all memoized plans and snapshots (tests use this)."""
    _PLAN_MEMO.clear()
    _WARM_MEMO.clear()


def _remember(memo: dict, key, value) -> None:
    if len(memo) >= _MEMO_LIMIT:
        memo.pop(next(iter(memo)))
    memo[key] = value


def _plan_lines(regions: tuple[tuple[int, int], ...], line_size: int):
    """The line-number stream :func:`strided_touch_plan` would touch."""
    key = (regions, line_size)
    cached = _PLAN_MEMO.get(key)
    if cached is None:
        shift = line_size.bit_length() - 1
        lines = [
            (base + offset) >> shift
            for base, size in regions
            for offset in range(0, size, line_size)
        ]
        cached = (lines, len(set(lines)) != len(lines))
        _remember(_PLAN_MEMO, key, cached)
    return cached


def _geometry_key(hierarchy: MemoryHierarchy) -> tuple:
    l1 = hierarchy.l1
    l2 = hierarchy.l2
    return (
        hierarchy.line_size,
        (l1.size, l1.assoc),
        None if l2 is None else (l2.size, l2.assoc),
        hierarchy.memory is not None,
    )


def _is_pristine(hierarchy: MemoryHierarchy) -> bool:
    if not hierarchy.l1.is_pristine():
        return False
    if hierarchy.l2 is not None and not hierarchy.l2.is_pristine():
        return False
    return hierarchy.memory is None or hierarchy.memory.accesses == 0


def _stream(hierarchy: MemoryHierarchy, lines: list[int], passes: int) -> None:
    """Exact replay of the reference warm-up stream (``hierarchy.touch``
    per line), with the per-level calls bound outside the loop."""
    l1 = hierarchy.l1
    l2 = hierarchy.l2
    l1_probe = l1.probe
    l1_fill = l1.fill
    for _ in range(passes):
        if l2 is None:
            # Both the probe-hit and probe-miss arms of ``touch`` reduce to
            # an L1 fill when there is no L2.
            for line in lines:
                l1_fill(line)
            continue
        l2_fill = l2.fill
        for line in lines:
            if l1_probe(line):
                l1_fill(line)
            else:
                l2_fill(line)
                l1_fill(line)


def warm_caches(
    hierarchy: MemoryHierarchy,
    regions: Iterable[tuple[int, int]],
    passes: int = 1,
) -> int:
    """Touch every cache line of *regions* through *hierarchy*.

    Args:
        hierarchy: The machine's memory hierarchy (mutated in place).
        regions: ``(base, size)`` pairs, typically
            ``workload.address_space.regions``.
        passes: Number of sweeps; one pass is enough to establish recency
            order, a second pass makes the LRU state of cyclic traversals
            exact.

    Returns:
        The number of lines touched (per pass).
    """
    regions = tuple(regions)
    passes = max(1, passes)
    lines, duplicates = _plan_lines(regions, hierarchy.line_size)
    touched = len(lines)
    pristine = _is_pristine(hierarchy)
    key = None
    if pristine:
        key = (_geometry_key(hierarchy), regions, passes)
        cached = _WARM_MEMO.get(key)
        if cached is not None:
            snapshot, touched = cached
            hierarchy.restore(snapshot)
            return touched
    if pristine and passes == 1 and not duplicates:
        # All-distinct lines into empty caches: every L1 probe misses, so
        # both levels see the full stream and their final LRU state is the
        # per-set tail of it.
        if hierarchy.l2 is not None:
            hierarchy.l2.warm_tail(lines)
        hierarchy.l1.warm_tail(lines)
    else:
        _stream(hierarchy, lines, passes)
    hierarchy.reset_stats()
    if key is not None:
        _remember(_WARM_MEMO, key, (hierarchy.snapshot(), touched))
    return touched


def warm_caches_reference(
    hierarchy: MemoryHierarchy,
    regions: Iterable[tuple[int, int]],
    passes: int = 1,
) -> int:
    """The original one-``touch``-per-line warm-up loop.

    Kept as the oracle the fast paths are differenced against in
    ``tests/memory/test_warmup.py``.
    """
    regions = list(regions)
    touched = 0
    for _ in range(max(1, passes)):
        touched = 0
        for addr, is_write in strided_touch_plan(regions, hierarchy.line_size):
            hierarchy.touch(addr, is_write)
            touched += 1
    hierarchy.reset_stats()
    return touched
