"""Functional cache warm-up.

The paper simulates 200M-instruction SimPoint samples, long enough for the
caches to reach steady state.  Our timed runs are orders of magnitude
shorter, so without preparation every run would be dominated by cold
misses and the L2-capacity sweeps of Figures 11/12 would show nothing.

The fix is the standard sampling-simulator technique: before timing starts,
the workload's data regions are streamed through the hierarchy functionally
(no timing, no pipeline).  Afterwards the caches hold the most recently
touched fraction of the working set, exactly as they would in steady state,
so a 4 MB L2 retains working sets a 64 KB L2 cannot.
"""

from __future__ import annotations

from typing import Iterable

from repro.memory.hierarchy import MemoryHierarchy
from repro.trace.layout import strided_touch_plan


def warm_caches(
    hierarchy: MemoryHierarchy,
    regions: Iterable[tuple[int, int]],
    passes: int = 1,
) -> int:
    """Touch every cache line of *regions* through *hierarchy*.

    Args:
        hierarchy: The machine's memory hierarchy (mutated in place).
        regions: ``(base, size)`` pairs, typically
            ``workload.address_space.regions``.
        passes: Number of sweeps; one pass is enough to establish recency
            order, a second pass makes the LRU state of cyclic traversals
            exact.

    Returns:
        The number of lines touched (per pass).
    """
    regions = list(regions)
    touched = 0
    for _ in range(max(1, passes)):
        touched = 0
        for addr, is_write in strided_touch_plan(regions, hierarchy.line_size):
            hierarchy.touch(addr, is_write)
            touched += 1
    hierarchy.reset_stats()
    return touched
