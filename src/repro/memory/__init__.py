"""Memory hierarchy: set-associative caches, main memory, Table-1 configs.

Latencies follow the paper's convention: the configured access time of a
level is the *total* load-to-use latency when the access is satisfied at
that level (Table 1: an L2 hit costs 11 cycles end to end, a memory access
400).  Outstanding line fills are tracked so that a second access to a
missing line pays only the remaining fill time — this is what lets many
independent misses overlap (memory-level parallelism), the property KILO
processors exploit.
"""

from repro.memory.cache import AccessLevel, Cache, MainMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.configs import (
    DEFAULT_MEMORY,
    MemoryConfig,
    TABLE1_CONFIGS,
    memory_config_for_l2_size,
)
from repro.memory.warmup import warm_caches

__all__ = [
    "AccessLevel",
    "Cache",
    "MainMemory",
    "MemoryHierarchy",
    "MemoryConfig",
    "TABLE1_CONFIGS",
    "DEFAULT_MEMORY",
    "memory_config_for_l2_size",
    "warm_caches",
]
