"""Assembled cache hierarchy used by every core model.

One :class:`MemoryHierarchy` exists per simulated machine.  Its single hot
method, :meth:`MemoryHierarchy.access`, resolves an address to the
(latency, level) pair the pipeline needs:

* latency — cycles until the loaded value is usable;
* level — which level satisfied it, used by the D-KIP's Analyze stage to
  classify loads as short latency (L1/L2) or long latency (memory), and by
  the statistics that split execution locality.
"""

from __future__ import annotations

from repro.memory.cache import AccessLevel, Cache, MainMemory
from repro.memory.configs import MemoryConfig


class MemoryHierarchy:
    """L1 + optional L2 + main memory, built from a :class:`MemoryConfig`."""

    def __init__(self, config: MemoryConfig) -> None:
        self.config = config
        self.line_size = config.line_size
        self._line_bits = config.line_size.bit_length() - 1
        self.l1 = Cache(
            "L1", config.l1_size, config.l1_assoc, config.line_size, config.l1_latency
        )
        if config.l2_latency is None:
            self.l2: Cache | None = None
        else:
            self.l2 = Cache(
                "L2",
                config.l2_size,
                config.l2_assoc,
                config.line_size,
                config.l2_latency,
            )
        self.memory = (
            MainMemory(config.mem_latency) if config.mem_latency is not None else None
        )
        if self.l2 is None and self.memory is not None:
            raise ValueError("a hierarchy with main memory requires an L2 cache")

    # ------------------------------------------------------------------

    def access(self, addr: int, write: bool = False, now: int = 0) -> tuple[int, AccessLevel]:
        """Access *addr*; return ``(latency, level)``.

        Writes allocate like reads (write-allocate policy); their latency is
        reported identically, and it is up to the pipeline model to decide
        whether store latency is visible (stores retire from the LSQ without
        stalling commit in all our cores).
        """
        line = addr >> self._line_bits
        if self.l1.lookup(line):
            # Present, but possibly still being filled from memory: a
            # second load to a missing line overlaps with the outstanding
            # fill instead of paying a fresh full latency (MSHR behaviour —
            # the source of memory-level parallelism on streaming code).
            pending = self.l1.pending_fill(line, now)
            if pending is None:
                return self.l1.latency, AccessLevel.L1
            return self.l1.latency + pending, AccessLevel.MEMORY

        if self.l2 is None:
            # Infinite L1 configuration: first touch costs an L1 fill only.
            self.l1.fill(line)
            return self.l1.latency, AccessLevel.L1

        if self.l2.lookup(line):
            self.l1.fill(line)
            pending = self.l2.pending_fill(line, now)
            if pending is None:
                return self.l2.latency, AccessLevel.L2
            return self.l2.latency + pending, AccessLevel.MEMORY

        if self.memory is None:
            # Infinite L2 configuration (L2-11 / L2-21 in Table 1).
            self.l2.fill(line)
            self.l1.fill(line)
            return self.l2.latency, AccessLevel.L2

        latency = self.memory.access()
        self.l2.fill(line)
        self.l1.fill(line)
        ready = now + latency
        self.l2.record_fill(line, ready, now)
        self.l1.record_fill(line, ready, now)
        return latency, AccessLevel.MEMORY

    # ------------------------------------------------------------------

    def touch(self, addr: int, write: bool = False) -> None:
        """Functional (untimed) access, used for cache warm-up."""
        line = addr >> self._line_bits
        if self.l1.probe(line):
            self.l1.fill(line)  # refresh LRU position
            return
        if self.l2 is not None:
            self.l2.fill(line)
        self.l1.fill(line)

    def snapshot(self) -> dict:
        """Copy of the whole hierarchy's state (cache contents + stats).

        Together with :meth:`restore` this lets expensive functional
        warm-up run once per (memory config, workload) and be reinstated
        for every simulated machine/window, instead of re-streaming the
        working set for each run.
        """
        state = {"l1": self.l1.snapshot()}
        if self.l2 is not None:
            state["l2"] = self.l2.snapshot()
        if self.memory is not None:
            state["memory_accesses"] = self.memory.accesses
        return state

    def restore(self, state: dict) -> None:
        """Reinstate a :meth:`snapshot` taken from an identically
        configured hierarchy; the snapshot stays reusable."""
        self.l1.restore(state["l1"])
        if self.l2 is not None:
            self.l2.restore(state["l2"])
        if self.memory is not None:
            self.memory.accesses = state.get("memory_accesses", 0)

    def is_long_latency(self, level: AccessLevel) -> bool:
        """The D-KIP classification: off-chip accesses are long latency."""
        return level == AccessLevel.MEMORY

    def reset_stats(self) -> None:
        self.l1.reset_stats()
        if self.l2 is not None:
            self.l2.reset_stats()
        if self.memory is not None:
            self.memory.accesses = 0

    def describe(self) -> str:
        """One-line description matching Table 1's row format."""
        parts = [f"L1 {self._fmt_size(self.l1.size)}@{self.l1.latency}cy"]
        if self.l2 is not None:
            parts.append(f"L2 {self._fmt_size(self.l2.size)}@{self.l2.latency}cy")
        if self.memory is not None:
            parts.append(f"MEM@{self.memory.latency}cy")
        return " / ".join(parts)

    @staticmethod
    def _fmt_size(size: int | None) -> str:
        if size is None:
            return "inf"
        if size >= 1 << 20:
            return f"{size >> 20}MB"
        return f"{size >> 10}KB"
