"""Memory-system configurations, including the paper's Table 1.

Table 1 of the paper defines six memory subsystems used for the
memory-wall characterization (Figures 1 and 2):

====== ========== ======= ========== ======= ===========
name   L1 access  L1 size L2 access  L2 size mem access
====== ========== ======= ========== ======= ===========
L1-2        2       inf        -        -         -
L2-11       2       32KB      11       inf        -
L2-21       2       32KB      21       inf        -
MEM-100     2       32KB      11      512KB      100
MEM-400     2       32KB      11      512KB      400
MEM-1000    2       32KB      11      512KB     1000
====== ========== ======= ========== ======= ===========

The evaluation sections use the MEM-400 shape with the L2 size as the
swept parameter (Figures 11/12 go from 64 KB to 4 MB).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.fingerprint import Fingerprintable

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class MemoryConfig(Fingerprintable):
    """Parameters of one memory hierarchy.

    ``None`` sizes mean *infinite*; a ``None`` ``l2_latency`` removes the L2
    entirely (perfect L1); a ``None`` ``mem_latency`` makes the last cache
    level perfect.
    """

    name: str
    l1_size: int | None = 32 * KB
    l1_latency: int = 2
    l1_assoc: int = 2
    l2_size: int | None = 512 * KB
    l2_latency: int | None = 11
    l2_assoc: int = 8
    mem_latency: int | None = 400
    line_size: int = 64

    def with_l2_size(self, l2_size: int) -> "MemoryConfig":
        """Clone with a different L2 capacity (Figures 11/12 sweep)."""
        return replace(self, name=f"{self.name}-l2-{l2_size // KB}K", l2_size=l2_size)

    def with_mem_latency(self, mem_latency: int) -> "MemoryConfig":
        return replace(self, name=f"mem-{mem_latency}", mem_latency=mem_latency)


#: The six configurations of Table 1, keyed by their paper names.
TABLE1_CONFIGS: dict[str, MemoryConfig] = {
    "L1-2": MemoryConfig(
        name="L1-2",
        l1_size=None,
        l1_latency=2,
        l2_size=None,
        l2_latency=None,
        mem_latency=None,
    ),
    "L2-11": MemoryConfig(
        name="L2-11", l2_size=None, l2_latency=11, mem_latency=None
    ),
    "L2-21": MemoryConfig(
        name="L2-21", l2_size=None, l2_latency=21, mem_latency=None
    ),
    "MEM-100": MemoryConfig(name="MEM-100", mem_latency=100),
    "MEM-400": MemoryConfig(name="MEM-400", mem_latency=400),
    "MEM-1000": MemoryConfig(name="MEM-1000", mem_latency=1000),
}

#: Default memory system of the evaluation (Tables 2 and 3): 32 KB L1 at
#: 2 cycles, 512 KB L2 at 11 cycles, 400-cycle main memory.
DEFAULT_MEMORY = MemoryConfig(name="default")

#: L2 capacities swept in Figures 11 and 12.
FIG11_L2_SIZES = [64 * KB, 128 * KB, 256 * KB, 512 * KB, 1 * MB, 2 * MB, 4 * MB]


def memory_config_for_l2_size(l2_size: int) -> MemoryConfig:
    """The Figures 11/12 configuration with the given L2 capacity."""
    return DEFAULT_MEMORY.with_l2_size(l2_size)
