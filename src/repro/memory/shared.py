"""Shared-L2 plumbing for the dual-core machine kind.

Two cores with private L1s contend for one L2: every L1 miss must win an
L2 port before its lookup proceeds.  :class:`L2Arbiter` is that
arbitration point — a bank of ports, each busy for a fixed occupancy
after serving a request, granting in arrival order (which, because both
cores are stepped deterministically within one :class:`DualCore` cycle,
is itself deterministic).  :class:`SharedL2View` gives each core its own
private-L1 view of a common hierarchy, routing L1 misses through the
arbiter and adding the queueing delay to the returned latency.

The contention this models is the co-runner axis of the ``dual`` kind:
a cache-hostile co-runner keeps the arbiter busy and dirties the shared
L2, lengthening the primary core's effective memory latency — the same
knob the paper turns explicitly via Table 1's MEM-100/400/1000 configs.
"""

from __future__ import annotations

from repro.memory.cache import AccessLevel, Cache
from repro.memory.hierarchy import MemoryHierarchy


class L2Arbiter:
    """Port arbitration in front of a shared L2 cache.

    Args:
        ports: Number of L2 access ports (requests served concurrently).
        busy_cycles: Cycles a port stays occupied per granted request.

    ``acquire(now)`` returns the queueing delay (0 when a port is free)
    and advances the port state; counters feed the ``l2_arb_*`` fields
    of :class:`~repro.sim.stats.SimStats`.
    """

    def __init__(self, ports: int = 1, busy_cycles: int = 1) -> None:
        if ports <= 0:
            raise ValueError(f"arbiter needs at least one port: {ports}")
        if busy_cycles <= 0:
            raise ValueError(f"port occupancy must be positive: {busy_cycles}")
        self.ports = ports
        self.busy_cycles = busy_cycles
        self._free_at = [0] * ports
        self.accesses = 0
        self.conflicts = 0
        self.delay_cycles = 0

    def acquire(self, now: int) -> int:
        """Grant an L2 port at or after *now*; return the wait in cycles."""
        self.accesses += 1
        free_at = self._free_at
        port = min(range(self.ports), key=free_at.__getitem__)
        start = max(now, free_at[port])
        free_at[port] = start + self.busy_cycles
        wait = start - now
        if wait:
            self.conflicts += 1
            self.delay_cycles += wait
        return wait

    def snapshot(self) -> dict:
        return {
            "free_at": list(self._free_at),
            "accesses": self.accesses,
            "conflicts": self.conflicts,
            "delay_cycles": self.delay_cycles,
        }

    def restore(self, state: dict) -> None:
        self._free_at = list(state["free_at"])
        self.accesses = state["accesses"]
        self.conflicts = state["conflicts"]
        self.delay_cycles = state["delay_cycles"]


class SharedL2View(MemoryHierarchy):
    """One core's view of a hierarchy whose L2 is shared.

    Wraps a base :class:`MemoryHierarchy` (which owns the L2 and main
    memory) with an optional private L1 — each core of a dual-core
    machine gets its own view over the same base, so L2 contents and
    outstanding fills are genuinely shared while L1s stay private.  All
    L1 misses pass through the :class:`L2Arbiter`; the queueing delay is
    added to the reported latency and the fill timestamps, so a line
    fetched under contention also *arrives* later.
    """

    def __init__(
        self,
        base: MemoryHierarchy,
        arbiter: L2Arbiter,
        l1: Cache | None = None,
    ) -> None:
        # Deliberately no super().__init__: this view shares the base's
        # L2/memory objects instead of building fresh ones.
        self.config = base.config
        self.line_size = base.line_size
        self._line_bits = base._line_bits
        self.base = base
        self.arbiter = arbiter
        self.l1 = l1 if l1 is not None else base.l1
        self.l2 = base.l2
        self.memory = base.memory

    def access(self, addr: int, write: bool = False, now: int = 0) -> tuple[int, AccessLevel]:
        """Mirror :meth:`MemoryHierarchy.access`, arbitrating L1 misses.

        The arbiter wait is paid before the L2 lookup: a hit under
        contention costs ``wait + l2.latency``, and a miss's fill
        timestamps are based at ``now + wait`` so overlap behaviour stays
        consistent with when the request actually reached the L2.
        """
        line = addr >> self._line_bits
        if self.l1.lookup(line):
            pending = self.l1.pending_fill(line, now)
            if pending is None:
                return self.l1.latency, AccessLevel.L1
            return self.l1.latency + pending, AccessLevel.MEMORY

        if self.l2 is None:
            self.l1.fill(line)
            return self.l1.latency, AccessLevel.L1

        wait = self.arbiter.acquire(now)
        at_l2 = now + wait

        if self.l2.lookup(line):
            self.l1.fill(line)
            pending = self.l2.pending_fill(line, at_l2)
            if pending is None:
                return wait + self.l2.latency, AccessLevel.L2
            return wait + self.l2.latency + pending, AccessLevel.MEMORY

        if self.memory is None:
            self.l2.fill(line)
            self.l1.fill(line)
            return wait + self.l2.latency, AccessLevel.L2

        latency = self.memory.access()
        self.l2.fill(line)
        self.l1.fill(line)
        ready = at_l2 + latency
        self.l2.record_fill(line, ready, at_l2)
        self.l1.record_fill(line, ready, at_l2)
        return wait + latency, AccessLevel.MEMORY

    def touch(self, addr: int, write: bool = False) -> None:
        line = addr >> self._line_bits
        if self.l1.probe(line):
            self.l1.fill(line)
            return
        if self.l2 is not None:
            self.l2.fill(line)
        self.l1.fill(line)

    def snapshot(self) -> dict:
        state = {"l1": self.l1.snapshot(), "arbiter": self.arbiter.snapshot()}
        if self.l2 is not None:
            state["l2"] = self.l2.snapshot()
        if self.memory is not None:
            state["memory_accesses"] = self.memory.accesses
        return state

    def restore(self, state: dict) -> None:
        self.l1.restore(state["l1"])
        self.arbiter.restore(state["arbiter"])
        if self.l2 is not None:
            self.l2.restore(state["l2"])
        if self.memory is not None:
            self.memory.accesses = state.get("memory_accesses", 0)

    def reset_stats(self) -> None:
        self.l1.reset_stats()
        if self.l2 is not None:
            self.l2.reset_stats()
        if self.memory is not None:
            self.memory.accesses = 0
