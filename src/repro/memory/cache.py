"""Set-associative LRU cache and main-memory models.

These models answer one question per access — "how many cycles until the
value is usable?" — and keep hit/miss statistics.  Replacement is true LRU
within each set.  A cache with ``size=None`` is infinite (every line hits
after the first touch), which Table 1 of the paper uses for its perfect-L1
and perfect-L2 configurations.
"""

from __future__ import annotations

import enum
from collections import OrderedDict


#: Outstanding-fill table size that triggers an expiry sweep on the next
#: recorded fill.  Entries expire within one memory latency of creation, so
#: the table stays bounded by the access rate times the round-trip time;
#: the sweep only exists to reclaim the memory of long-dead records.
FILL_SWEEP_THRESHOLD = 1024


class AccessLevel(enum.IntEnum):
    """Hierarchy level that satisfied an access."""

    L1 = 1
    L2 = 2
    MEMORY = 3


class MainMemory:
    """Flat main memory with a fixed access latency."""

    def __init__(self, latency: int) -> None:
        if latency <= 0:
            raise ValueError(f"memory latency must be positive: {latency}")
        self.latency = latency
        self.accesses = 0

    def access(self) -> int:
        self.accesses += 1
        return self.latency


class Cache:
    """One level of set-associative, LRU, write-allocate cache.

    Args:
        name: Label used in statistics output (``"L1"``, ``"L2"``).
        size: Capacity in bytes, or ``None`` for an infinite cache.
        assoc: Associativity (ignored for infinite caches).
        line_size: Line size in bytes (power of two).
        latency: Total load-to-use latency when the access hits here.

    The cache tracks *outstanding fills*: when a miss is initiated at cycle
    ``c`` with total latency ``m``, the line is recorded as arriving at
    ``c + m``.  A later access to the same line before it arrives pays only
    the remaining time.  This gives correct overlap behaviour for streaming
    access patterns (several words per line) and for simultaneous misses to
    the same line from the two D-KIP processors.
    """

    def __init__(
        self,
        name: str,
        size: int | None,
        assoc: int,
        line_size: int,
        latency: int,
    ) -> None:
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError(f"line size must be a power of two: {line_size}")
        if latency <= 0:
            raise ValueError(f"cache latency must be positive: {latency}")
        if size is not None:
            if size <= 0 or size % (line_size * assoc):
                raise ValueError(
                    f"cache size {size} not divisible into {assoc}-way sets "
                    f"of {line_size}-byte lines"
                )
        self.name = name
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.latency = latency
        self._line_bits = line_size.bit_length() - 1
        if size is None:
            self._num_sets = 1
            self._infinite_lines: set[int] = set()
            self._sets: list[OrderedDict[int, None]] = []
        else:
            self._num_sets = size // (line_size * assoc)
            self._infinite_lines = set()
            self._sets = [OrderedDict() for _ in range(self._num_sets)]
        self._fills: dict[int, int] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def line_of(self, addr: int) -> int:
        return addr >> self._line_bits

    # ------------------------------------------------------------------

    def lookup(self, line: int) -> bool:
        """Check presence and update LRU state; counts as an access."""
        if self.size is None:
            if line in self._infinite_lines:
                self.hits += 1
                return True
            self.misses += 1
            return False
        s = self._sets[line % self._num_sets]
        if line in s:
            s.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def probe(self, line: int) -> bool:
        """Presence check without statistics or LRU update."""
        if self.size is None:
            return line in self._infinite_lines
        return line in self._sets[line % self._num_sets]

    def fill(self, line: int) -> None:
        """Install *line*, evicting the LRU line of its set if needed."""
        if self.size is None:
            self._infinite_lines.add(line)
            return
        s = self._sets[line % self._num_sets]
        if line in s:
            s.move_to_end(line)
            return
        if len(s) >= self.assoc:
            s.popitem(last=False)
        s[line] = None

    # ------------------------------------------------------------------
    # Outstanding-fill bookkeeping (MSHR-like overlap behaviour)
    # ------------------------------------------------------------------

    def pending_fill(self, line: int, now: int) -> int | None:
        """Cycles remaining until an in-flight fill of *line* completes.

        Returns ``None`` when no fill for the line is outstanding.  This is
        a pure probe: expired entries are left in place (they no longer
        affect any result) and reclaimed by :meth:`record_fill`'s periodic
        sweep, so two probes of the same line at the same cycle are
        guaranteed to agree and read paths never mutate fill state.
        """
        ready = self._fills.get(line)
        if ready is None or ready <= now:
            return None
        return ready - now

    def record_fill(self, line: int, ready_cycle: int, now: int | None = None) -> None:
        """Record that *line* is being filled, arriving at *ready_cycle*.

        Passing *now* (the cycle the miss was initiated) lets the table
        sweep out expired entries once it grows past
        ``FILL_SWEEP_THRESHOLD``, bounding it to the fills genuinely
        outstanding inside one memory round-trip regardless of run length.
        """
        fills = self._fills
        fills[line] = ready_cycle
        if now is not None and len(fills) > FILL_SWEEP_THRESHOLD:
            self.sweep_fills(now)

    def sweep_fills(self, now: int) -> int:
        """Drop fill records that completed at or before *now*.

        Returns the number of entries removed.  Outstanding (future)
        fills are never dropped — forgetting one would turn an overlapped
        miss into a free hit and change simulated timing.
        """
        fills = self._fills
        expired = [line for line, ready in fills.items() if ready <= now]
        for line in expired:
            del fills[line]
        return len(expired)

    @property
    def outstanding_fills(self) -> int:
        return len(self._fills)

    # ------------------------------------------------------------------
    # Bulk warm-up (see repro.memory.warmup)
    # ------------------------------------------------------------------

    def is_pristine(self) -> bool:
        """True when the cache holds no lines, fills, or statistics —
        i.e. it is indistinguishable from a freshly constructed one."""
        if self._infinite_lines or self._fills or self.hits or self.misses:
            return False
        return all(not s for s in self._sets)

    def warm_tail(self, lines: list[int]) -> None:
        """Install the state a single read pass over *lines* would leave.

        *lines* must be all distinct and the cache pristine: then every
        line is filled exactly once, in stream order, so the final content
        of each set is the last ``assoc`` of its lines — installable
        directly, without simulating the evictions.  The caller
        (:func:`repro.memory.warmup.warm_caches`) checks the
        preconditions and falls back to streaming otherwise.
        """
        if self.size is None:
            self._infinite_lines.update(lines)
            return
        num_sets = self._num_sets
        assoc = self.assoc
        survivors: dict[int, list[int]] = {}
        full = 0
        for line in reversed(lines):
            bucket = survivors.get(line % num_sets)
            if bucket is None:
                survivors[line % num_sets] = [line]
                if assoc == 1:
                    full += 1
                    if full == num_sets:
                        break
            elif len(bucket) < assoc:
                bucket.append(line)
                if len(bucket) == assoc:
                    full += 1
                    if full == num_sets:
                        break
        sets = self._sets
        for index, bucket in survivors.items():
            target = sets[index]
            for line in reversed(bucket):
                target[line] = None

    # ------------------------------------------------------------------

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # State snapshot (warm-up reuse across runs)
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Copy of the full cache state (contents, fills, statistics)."""
        return {
            "sets": [dict(s) for s in self._sets],
            "infinite_lines": set(self._infinite_lines),
            "fills": dict(self._fills),
            "hits": self.hits,
            "misses": self.misses,
        }

    def restore(self, state: dict) -> None:
        """Reinstate a :meth:`snapshot`; the snapshot stays reusable."""
        self._sets = [OrderedDict(s) for s in state["sets"]]
        self._infinite_lines = set(state["infinite_lines"])
        self._fills = dict(state["fills"])
        self.hits = state["hits"]
        self.misses = state["misses"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        size = "inf" if self.size is None else f"{self.size // 1024}KB"
        return f"Cache({self.name}, {size}, {self.assoc}-way, lat={self.latency})"
