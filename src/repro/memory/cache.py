"""Set-associative LRU cache and main-memory models.

These models answer one question per access — "how many cycles until the
value is usable?" — and keep hit/miss statistics.  Replacement is true LRU
within each set.  A cache with ``size=None`` is infinite (every line hits
after the first touch), which Table 1 of the paper uses for its perfect-L1
and perfect-L2 configurations.
"""

from __future__ import annotations

import enum
from collections import OrderedDict


class AccessLevel(enum.IntEnum):
    """Hierarchy level that satisfied an access."""

    L1 = 1
    L2 = 2
    MEMORY = 3


class MainMemory:
    """Flat main memory with a fixed access latency."""

    def __init__(self, latency: int) -> None:
        if latency <= 0:
            raise ValueError(f"memory latency must be positive: {latency}")
        self.latency = latency
        self.accesses = 0

    def access(self) -> int:
        self.accesses += 1
        return self.latency


class Cache:
    """One level of set-associative, LRU, write-allocate cache.

    Args:
        name: Label used in statistics output (``"L1"``, ``"L2"``).
        size: Capacity in bytes, or ``None`` for an infinite cache.
        assoc: Associativity (ignored for infinite caches).
        line_size: Line size in bytes (power of two).
        latency: Total load-to-use latency when the access hits here.

    The cache tracks *outstanding fills*: when a miss is initiated at cycle
    ``c`` with total latency ``m``, the line is recorded as arriving at
    ``c + m``.  A later access to the same line before it arrives pays only
    the remaining time.  This gives correct overlap behaviour for streaming
    access patterns (several words per line) and for simultaneous misses to
    the same line from the two D-KIP processors.
    """

    def __init__(
        self,
        name: str,
        size: int | None,
        assoc: int,
        line_size: int,
        latency: int,
    ) -> None:
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError(f"line size must be a power of two: {line_size}")
        if latency <= 0:
            raise ValueError(f"cache latency must be positive: {latency}")
        if size is not None:
            if size <= 0 or size % (line_size * assoc):
                raise ValueError(
                    f"cache size {size} not divisible into {assoc}-way sets "
                    f"of {line_size}-byte lines"
                )
        self.name = name
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.latency = latency
        self._line_bits = line_size.bit_length() - 1
        if size is None:
            self._num_sets = 1
            self._infinite_lines: set[int] = set()
            self._sets: list[OrderedDict[int, None]] = []
        else:
            self._num_sets = size // (line_size * assoc)
            self._infinite_lines = set()
            self._sets = [OrderedDict() for _ in range(self._num_sets)]
        self._fills: dict[int, int] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def line_of(self, addr: int) -> int:
        return addr >> self._line_bits

    # ------------------------------------------------------------------

    def lookup(self, line: int) -> bool:
        """Check presence and update LRU state; counts as an access."""
        if self.size is None:
            if line in self._infinite_lines:
                self.hits += 1
                return True
            self.misses += 1
            return False
        s = self._sets[line % self._num_sets]
        if line in s:
            s.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def probe(self, line: int) -> bool:
        """Presence check without statistics or LRU update."""
        if self.size is None:
            return line in self._infinite_lines
        return line in self._sets[line % self._num_sets]

    def fill(self, line: int) -> None:
        """Install *line*, evicting the LRU line of its set if needed."""
        if self.size is None:
            self._infinite_lines.add(line)
            return
        s = self._sets[line % self._num_sets]
        if line in s:
            s.move_to_end(line)
            return
        if len(s) >= self.assoc:
            s.popitem(last=False)
        s[line] = None

    # ------------------------------------------------------------------
    # Outstanding-fill bookkeeping (MSHR-like overlap behaviour)
    # ------------------------------------------------------------------

    def pending_fill(self, line: int, now: int) -> int | None:
        """Cycles remaining until an in-flight fill of *line* completes.

        Returns ``None`` when no fill for the line is outstanding.
        """
        ready = self._fills.get(line)
        if ready is None:
            return None
        if ready <= now:
            del self._fills[line]
            return None
        return ready - now

    def record_fill(self, line: int, ready_cycle: int) -> None:
        self._fills[line] = ready_cycle

    # ------------------------------------------------------------------

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        size = "inf" if self.size is None else f"{self.size // 1024}KB"
        return f"Cache({self.name}, {size}, {self.assoc}-way, lat={self.latency})"
