"""Value coercion for machine-spec parameters.

The helpers themselves now live in :mod:`repro.grammar` — the spec
grammar core shared by the machine layer and the workload layer
(:mod:`repro.workloads.spec`).  This module re-exports them so the
machine-kind constructor modules (:mod:`repro.baselines`,
:mod:`repro.core.dkip`) and external callers keep their historical
import path.
"""

from __future__ import annotations

from repro.grammar import (  # noqa: F401 - re-exported API
    INF_WORDS,
    SpecError,
    parse_count,
    parse_count_or_inf,
    parse_flag,
    parse_fraction,
    parse_nonneg,
    parse_size,
    reject_unknown,
)

__all__ = [
    "INF_WORDS",
    "SpecError",
    "parse_count",
    "parse_count_or_inf",
    "parse_flag",
    "parse_fraction",
    "parse_nonneg",
    "parse_size",
    "reject_unknown",
]
