"""Value coercion for machine-spec parameters.

Every machine kind's ``parse`` hook receives its parameters as raw
strings (``{"rob": "256", "cp": "OOO-60"}``); the helpers here turn
those into validated Python values with error messages that always name
the offending kind, key and the accepted grammar.  This module imports
nothing from the rest of the package so the constructor modules
(:mod:`repro.baselines`, :mod:`repro.core.dkip`) can use it without any
risk of an import cycle.
"""

from __future__ import annotations

from typing import Mapping

#: Multipliers for the size suffixes accepted by :func:`parse_size`.
_SIZE_SUFFIXES = {"k": 1024, "m": 1024 * 1024}

_TRUE_WORDS = frozenset({"1", "true", "yes", "on"})
_FALSE_WORDS = frozenset({"0", "false", "no", "off"})

#: Spellings of *unlimited/absent* accepted wherever a size or bound may
#: be infinite (shared by the memory grammar in :mod:`.spec`).
INF_WORDS = frozenset({"inf", "infinite", "none", "unlimited"})
_INF_WORDS = INF_WORDS


class SpecError(ValueError):
    """A machine/memory spec string failed to parse or validate."""


def reject_unknown(
    kind: str, params: Mapping[str, str], allowed: frozenset[str] | set[str],
    grammar: str,
) -> None:
    """Raise :class:`SpecError` if *params* contains keys outside *allowed*."""
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise SpecError(
            f"unknown {kind!r} parameter(s) {', '.join(unknown)}; "
            f"grammar: {grammar}"
        )


def parse_count(kind: str, key: str, value: str) -> int:
    """A strictly positive integer (``"40"``, ``"2_048"``)."""
    try:
        count = int(value)
    except ValueError:
        count = None
    if count is None or count <= 0:
        raise SpecError(
            f"{kind}: parameter {key}={value!r} must be a positive integer"
        )
    return count


def parse_count_or_inf(kind: str, key: str, value: str) -> int | None:
    """A positive integer, or ``inf``/``none`` meaning *unlimited*."""
    if value.strip().lower() in _INF_WORDS:
        return None
    return parse_count(kind, key, value)


def parse_size(kind: str, key: str, value: str) -> int | None:
    """A byte size with an optional ``K``/``M`` suffix, or ``inf``.

    ``"512K"`` → 524288, ``"1M"`` → 1048576, ``"inf"`` → ``None``.
    """
    text = value.strip().lower()
    if text in _INF_WORDS:
        return None
    multiplier = 1
    if text and text[-1] in _SIZE_SUFFIXES:
        multiplier = _SIZE_SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        size = int(text)
    except ValueError:
        size = None
    if size is None or size <= 0:
        raise SpecError(
            f"{kind}: parameter {key}={value!r} must be a positive size "
            "(optionally suffixed K or M) or 'inf'"
        )
    return size * multiplier


def parse_flag(kind: str, key: str, value: str) -> bool:
    """A boolean flag: on/off, true/false, yes/no, 1/0."""
    text = value.strip().lower()
    if text in _TRUE_WORDS:
        return True
    if text in _FALSE_WORDS:
        return False
    raise SpecError(
        f"{kind}: parameter {key}={value!r} must be a boolean "
        "(on/off, true/false, yes/no, 1/0)"
    )
