"""The machine-kind registry: every simulatable machine in one table.

A *kind* is one family of machines (``r10``, ``kilo``, ``dkip``,
``runahead``, ``limit``) described by a :class:`MachineKind` record:

* ``parse(params) -> config`` builds the kind's frozen config dataclass
  from the key/value parameters of a spec string
  (:func:`repro.machines.spec.parse_machine` handles the surrounding
  grammar);
* ``build(config, trace, hierarchy, predictor, stats) -> core``
  instantiates the simulator — the job the old ``isinstance`` chain in
  ``repro.sim.runner.build_core`` used to do;
* the config's existing :meth:`~repro.fingerprint.Fingerprintable.
  fingerprint` keys the result store, unchanged.

Kinds register themselves from the module that owns their constructor
(``repro.baselines.ooo``, ``repro.core.dkip``, ...) at import time;
:func:`ensure_builtin_kinds` imports those modules lazily so this module
stays import-cycle-free and external code can register additional kinds
before or after.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Protocol, runtime_checkable


@runtime_checkable
class MachineDescription(Protocol):
    """What every machine configuration must provide: a display/store
    name and a stable content fingerprint (any frozen
    :class:`~repro.fingerprint.Fingerprintable` dataclass qualifies)."""

    @property
    def name(self) -> str: ...

    def fingerprint(self) -> str: ...


@dataclass(frozen=True)
class MachineKind:
    """One registered machine family."""

    #: Registry key and the kind word of the spec grammar (lowercase).
    name: str
    #: The frozen config dataclass this kind is described by.
    config_cls: type
    #: ``build(config, trace, hierarchy, predictor, stats) -> core``.
    build: Callable[..., Any]
    #: ``parse(params: dict[str, str]) -> config``.
    parse: Callable[[dict[str, str]], Any]
    #: One-line human description (the ``machines`` subcommand).
    description: str = ""
    #: Human-readable spec grammar, e.g. ``"dkip(llib=N, cp=OOO-n, ...)"``.
    grammar: str = ""


_KINDS: dict[str, MachineKind] = {}
_BY_CONFIG: dict[type, MachineKind] = {}

#: Modules that self-register the built-in kinds when imported.
_BUILTIN_MODULES = (
    "repro.baselines.ooo",
    "repro.baselines.ooobp",
    "repro.baselines.kilo",
    "repro.baselines.runahead",
    "repro.baselines.limit",
    "repro.baselines.dual",
    "repro.core.dkip",
)


def register_machine(kind: MachineKind) -> MachineKind:
    """Register *kind* (idempotent; re-registration replaces)."""
    _KINDS[kind.name] = kind
    _BY_CONFIG[kind.config_cls] = kind
    return kind


def ensure_builtin_kinds() -> None:
    """Import the constructor modules so the built-in kinds exist."""
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def machine_kinds() -> dict[str, MachineKind]:
    """All registered kinds, keyed by name (registration order)."""
    ensure_builtin_kinds()
    return dict(_KINDS)


def get_kind(name: str) -> MachineKind:
    """The kind registered under *name* (case-insensitive)."""
    ensure_builtin_kinds()
    kind = _KINDS.get(name.lower())
    if kind is None:
        raise ValueError(
            f"unknown machine kind {name!r}; registered kinds: "
            f"{', '.join(sorted(_KINDS))}"
        )
    return kind


def kind_of(config: Any) -> MachineKind:
    """The kind whose config class matches *config* (walks the MRO so
    subclassed configs resolve to their base kind)."""
    ensure_builtin_kinds()
    for cls in type(config).__mro__:
        kind = _BY_CONFIG.get(cls)
        if kind is not None:
            return kind
    raise TypeError(f"unknown machine configuration type: {type(config)!r}")


def config_class_named(class_name: str) -> type | None:
    """The registered config dataclass with ``__name__`` *class_name*,
    or ``None`` — the store's deserializer uses this to rebuild configs
    of kinds registered outside the built-in set."""
    ensure_builtin_kinds()
    for cls in _BY_CONFIG:
        if cls.__name__ == class_name:
            return cls
    return None


def build_machine(
    config: Any, trace: Any, hierarchy: Any, predictor: Any, stats: Any = None
):
    """Instantiate the simulator for *config* via the registry — the
    single construction path every runner goes through."""
    return kind_of(config).build(config, trace, hierarchy, predictor, stats)
